#include "common/profiles.hpp"

namespace hykv {

FabricProfile FabricProfile::fdr_rdma() {
  return FabricProfile{
      .name = "RDMA-FDR56",
      .base_latency = sim::Nanos{1200},
      .bytes_per_us = 6000.0,  // ~6 GB/s effective
      .per_segment = sim::Nanos{0},
      .segment_bytes = 0,
      .one_sided = true,
      .doorbell = sim::Nanos{300},
      .registration_base = sim::us(25),
      .registration_per_mb = sim::us(40),
      .registration_cached = sim::Nanos{200},
  };
}

FabricProfile FabricProfile::ipoib() {
  return FabricProfile{
      .name = "IPoIB-FDR56",
      .base_latency = sim::us(15),
      .bytes_per_us = 1800.0,  // ~1.8 GB/s effective through the TCP stack
      .per_segment = sim::us(2),
      .segment_bytes = 64 * 1024,
      .one_sided = false,
      .doorbell = sim::us(3),  // syscall-grade send cost
      // Registration is a no-op concept on TCP; model the socket buffer copy
      // costs as zero here (they are folded into per_segment/doorbell).
      .registration_base = sim::Nanos{0},
      .registration_per_mb = sim::Nanos{0},
      .registration_cached = sim::Nanos{0},
  };
}

SsdProfile SsdProfile::sata() {
  return SsdProfile{
      .name = "SATA-SSD",
      .read_base = sim::us(110),
      .write_base = sim::us(90),
      .read_bytes_per_us = 520.0,   // ~0.5 GB/s
      .write_bytes_per_us = 470.0,  // ~0.45 GB/s
      .capacity_bytes = std::size_t{320} << 30,
      .channels = 1,
      .sync_barrier = sim::ms(1) + sim::us(500),
  };
}

SsdProfile SsdProfile::nvme() {
  return SsdProfile{
      .name = "NVMe-P3700",
      .read_base = sim::us(20),
      .write_base = sim::us(20),
      .read_bytes_per_us = 2900.0,  // ~2.8 GB/s
      .write_bytes_per_us = 2000.0, // ~1.9 GB/s
      .capacity_bytes = std::size_t{400} << 30,
      .channels = 4,
      .sync_barrier = sim::us(100),
  };
}

}  // namespace hykv
