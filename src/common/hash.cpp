#include "common/hash.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace hykv {
namespace {

inline std::uint64_t read_u64(const unsigned char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t read_u32(const unsigned char* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

constexpr std::uint64_t kXxPrime1 = 11400714785074694791ULL;
constexpr std::uint64_t kXxPrime2 = 14029467366897019727ULL;
constexpr std::uint64_t kXxPrime3 = 1609587929392839161ULL;
constexpr std::uint64_t kXxPrime4 = 9650029242287828579ULL;
constexpr std::uint64_t kXxPrime5 = 2870177450012600261ULL;

inline std::uint64_t xx_round(std::uint64_t acc, std::uint64_t input) noexcept {
  acc += input * kXxPrime2;
  acc = std::rotl(acc, 31);
  acc *= kXxPrime1;
  return acc;
}

inline std::uint64_t xx_merge_round(std::uint64_t acc, std::uint64_t val) noexcept {
  acc ^= xx_round(0, val);
  acc = acc * kXxPrime1 + kXxPrime4;
  return acc;
}

// CRC32-C lookup table generated at static-init time.
struct Crc32cTable {
  std::array<std::uint32_t, 256> entries{};
  Crc32cTable() noexcept {
    constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& crc_table() noexcept {
  static const Crc32cTable table;
  return table;
}

}  // namespace

std::uint32_t jenkins_oaat(std::string_view data) noexcept {
  std::uint32_t hash = 0;
  for (const char c : data) {
    hash += static_cast<unsigned char>(c);
    hash += hash << 10;
    hash ^= hash >> 6;
  }
  hash += hash << 3;
  hash ^= hash >> 11;
  hash += hash << 15;
  return hash;
}

std::uint64_t xxh64(const void* data, std::size_t len, std::uint64_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  std::uint64_t h;

  if (len >= 32) {
    std::uint64_t v1 = seed + kXxPrime1 + kXxPrime2;
    std::uint64_t v2 = seed + kXxPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kXxPrime1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = xx_round(v1, read_u64(p));
      v2 = xx_round(v2, read_u64(p + 8));
      v3 = xx_round(v3, read_u64(p + 16));
      v4 = xx_round(v4, read_u64(p + 24));
      p += 32;
    } while (p <= limit);
    h = std::rotl(v1, 1) + std::rotl(v2, 7) + std::rotl(v3, 12) + std::rotl(v4, 18);
    h = xx_merge_round(h, v1);
    h = xx_merge_round(h, v2);
    h = xx_merge_round(h, v3);
    h = xx_merge_round(h, v4);
  } else {
    h = seed + kXxPrime5;
  }

  h += static_cast<std::uint64_t>(len);
  while (p + 8 <= end) {
    h ^= xx_round(0, read_u64(p));
    h = std::rotl(h, 27) * kXxPrime1 + kXxPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read_u32(p)) * kXxPrime1;
    h = std::rotl(h, 23) * kXxPrime2 + kXxPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(*p) * kXxPrime5;
    h = std::rotl(h, 11) * kXxPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kXxPrime2;
  h ^= h >> 29;
  h *= kXxPrime3;
  h ^= h >> 32;
  return h;
}

std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed) noexcept {
  std::uint64_t hash = seed;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  const auto& table = crc_table().entries;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace hykv
