// Hash functions used across hykv.
//
// - jenkins_oaat: memcached's classic one-at-a-time key hash; used by the
//   server hash table and the client's server-selection ring so that our
//   key->server mapping matches libmemcached's default behaviour class.
// - xxh64: fast 64-bit hash for checksums, dedup and test fixtures.
// - fnv1a64: simple/seedable; used where incremental hashing is handy.
// - crc32c (software): item payload integrity checks on the SSD path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hykv {

/// Bob Jenkins' one-at-a-time hash (memcached's default "jenkins" hash).
std::uint32_t jenkins_oaat(std::string_view data) noexcept;

/// xxHash64 over a byte range.
std::uint64_t xxh64(const void* data, std::size_t len, std::uint64_t seed = 0) noexcept;
inline std::uint64_t xxh64(std::string_view data, std::uint64_t seed = 0) noexcept {
  return xxh64(data.data(), data.size(), seed);
}

/// FNV-1a 64-bit.
std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed = 14695981039346656037ULL) noexcept;

/// CRC32-C (Castagnoli), software table implementation.
std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed = 0) noexcept;
inline std::uint32_t crc32c(std::string_view data, std::uint32_t seed = 0) noexcept {
  return crc32c(data.data(), data.size(), seed);
}

/// 64-bit finalizer (splitmix64) for integer keys; good avalanche.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace hykv
