#include "common/sim_time.hpp"

#include <atomic>
#include <cmath>
#include <thread>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

namespace hykv::sim {
namespace {

// Final stretch of every long wait that is spun rather than slept. Large
// enough to absorb typical wake-up latency after timer slack is lowered,
// small enough not to monopolise a single-core box.
constexpr Nanos kSpinTail{20'000};

std::atomic<double> g_time_scale{1.0};

void spin_until(TimePoint deadline) {
  while (Clock::now() < deadline) {
    // Busy wait; pause hint keeps hyperthread siblings happy where present.
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
}

}  // namespace

double time_scale() noexcept { return g_time_scale.load(std::memory_order_relaxed); }

void set_time_scale(double scale) noexcept {
  g_time_scale.store(scale < 0.0 ? 0.0 : scale, std::memory_order_relaxed);
}

ScopedTimeScale::ScopedTimeScale(double scale) noexcept : previous_(time_scale()) {
  set_time_scale(scale);
}

ScopedTimeScale::~ScopedTimeScale() { set_time_scale(previous_); }

Nanos scaled(Nanos modelled) noexcept {
  const double s = time_scale();
  if (s == 1.0) return modelled;
  return Nanos{static_cast<Nanos::rep>(std::llround(static_cast<double>(modelled.count()) * s))};
}

void advance(Nanos modelled) {
  const Nanos real = scaled(modelled);
  if (real <= Nanos::zero()) return;
  wait_until(Clock::now() + real);
}

void wait_until(TimePoint deadline) {
  TimePoint current = Clock::now();
  if (current >= deadline) return;
  // Sleep the bulk of the wait so other threads (servers, progress engines)
  // can run -- essential for honest overlap numbers on few-core machines.
  if (deadline - current > kSpinTail) {
    std::this_thread::sleep_until(deadline - kSpinTail);
  }
  spin_until(deadline);
}

void advance_coarse(Nanos modelled) {
  const Nanos real = scaled(modelled);
  if (real <= Nanos::zero()) return;
  std::this_thread::sleep_for(real);
}

void init_precise_timing() noexcept {
#if defined(__linux__)
  // 1us timer slack: nanosleep wakes within a handful of microseconds
  // instead of the 50us default. Applies to the calling thread's children
  // too when set before they are spawned.
  ::prctl(PR_SET_TIMERSLACK, 1UL, 0UL, 0UL, 0UL);
#endif
}

Nanos measure_sleep_overshoot() {
  constexpr int kSamples = 32;
  Nanos worst{0};
  for (int i = 0; i < kSamples; ++i) {
    const TimePoint deadline = Clock::now() + us(100);
    std::this_thread::sleep_until(deadline);
    const Nanos over = Clock::now() - deadline;
    if (over > worst) worst = over;
  }
  return worst;
}

}  // namespace hykv::sim
