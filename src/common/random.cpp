#include "common/random.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/hash.hpp"
#include "common/mutex.hpp"

namespace hykv {

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 seeding as recommended by the xoshiro authors.
  std::uint64_t x = seed;
  for (auto& s : state_) {
    x += 0x9E3779B97F4A7C15ULL;
    s = mix64(x);
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t x = next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void Rng::fill(char* out, std::size_t len) noexcept {
  std::size_t i = 0;
  while (i < len) {
    std::uint64_t word = next();
    for (int b = 0; b < 8 && i < len; ++b, ++i) {
      // Printable ASCII so dumps are readable in debuggers.
      out[i] = static_cast<char>('!' + (word & 0x3F));
      word >>= 6;
    }
  }
}

namespace {

double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

// zeta(n, theta) is O(n); cache it so constructing many generators over the
// same key space (one per client thread) stays cheap.
double cached_zeta(std::uint64_t n, double theta) {
  // Function-local statics: the analysis cannot tie `cache` to `mu` via
  // GUARDED_BY (no enclosing class), so the guard is by convention here.
  static Mutex mu;
  static std::map<std::pair<std::uint64_t, double>, double> cache;
  const MutexLock lock(mu);
  auto [it, inserted] = cache.try_emplace({n, theta}, 0.0);
  if (inserted) it->second = zeta(n, theta);
  return it->second;
}

}  // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  assert(n > 0);
  assert(theta > 0.0 && theta < 1.0);
  zetan_ = cached_zeta(n, theta);
  zeta2theta_ = cached_zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfGenerator::next() noexcept {
  const double u = rng_.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double raw =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  auto rank = static_cast<std::uint64_t>(raw);
  return rank >= n_ ? n_ - 1 : rank;
}

std::uint64_t ScrambledZipfGenerator::next() noexcept {
  return mix64(zipf_.next()) % n_;
}

std::string make_key(std::uint64_t index) {
  char buf[21];
  std::snprintf(buf, sizeof(buf), "key-%016llx",
                static_cast<unsigned long long>(index));
  return std::string(buf, 20);
}

std::vector<char> make_value(std::uint64_t index, std::size_t size) {
  std::vector<char> value(size);
  Rng rng(mix64(index) ^ 0xC0FFEE);
  rng.fill(value.data(), value.size());
  return value;
}

}  // namespace hykv
