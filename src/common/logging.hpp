// Minimal leveled logger. hykv logs sparingly (setup, shutdown, anomalies);
// hot paths never log. Thread-safe via a single global mutex -- acceptable
// because logging is off the modelled critical path.
#pragma once

#include <cstdarg>
#include <cstdint>

namespace hykv {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Reads HYKV_LOG (debug|info|warn|error|off) and applies it. Called by
/// bench/example banners so field debugging never needs a rebuild.
void init_log_level_from_env() noexcept;

/// printf-style; prepends time, level and thread id.
void log_message(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

}  // namespace hykv

#define HYKV_DEBUG(...) ::hykv::log_message(::hykv::LogLevel::kDebug, __VA_ARGS__)
#define HYKV_INFO(...) ::hykv::log_message(::hykv::LogLevel::kInfo, __VA_ARGS__)
#define HYKV_WARN(...) ::hykv::log_message(::hykv::LogLevel::kWarn, __VA_ARGS__)
#define HYKV_ERROR(...) ::hykv::log_message(::hykv::LogLevel::kError, __VA_ARGS__)
