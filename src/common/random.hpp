// Pseudo-random utilities: a fast seedable PRNG and the access-pattern
// generators used by the OHB-style micro-benchmarks (Section VI-A of the
// paper): Uniform and Zipf-like skewed key distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hykv {

/// xoshiro256** 1.0 -- fast, high-quality, 64-bit PRNG. Deterministic per
/// seed so every workload in tests and benches is reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Fills `out` with pseudo-random printable bytes (deterministic).
  void fill(char* out, std::size_t len) noexcept;

 private:
  std::uint64_t state_[4];
};

/// YCSB-style Zipfian generator over [0, n). Uses the Gray et al.
/// zeta-function method: O(1) per sample after an O(n) one-time zeta
/// computation (cached per (n, theta)). theta in (0, 1); 0.99 matches the
/// YCSB default the paper's "Zipf-like" pattern refers to.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed);

  std::uint64_t next() noexcept;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Rng rng_;
};

/// Uniform key generator over [0, n).
class UniformGenerator {
 public:
  UniformGenerator(std::uint64_t n, std::uint64_t seed) noexcept : n_(n), rng_(seed) {}
  std::uint64_t next() noexcept { return rng_.next_below(n_); }

 private:
  std::uint64_t n_;
  Rng rng_;
};

/// Scrambles sequential Zipf ranks across the key space so that hot keys are
/// spread over servers/slabs (YCSB "scrambled zipfian").
class ScrambledZipfGenerator {
 public:
  ScrambledZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed)
      : n_(n), zipf_(n, theta, seed) {}
  std::uint64_t next() noexcept;

 private:
  std::uint64_t n_;
  ZipfGenerator zipf_;
};

/// Formats the canonical benchmark key for a key index: "key-%016x" style,
/// fixed 20-byte keys as in the OHB micro-benchmarks.
std::string make_key(std::uint64_t index);

/// Deterministic value payload for a key index: seeded pseudo-random bytes
/// whose content can be re-derived for integrity verification.
std::vector<char> make_value(std::uint64_t index, std::size_t size);

}  // namespace hykv
