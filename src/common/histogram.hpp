// Latency recording: an HDR-style log-linear histogram (cheap to record,
// mergeable across threads, percentile queries) used by the benchmark
// harness and the server's per-stage instrumentation.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hykv {

/// Log-linear histogram over nanosecond durations.
/// Buckets: 64 power-of-two major buckets x 32 linear sub-buckets, covering
/// [1ns, ~580 years] with <= 3.2% relative error -- plenty for latency work.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr std::size_t kBucketCount = 64 * kSubBuckets;

  /// Bucket a value lands in (saturates at kBucketCount - 1) and the largest
  /// value a bucket covers. Public so external recorders (metrics.hpp keeps
  /// per-thread atomic bucket arrays) can share the exact same layout.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t ns) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper_bound(std::size_t index) noexcept;

  LatencyHistogram() = default;

  void record(std::chrono::nanoseconds value) noexcept {
    record_ns(static_cast<std::uint64_t>(
        value.count() < 0 ? 0 : value.count()));
  }
  void record_ns(std::uint64_t ns) noexcept;

  void merge(const LatencyHistogram& other) noexcept;
  /// Merges raw bucket counts captured elsewhere with this exact layout
  /// (bucket_index). `min`/`max` are ignored when `count` is 0. Used to fold
  /// a snapshot of an atomic per-thread histogram into a plain one.
  void merge_counts(std::span<const std::uint64_t> buckets, std::uint64_t count,
                    std::uint64_t sum, std::uint64_t min,
                    std::uint64_t max) noexcept;
  void reset() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t min_ns() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max_ns() const noexcept { return max_; }
  [[nodiscard]] double mean_ns() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Value at percentile p in [0, 100]. Returns an upper bound of the bucket
  /// containing the requested rank.
  [[nodiscard]] std::uint64_t percentile_ns(double p) const noexcept;

  [[nodiscard]] double mean_us() const noexcept { return mean_ns() / 1e3; }
  [[nodiscard]] double p50_us() const noexcept { return static_cast<double>(percentile_ns(50)) / 1e3; }
  [[nodiscard]] double p99_us() const noexcept { return static_cast<double>(percentile_ns(99)) / 1e3; }

  /// "mean=12.3us p50=11us p99=40us n=1000" -- for bench table cells.
  [[nodiscard]] std::string summary() const;

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

/// Simple running tally for throughput-style counters.
struct OpCounter {
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  void add(std::uint64_t op_bytes) noexcept {
    ++ops;
    bytes += op_bytes;
  }
};

}  // namespace hykv
