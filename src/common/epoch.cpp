#include "common/epoch.hpp"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "common/mutex.hpp"

namespace hykv::epoch {
namespace {

// ---------------------------------------------------------------------------
// Domain liveness registry.
//
// Threads cache (domain id, slot*) registrations in thread-local storage so
// re-entry is O(1). A cached slot pointer outlives the thread's last Guard,
// so releasing it at thread exit (or cache eviction) must not touch a Domain
// that has already been destroyed. The registry records live domain ids;
// release is a no-op for dead ones (their slot memory died with them).
// Intentionally leaked so thread-exit destructors never race static teardown.

struct Registry {
  Mutex mu;
  std::unordered_set<std::uint64_t> live GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: see header contract
  return *r;
}

std::uint64_t next_domain_id() {
  static std::atomic<std::uint64_t> seq{1};
  return seq.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// ---------------------------------------------------------------------------
// Per-thread registration cache.

struct ThreadCache {
  struct Registration {
    std::uint64_t domain_id = 0;
    Domain* domain = nullptr;
    Domain::Slot* slot = nullptr;
    std::uint32_t depth = 0;  ///< Nested guards; only the owner thread touches.
  };

  static constexpr std::size_t kEntries = 4;
  std::array<Registration, kEntries> entries{};

  ~ThreadCache() {
    for (Registration& reg : entries) release(reg);
  }

  /// Releases a registration's slot iff its domain is still alive. The slot
  /// write happens under the registry lock so it cannot race ~Domain.
  static void release(Registration& reg) {
    if (reg.slot == nullptr) return;
    Registry& r = registry();
    const MutexLock lock(r.mu);
    if (r.live.contains(reg.domain_id)) {
      reg.slot->epoch.store(0, std::memory_order_release);
      reg.slot->claimed.store(false, std::memory_order_release);
    }
    reg = Registration{};
  }

  Registration* find_or_register(Domain& domain) {
    Registration* empty = nullptr;
    Registration* evictable = nullptr;
    for (Registration& reg : entries) {
      if (reg.slot != nullptr && reg.domain == &domain &&
          reg.domain_id == domain.id()) {
        return &reg;
      }
      if (reg.slot == nullptr) {
        if (empty == nullptr) empty = &reg;
      } else if (reg.depth == 0 && evictable == nullptr) {
        evictable = &reg;
      }
    }
    Registration* target = empty;
    if (target == nullptr && evictable != nullptr) {
      release(*evictable);  // make room: that domain can re-register later
      target = evictable;
    }
    if (target == nullptr) return nullptr;  // all entries mid-guard
    Domain::Slot* slot = domain.claim_slot();
    if (slot == nullptr) return nullptr;  // domain at max_readers
    target->domain_id = domain.id();
    target->domain = &domain;
    target->slot = slot;
    target->depth = 0;
    return target;
  }
};

namespace {
thread_local ThreadCache tls_cache;
}  // namespace

// ---------------------------------------------------------------------------
// Domain.

Domain::Domain(std::size_t max_readers)
    : id_(next_domain_id()), slots_(max_readers == 0 ? 1 : max_readers) {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  r.live.insert(id_);
}

Domain::~Domain() {
  Registry& r = registry();
  const MutexLock lock(r.mu);
  r.live.erase(id_);
}

Domain::Slot* Domain::claim_slot() noexcept {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    bool expected = false;
    if (slots_[i].claimed.compare_exchange_strong(expected, true,
                                                  std::memory_order_acq_rel)) {
      // Raise the scan bound for try_advance.
      std::size_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 && !high_water_.compare_exchange_weak(
                               hw, i + 1, std::memory_order_release,
                               std::memory_order_relaxed)) {
      }
      return &slots_[i];
    }
  }
  return nullptr;
}

void* Domain::enter() {
  ThreadCache::Registration* reg = tls_cache.find_or_register(*this);
  if (reg == nullptr) return nullptr;
  if (reg->depth++ == 0) {
    // Pin: publish the observed epoch, then confirm it is still current so a
    // pin of a long-stale epoch cannot wedge advancement behind this reader.
    Slot* slot = reg->slot;
    std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    for (;;) {
      slot->epoch.store(e, std::memory_order_seq_cst);
      const std::uint64_t again = epoch_.load(std::memory_order_seq_cst);
      if (again == e) break;
      e = again;
    }
  }
  return reg;
}

void Domain::exit(void* registration) noexcept {
  auto* reg = static_cast<ThreadCache::Registration*>(registration);
  if (--reg->depth == 0) {
    reg->slot->epoch.store(0, std::memory_order_release);
  }
}

bool Domain::try_advance() noexcept {
  std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
  const std::size_t bound =
      std::min(high_water_.load(std::memory_order_acquire), slots_.size());
  for (std::size_t i = 0; i < bound; ++i) {
    const std::uint64_t pinned = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned != e) return false;  // reader still in e-1
  }
  return epoch_.compare_exchange_strong(e, e + 1, std::memory_order_seq_cst);
}

std::size_t Domain::active_readers() const noexcept {
  const std::size_t bound =
      std::min(high_water_.load(std::memory_order_acquire), slots_.size());
  std::size_t active = 0;
  for (std::size_t i = 0; i < bound; ++i) {
    if (slots_[i].epoch.load(std::memory_order_acquire) != 0) ++active;
  }
  return active;
}

Domain& global() {
  static Domain domain;
  return domain;
}

// ---------------------------------------------------------------------------
// Limbo.

std::size_t Limbo::flush() {
  if (entries_.empty()) return 0;
  // Two steps so a quiescent domain reclaims a just-retired object in one
  // call (retire epoch r frees at r+2); under active readers the first
  // blocked step makes both no-ops.
  domain_->try_advance();
  domain_->try_advance();
  const std::uint64_t cur = domain_->current();
  std::size_t freed = 0;
  while (!entries_.empty() && entries_.front().epoch + 2 <= cur) {
    const Retired r = entries_.front();
    entries_.pop_front();
    r.fn(r.ctx, r.obj, r.aux);
    ++freed;
  }
  return freed;
}

std::size_t Limbo::flush_all() {
  std::size_t freed = 0;
  while (!entries_.empty()) {
    const Retired r = entries_.front();
    entries_.pop_front();
    r.fn(r.ctx, r.obj, r.aux);
    ++freed;
  }
  return freed;
}

}  // namespace hykv::epoch
