// The six Set/Get stages the paper's characterisation methodology profiles
// (Section III-A). Servers and clients attribute elapsed time to these
// stages; bench/fig2 and bench/fig6 print the resulting breakdowns.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace hykv {

enum class Stage : std::uint8_t {
  kSlabAllocation = 0,  ///< Slab/memory management, incl. SSD flush on evict.
  kCacheCheckLoad,      ///< Lookup + (hybrid) SSD read of the item.
  kCacheUpdate,         ///< LRU promotion / freshness maintenance.
  kServerResponse,      ///< Response formatting + server-side send.
  kClientWait,          ///< Client-side blocking on request completion.
  kMissPenalty,         ///< Backend database access on a cache miss.
};
constexpr std::size_t kStageCount = 6;

constexpr std::string_view to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kSlabAllocation: return "SlabAllocation";
    case Stage::kCacheCheckLoad: return "CacheCheck+Load";
    case Stage::kCacheUpdate: return "CacheUpdate";
    case Stage::kServerResponse: return "ServerResponse";
    case Stage::kClientWait: return "ClientWait";
    case Stage::kMissPenalty: return "MissPenalty";
  }
  return "?";
}

/// Accumulated nanoseconds per stage. Mergeable; one instance per worker
/// thread, merged at report time (no hot-path synchronisation).
class StageBreakdown {
 public:
  void add(Stage stage, std::chrono::nanoseconds d) noexcept {
    totals_[static_cast<std::size_t>(stage)] +=
        static_cast<std::uint64_t>(d.count() < 0 ? 0 : d.count());
  }
  void add_ops(std::uint64_t n = 1) noexcept { ops_ += n; }

  void merge(const StageBreakdown& other) noexcept {
    for (std::size_t i = 0; i < kStageCount; ++i) totals_[i] += other.totals_[i];
    ops_ += other.ops_;
  }

  [[nodiscard]] std::uint64_t total_ns(Stage stage) const noexcept {
    return totals_[static_cast<std::size_t>(stage)];
  }
  /// Average stage time per operation, in microseconds.
  [[nodiscard]] double per_op_us(Stage stage) const noexcept {
    return ops_ == 0 ? 0.0
                     : static_cast<double>(total_ns(stage)) /
                           static_cast<double>(ops_) / 1e3;
  }
  [[nodiscard]] std::uint64_t ops() const noexcept { return ops_; }

  void reset() noexcept {
    totals_.fill(0);
    ops_ = 0;
  }

 private:
  std::array<std::uint64_t, kStageCount> totals_{};
  std::uint64_t ops_ = 0;
};

/// RAII stage timer: attributes the scope's wall time to a stage.
class StageTimer {
 public:
  StageTimer(StageBreakdown& sink, Stage stage) noexcept
      : sink_(sink), stage_(stage), start_(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    sink_.add(stage_, std::chrono::steady_clock::now() - start_);
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  StageBreakdown& sink_;
  Stage stage_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hykv
