// Runtime latency observability (DESIGN.md §10).
//
// Two pieces, both fixed-memory and lock-free on the hot path:
//
//  * LatencyRecorder -- per-thread cache-line-aligned slots of atomic
//    log-linear histograms (same layout as LatencyHistogram, same slot
//    pattern as the server's per-worker counters). Writers touch only their
//    own slot with relaxed atomics; readers merge all slots on demand into a
//    plain LatencyHistogram. Recording costs a handful of relaxed RMWs --
//    cheap enough to leave on by default (bench/ablation_obs_overhead.cpp).
//
//  * OpTracer -- a sampled per-request stage-timeline capture. Every request
//    bumps one relaxed counter; every 2^shift-th request additionally gets a
//    Trace (op class, status, per-span offsets/durations) pushed into a
//    per-thread ring buffer behind a mutex. Sampling keeps the locked path
//    off all but 1-in-2^shift requests; shift 0 disables tracing entirely.
//
// Both are keyed by the process-wide thread_token(): a small dense id
// assigned to each thread on first use and folded modulo the slot count.
// With more threads than slots two threads may share a slot; the atomics
// (and the ring mutex) make that safe, merely less cache-friendly.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.hpp"
#include "common/mutex.hpp"
#include "common/sim_time.hpp"
#include "common/thread_annotations.hpp"

namespace hykv::metrics {

/// Op classes of the end-to-end latency histograms. Coarser than opcodes:
/// every mutating opcode (set/add/replace/append/prepend/incr/decr/cas) is a
/// kSet, mirroring how the ServerCounters fold opcodes into per-op counters
/// so `stats latency` counts balance against `stats` counts.
enum class Op : std::uint8_t { kSet = 0, kGet, kDelete, kTouch, kAdmin, kOther };
constexpr std::size_t kOpCount = 6;

[[nodiscard]] constexpr std::string_view to_string(Op op) noexcept {
  switch (op) {
    case Op::kSet: return "set";
    case Op::kGet: return "get";
    case Op::kDelete: return "delete";
    case Op::kTouch: return "touch";
    case Op::kAdmin: return "admin";
    case Op::kOther: return "other";
  }
  return "other";
}

/// Stages of a request's life that get their own span histogram. A request
/// contributes to a span's histogram only when it actually passes through
/// that stage (e.g. kAdmissionWait exists only on async servers,
/// kOptimisticRead and kLockedRead partition GETs by which read path served
/// them), so span counts do NOT sum to the op counts.
enum class Span : std::uint8_t {
  kFabricTransfer = 0,  ///< send posted -> delivered (wire + propagation)
  kAdmissionWait,       ///< async only: buffered-queue enqueue -> dequeue
  kStorePhase,          ///< opcode dispatch incl. the store call
  kOptimisticRead,      ///< GET served by the seqlock path (no shard lock)
  kLockedRead,          ///< GET that took the shard lock (incl. fallbacks)
  kSsdFlush,            ///< one flush_batch attempt (staging + SSD write)
  kResponse,            ///< response encode + send doorbell
};
constexpr std::size_t kSpanCount = 7;

[[nodiscard]] constexpr std::string_view to_string(Span span) noexcept {
  switch (span) {
    case Span::kFabricTransfer: return "fabric_transfer";
    case Span::kAdmissionWait: return "admission_wait";
    case Span::kStorePhase: return "store_phase";
    case Span::kOptimisticRead: return "optimistic_read";
    case Span::kLockedRead: return "locked_read";
    case Span::kSsdFlush: return "ssd_flush";
    case Span::kResponse: return "response";
  }
  return "other";
}

/// Small dense process-wide id for the calling thread (first use assigns the
/// next integer). Recorders fold it modulo their slot count.
[[nodiscard]] std::uint32_t thread_token() noexcept;

/// Nanosecond delta clamped at zero (recorders take unsigned ns).
[[nodiscard]] inline std::uint64_t delta_ns(sim::TimePoint from,
                                            sim::TimePoint to) noexcept {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
  return d < 0 ? 0 : static_cast<std::uint64_t>(d);
}

/// LatencyHistogram's bucket layout with every cell atomic. Safe for any
/// number of concurrent writers (slot sharing) and concurrent snapshots;
/// a snapshot taken mid-record may be off by in-flight samples, exact once
/// the writers quiesce.
class AtomicHistogram {
 public:
  void record(std::uint64_t ns) noexcept;
  /// Folds a relaxed snapshot of this histogram into `out`.
  void merge_into(LatencyHistogram& out) const noexcept;
  void reset() noexcept;

 private:
  // All-atomic by design (lock-free hot path, relaxed order; snapshots are
  // merely eventually exact) -- see the class comment.
  std::array<std::atomic<std::uint64_t>, LatencyHistogram::kBucketCount>
      buckets_ ATOMIC_PUBLISHED(relaxed histogram cells){};
  std::atomic<std::uint64_t> count_ ATOMIC_PUBLISHED(relaxed counter){0};
  std::atomic<std::uint64_t> sum_ ATOMIC_PUBLISHED(relaxed counter){0};
  std::atomic<std::uint64_t> min_ ATOMIC_PUBLISHED(CAS loop){UINT64_MAX};
  std::atomic<std::uint64_t> max_ ATOMIC_PUBLISHED(CAS loop){0};
};

/// Fixed-memory latency recorder: `slots` cache-line-aligned groups of
/// (kOpCount op + kSpanCount span) atomic histograms. Memory is allocated
/// once in the constructor and never grows (~210 KiB per slot); see
/// DESIGN.md §10 for the sizing math.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t slots = 16);

  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  void record_op(Op op, std::uint64_t ns) noexcept;
  void record_span(Span span, std::uint64_t ns) noexcept;

  /// Merged view across all slots (see AtomicHistogram::merge_into for the
  /// concurrent-snapshot caveat).
  [[nodiscard]] LatencyHistogram op_histogram(Op op) const;
  [[nodiscard]] LatencyHistogram span_histogram(Span span) const;

  void reset() noexcept;
  [[nodiscard]] std::size_t slot_count() const noexcept { return slots_.size(); }

 private:
  struct alignas(64) Slot {
    std::array<AtomicHistogram, kOpCount> ops;
    std::array<AtomicHistogram, kSpanCount> spans;
  };
  [[nodiscard]] Slot& local_slot() noexcept;

  std::vector<Slot> slots_;
};

/// One traced request: where its time went, stage by stage. Offsets are
/// relative to `start_ns` (the earliest timestamp known for the request --
/// the fabric send post when available, else server receipt).
struct TraceSpan {
  Span span = Span::kFabricTransfer;
  std::uint64_t offset_ns = 0;
  std::uint64_t duration_ns = 0;
};

struct Trace {
  static constexpr std::size_t kMaxSpans = 8;
  std::uint64_t seq = 0;       ///< global request sequence number
  Op op = Op::kOther;
  std::uint8_t status = 0;     ///< StatusCode of the response
  std::uint64_t start_ns = 0;  ///< steady-clock ns of the request's start
  std::uint64_t total_ns = 0;  ///< start -> response sent
  std::array<TraceSpan, kMaxSpans> spans{};
  std::uint32_t span_count = 0;

  /// Appends a span; silently drops past kMaxSpans (bounded by design).
  void add_span(Span span, std::uint64_t offset_ns,
                std::uint64_t duration_ns) noexcept {
    if (span_count >= kMaxSpans) return;
    spans[span_count++] = TraceSpan{span, offset_ns, duration_ns};
  }
};

/// Sampled op tracer: keeps the newest `ring_capacity` traces per slot.
/// sample_shift s samples every 2^s-th request; 0 turns the tracer off
/// (sample() always false, no memory beyond the empty ring vector).
class OpTracer {
 public:
  explicit OpTracer(unsigned sample_shift, std::size_t slots = 16,
                    std::size_t ring_capacity = 64);

  OpTracer(const OpTracer&) = delete;
  OpTracer& operator=(const OpTracer&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return shift_ != 0; }
  [[nodiscard]] unsigned sample_shift() const noexcept { return shift_; }

  /// Counts one request toward the sampling sequence. Returns true when this
  /// request should be traced; `seq` receives its global sequence number.
  [[nodiscard]] bool sample(std::uint64_t& seq) noexcept;

  /// Stores a finished trace in the calling thread's ring (overwrites the
  /// oldest entry once the ring is full).
  void publish(const Trace& trace);

  /// All retained traces, oldest first (sorted by seq).
  [[nodiscard]] std::vector<Trace> snapshot() const;

  /// `{"sample_shift":s,"traces":[...]}` -- the `stats trace` payload.
  [[nodiscard]] std::string to_json() const;

  void reset();

 private:
  struct alignas(64) Ring {
    mutable Mutex mu;
    std::vector<Trace> buf GUARDED_BY(mu);  ///< reserved to capacity up front
    std::size_t next GUARDED_BY(mu) = 0;    ///< write cursor once buf is full
  };

  unsigned shift_;      ///< Immutable after construction.
  std::uint64_t mask_;  ///< (1 << shift_) - 1; sampled when (seq & mask_) == 0
  std::size_t capacity_;
  std::atomic<std::uint64_t> seq_ ATOMIC_PUBLISHED(relaxed sampling seq){0};
  std::vector<Ring> rings_;
};

}  // namespace hykv::metrics
