// Seqlock-compatible field and byte access.
//
// The optimistic GET path reads item bytes that an in-place SET may be
// overwriting concurrently; the seqlock version bracket *detects* the tear
// and retries, but under the C++ memory model (and ThreadSanitizer) the
// racing accesses themselves must still be atomic or the program is UB
// before validation ever runs. These helpers make every racing access
// atomic via std::atomic_ref: word-wide where alignment allows, so the
// copy costs about the same as memcpy, and byte-wide at the edges.
//
// Ordering: this is the *fence-free* seqlock formulation (Boehm, "Can
// seqlocks get along with programming language memory models?"). Data
// stores are release and data loads are acquire, so the version bracket in
// store/item.hpp needs no standalone atomic_thread_fence -- which GCC
// rejects under -fsanitize=thread (-Wtsan) because TSan cannot model
// fences. Writer side: a release data store keeps the preceding odd
// version store ordered before it. Reader side: an acquire data load keeps
// the subsequent validating version load ordered after it. On x86 both are
// plain loads/stores; the seqlock loses nothing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace hykv {

/// Acquire-atomic load of a single (suitably aligned) field that a seqlock
/// writer may store concurrently; the caller's later version re-check
/// cannot be reordered before it.
template <typename T>
[[nodiscard]] inline T seq_load(const T& field) noexcept {
  return std::atomic_ref<T>(const_cast<T&>(field))
      .load(std::memory_order_acquire);
}

/// Release-atomic store counterpart; the caller brackets it with the item's
/// version counter (seq_write_begin/end), and release keeps the odd
/// version store ordered before the data.
template <typename T>
inline void seq_store(T& field, T value) noexcept {
  std::atomic_ref<T>(field).store(value, std::memory_order_release);
}

/// Copies `n` bytes into a buffer that seqlock readers may be scanning:
/// every store is a release atomic, 8 bytes at a time where `dst` is
/// aligned (`src` may be arbitrary -- it is staged through a register).
inline void atomic_store_bytes(char* dst, const char* src,
                               std::size_t n) noexcept {
  std::size_t i = 0;
  while (i < n && (reinterpret_cast<std::uintptr_t>(dst + i) & 7u) != 0) {
    std::atomic_ref<char>(dst[i]).store(src[i], std::memory_order_release);
    ++i;
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, src + i, 8);
    std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(dst + i))
        .store(word, std::memory_order_release);
  }
  for (; i < n; ++i) {
    std::atomic_ref<char>(dst[i]).store(src[i], std::memory_order_release);
  }
}

/// Mirror read: copies `n` bytes out of a buffer a seqlock writer may be
/// overwriting. The result may be torn -- the caller MUST validate the
/// version bracket before trusting it.
inline void atomic_load_bytes(char* dst, const char* src,
                              std::size_t n) noexcept {
  std::size_t i = 0;
  while (i < n && (reinterpret_cast<std::uintptr_t>(src + i) & 7u) != 0) {
    dst[i] = std::atomic_ref<char>(const_cast<char&>(src[i]))
                 .load(std::memory_order_acquire);
    ++i;
  }
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t word =
        std::atomic_ref<std::uint64_t>(
            *reinterpret_cast<std::uint64_t*>(const_cast<char*>(src + i)))
            .load(std::memory_order_acquire);
    std::memcpy(dst + i, &word, 8);
  }
  for (; i < n; ++i) {
    dst[i] = std::atomic_ref<char>(const_cast<char&>(src[i]))
                 .load(std::memory_order_acquire);
  }
}

}  // namespace hykv
