#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string_view>
#include <cstdio>
#include <thread>

#include "common/mutex.hpp"

namespace hykv {
namespace {

std::atomic<LogLevel> g_level ATOMIC_PUBLISHED(relaxed level gate){
    LogLevel::kWarn};
Mutex g_log_mu;  ///< Serialises stderr lines only; guards no program state.

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

void init_log_level_from_env() noexcept {
  const char* env = std::getenv("HYKV_LOG");
  if (env == nullptr) return;
  const std::string_view v(env);
  if (v == "debug") set_log_level(LogLevel::kDebug);
  else if (v == "info") set_log_level(LogLevel::kInfo);
  else if (v == "warn") set_log_level(LogLevel::kWarn);
  else if (v == "error") set_log_level(LogLevel::kError);
  else if (v == "off") set_log_level(LogLevel::kOff);
}
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  const auto now = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);
  const MutexLock lock(g_log_mu);
  std::fprintf(stderr, "[%12lld.%06llds %s t=%zx] %s\n",
               static_cast<long long>(now / 1000000),
               static_cast<long long>(now % 1000000), level_name(level),
               std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xFFFF,
               body);
}

}  // namespace hykv
