// Thread-safe queues used by the simulated fabric and the server/client
// runtimes. Mutex+condvar based: on a box with few cores, blocking waits are
// strictly better than lock-free spinning (see sim_time.hpp rationale), and
// none of these queues is the modelled bottleneck -- the modelled network
// and device times dominate by orders of magnitude.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace hykv {

/// Unbounded-by-default MPMC queue with optional capacity bound and
/// cooperative shutdown. pop() blocks until an element arrives or the queue
/// is closed; push() to a closed queue is a no-op returning false.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Blocks while the queue is full (bounded mode). Returns false iff closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; fails when full or closed.
  bool try_push(T value) {
    {
      const std::scoped_lock lock(mu_);
      if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed *and*
  /// drained. Returns nullopt only on closed-and-empty.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Times out with nullopt; may also return nullopt on closed-and-empty.
  std::optional<T> pop_for(std::chrono::nanoseconds timeout) {
    std::unique_lock lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  std::optional<T> try_pop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then return null.
  void close() {
    {
      const std::scoped_lock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace hykv
