// Thread-safe queues used by the simulated fabric and the server/client
// runtimes. Mutex+condvar based: on a box with few cores, blocking waits are
// strictly better than lock-free spinning (see sim_time.hpp rationale), and
// none of these queues is the modelled bottleneck -- the modelled network
// and device times dominate by orders of magnitude.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace hykv {

/// Unbounded-by-default MPMC queue with optional capacity bound and
/// cooperative shutdown. pop() blocks until an element arrives or the queue
/// is closed; push() to a closed queue is a no-op returning false.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Blocks while the queue is full (bounded mode). Returns false iff closed.
  bool push(T value) EXCLUDES(mu_) {
    {
      const MutexLock lock(mu_);
      not_full_.wait(mu_, [&]() REQUIRES(mu_) {
        return closed_ || capacity_ == 0 || items_.size() < capacity_;
      });
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; fails when full or closed.
  bool try_push(T value) EXCLUDES(mu_) {
    {
      const MutexLock lock(mu_);
      if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed *and*
  /// drained. Returns nullopt only on closed-and-empty.
  std::optional<T> pop() EXCLUDES(mu_) {
    std::optional<T> value;
    {
      const MutexLock lock(mu_);
      not_empty_.wait(mu_,
                      [&]() REQUIRES(mu_) { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Times out with nullopt; may also return nullopt on closed-and-empty.
  std::optional<T> pop_for(std::chrono::nanoseconds timeout) EXCLUDES(mu_) {
    std::optional<T> value;
    {
      const MutexLock lock(mu_);
      if (!not_empty_.wait_for(mu_, timeout, [&]() REQUIRES(mu_) {
            return closed_ || !items_.empty();
          })) {
        return std::nullopt;
      }
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  std::optional<T> try_pop() EXCLUDES(mu_) {
    std::optional<T> value;
    {
      const MutexLock lock(mu_);
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then return null.
  void close() EXCLUDES(mu_) {
    {
      const MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mu_);
  std::size_t capacity_;  ///< Immutable after construction.
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace hykv
