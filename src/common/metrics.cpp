#include "common/metrics.hpp"

#include <algorithm>

namespace hykv::metrics {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

std::uint32_t thread_token() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t token = next.fetch_add(1, kRelaxed);
  return token;
}

// ---------------------------------------------------------------------------
// AtomicHistogram

void AtomicHistogram::record(std::uint64_t ns) noexcept {
  const std::size_t index =
      std::min(LatencyHistogram::bucket_index(ns), buckets_.size() - 1);
  buckets_[index].fetch_add(1, kRelaxed);
  count_.fetch_add(1, kRelaxed);
  sum_.fetch_add(ns, kRelaxed);
  // min/max via CAS loops: slots may be shared by more threads than slots.
  std::uint64_t cur = min_.load(kRelaxed);
  while (ns < cur && !min_.compare_exchange_weak(cur, ns, kRelaxed)) {
  }
  cur = max_.load(kRelaxed);
  while (ns > cur && !max_.compare_exchange_weak(cur, ns, kRelaxed)) {
  }
}

void AtomicHistogram::merge_into(LatencyHistogram& out) const noexcept {
  const std::uint64_t count = count_.load(kRelaxed);
  if (count == 0) return;
  std::array<std::uint64_t, LatencyHistogram::kBucketCount> snapshot;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    snapshot[i] = buckets_[i].load(kRelaxed);
  }
  out.merge_counts(snapshot, count, sum_.load(kRelaxed), min_.load(kRelaxed),
                   max_.load(kRelaxed));
}

void AtomicHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, kRelaxed);
  count_.store(0, kRelaxed);
  sum_.store(0, kRelaxed);
  min_.store(UINT64_MAX, kRelaxed);
  max_.store(0, kRelaxed);
}

// ---------------------------------------------------------------------------
// LatencyRecorder

LatencyRecorder::LatencyRecorder(std::size_t slots)
    : slots_(std::max<std::size_t>(1, slots)) {}

LatencyRecorder::Slot& LatencyRecorder::local_slot() noexcept {
  return slots_[thread_token() % slots_.size()];
}

void LatencyRecorder::record_op(Op op, std::uint64_t ns) noexcept {
  local_slot().ops[static_cast<std::size_t>(op)].record(ns);
}

void LatencyRecorder::record_span(Span span, std::uint64_t ns) noexcept {
  local_slot().spans[static_cast<std::size_t>(span)].record(ns);
}

LatencyHistogram LatencyRecorder::op_histogram(Op op) const {
  LatencyHistogram out;
  for (const Slot& slot : slots_) {
    slot.ops[static_cast<std::size_t>(op)].merge_into(out);
  }
  return out;
}

LatencyHistogram LatencyRecorder::span_histogram(Span span) const {
  LatencyHistogram out;
  for (const Slot& slot : slots_) {
    slot.spans[static_cast<std::size_t>(span)].merge_into(out);
  }
  return out;
}

void LatencyRecorder::reset() noexcept {
  for (Slot& slot : slots_) {
    for (auto& h : slot.ops) h.reset();
    for (auto& h : slot.spans) h.reset();
  }
}

// ---------------------------------------------------------------------------
// OpTracer

OpTracer::OpTracer(unsigned sample_shift, std::size_t slots,
                   std::size_t ring_capacity)
    : shift_(std::min(sample_shift, 63u)),
      mask_(shift_ == 0 ? 0 : (std::uint64_t{1} << shift_) - 1),
      capacity_(std::max<std::size_t>(1, ring_capacity)),
      rings_(shift_ == 0 ? 0 : std::max<std::size_t>(1, slots)) {
  for (Ring& ring : rings_) ring.buf.reserve(capacity_);
}

bool OpTracer::sample(std::uint64_t& seq) noexcept {
  if (shift_ == 0) return false;
  seq = seq_.fetch_add(1, kRelaxed);
  return (seq & mask_) == 0;
}

void OpTracer::publish(const Trace& trace) {
  if (rings_.empty()) return;
  Ring& ring = rings_[thread_token() % rings_.size()];
  const MutexLock lock(ring.mu);
  if (ring.buf.size() < capacity_) {
    ring.buf.push_back(trace);
  } else {
    ring.buf[ring.next] = trace;  // wraparound: overwrite the oldest
    ring.next = (ring.next + 1) % capacity_;
  }
}

std::vector<Trace> OpTracer::snapshot() const {
  std::vector<Trace> out;
  for (const Ring& ring : rings_) {
    const MutexLock lock(ring.mu);
    out.insert(out.end(), ring.buf.begin(), ring.buf.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Trace& a, const Trace& b) { return a.seq < b.seq; });
  return out;
}

std::string OpTracer::to_json() const {
  const std::vector<Trace> traces = snapshot();
  std::string json = "{\"sample_shift\":" + std::to_string(shift_) +
                     ",\"traces\":[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const Trace& t = traces[i];
    if (i != 0) json += ",";
    json += "{\"seq\":" + std::to_string(t.seq) + ",\"op\":\"" +
            std::string(to_string(t.op)) + "\",\"status\":" +
            std::to_string(t.status) + ",\"start_ns\":" +
            std::to_string(t.start_ns) + ",\"total_ns\":" +
            std::to_string(t.total_ns) + ",\"spans\":[";
    for (std::uint32_t s = 0; s < t.span_count; ++s) {
      const TraceSpan& span = t.spans[s];
      if (s != 0) json += ",";
      json += "{\"span\":\"" + std::string(to_string(span.span)) +
              "\",\"offset_ns\":" + std::to_string(span.offset_ns) +
              ",\"duration_ns\":" + std::to_string(span.duration_ns) + "}";
    }
    json += "]}";
  }
  json += "]}\n";
  return json;
}

void OpTracer::reset() {
  for (Ring& ring : rings_) {
    const MutexLock lock(ring.mu);
    ring.buf.clear();
    ring.next = 0;
  }
  seq_.store(0, kRelaxed);
}

}  // namespace hykv::metrics
