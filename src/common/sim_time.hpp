// Modelled-time realisation.
//
// hykv simulates hardware that this machine does not have (InfiniBand HCAs,
// SATA/NVMe SSDs). Every modelled cost is computed in nanoseconds from a
// profile struct and *realised on the real clock* so that threads overlap the
// way they would against real devices: a client thread that issued a
// non-blocking request genuinely runs while the "device" time elapses.
//
// Realisation strategy (this box may be single-core, so burning the CPU in a
// spin loop would serialise everything and destroy overlap):
//   - durations above kSpinTail are slept via clock_nanosleep on an absolute
//     deadline (yields the core), with the final kSpinTail spun for accuracy;
//   - short durations are spun outright;
//   - timer slack is reduced to 1us at process start (init_precise_timing)
//     so sleeps wake within a few microseconds of the deadline.
//
// A global time scale multiplies every modelled duration. Tests run the exact
// same code paths at a small scale (fast), benches at scale 1. Ratios between
// modelled costs -- which is what the paper's figures are about -- are
// preserved at any scale.
#pragma once

#include <chrono>
#include <cstdint>

namespace hykv::sim {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Nanos = std::chrono::nanoseconds;

constexpr Nanos us(std::int64_t v) { return Nanos{v * 1000}; }
constexpr Nanos ms(std::int64_t v) { return Nanos{v * 1000000}; }

/// Multiplier applied to every modelled duration before realisation.
/// 1.0 = real modelled time; tests typically use 0.02-0.1.
double time_scale() noexcept;
void set_time_scale(double scale) noexcept;

/// RAII guard that sets the time scale for a test body and restores it.
class ScopedTimeScale {
 public:
  explicit ScopedTimeScale(double scale) noexcept;
  ~ScopedTimeScale();
  ScopedTimeScale(const ScopedTimeScale&) = delete;
  ScopedTimeScale& operator=(const ScopedTimeScale&) = delete;

 private:
  double previous_;
};

/// Applies the global scale to a modelled duration.
Nanos scaled(Nanos modelled) noexcept;

[[nodiscard]] inline TimePoint now() noexcept { return Clock::now(); }

/// Blocks the calling thread for `modelled` (after scaling), sleeping where
/// possible so other threads can use the core. This is the single primitive
/// every simulated device cost goes through.
void advance(Nanos modelled);

/// Blocks until the (already real-time) deadline with sleep+spin accuracy.
/// Used by transports that stamp messages with a delivery time.
void wait_until(TimePoint deadline);

/// Like advance(), but never spins: sleeps the whole (scaled) duration even
/// when short. Use for coarse time passage (synthetic application compute,
/// poll intervals) where sub-20us precision does not matter but burning the
/// core would starve the very threads being measured.
void advance_coarse(Nanos modelled);

/// Lowers the thread/process timer slack so microsecond sleeps are accurate.
/// Idempotent; called from main() of benches/examples and from test setup.
void init_precise_timing() noexcept;

/// One-shot measurement of sleep overshoot on this machine (diagnostic).
Nanos measure_sleep_overshoot();

}  // namespace hykv::sim
