// Epoch-based reclamation (EBR) for the lock-free read paths.
//
// The store's optimistic GETs walk hash buckets and copy item bytes without
// taking the shard lock, so writers can never free a hash node or recycle a
// slab chunk the moment they unlink it -- a preempted reader may still hold
// the pointer. Classic three-epoch EBR (Fraser '04; the same discipline
// crossbeam-epoch and the Linux kernel's RCU use) solves this:
//
//   - Readers *pin* the global epoch for the duration of a short critical
//     section (Domain::Guard). Pinning is two uncontended atomic stores on a
//     cache-line-private slot -- no locks, no RMW on shared lines.
//   - Writers unlink objects under their own lock, then *retire* them into a
//     Limbo list stamped with the current epoch instead of freeing.
//   - The epoch advances e -> e+1 only when every active reader has observed
//     e. An object retired at epoch r is unreachable for any reader pinned
//     after r, so once the epoch reaches r+2 no reader that could still hold
//     the pointer remains, and the object can be freed.
//
// Contracts (all cheap, all held by the store tier):
//   - A Domain must outlive every Guard into it and every thread that ever
//     entered it must either exit or be joined before the Domain dies
//     (thread-exit slot release checks a liveness registry, so stale cached
//     registrations for a dead Domain are skipped, not dereferenced).
//   - Limbo is not thread-safe; its owner serialises retire()/flush() (the
//     slab manager calls both under its shard mutex).
//   - Critical sections must not block: a pinned reader stalls reclamation
//     for every writer of the domain.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/thread_annotations.hpp"

namespace hykv::epoch {

class Domain {
 public:
  /// Default cap on concurrently registered reader threads. Entering beyond
  /// the cap is not an error: Guard::engaged() reports false and the caller
  /// takes its locked fallback path.
  static constexpr std::size_t kDefaultMaxReaders = 64;

  explicit Domain(std::size_t max_readers = kDefaultMaxReaders);
  ~Domain();

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// RAII read-side critical section. Construction pins the current epoch
  /// (lock-free); destruction unpins. Nestable within a thread.
  class Guard {
   public:
    explicit Guard(Domain& domain) : domain_(domain), reg_(domain.enter()) {}
    ~Guard() {
      if (reg_ != nullptr) domain_.exit(reg_);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    /// False when no reader slot was available (domain at max_readers):
    /// the caller is NOT protected and must use its locked path.
    [[nodiscard]] bool engaged() const noexcept { return reg_ != nullptr; }

   private:
    Domain& domain_;
    void* reg_;
  };

  [[nodiscard]] std::uint64_t current() const noexcept {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Advances the epoch one step iff every active reader has observed the
  /// current one. Returns false (harmless) when a reader lags.
  bool try_advance() noexcept;

  /// Active pinned readers right now (diagnostics/tests).
  [[nodiscard]] std::size_t active_readers() const noexcept;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  // Lock-free by design: reader pin/unpin and epoch advancement are the
  // whole point of EBR -- no capability guards any of this state.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch
        ATOMIC_PUBLISHED(seq_cst pin protocol, see enter()){0};  ///< 0 = quiescent.
    std::atomic<bool> claimed ATOMIC_PUBLISHED(acq_rel CAS claim){false};
  };

  friend struct ThreadCache;

  /// Pins the epoch; returns an opaque per-thread registration, or nullptr
  /// when every slot is taken. O(1) after a thread's first entry.
  void* enter();
  void exit(void* registration) noexcept;
  Slot* claim_slot() noexcept;

  std::uint64_t id_;
  std::atomic<std::uint64_t> epoch_
      ATOMIC_PUBLISHED(seq_cst advance protocol, see try_advance()){1};
  std::vector<Slot> slots_;  ///< Sized once in the constructor; cells atomic.
  std::atomic<std::size_t> high_water_
      ATOMIC_PUBLISHED(release CAS scan bound){0};  ///< Slots ever claimed.
};

/// The process-wide domain the storage tier uses. One domain (not one per
/// shard) so a reader thread pins exactly once however many shards it reads.
Domain& global();

/// Deferred-destruction list: objects retired at epoch r are destroyed by
/// flush() once the domain's epoch reaches r+2. NOT thread-safe -- the owner
/// serialises access (the slab manager holds its shard mutex).
class Limbo {
 public:
  /// Type-erased deleter: fn(ctx, obj, aux). No std::function -- retiring is
  /// on the write hot path and must not allocate beyond the deque slot.
  using DeleteFn = void (*)(void* ctx, void* obj, std::uint64_t aux);

  explicit Limbo(Domain& domain) : domain_(&domain) {}
  ~Limbo() { flush_all(); }

  Limbo(const Limbo&) = delete;
  Limbo& operator=(const Limbo&) = delete;

  void retire(void* obj, std::uint64_t aux, DeleteFn fn, void* ctx) {
    entries_.push_back(Retired{domain_->current(), obj, aux, fn, ctx});
  }

  template <typename T>
  void retire_delete(T* obj) {
    retire(
        obj, 0,
        [](void*, void* o, std::uint64_t) { delete static_cast<T*>(o); },
        nullptr);
  }

  /// Tries to advance the epoch (twice, so a quiescent domain reclaims in
  /// one call) and destroys every entry whose epoch is 2 behind. Returns the
  /// number destroyed.
  std::size_t flush();

  /// Destroys everything unconditionally. Only legal when the owner knows no
  /// reader can still hold references (destructor / quiesced teardown).
  std::size_t flush_all();

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Retired {
    std::uint64_t epoch;
    void* obj;
    std::uint64_t aux;
    DeleteFn fn;
    void* ctx;
  };

  Domain* domain_;
  std::deque<Retired> entries_;  ///< Epoch-ordered (stamps are monotonic).
};

}  // namespace hykv::epoch
