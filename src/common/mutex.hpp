// Annotated mutex / scoped-lock / condvar wrappers for clang thread-safety
// analysis (see common/thread_annotations.hpp and docs/STATIC_ANALYSIS.md).
//
// Why wrappers instead of annotating std::mutex: the analysis tracks
// capability state through direct lock()/unlock() calls on an annotated type
// and through SCOPED_CAPABILITY RAII objects, but it cannot see through
// std::unique_lock or a lock object passed by reference. The repo's
// lock-juggling helpers (hybrid_manager flush, page_cache flusher) therefore
// take REQUIRES(mu_) and call mu_.unlock()/mu_.lock() directly around the
// blocking section -- the analysis verifies the lock is re-held on return.
//
// Zero overhead: every method is an inline forward to the std primitive; the
// attributes vanish under GCC.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/thread_annotations.hpp"

namespace hykv {

class CondVar;

/// std::mutex with capability annotations. Prefer MutexLock for scoped
/// acquisition; call lock()/unlock() directly only inside REQUIRES-annotated
/// helpers that juggle the lock around a blocking section.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped acquisition of a Mutex (the annotated std::scoped_lock).
/// Relockable: unlock()/lock() bracket a blocking section the lock must not
/// cover (modelled SSD writes, device occupancy); the destructor releases
/// only if currently held. The analysis tracks the held state through both.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the capability; pair with lock() before any
  /// further guarded access.
  void unlock() RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  void lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable over Mutex. Every wait takes the Mutex explicitly and
/// REQUIRES it held, so waiting code keeps a single capability story: the
/// lock is held before, during (conceptually), and after the wait, and the
/// analysis checks the predicate body under that capability.
///
/// Implementation: std::condition_variable needs a std::unique_lock, so each
/// wait adopts the already-held native mutex into a temporary unique_lock and
/// releases (disowns) it afterwards -- ownership never actually changes hands.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  // The predicate-taking waits are NO_THREAD_SAFETY_ANALYSIS: predicates are
  // lambdas annotated REQUIRES(<caller's mutex>), and the analysis cannot
  // unify that capability expression with this function's `mu` parameter, so
  // invoking pred() here would be a false positive. The bodies are trivial
  // adopt/wait/release forwards; REQUIRES(mu) still enforces the contract at
  // every call site, and the predicate body itself is still analysed against
  // the caller's capability.

  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted, std::move(pred));
    adopted.release();
  }

  /// Returns the predicate value after the wait (false = timed out).
  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
                Predicate pred) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(adopted, timeout, std::move(pred));
    adopted.release();
    return satisfied;
  }

  /// Returns the predicate value after the wait (false = deadline passed).
  template <typename Clock, typename Duration, typename Predicate>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Predicate pred) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_until(adopted, deadline, std::move(pred));
    adopted.release();
    return satisfied;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hykv
