#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace hykv {

std::size_t LatencyHistogram::bucket_index(std::uint64_t ns) noexcept {
  if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
  const int msb = 63 - std::countl_zero(ns);
  const int major = msb - kSubBucketBits + 1;
  const auto sub = static_cast<std::size_t>(ns >> (msb - kSubBucketBits)) - kSubBuckets;
  return static_cast<std::size_t>(major) * kSubBuckets + kSubBuckets + sub;
}

std::uint64_t LatencyHistogram::bucket_upper_bound(std::size_t index) noexcept {
  if (index < kSubBuckets) return index;
  // Inverse of bucket_index: a bucket with major index m covers values with
  // msb == m + kSubBucketBits - 1, i.e. [2^(m+4), 2^(m+5)) for 5 sub-bucket
  // bits, split into kSubBuckets linear steps of 2^(m-1).
  const std::size_t major = (index - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
  const std::uint64_t base = (std::uint64_t{kSubBuckets} << major) / 2;
  const std::uint64_t step = std::max<std::uint64_t>(1, (std::uint64_t{1} << major) / 2);
  return base + (sub + 1) * step - 1;
}

void LatencyHistogram::record_ns(std::uint64_t ns) noexcept {
  const std::size_t index = std::min(bucket_index(ns), buckets_.size() - 1);
  ++buckets_[index];
  ++count_;
  sum_ += ns;
  min_ = std::min(min_, ns);
  max_ = std::max(max_, ns);
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::merge_counts(std::span<const std::uint64_t> buckets,
                                    std::uint64_t count, std::uint64_t sum,
                                    std::uint64_t min,
                                    std::uint64_t max) noexcept {
  const std::size_t n = std::min(buckets.size(), buckets_.size());
  for (std::size_t i = 0; i < n; ++i) buckets_[i] += buckets[i];
  count_ += count;
  sum_ += sum;
  if (count > 0) {
    min_ = std::min(min_, min);
    max_ = std::max(max_, max);
  }
}

void LatencyHistogram::reset() noexcept {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

std::uint64_t LatencyHistogram::percentile_ns(double p) const noexcept {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(count_) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(bucket_upper_bound(i), max_);
    }
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "mean=%.1fus p50=%.1fus p99=%.1fus n=%llu",
                mean_us(), p50_us(), p99_us(),
                static_cast<unsigned long long>(count_));
  return buf;
}

}  // namespace hykv
