// Lightweight status / result types used across all hykv subsystems.
//
// hykv is exception-free on its hot paths: operations that can fail in
// expected ways (key not found, out of space, timed out) report a StatusCode;
// programming errors use assertions. Result<T> couples a StatusCode with a
// value for call sites that produce data.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>

namespace hykv {

/// Outcome of a key-value or transport operation. Values deliberately mirror
/// the memcached protocol's response taxonomy so the libmemcached-compatible
/// shim can map them 1:1.
enum class StatusCode : std::uint8_t {
  kOk = 0,          ///< Operation completed successfully.
  kNotFound,        ///< Key does not exist anywhere in the cache tier.
  kNotStored,       ///< Store failed (e.g. no memory and eviction disabled).
  kBufferTooSmall,  ///< Caller-provided buffer cannot hold the value.
  kOutOfMemory,     ///< Allocation failed and nothing could be evicted.
  kServerError,     ///< Server-side failure unrelated to the key.
  kNetworkError,    ///< Transport failure (endpoint closed, QP torn down).
  kTimedOut,        ///< Completion did not arrive within the deadline.
  kInvalidArgument, ///< Malformed request (empty key, oversized item, ...).
  kInProgress,      ///< Non-blocking operation has not completed yet.
  kShutdown,        ///< Component is shutting down; request not serviced.
  kServerDown,      ///< Target server is ejected from the ring (failover).
  kIoError,         ///< Storage device I/O failure (transient or outage).
  kBusy,            ///< Overloaded: request shed before execution (no side
                    ///< effects server-side, so even non-idempotent ops are
                    ///< safe to retry). A busy server is alive, not dead.
};

/// The canonical status-code-to-string mapping: the single place a
/// StatusCode gains a human-readable name. Everything that prints a status
/// (logging, stats rendering, test diagnostics) goes through this function
/// (directly or via the to_string alias below), so a new enumerator is named
/// exactly once.
constexpr std::string_view status_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kNotStored: return "NOT_STORED";
    case StatusCode::kBufferTooSmall: return "BUFFER_TOO_SMALL";
    case StatusCode::kOutOfMemory: return "OUT_OF_MEMORY";
    case StatusCode::kServerError: return "SERVER_ERROR";
    case StatusCode::kNetworkError: return "NETWORK_ERROR";
    case StatusCode::kTimedOut: return "TIMED_OUT";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kInProgress: return "IN_PROGRESS";
    case StatusCode::kShutdown: return "SHUTDOWN";
    case StatusCode::kServerDown: return "SERVER_DOWN";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kBusy: return "BUSY";
  }
  return "UNKNOWN";
}

/// ADL-friendly alias for status_name (kept so `<< to_string(code)` call
/// sites and generic code keep working; new code should prefer status_name).
constexpr std::string_view to_string(StatusCode code) noexcept {
  return status_name(code);
}

constexpr bool ok(StatusCode code) noexcept { return code == StatusCode::kOk; }

/// Value-or-status result. Accessing value() on a failed result asserts.
template <typename T>
class Result {
 public:
  Result(T value) : code_(StatusCode::kOk), value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(StatusCode code) : code_(code) {  // NOLINT(google-explicit-constructor)
    assert(code != StatusCode::kOk && "use the value constructor for kOk");
  }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode status() const noexcept { return code_; }

  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when the result is an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  StatusCode code_;
  std::optional<T> value_;
};

}  // namespace hykv
