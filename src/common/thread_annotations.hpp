// Clang thread-safety-analysis attribute macros.
//
// These make the repo's lock discipline machine-checkable: fields carry
// GUARDED_BY(mu), methods that assume a held lock carry REQUIRES(mu), and a
// clang build with -Wthread-safety -Werror=thread-safety (the CI `lint` job,
// see docs/STATIC_ANALYSIS.md) rejects any access that violates the contract.
// Under GCC every macro expands to nothing, so the annotations are free for
// the default toolchain and only clang enforces them.
//
// The vocabulary follows the public Clang TSA reference
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); use it through the
// hykv::Mutex / MutexLock / CondVar wrappers in common/mutex.hpp rather than
// annotating std::mutex directly -- the analysis cannot see through
// std::unique_lock juggling, but it does track direct lock()/unlock() calls
// on an annotated capability.
//
// State that is deliberately NOT lock-guarded (seqlock words, atomic bucket
// heads, epoch slots, relaxed counters) is marked ATOMIC_PUBLISHED(...) so
// the annotation sweep doubles as documentation of which fields are
// lock-guarded vs. atomic-published. See the lock-discipline map in
// docs/STATIC_ANALYSIS.md.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HYKV_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef HYKV_THREAD_ANNOTATION_
#define HYKV_THREAD_ANNOTATION_(x)  // no-op: GCC and pre-TSA clang
#endif

/// Declares a class to be a capability (e.g. a mutex type). The string names
/// the capability kind in diagnostics ("mutex", "role", ...).
#define CAPABILITY(x) HYKV_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose constructor acquires and destructor releases
/// a capability (MutexLock).
#define SCOPED_CAPABILITY HYKV_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define GUARDED_BY(x) HYKV_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field: the pointee (not the pointer) is protected by `x`.
#define PT_GUARDED_BY(x) HYKV_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function acquires the listed capabilities (held on return, not on entry).
#define ACQUIRE(...) HYKV_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry, not on return).
#define RELEASE(...) HYKV_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Caller must hold the listed capabilities for the duration of the call.
/// This is the contract of every `*_locked` helper in the codebase.
#define REQUIRES(...) HYKV_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention for
/// functions that acquire them internally).
#define EXCLUDES(...) HYKV_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function attempts acquisition; the first argument is the return value
/// meaning success.
#define TRY_ACQUIRE(...) \
  HYKV_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the capability `x` (accessor pattern).
#define RETURN_CAPABILITY(x) HYKV_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define ASSERT_CAPABILITY(x) HYKV_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: function body is not analysed. Every use must carry a
/// comment explaining why the analysis cannot express the pattern.
#define NO_THREAD_SAFETY_ANALYSIS \
  HYKV_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Documentation-only marker (expands to nothing under every compiler) for
/// state that is intentionally outside any lock: published via atomics,
/// seqlock brackets, or single-owner discipline instead. The argument is
/// free-form prose naming the publication scheme, e.g.
///   std::atomic<char*> ram ATOMIC_PUBLISHED(release store, seqlock bracket);
/// The sweep rule is: every mutable shared field is either GUARDED_BY a
/// capability or ATOMIC_PUBLISHED -- nothing is implicitly "probably fine".
#define ATOMIC_PUBLISHED(...)
