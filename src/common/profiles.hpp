// Central registry of every modelled hardware parameter in hykv.
//
// All simulated costs -- interconnect, SSD, page cache, backend database --
// are derived from the structs below and realised via sim::advance(). Keeping
// them in one header makes the reproduction auditable: every bench prints the
// profile it ran with, and EXPERIMENTS.md cites these numbers when comparing
// shapes against the paper.
//
// Sources for the defaults:
//  - FDR InfiniBand (56 Gbps, Mellanox ConnectX-3): ~1.2us one-way small
//    message latency, ~6 GB/s effective large-message bandwidth.
//  - IPoIB on the same HCA: kernel TCP stack adds ~15us per side and caps
//    effective bandwidth near 1.8 GB/s (paper's Comet numbers class).
//  - SATA SSD (Comet local 320GB): ~100us access, ~0.5 GB/s.
//  - Intel P3700 NVMe: ~20us access, read ~2.8 GB/s / write ~1.9 GB/s.
//  - Backend database miss penalty: the paper assumes < 2 ms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/sim_time.hpp"

namespace hykv {

/// Interconnect model. A message of `size` bytes costs
///   base_latency + size / bandwidth + per_segment * ceil(size / segment).
struct FabricProfile {
  std::string name;
  sim::Nanos base_latency;        ///< One-way propagation + NIC processing.
  double bytes_per_us;            ///< Effective payload bandwidth.
  sim::Nanos per_segment;         ///< Kernel/stack cost per segment (IPoIB).
  std::size_t segment_bytes;      ///< Segmentation unit for per_segment.
  bool one_sided;                 ///< Supports RDMA read/write (verbs only).
  sim::Nanos doorbell;            ///< Cost of posting a work request.
  sim::Nanos registration_base;   ///< ibv_reg_mr fixed cost.
  sim::Nanos registration_per_mb; ///< ibv_reg_mr per-MB pinning cost.
  sim::Nanos registration_cached; ///< Registration-cache hit cost.

  /// Pure wire time of `size` payload bytes (excludes doorbell).
  [[nodiscard]] sim::Nanos transfer_time(std::size_t size) const noexcept {
    const auto segs = segment_bytes == 0
                          ? 0
                          : (size + segment_bytes - 1) / segment_bytes;
    const auto wire = static_cast<std::int64_t>(
        static_cast<double>(size) / bytes_per_us * 1000.0);
    return base_latency + sim::Nanos{wire} +
           per_segment * static_cast<std::int64_t>(segs);
  }

  [[nodiscard]] sim::Nanos registration_time(std::size_t size) const noexcept {
    return registration_base +
           sim::Nanos{registration_per_mb.count() *
                      static_cast<std::int64_t>(size) / (1 << 20)};
  }

  /// 56 Gbps FDR InfiniBand with native verbs.
  static FabricProfile fdr_rdma();
  /// TCP/IP over the same FDR HCA ("IPoIB").
  static FabricProfile ipoib();
};

/// Block-device model. An access of `size` bytes at queue depth 1 costs
/// access_base + size / bandwidth. Queue pressure is modelled by the device
/// serialising channel-sharing accesses (see SsdDevice).
struct SsdProfile {
  std::string name;
  sim::Nanos read_base;
  sim::Nanos write_base;
  double read_bytes_per_us;
  double write_bytes_per_us;
  std::size_t capacity_bytes;
  unsigned channels;  ///< Parallel internal channels (NVMe >> SATA).
  /// Flush/FUA barrier paid by synchronous direct writes (O_DIRECT|O_SYNC):
  /// forces the device to commit past its volatile write buffer. Large on
  /// SATA-era drives, small on NVMe. Asynchronous write-back does not pay it.
  sim::Nanos sync_barrier{0};

  [[nodiscard]] sim::Nanos read_time(std::size_t size) const noexcept {
    return read_base + sim::Nanos{static_cast<std::int64_t>(
                           static_cast<double>(size) / read_bytes_per_us * 1000.0)};
  }
  [[nodiscard]] sim::Nanos write_time(std::size_t size) const noexcept {
    return write_base + sim::Nanos{static_cast<std::int64_t>(
                            static_cast<double>(size) / write_bytes_per_us * 1000.0)};
  }

  static SsdProfile sata();
  static SsdProfile nvme();
};

/// Host memory-path model used by the page-cache and mmap I/O engines.
struct HostIoProfile {
  double memcpy_bytes_per_us = 8400.0;  ///< ~8.4 GB/s single-stream copy.
  sim::Nanos syscall_overhead = sim::Nanos{4000};   ///< write()/read() entry.
  sim::Nanos page_touch = sim::Nanos{350};          ///< mmap fault+TLB per 4K page.
  sim::Nanos mmap_setup = sim::Nanos{2000};         ///< amortised mmap/msync admin.
  std::size_t page_bytes = 4096;

  [[nodiscard]] sim::Nanos copy_time(std::size_t size) const noexcept {
    return sim::Nanos{static_cast<std::int64_t>(
        static_cast<double>(size) / memcpy_bytes_per_us * 1000.0)};
  }
  [[nodiscard]] std::size_t pages(std::size_t size) const noexcept {
    return (size + page_bytes - 1) / page_bytes;
  }
};

/// The backend store behind the caching tier (database / parallel FS). The
/// paper models it as a sub-2ms penalty per miss; we default to 1.8ms plus a
/// small size-dependent term.
struct BackendDbProfile {
  sim::Nanos access_penalty = sim::ms(1) + sim::us(800);
  double bytes_per_us = 1000.0;  ///< ~1 GB/s streaming from the backend.

  [[nodiscard]] sim::Nanos access_time(std::size_t size) const noexcept {
    return access_penalty + sim::Nanos{static_cast<std::int64_t>(
                                static_cast<double>(size) / bytes_per_us * 1000.0)};
  }
};

}  // namespace hykv
