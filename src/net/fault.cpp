#include "net/fault.hpp"

#include "common/hash.hpp"

namespace hykv::net {
namespace {

/// Maps a 64-bit hash to a uniform double in [0, 1).
double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t pair_key(EndpointId src, EndpointId dst) noexcept {
  return mix64(src * 0x9E3779B97F4A7C15ULL ^ dst);
}

}  // namespace

FaultInjector::FaultInjector(FaultProfile profile) : profile_(profile) {}

double FaultInjector::draw(EndpointId src, EndpointId dst,
                           std::uint64_t ordinal,
                           std::uint64_t salt) const noexcept {
  std::uint64_t h = profile_.seed;
  h = mix64(h ^ mix64(src));
  h = mix64(h ^ mix64(dst));
  h = mix64(h ^ mix64(ordinal));
  h = mix64(h ^ mix64(salt));
  return to_unit(h);
}

std::uint64_t FaultInjector::next_ordinal(EndpointId src, EndpointId dst) {
  const MutexLock lock(mu_);
  return pair_seq_[pair_key(src, dst)]++;
}

MessageFault FaultInjector::on_message(EndpointId src, EndpointId dst) {
  const std::uint64_t ordinal = next_ordinal(src, dst);
  MessageFault fault;
  // Independent draws per fault class (distinct salts) so e.g. a high drop
  // rate does not starve the duplicate schedule.
  if (profile_.drop_rate > 0.0 &&
      draw(src, dst, ordinal, /*salt=*/1) < profile_.drop_rate) {
    fault.drop = true;
    return fault;  // a dropped message cannot also be duplicated/delayed
  }
  if (profile_.duplicate_rate > 0.0 &&
      draw(src, dst, ordinal, /*salt=*/2) < profile_.duplicate_rate) {
    fault.duplicate = true;
  }
  if (profile_.delay_rate > 0.0 &&
      draw(src, dst, ordinal, /*salt=*/3) < profile_.delay_rate) {
    fault.extra_delay = profile_.extra_delay;
  }
  return fault;
}

bool FaultInjector::fail_one_sided(EndpointId src, EndpointId dst) {
  if (profile_.one_sided_fail_rate <= 0.0) return false;
  const std::uint64_t ordinal = next_ordinal(src, dst);
  return draw(src, dst, ordinal, /*salt=*/4) < profile_.one_sided_fail_rate;
}

void FaultInjector::set_link_down(EndpointId endpoint, bool down) {
  const MutexLock lock(mu_);
  if (down) {
    down_.insert(endpoint);
  } else {
    down_.erase(endpoint);
  }
}

bool FaultInjector::link_down(EndpointId a, EndpointId b) const {
  const MutexLock lock(mu_);
  return down_.contains(a) || down_.contains(b);
}

}  // namespace hykv::net
