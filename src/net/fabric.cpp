#include "net/fabric.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "common/hash.hpp"
#include "common/logging.hpp"

namespace hykv::net {
namespace {

/// Injection (occupancy) time: the transfer cost minus propagation. This is
/// the duration a NIC/link is busy with this message's bytes.
sim::Nanos occupancy_time(const FabricProfile& profile, std::size_t size) {
  return profile.transfer_time(size) - profile.base_latency;
}

}  // namespace

std::size_t RegCacheKeyHash::operator()(const RegCacheKey& key) const noexcept {
  return mix64(mix64(reinterpret_cast<std::uintptr_t>(key.addr)) ^
               mix64(key.len));
}

Endpoint::Endpoint(Fabric& fabric, EndpointId id, std::string name)
    : fabric_(fabric), id_(id), name_(std::move(name)) {}

Fabric::Fabric(FabricProfile profile, FaultProfile faults)
    : profile_(std::move(profile)),
      faults_(faults.enabled() ? std::make_unique<FaultInjector>(faults)
                               : nullptr) {}

std::shared_ptr<Endpoint> Fabric::create_endpoint(std::string name) {
  const MutexLock lock(mu_);
  const EndpointId id = next_id_++;
  auto ep = std::make_shared<Endpoint>(*this, id, std::move(name));
  endpoints_.emplace(id, ep);
  return ep;
}

Endpoint* Fabric::find(EndpointId id) {
  const MutexLock lock(mu_);
  auto it = endpoints_.find(id);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

// NO_THREAD_SAFETY_ANALYSIS: src/dst horizons are GUARDED_BY(fabric_.mu_)
// and this method holds exactly that lock, but the analysis cannot prove the
// alias src.fabric_ == *this (every endpoint belongs to the fabric that
// created it, enforced by construction in create_endpoint).
std::pair<sim::TimePoint, sim::TimePoint> Fabric::reserve_path(
    Endpoint& src, Endpoint& dst, std::size_t size) NO_THREAD_SAFETY_ANALYSIS {
  const sim::Nanos occupancy = sim::scaled(occupancy_time(profile_, size));
  const sim::Nanos propagation = sim::scaled(profile_.base_latency);
  const MutexLock lock(mu_);
  const sim::TimePoint now = sim::now();
  sim::TimePoint start = std::max(now, src.tx_free_);
  start = std::max(start, dst.rx_free_);
  const sim::TimePoint finish = start + occupancy;
  src.tx_free_ = finish;
  dst.rx_free_ = finish;
  total_bytes_.fetch_add(size, std::memory_order_relaxed);
  return {finish, finish + propagation};
}

SendTicket Endpoint::send(EndpointId dst, std::uint16_t opcode,
                          std::uint64_t wr_id, std::span<const char> payload) {
  sim::advance(fabric_.profile().doorbell);
  Endpoint* target = fabric_.find(dst);
  if (target == nullptr || target->rx_.closed()) {
    // Completed "immediately": nothing was injected. Callers detect the
    // failure at the protocol level (no response -> timeout/shutdown).
    return SendTicket{sim::now()};
  }

  FaultInjector* faults = fabric_.faults();
  MessageFault fault;
  if (faults != nullptr) {
    if (faults->link_down(id_, dst)) {
      // Partitioned: the work request "completes" locally but nothing
      // reaches the wire (the QP would eventually flush with an error; here
      // the protocol layer sees it as silence -> timeout).
      const MutexLock lock(mu_);
      ++stats_.faults_link_down;
      return SendTicket{sim::now()};
    }
    fault = faults->on_message(id_, dst);
  }

  const auto [finish, deliver_at] = fabric_.reserve_path(*this, *target, payload.size());

  {
    const MutexLock lock(mu_);
    ++stats_.sends;
    stats_.sent_bytes += payload.size();
    if (fault.drop) ++stats_.faults_dropped;
    if (fault.duplicate) ++stats_.faults_duplicated;
    if (fault.extra_delay.count() > 0) ++stats_.faults_delayed;
  }

  if (fault.drop) {
    // The bytes occupied the link (reserve_path above) but never arrive.
    // Local send completion still fires -- a lossy fabric looks healthy to
    // the sender, exactly why completion needs timeouts.
    return SendTicket{finish};
  }

  Message msg;
  msg.src = id_;
  msg.dst = dst;
  msg.opcode = opcode;
  msg.wr_id = wr_id;
  msg.payload.assign(payload.begin(), payload.end());
  msg.deliver_at = deliver_at + sim::scaled(fault.extra_delay);
  msg.sent_at = sim::now();  // post time: receivers derive the transfer span
  if (fault.duplicate) {
    // The ghost copy trails the original by one propagation delay -- the
    // receiver must tolerate duplicate wr_ids (stale-response path).
    Message ghost = msg;
    ghost.deliver_at += sim::scaled(fabric_.profile().base_latency);
    target->rx_.push(std::move(msg));
    target->rx_.push(std::move(ghost));
  } else {
    target->rx_.push(std::move(msg));
  }
  return SendTicket{finish};
}

Result<Message> Endpoint::recv() {
  auto msg = rx_.pop();
  if (!msg.has_value()) return StatusCode::kShutdown;
  sim::wait_until(msg->deliver_at);
  const MutexLock lock(mu_);
  ++stats_.recvs;
  return std::move(*msg);
}

Result<Message> Endpoint::recv_for(sim::Nanos real_timeout) {
  auto msg = rx_.pop_for(real_timeout);
  if (!msg.has_value()) {
    return rx_.closed() ? StatusCode::kShutdown : StatusCode::kTimedOut;
  }
  sim::wait_until(msg->deliver_at);
  const MutexLock lock(mu_);
  ++stats_.recvs;
  return std::move(*msg);
}

MemoryRegion Endpoint::register_memory(char* addr, std::size_t len) {
  const RegCacheKey key{addr, len};
  std::optional<MemoryRegion> cached;
  {
    const MutexLock lock(mu_);
    auto it = reg_cache_.find(key);
    if (it != reg_cache_.end()) {
      ++stats_.registration_hits;
      cached = it->second;
    }
  }
  if (cached.has_value()) {
    sim::advance(fabric_.profile().registration_cached);
    return *cached;
  }
  // Cold registration: pin pages, build HCA translation entries.
  sim::advance(fabric_.profile().registration_time(len));
  const MutexLock lock(mu_);
  MemoryRegion region;
  region.rkey = next_rkey_++;
  region.addr = addr;
  region.length = len;
  reg_cache_.emplace(key, region);
  exposed_.emplace(region.rkey, region);
  ++stats_.registrations;
  return region;
}

void Endpoint::deregister_memory(const MemoryRegion& region) {
  const MutexLock lock(mu_);
  exposed_.erase(region.rkey);
  for (auto it = reg_cache_.begin(); it != reg_cache_.end(); ++it) {
    if (it->second.rkey == region.rkey) {
      reg_cache_.erase(it);
      break;
    }
  }
}

StatusCode Endpoint::rdma_write(const RemoteKey& key, std::size_t offset,
                                std::span<const char> data) {
  if (!fabric_.profile().one_sided) return StatusCode::kNetworkError;
  if (const StatusCode injected = check_one_sided_fault(key.endpoint);
      !ok(injected)) {
    return injected;
  }
  Endpoint* target = fabric_.find(key.endpoint);
  if (target == nullptr) return StatusCode::kNetworkError;
  char* dest = nullptr;
  {
    const MutexLock lock(target->mu_);
    auto it = target->exposed_.find(key.rkey);
    if (it == target->exposed_.end()) return StatusCode::kInvalidArgument;
    if (offset + data.size() > it->second.length) return StatusCode::kInvalidArgument;
    dest = it->second.addr + offset;
  }
  sim::advance(fabric_.profile().doorbell);
  const auto [finish, deliver_at] = fabric_.reserve_path(*this, *target, data.size());
  (void)finish;
  std::memcpy(dest, data.data(), data.size());
  // One-sided write completion: payload placed, ack returns (propagation).
  sim::wait_until(deliver_at);
  const MutexLock lock(mu_);
  ++stats_.one_sided_ops;
  return StatusCode::kOk;
}

StatusCode Endpoint::rdma_read(const RemoteKey& key, std::size_t offset,
                               std::span<char> out) {
  if (!fabric_.profile().one_sided) return StatusCode::kNetworkError;
  if (const StatusCode injected = check_one_sided_fault(key.endpoint);
      !ok(injected)) {
    return injected;
  }
  Endpoint* target = fabric_.find(key.endpoint);
  if (target == nullptr) return StatusCode::kNetworkError;
  const char* from = nullptr;
  {
    const MutexLock lock(target->mu_);
    auto it = target->exposed_.find(key.rkey);
    if (it == target->exposed_.end()) return StatusCode::kInvalidArgument;
    if (offset + out.size() > it->second.length) return StatusCode::kInvalidArgument;
    from = it->second.addr + offset;
  }
  sim::advance(fabric_.profile().doorbell);
  // Read: request propagates there (base), data streams back (occupancy),
  // then propagates back (base).
  const auto [finish, deliver_at] = fabric_.reserve_path(*this, *target, out.size());
  (void)finish;
  sim::wait_until(deliver_at + sim::scaled(fabric_.profile().base_latency));
  std::memcpy(out.data(), from, out.size());
  const MutexLock lock(mu_);
  ++stats_.one_sided_ops;
  return StatusCode::kOk;
}

StatusCode Endpoint::check_one_sided_fault(EndpointId dst) {
  FaultInjector* faults = fabric_.faults();
  if (faults == nullptr) return StatusCode::kOk;
  if (faults->link_down(id_, dst)) {
    const MutexLock lock(mu_);
    ++stats_.faults_link_down;
    return StatusCode::kNetworkError;
  }
  if (faults->fail_one_sided(id_, dst)) {
    // The op posts (doorbell paid) but completes in error -- the verbs
    // "completion with error" path.
    sim::advance(fabric_.profile().doorbell);
    const MutexLock lock(mu_);
    ++stats_.faults_one_sided;
    return StatusCode::kNetworkError;
  }
  return StatusCode::kOk;
}

void Endpoint::close() { rx_.close(); }

EndpointStats Endpoint::stats() const {
  const MutexLock lock(mu_);
  return stats_;
}

}  // namespace hykv::net
