// Deterministic fault injection for the simulated interconnect.
//
// A FaultInjector sits between Endpoint::send / rdma_* and the fabric's link
// model and decides, per message, whether to drop it, deliver it twice, add
// extra delay, or fail a one-sided operation. Decisions are pure functions of
// (profile seed, src, dst, per-pair sequence number), so a fixed seed yields
// the same fault schedule for the same traffic pattern regardless of how the
// OS interleaves unrelated endpoint pairs -- the property the chaos suite
// relies on for reproducible failures.
//
// "Link down" windows model a crashed/partitioned server: while an endpoint
// is marked down, every message to or from it is silently dropped and every
// one-sided op against it fails. Windows are driven explicitly by the test
// harness (set_link_down), not by the random schedule, so a test can assert
// exact recovery behaviour around the window edges.
//
// With FaultProfile::none() (the default) the fabric never consults the
// injector: the happy path stays a null-pointer check.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/mutex.hpp"
#include "common/sim_time.hpp"
#include "common/thread_annotations.hpp"
#include "net/message.hpp"

namespace hykv::net {

/// Knobs for the random (seed-driven) part of the failure model. Rates are
/// probabilities in [0, 1] evaluated independently per message/op.
struct FaultProfile {
  double drop_rate = 0.0;           ///< Two-sided message loss.
  double duplicate_rate = 0.0;      ///< Message delivered twice.
  double delay_rate = 0.0;          ///< Message delayed by extra_delay.
  sim::Nanos extra_delay{0};        ///< Added (modelled) delay when delayed.
  double one_sided_fail_rate = 0.0; ///< rdma_read/rdma_write op failure.
  std::uint64_t seed = 1;           ///< Root of the deterministic schedule.
  /// Arms the injector even with all rates zero -- for runs that drive only
  /// explicit link-down windows.
  bool arm = false;

  [[nodiscard]] bool enabled() const noexcept {
    return arm || drop_rate > 0.0 || duplicate_rate > 0.0 ||
           delay_rate > 0.0 || one_sided_fail_rate > 0.0;
  }

  /// Perfect fabric -- the fabric skips the injector entirely.
  static FaultProfile none() noexcept { return {}; }
};

/// Verdict for one two-sided message.
struct MessageFault {
  bool drop = false;
  bool duplicate = false;
  sim::Nanos extra_delay{0};
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultProfile profile);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Fault verdict for the next message src -> dst. Deterministic per
  /// (seed, src, dst, message ordinal on that pair).
  MessageFault on_message(EndpointId src, EndpointId dst);

  /// Whether the next one-sided op issued by src against dst fails.
  bool fail_one_sided(EndpointId src, EndpointId dst);

  /// Marks an endpoint's link down (true) or restores it (false). While
  /// down, all traffic touching the endpoint is dropped.
  void set_link_down(EndpointId endpoint, bool down) EXCLUDES(mu_);
  [[nodiscard]] bool link_down(EndpointId a, EndpointId b) const EXCLUDES(mu_);

  [[nodiscard]] const FaultProfile& profile() const noexcept { return profile_; }

 private:
  /// Uniform double in [0, 1) for draw `ordinal` of the (src, dst) stream.
  double draw(EndpointId src, EndpointId dst, std::uint64_t ordinal,
              std::uint64_t salt) const noexcept;
  std::uint64_t next_ordinal(EndpointId src, EndpointId dst) EXCLUDES(mu_);

  FaultProfile profile_;  ///< Immutable after construction.
  mutable Mutex mu_;
  std::unordered_map<std::uint64_t, std::uint64_t> pair_seq_ GUARDED_BY(mu_);
  std::unordered_set<EndpointId> down_ GUARDED_BY(mu_);
};

}  // namespace hykv::net
