// Simulated interconnect with verbs-like semantics.
//
// A Fabric hosts Endpoints (one per client / server process in the paper's
// deployment). Endpoints exchange Messages; the fabric stamps each message
// with a delivery time derived from the FabricProfile and from NIC occupancy
// (per-endpoint TX/RX serialisation), so that concurrent traffic exhibits
// realistic queueing instead of infinite parallel bandwidth.
//
// Verbs analogy:
//   Endpoint            ~ an RDMA-capable NIC + its QPs to all peers
//   Endpoint::send      ~ ibv_post_send(IBV_WR_SEND) + local completion
//   Endpoint::recv      ~ ibv_poll_cq on the recv CQ (blocking helper)
//   register_memory     ~ ibv_reg_mr, with a registration cache on top
//   rdma_write/rdma_read~ one-sided IBV_WR_RDMA_WRITE / _READ (no remote CPU)
//
// The IPoIB profile disables one-sided operations and pays kernel costs per
// segment, which is exactly how the paper's IPoIB-Mem baseline differs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/profiles.hpp"
#include "common/thread_annotations.hpp"
#include "common/queue.hpp"
#include "common/status.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"

namespace hykv::net {

class Fabric;

/// Key naming a remote registered memory region for one-sided access.
struct RemoteKey {
  EndpointId endpoint = kInvalidEndpoint;
  std::uint64_t rkey = 0;
};

/// A registered memory region (local view). Registration pays the modelled
/// ibv_reg_mr cost once; the registration cache makes repeat registrations of
/// the same buffer nearly free (the mechanism that motivates the bset/bget
/// reusable-buffer design).
struct MemoryRegion {
  std::uint64_t rkey = 0;
  char* addr = nullptr;
  std::size_t length = 0;
  [[nodiscard]] bool valid() const noexcept { return rkey != 0; }
};

struct EndpointStats {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t one_sided_ops = 0;
  std::uint64_t registrations = 0;       ///< Cold ibv_reg_mr calls.
  std::uint64_t registration_hits = 0;   ///< Registration-cache hits.
  // Injected-fault counters (all zero on a perfect fabric).
  std::uint64_t faults_dropped = 0;      ///< Messages lost by the injector.
  std::uint64_t faults_duplicated = 0;   ///< Messages delivered twice.
  std::uint64_t faults_delayed = 0;      ///< Messages given extra delay.
  std::uint64_t faults_link_down = 0;    ///< Sends/ops refused: link down.
  std::uint64_t faults_one_sided = 0;    ///< Failed rdma_read/rdma_write ops.
};

/// Exact composite registration-cache key. Hashing (addr, len) into a single
/// uint64 could collide and alias two distinct regions; exact keying cannot.
struct RegCacheKey {
  const char* addr = nullptr;
  std::size_t len = 0;
  bool operator==(const RegCacheKey&) const noexcept = default;
};

struct RegCacheKeyHash {
  std::size_t operator()(const RegCacheKey& key) const noexcept;
};

class Endpoint {
 public:
  Endpoint(Fabric& fabric, EndpointId id, std::string name);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  [[nodiscard]] EndpointId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Two-sided send. Pays the doorbell inline; returns a ticket whose
  /// completes_at marks local send completion (buffer reusable for zero-copy
  /// senders). The payload is snapshotted at call time -- deferred-copy
  /// semantics (iset hazard window) are realised by *when* the progress
  /// engine invokes send, not by the fabric.
  SendTicket send(EndpointId dst, std::uint16_t opcode, std::uint64_t wr_id,
                  std::span<const char> payload);

  /// Blocking receive; honours each message's delivery timestamp. Returns
  /// kShutdown status when the endpoint is closed and drained.
  Result<Message> recv();
  /// recv with a real-time timeout (for shutdown-polling loops).
  Result<Message> recv_for(sim::Nanos real_timeout);

  /// Registers `len` bytes at `addr` with the (simulated) HCA. First
  /// registration of an (addr, len) pays the full pinning cost; repeats hit
  /// the registration cache.
  MemoryRegion register_memory(char* addr, std::size_t len);
  void deregister_memory(const MemoryRegion& region);

  /// One-sided RDMA write into a remote region (no remote CPU involvement).
  /// Fails on non-RDMA fabrics (kNetworkError) and bad keys/bounds.
  StatusCode rdma_write(const RemoteKey& key, std::size_t offset,
                        std::span<const char> data);
  /// One-sided RDMA read from a remote region.
  StatusCode rdma_read(const RemoteKey& key, std::size_t offset,
                       std::span<char> out);

  void close();
  [[nodiscard]] bool closed() const { return rx_.closed(); }
  [[nodiscard]] EndpointStats stats() const EXCLUDES(mu_);

 private:
  friend class Fabric;

  /// Injected-failure check shared by the one-sided ops: kOk to proceed.
  StatusCode check_one_sided_fault(EndpointId dst) EXCLUDES(mu_);

  Fabric& fabric_;
  EndpointId id_;
  std::string name_;
  BlockingQueue<Message> rx_;

  mutable Mutex mu_;
  EndpointStats stats_ GUARDED_BY(mu_);
  // Registration cache: (addr, len) -> region. Emulates the lazy
  // deregistration caches RDMA middleware uses to amortise ibv_reg_mr.
  std::unordered_map<RegCacheKey, MemoryRegion, RegCacheKeyHash> reg_cache_
      GUARDED_BY(mu_);
  std::uint64_t next_rkey_ GUARDED_BY(mu_) = 1;
  // Regions visible to one-sided remote access, by rkey.
  std::unordered_map<std::uint64_t, MemoryRegion> exposed_ GUARDED_BY(mu_);
  // NIC occupancy horizons for the link model: written only by the owning
  // fabric's reserve_path under ITS lock, never under this->mu_.
  sim::TimePoint tx_free_ GUARDED_BY(fabric_.mu_){};
  sim::TimePoint rx_free_ GUARDED_BY(fabric_.mu_){};
};

class Fabric {
 public:
  /// `faults` defaults to a perfect fabric; with FaultProfile::none() the
  /// injector is never constructed and the data path pays one null check.
  explicit Fabric(FabricProfile profile,
                  FaultProfile faults = FaultProfile::none());

  /// Creates an endpoint attached to this fabric. Endpoints live as long as
  /// the fabric; shared_ptr keeps teardown order forgiving.
  std::shared_ptr<Endpoint> create_endpoint(std::string name);

  [[nodiscard]] const FabricProfile& profile() const noexcept { return profile_; }

  /// Fault injector, or nullptr on a perfect fabric.
  [[nodiscard]] FaultInjector* faults() noexcept { return faults_.get(); }

  /// Convenience: flip an endpoint's link state (no-op without an injector
  /// -- a perfect fabric has no link failures to model).
  void set_link_down(EndpointId endpoint, bool down) {
    if (faults_ != nullptr) faults_->set_link_down(endpoint, down);
  }

  /// Total payload bytes moved (diagnostics).
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return total_bytes_.load(std::memory_order_relaxed);
  }

  /// Endpoint lookup by id (nullptr when unknown) -- diagnostics/tests.
  [[nodiscard]] std::shared_ptr<Endpoint> endpoint(EndpointId id) EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    auto it = endpoints_.find(id);
    return it == endpoints_.end() ? nullptr : it->second;
  }

 private:
  friend class Endpoint;

  /// Core link model: computes occupancy-aware injection finish time for a
  /// `size`-byte transfer from src to dst and advances both NIC horizons.
  /// Returns {injection_finish, deliver_at}.
  std::pair<sim::TimePoint, sim::TimePoint> reserve_path(Endpoint& src,
                                                         Endpoint& dst,
                                                         std::size_t size)
      EXCLUDES(mu_);

  Endpoint* find(EndpointId id) EXCLUDES(mu_);

  FabricProfile profile_;
  std::unique_ptr<FaultInjector> faults_;
  Mutex mu_;
  std::unordered_map<EndpointId, std::shared_ptr<Endpoint>> endpoints_
      GUARDED_BY(mu_);
  EndpointId next_id_ GUARDED_BY(mu_) = 1;
  std::atomic<std::uint64_t> total_bytes_ ATOMIC_PUBLISHED(relaxed counter){0};
};

}  // namespace hykv::net
