// Wire-level message for the simulated fabric. The fabric is payload-
// agnostic: opcodes and payload encodings are defined by the protocol layer
// (server/protocol.hpp); the fabric only moves bytes and models time.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"

namespace hykv::net {

using EndpointId = std::uint64_t;
constexpr EndpointId kInvalidEndpoint = 0;

struct Message {
  EndpointId src = kInvalidEndpoint;
  EndpointId dst = kInvalidEndpoint;
  std::uint16_t opcode = 0;   ///< Protocol-defined operation code.
  std::uint64_t wr_id = 0;    ///< Work-request id for request/response matching.
  std::vector<char> payload;  ///< Byte payload (header + data).
  sim::TimePoint deliver_at;  ///< Earliest time the receiver may observe it.
  sim::TimePoint sent_at;     ///< When the send was posted (observability:
                              ///< fabric-transfer span = deliver_at - sent_at).
};

/// Handle to a posted send: completes_at is the instant the local HCA has
/// finished reading the source buffer (local send completion) -- the moment
/// a zero-copy sender may reuse its buffer.
struct SendTicket {
  sim::TimePoint completes_at;
  /// Blocks until the local send completion.
  void wait() const { sim::wait_until(completes_at); }
  [[nodiscard]] bool done() const noexcept { return sim::now() >= completes_at; }
};

}  // namespace hykv::net
