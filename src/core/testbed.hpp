// TestBed: one fully wired deployment of a Design -- fabric, N Memcached
// servers with their storage stacks, and the backend database for the
// in-memory designs. This is the top-level object benches and examples
// build; clients are minted per application thread with make_client().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "client/backend_db.hpp"
#include "client/client.hpp"
#include "core/design.hpp"
#include "net/fabric.hpp"
#include "server/server.hpp"
#include "ssd/io_engine.hpp"

namespace hykv::core {

struct TestBedConfig {
  Design design = Design::kRdmaMem;
  unsigned num_servers = 1;
  /// Aggregated cache RAM across the cluster (paper: "aggregated memory of
  /// 1 GB"); split evenly over servers.
  std::size_t total_server_memory = std::size_t{64} << 20;
  SsdProfile ssd = SsdProfile::sata();
  /// Aggregated SSD usage cap (0 = unlimited); split evenly over servers.
  std::size_t total_ssd_limit = 0;
  BackendDbProfile backend{};
  /// Optional backend resolver so misses can be served without preloading
  /// the database (see client::BackendDb).
  client::BackendDb::Resolver backend_resolver = nullptr;

  std::size_t slab_bytes = std::size_t{1} << 20;
  std::size_t adaptive_threshold = std::size_t{64} << 10;
  bool promote_on_hit = true;
  /// Store shards per server (power of two; 0 = auto ~2x hardware threads).
  /// Default 1 reproduces the paper's single-instance slab manager; the
  /// shard-scaling ablation and stress tests raise it explicitly.
  unsigned shards = 1;
  unsigned processing_threads = 1;
  /// Modelled under-lock CPU cost per store op (see ManagerConfig). The
  /// overload ablation uses it for a deterministic, host-independent
  /// saturation point; 0 (default) leaves the store untouched.
  sim::Nanos store_op_cost{0};
  std::size_t server_buffer_slots = 16;
  std::size_t client_bounce_slots = 16;
  std::size_t client_bounce_slot_bytes = std::size_t{1} << 20;

  // ---- Fault-injection / failure-handling (chaos tests; all default-off,
  //      leaving the happy path byte-for-byte unchanged) ----
  /// Deterministic fabric faults (drop/duplicate/delay/link-down/one-sided).
  net::FaultProfile fabric_faults = net::FaultProfile::none();
  /// Transient SSD I/O errors on every hybrid server's device.
  ssd::SsdFaultProfile ssd_faults{};
  /// Per-server degraded-mode thresholds (see store::ManagerConfig).
  unsigned degrade_after_io_errors = 3;
  sim::Nanos heal_probe_after = sim::ms(50);
  /// Client failure policy handed to every make_client() (0 = no deadlines).
  sim::Nanos client_op_deadline{0};
  unsigned client_max_retries = 2;
  client::FailoverPolicy client_failover{};

  // ---- Overload control (DESIGN.md §8; all default-off) ----
  /// Server admission bounds (async designs; see server::ServerConfig).
  std::size_t server_max_inflight = 0;
  std::size_t server_admission_queue_limit = 0;
  /// Client-side overload knobs handed to every make_client().
  std::uint64_t client_retry_budget = 0;
  std::size_t client_max_pending_per_server = 0;
  bool client_propagate_deadline = false;

  // ---- Observability (DESIGN.md §10; see server::ServerConfig) ----
  /// Per-server latency histograms (`stats latency`); on by default.
  bool server_record_latency = true;
  /// Sampled op tracing shift handed to every server (0 = off).
  unsigned server_trace_sample_shift = 0;
  /// Client-side issue->complete histograms handed to every make_client().
  bool client_record_latency = true;

  // ---- Doorbell batching (DESIGN.md §12; default-off) ----
  /// TX coalescing bound handed to every make_client() (<=1 = off).
  std::size_t client_batch_max_ops = 1;
  /// Byte ceiling for one coalesced frame (keys+values of the run).
  std::size_t client_batch_max_bytes = std::size_t{256} << 10;
};

class TestBed {
 public:
  explicit TestBed(TestBedConfig config);
  ~TestBed();

  TestBed(const TestBed&) = delete;
  TestBed& operator=(const TestBed&) = delete;

  /// Creates a client wired to all servers of this bed (one per app thread).
  [[nodiscard]] std::unique_ptr<client::Client> make_client(std::string name);

  [[nodiscard]] Design design() const noexcept { return config_.design; }
  [[nodiscard]] const TestBedConfig& config() const noexcept { return config_; }
  [[nodiscard]] net::Fabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] client::BackendDb& backend() noexcept { return backend_; }
  [[nodiscard]] std::size_t num_servers() const noexcept { return servers_.size(); }
  [[nodiscard]] server::MemcachedServer& server(std::size_t i) {
    return *servers_[i];
  }

  /// Server-side stage times merged over all servers.
  [[nodiscard]] StageBreakdown server_breakdown() const;
  /// Store stats summed over all servers.
  [[nodiscard]] store::ManagerStats store_stats() const;
  [[nodiscard]] ssd::DeviceStats device_stats() const;
  void reset_metrics();

  /// Blocks until all SSD write-back has drained (quiesce between phases).
  void sync_storage();

 private:
  TestBedConfig config_;
  std::unique_ptr<net::Fabric> fabric_;
  client::BackendDb backend_;
  std::vector<std::unique_ptr<ssd::StorageStack>> storage_;
  std::vector<std::unique_ptr<server::MemcachedServer>> servers_;
};

}  // namespace hykv::core
