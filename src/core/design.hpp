// The six evaluated designs (Table I + Section VI-B naming) and their wiring.
//
//   IPoIB-Mem         : stock Memcached over IP-over-IB, pure in-memory,
//                       blocking API, backend DB on miss.
//   RDMA-Mem          : RDMA-based in-memory Memcached, blocking API,
//                       backend DB on miss.
//   H-RDMA-Def        : existing SSD-assisted hybrid design -- direct I/O
//                       slab flushes, blocking API, synchronous server.
//   H-RDMA-Opt-Block  : + this paper's adaptive I/O schemes, still blocking.
//   H-RDMA-Opt-NonB-b : + non-blocking server; clients use bset/bget.
//   H-RDMA-Opt-NonB-i : + non-blocking server; clients use iset/iget.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/profiles.hpp"
#include "store/hybrid_manager.hpp"

namespace hykv::core {

enum class Design : std::uint8_t {
  kIpoibMem = 0,
  kRdmaMem,
  kHRdmaDef,
  kHRdmaOptBlock,
  kHRdmaOptNonbB,
  kHRdmaOptNonbI,
};

/// Which client API family a design's evaluation uses.
enum class ApiMode : std::uint8_t { kBlocking = 0, kNonBlockingB, kNonBlockingI };

constexpr std::string_view to_string(Design design) noexcept {
  switch (design) {
    case Design::kIpoibMem: return "IPoIB-Mem";
    case Design::kRdmaMem: return "RDMA-Mem";
    case Design::kHRdmaDef: return "H-RDMA-Def";
    case Design::kHRdmaOptBlock: return "H-RDMA-Opt-Block";
    case Design::kHRdmaOptNonbB: return "H-RDMA-Opt-NonB-b";
    case Design::kHRdmaOptNonbI: return "H-RDMA-Opt-NonB-i";
  }
  return "?";
}

constexpr bool uses_rdma(Design design) noexcept {
  return design != Design::kIpoibMem;
}

constexpr bool is_hybrid(Design design) noexcept {
  return design == Design::kHRdmaDef || design == Design::kHRdmaOptBlock ||
         design == Design::kHRdmaOptNonbB || design == Design::kHRdmaOptNonbI;
}

constexpr bool async_server(Design design) noexcept {
  return design == Design::kHRdmaOptNonbB || design == Design::kHRdmaOptNonbI;
}

constexpr ApiMode api_mode(Design design) noexcept {
  switch (design) {
    case Design::kHRdmaOptNonbB: return ApiMode::kNonBlockingB;
    case Design::kHRdmaOptNonbI: return ApiMode::kNonBlockingI;
    default: return ApiMode::kBlocking;
  }
}

constexpr store::IoPolicy io_policy(Design design) noexcept {
  return design == Design::kHRdmaDef ? store::IoPolicy::kDirectAll
                                     : store::IoPolicy::kAdaptive;
}

inline FabricProfile fabric_profile(Design design) {
  return uses_rdma(design) ? FabricProfile::fdr_rdma() : FabricProfile::ipoib();
}

constexpr Design kAllDesigns[] = {
    Design::kIpoibMem,       Design::kRdmaMem,       Design::kHRdmaDef,
    Design::kHRdmaOptBlock,  Design::kHRdmaOptNonbB, Design::kHRdmaOptNonbI,
};

/// The three baseline designs of Fig. 1 / Fig. 2.
constexpr Design kBaselineDesigns[] = {
    Design::kIpoibMem,
    Design::kRdmaMem,
    Design::kHRdmaDef,
};

}  // namespace hykv::core
