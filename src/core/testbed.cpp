#include "core/testbed.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace hykv::core {

TestBed::TestBed(TestBedConfig config)
    : config_(std::move(config)),
      fabric_(std::make_unique<net::Fabric>(fabric_profile(config_.design),
                                            config_.fabric_faults)),
      backend_(config_.backend, config_.backend_resolver) {
  const unsigned n = std::max(1u, config_.num_servers);
  const std::size_t per_server_memory = config_.total_server_memory / n;
  const std::size_t per_server_ssd =
      config_.total_ssd_limit == 0 ? 0 : config_.total_ssd_limit / n;

  for (unsigned i = 0; i < n; ++i) {
    ssd::StorageStack* stack = nullptr;
    if (is_hybrid(config_.design)) {
      // Page-cache sizing follows Linux defaults relative to the cache RAM:
      // dirty throttling at ~20% of memcached memory, page cache allowed to
      // use spare host RAM (4x the memcached arena).
      ssd::PageCacheConfig cache;
      cache.dirty_high_watermark = std::max<std::size_t>(per_server_memory / 5,
                                                         std::size_t{4} << 20);
      cache.dirty_low_watermark = cache.dirty_high_watermark / 2;
      // The paper's servers cap Memcached RAM far below host RAM, but the
      // page cache available to cached/mmap I/O is bounded in practice by
      // competing load; give it parity with the cache arena.
      cache.memory_limit = per_server_memory;
      storage_.push_back(
          std::make_unique<ssd::StorageStack>(config_.ssd, cache));
      stack = storage_.back().get();
      if (config_.ssd_faults.enabled()) {
        // Derive a per-server seed so the servers' error schedules differ
        // but the whole cluster stays reproducible from one config seed.
        ssd::SsdFaultProfile faults = config_.ssd_faults;
        faults.seed = mix64(config_.ssd_faults.seed + i);
        stack->device().set_fault_profile(faults);
      }
    }

    server::ServerConfig server_config;
    server_config.name = std::string(to_string(config_.design)) + "-server-" +
                         std::to_string(i);
    server_config.async_processing = async_server(config_.design);
    server_config.processing_threads = config_.processing_threads;
    server_config.request_buffer_slots = config_.server_buffer_slots;
    server_config.max_inflight = config_.server_max_inflight;
    server_config.admission_queue_limit = config_.server_admission_queue_limit;
    server_config.record_latency = config_.server_record_latency;
    server_config.trace_sample_shift = config_.server_trace_sample_shift;
    server_config.manager.mode = is_hybrid(config_.design)
                                     ? store::StorageMode::kHybrid
                                     : store::StorageMode::kInMemory;
    server_config.manager.io_policy = io_policy(config_.design);
    server_config.manager.adaptive_threshold = config_.adaptive_threshold;
    server_config.manager.promote_on_hit = config_.promote_on_hit;
    // H-RDMA-Def swaps SSD-resident items back into RAM on access
    // (Ouyang'12 semantics); the optimised designs promote opportunistically.
    server_config.manager.force_promote = config_.design == Design::kHRdmaDef;
    server_config.manager.shards = config_.shards;
    server_config.manager.modelled_op_cost = config_.store_op_cost;
    server_config.manager.ssd_limit = per_server_ssd;
    server_config.manager.slab.slab_bytes = config_.slab_bytes;
    server_config.manager.slab.memory_limit = per_server_memory;
    server_config.manager.flush_batch_bytes = config_.slab_bytes;
    server_config.manager.degrade_after_io_errors =
        config_.degrade_after_io_errors;
    server_config.manager.heal_probe_after = config_.heal_probe_after;

    servers_.push_back(std::make_unique<server::MemcachedServer>(
        *fabric_, server_config, stack));
    servers_.back()->start();
  }
}

TestBed::~TestBed() {
  for (auto& server : servers_) server->stop();
}

std::unique_ptr<client::Client> TestBed::make_client(std::string name) {
  client::ClientConfig cfg;
  cfg.name = std::move(name);
  cfg.servers.reserve(servers_.size());
  for (const auto& server : servers_) cfg.servers.push_back(server->endpoint_id());
  cfg.bounce_slots = config_.client_bounce_slots;
  cfg.bounce_slot_bytes = config_.client_bounce_slot_bytes;
  cfg.use_backend_on_miss = !is_hybrid(config_.design);
  cfg.op_deadline = config_.client_op_deadline;
  cfg.max_retries = config_.client_max_retries;
  cfg.failover = config_.client_failover;
  cfg.retry_budget = config_.client_retry_budget;
  cfg.max_pending_per_server = config_.client_max_pending_per_server;
  cfg.propagate_deadline = config_.client_propagate_deadline;
  cfg.record_latency = config_.client_record_latency;
  cfg.batch_max_ops = config_.client_batch_max_ops;
  cfg.batch_max_bytes = config_.client_batch_max_bytes;
  return std::make_unique<client::Client>(*fabric_, std::move(cfg), &backend_);
}

StageBreakdown TestBed::server_breakdown() const {
  StageBreakdown merged;
  for (const auto& server : servers_) merged.merge(server->breakdown());
  return merged;
}

store::ManagerStats TestBed::store_stats() const {
  store::ManagerStats total;
  for (const auto& server : servers_) total.merge_from(server->store_stats());
  return total;
}

ssd::DeviceStats TestBed::device_stats() const {
  ssd::DeviceStats total;
  for (const auto& stack : storage_) {
    const auto s = stack->device().stats();
    total.reads += s.reads;
    total.writes += s.writes;
    total.read_bytes += s.read_bytes;
    total.written_bytes += s.written_bytes;
    total.busy_ns += s.busy_ns;
    total.io_errors += s.io_errors;
  }
  return total;
}

void TestBed::reset_metrics() {
  for (auto& server : servers_) server->reset_metrics();
  for (auto& stack : storage_) stack->device().reset_stats();
}

void TestBed::sync_storage() {
  for (auto& stack : storage_) stack->cache().sync();
}

}  // namespace hykv::core
