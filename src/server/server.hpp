// The Memcached server runtime.
//
// Two request-handling modes, mirroring Section V-B of the paper:
//
//   synchronous (async_processing=false) -- the classic pipeline: the network
//     thread receives a request, runs the full slab/LRU/SSD pipeline inline,
//     then responds. This is how IPoIB-Mem, RDMA-Mem, H-RDMA-Def and
//     H-RDMA-Opt-Block servers behave: a slow SSD flush stalls the pipeline
//     and every queued client feels it.
//
//   asynchronous (async_processing=true) -- the "enhanced" server for the
//     non-blocking APIs: the network thread only *buffers* requests (bounded
//     slot pool) and hands them to processing workers; the expensive hybrid
//     memory/SSD phase runs off the receive path and the response is sent on
//     completion (the dotted-green path in Fig. 3). When the slot pool is
//     full the receive loop stalls -- the backpressure that bounds how far a
//     bursty non-blocking client can run ahead of a busy server.
//
// The storage tier behind the workers is sharded (store::ShardedManager):
// requests for different key partitions never share a store lock, so
// processing_threads > 1 actually overlaps hybrid-memory work. The request
// hot path itself is metric-lock-free: every handler thread owns a metrics
// slot of relaxed atomics (counters + stage nanos) merged on demand by
// counters()/breakdown(), instead of taking a global metrics mutex several
// times per request.
//
// Per-stage wall time is attributed to the paper's stage taxonomy and can be
// harvested with breakdown() for Fig. 2 / Fig. 6.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/status.hpp"
#include "common/queue.hpp"
#include "common/stage.hpp"
#include "common/thread_annotations.hpp"
#include "net/fabric.hpp"
#include "ssd/io_engine.hpp"
#include "store/sharded_manager.hpp"

namespace hykv::server {

struct ServerConfig {
  std::string name = "memcached";
  store::ManagerConfig manager{};
  bool async_processing = false;
  unsigned processing_threads = 1;      ///< Async mode worker count.
  std::size_t request_buffer_slots = 16;///< Async mode buffered-request bound.

  // ---- Overload control (DESIGN.md §8; both default-off, preserving the
  //      pre-overload behaviour: a full slot pool stalls the receive loop
  //      instead of shedding) ----
  /// Async mode: bound on admitted-but-unfinished requests (0 = unlimited).
  /// At the bound, new arrivals are rejected at receipt with a cheap kBusy
  /// response -- no payload decode, no store phase.
  std::size_t max_inflight = 0;
  /// Async mode: buffered-queue depth at which the receive loop sheds with
  /// kBusy instead of stalling (0 = off: blocking-push backpressure).
  std::size_t admission_queue_limit = 0;

  // ---- Observability (DESIGN.md §10; docs/METRICS.md is the catalog) ----
  /// Per-op-type and per-stage latency histograms, served by the
  /// `stats latency` subcommand. On by default: recording is a handful of
  /// relaxed atomic adds per request (<=2% throughput cost -- see
  /// bench/ablation_obs_overhead.cpp). Off removes every recorder touch
  /// from the hot path; the legacy `stats` text is byte-identical either
  /// way.
  bool record_latency = true;
  /// Sampled op tracing: 0 = off (default); shift s captures every 2^s-th
  /// request's stage timeline into per-worker rings, dumped as JSON by the
  /// `stats trace` subcommand.
  unsigned trace_sample_shift = 0;
};

/// Per-op request counters. Every well-formed request bumps exactly one of
/// sets/gets/deletes/touches/admin; a malformed or unknown one bumps
/// malformed; a request rejected by admission control bumps shed, and one
/// dropped for arriving past its propagated deadline bumps expired_on_arrival
/// -- so `requests == ops_sum()` always balances (asserted by the chaos
/// suite).
struct ServerCounters {
  std::uint64_t requests = 0;
  std::uint64_t sets = 0;     ///< set/add/replace/append/prepend/incr/decr/cas.
  std::uint64_t gets = 0;     ///< get/gets.
  std::uint64_t deletes = 0;
  std::uint64_t touches = 0;
  std::uint64_t admin = 0;    ///< flush_all + stats.
  std::uint64_t malformed = 0;
  std::uint64_t shed = 0;     ///< Rejected kBusy at receipt (admission full).
  std::uint64_t expired_on_arrival = 0;  ///< Dropped: client deadline passed.

  // Doorbell batching (DESIGN.md §12). Informational frame counters, NOT part
  // of ops_sum(): a kOpBatch frame of n sub-ops bumps `requests` by n and each
  // sub-op lands in its per-op counter above exactly as if sent individually,
  // so requests == ops_sum() still balances. These two only describe *how*
  // the ops arrived (batched_ops / batches = achieved server-side fill).
  std::uint64_t batches = 0;      ///< Well-formed kOpBatch frames received.
  std::uint64_t batched_ops = 0;  ///< Sub-ops carried by those frames.

  [[nodiscard]] std::uint64_t ops_sum() const noexcept {
    return sets + gets + deletes + touches + admin + malformed + shed +
           expired_on_arrival;
  }
};

/// memcached "stats" text ("name value\n" lines). Free function so the
/// renderer is testable with arbitrary (e.g. maximal) counter values; built
/// on std::string, which cannot truncate or overread the way a fixed
/// snprintf buffer can.
///
/// Compatibility guarantee: lines appear in the fixed order of the internal
/// field table; new counters are only ever APPENDED to that table, and
/// stats_field_names() exposes it so tests and the docs-consistency check
/// derive the expected layout instead of hard-coding line counts.
[[nodiscard]] std::string render_stats_text(const ServerCounters& counters,
                                            const store::ManagerStats& store,
                                            const store::SlabStats& slab,
                                            std::size_t item_count,
                                            unsigned shards);

/// The `stats` line names, in render order (single source of truth shared by
/// render_stats_text, the stats tests, and tools/dump_metrics).
[[nodiscard]] std::vector<std::string_view> stats_field_names();

/// The `stats latency` text: one "name value\n" line per op-class histogram
/// stat (latency_<op>_{count,mean_ns,p50_ns,p95_ns,p99_ns,p999_ns}) followed
/// by the same for each stage span (span_<span>_...), preceded by a
/// "latency_recording 1" header. All values are integer nanoseconds/counts.
[[nodiscard]] std::string render_latency_text(
    const metrics::LatencyRecorder& recorder);

/// The `stats latency` line names, in render order.
[[nodiscard]] std::vector<std::string> latency_field_names();

class MemcachedServer {
 public:
  /// `storage` may be nullptr iff the manager mode is kInMemory. The server
  /// owns an endpoint on `fabric`; start() spawns its threads.
  MemcachedServer(net::Fabric& fabric, ServerConfig config,
                  ssd::StorageStack* storage);
  ~MemcachedServer();

  MemcachedServer(const MemcachedServer&) = delete;
  MemcachedServer& operator=(const MemcachedServer&) = delete;

  void start();
  void stop();

  [[nodiscard]] net::EndpointId endpoint_id() const { return endpoint_->id(); }
  [[nodiscard]] const std::string& name() const noexcept { return config_.name; }

  /// Merged per-stage server-side time (SlabAllocation, CacheCheck+Load,
  /// CacheUpdate, ServerResponse), summed over every handler thread.
  [[nodiscard]] StageBreakdown breakdown() const;
  [[nodiscard]] ServerCounters counters() const;
  [[nodiscard]] store::ManagerStats store_stats() const { return manager_.stats(); }
  [[nodiscard]] store::ShardedManager& manager() noexcept { return manager_; }

  /// Merged latency recorder view (nullptr when record_latency is off). The
  /// same data the `stats latency` subcommand serves over the wire.
  [[nodiscard]] const metrics::LatencyRecorder* latency() const noexcept {
    return recorder_.get();
  }
  /// Sampled op tracer (nullptr when trace_sample_shift == 0).
  [[nodiscard]] const metrics::OpTracer* tracer() const noexcept {
    return tracer_.get();
  }

  void reset_metrics();

 private:
  /// One handler thread's metrics slot. The owning thread writes with
  /// relaxed atomics (uncontended -- one writer per slot); readers merge all
  /// slots on demand. Cache-line aligned so workers never false-share.
  struct alignas(64) WorkerMetrics {
    // All counters ATOMIC_PUBLISHED(single-writer relaxed slot): no lock by
    // design, see the struct comment above.
    std::array<std::atomic<std::uint64_t>, kStageCount> stage_ns{};
    std::atomic<std::uint64_t> stage_ops ATOMIC_PUBLISHED(){0};
    std::atomic<std::uint64_t> requests ATOMIC_PUBLISHED(){0};
    std::atomic<std::uint64_t> sets ATOMIC_PUBLISHED(){0};
    std::atomic<std::uint64_t> gets ATOMIC_PUBLISHED(){0};
    std::atomic<std::uint64_t> deletes ATOMIC_PUBLISHED(){0};
    std::atomic<std::uint64_t> touches ATOMIC_PUBLISHED(){0};
    std::atomic<std::uint64_t> admin ATOMIC_PUBLISHED(){0};
    std::atomic<std::uint64_t> malformed ATOMIC_PUBLISHED(){0};
    std::atomic<std::uint64_t> shed ATOMIC_PUBLISHED(){0};
    std::atomic<std::uint64_t> expired_on_arrival ATOMIC_PUBLISHED(){0};
    std::atomic<std::uint64_t> batches ATOMIC_PUBLISHED(){0};
    std::atomic<std::uint64_t> batched_ops ATOMIC_PUBLISHED(){0};
  };

  /// An async-buffered request plus the instant the network thread received
  /// it -- dequeue-minus-receipt is the admission-wait span.
  struct BufferedRequest {
    net::Message msg;
    sim::TimePoint received_at{};
  };
  /// Receipt/dequeue timestamps a request carries into handle() so latency
  /// is measured end to end, not from when a worker got around to it.
  struct RequestContext {
    sim::TimePoint received_at{};
    sim::TimePoint dequeued_at{};
  };

  /// Outcome of one opcode dispatch (shared by the single-request path and
  /// the vectorized batch path). The value bytes live in the caller-provided
  /// buffer; `has_value` says whether they belong in the response.
  struct OpResult {
    StatusCode status = StatusCode::kInvalidArgument;
    std::uint32_t flags = 0;
    bool has_value = false;
  };

  void network_main();
  void worker_main(std::size_t worker_index);
  void handle(const net::Message& request, WorkerMetrics& metrics,
              const RequestContext& ctx);
  /// Decode + execute one operation against the store, bumping its per-op
  /// counter (malformed ops land in `malformed` and flip op_cls to kOther).
  OpResult execute_op(std::uint16_t opcode, std::span<const char> body,
                      WorkerMetrics& metrics, StageBreakdown& stages,
                      std::vector<char>& value, metrics::Op& op_cls);
  /// Vectorized execution of a kOpBatch frame: per-sub-op admission-exact
  /// accounting, one batched response (DESIGN.md §12).
  void handle_batch(const net::Message& request,
                    std::int64_t deadline_ns, std::span<const char> body,
                    WorkerMetrics& metrics, const RequestContext& ctx);
  /// Admission check for one arriving request (async mode, admission on).
  /// Returns false after shedding it with a cheap kBusy response.
  bool admit(const net::Message& request);
  [[nodiscard]] std::vector<char> render_stats() const;

  net::Fabric& fabric_;
  ServerConfig config_;
  std::shared_ptr<net::Endpoint> endpoint_;
  /// Declared (and thus constructed) before manager_: the manager config
  /// gets the recorder pointer injected, so the recorder must outlive and
  /// pre-date the manager.
  std::unique_ptr<metrics::LatencyRecorder> recorder_;  ///< null = off
  std::unique_ptr<metrics::OpTracer> tracer_;           ///< null = off
  store::ShardedManager manager_;

  BlockingQueue<BufferedRequest> buffered_;  ///< Async mode slot pool.
  std::vector<std::thread> threads_;
  std::atomic<bool> running_ ATOMIC_PUBLISHED(thread start/stop gate){false};
  /// Admitted-but-unfinished requests; only maintained when admission
  /// control is on, so the default hot path carries zero extra work.
  std::atomic<std::size_t> inflight_ ATOMIC_PUBLISHED(admission window){0};

  /// Slot 0: network thread (sync mode); slots 1..N: processing workers.
  std::vector<WorkerMetrics> metrics_;
};

}  // namespace hykv::server
