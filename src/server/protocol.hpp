// Wire protocol between the hykv client library and the Memcached server.
//
// Binary little-endian framing (this is an in-process simulation; both ends
// share endianness). Opcodes ride in Message::opcode, correlation in wr_id.
//
//   SET  : [u32 key_len][u32 flags][i64 expiration][key][value]
//   GET  : [u32 key_len][key]
//   DEL  : [u32 key_len][key]
//   RESP : [u8 status][u32 flags][value...]          (value only for GET hits)
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/metrics.hpp"
#include "common/status.hpp"

namespace hykv::server {

enum Opcode : std::uint16_t {
  kOpSet = 1,
  kOpGet = 2,
  kOpDelete = 3,
  kOpResponse = 4,
  kOpAdd = 5,       ///< Store iff absent (payload = SET encoding).
  kOpReplace = 6,   ///< Store iff present (payload = SET encoding).
  kOpAppend = 7,    ///< Extend value at the end (payload = SET encoding).
  kOpPrepend = 8,   ///< Extend value at the front (payload = SET encoding).
  kOpIncr = 9,      ///< [u32 key_len][u64 delta][key]; resp value = LE u64.
  kOpDecr = 10,
  kOpTouch = 11,    ///< [u32 key_len][i64 expiration][key].
  kOpFlushAll = 12, ///< Empty payload; drops every item on the server.
  kOpStats = 13,    ///< Payload = optional subcommand bytes ("" = legacy
                    ///< counter text, "latency", "trace"); resp value =
                    ///< "key value\n" text (JSON for "trace").
  kOpGets = 14,     ///< GET encoding; resp value = [u64 cas][value bytes].
  kOpCas = 15,      ///< [u32 key_len][u32 flags][i64 exp][u64 cas][key][value].
  kOpBatch = 16,    ///< Coalesced frame: [u32 n] + n length-prefixed sub-
                    ///< requests, each [u16 opcode][u64 wr_id][u32 len][body].
  kOpBatchResponse = 17,  ///< [u32 n] + n of [u64 wr_id][u32 len][RESP bytes].
};

/// Observability op class of an opcode: the histogram bucket a well-formed
/// request of this opcode lands in (`stats latency`, client issue→complete).
/// Mirrors how handle() folds opcodes into the per-op ServerCounters, so
/// `stats latency` counts balance against `stats` counts; malformed requests
/// are recorded as Op::kOther regardless of opcode.
[[nodiscard]] constexpr metrics::Op op_class(std::uint16_t opcode) noexcept {
  switch (opcode) {
    case kOpSet:
    case kOpAdd:
    case kOpReplace:
    case kOpAppend:
    case kOpPrepend:
    case kOpIncr:
    case kOpDecr:
    case kOpCas:
      return metrics::Op::kSet;
    case kOpGet:
    case kOpGets:
      return metrics::Op::kGet;
    case kOpDelete:
      return metrics::Op::kDelete;
    case kOpTouch:
      return metrics::Op::kTouch;
    case kOpFlushAll:
    case kOpStats:
      return metrics::Op::kAdmin;
    default:
      return metrics::Op::kOther;
  }
}

struct SetRequest {
  std::string_view key;
  std::span<const char> value;
  std::uint32_t flags = 0;
  std::int64_t expiration = 0;
};

struct KeyRequest {
  std::string_view key;
};

struct Response {
  StatusCode status = StatusCode::kServerError;
  std::uint32_t flags = 0;
  std::span<const char> value{};
};

namespace detail {
inline void append_u32(std::vector<char>& out, std::uint32_t v) {
  const auto offset = out.size();
  out.resize(offset + 4);
  std::memcpy(out.data() + offset, &v, 4);
}
inline void append_i64(std::vector<char>& out, std::int64_t v) {
  const auto offset = out.size();
  out.resize(offset + 8);
  std::memcpy(out.data() + offset, &v, 8);
}
inline bool read_u32(std::span<const char> in, std::size_t& pos, std::uint32_t& v) {
  if (pos + 4 > in.size()) return false;
  std::memcpy(&v, in.data() + pos, 4);
  pos += 4;
  return true;
}
inline bool read_i64(std::span<const char> in, std::size_t& pos, std::int64_t& v) {
  if (pos + 8 > in.size()) return false;
  std::memcpy(&v, in.data() + pos, 8);
  pos += 8;
  return true;
}
}  // namespace detail

inline std::vector<char> encode_set(const SetRequest& req) {
  std::vector<char> out;
  out.reserve(16 + req.key.size() + req.value.size());
  detail::append_u32(out, static_cast<std::uint32_t>(req.key.size()));
  detail::append_u32(out, req.flags);
  detail::append_i64(out, req.expiration);
  out.insert(out.end(), req.key.begin(), req.key.end());
  out.insert(out.end(), req.value.begin(), req.value.end());
  return out;
}

/// Views into `payload`; the payload must outlive the request.
inline std::optional<SetRequest> decode_set(std::span<const char> payload) {
  std::size_t pos = 0;
  std::uint32_t key_len = 0;
  SetRequest req;
  if (!detail::read_u32(payload, pos, key_len)) return std::nullopt;
  if (!detail::read_u32(payload, pos, req.flags)) return std::nullopt;
  if (!detail::read_i64(payload, pos, req.expiration)) return std::nullopt;
  if (pos + key_len > payload.size()) return std::nullopt;
  req.key = std::string_view(payload.data() + pos, key_len);
  pos += key_len;
  req.value = payload.subspan(pos);
  return req;
}

inline std::vector<char> encode_key_request(std::string_view key) {
  std::vector<char> out;
  out.reserve(4 + key.size());
  detail::append_u32(out, static_cast<std::uint32_t>(key.size()));
  out.insert(out.end(), key.begin(), key.end());
  return out;
}

inline std::optional<KeyRequest> decode_key_request(std::span<const char> payload) {
  std::size_t pos = 0;
  std::uint32_t key_len = 0;
  if (!detail::read_u32(payload, pos, key_len)) return std::nullopt;
  if (pos + key_len != payload.size()) return std::nullopt;
  return KeyRequest{std::string_view(payload.data() + pos, key_len)};
}

inline std::vector<char> encode_response(StatusCode status, std::uint32_t flags,
                                         std::span<const char> value = {}) {
  std::vector<char> out;
  out.reserve(5 + value.size());
  out.push_back(static_cast<char>(status));
  detail::append_u32(out, flags);
  out.insert(out.end(), value.begin(), value.end());
  return out;
}

inline std::optional<Response> decode_response(std::span<const char> payload) {
  if (payload.size() < 5) return std::nullopt;
  Response resp;
  resp.status = static_cast<StatusCode>(payload[0]);
  std::size_t pos = 1;
  if (!detail::read_u32(payload, pos, resp.flags)) return std::nullopt;
  resp.value = payload.subspan(pos);
  return resp;
}

struct CounterRequest {
  std::string_view key;
  std::uint64_t delta = 0;
};

struct TouchRequest {
  std::string_view key;
  std::int64_t expiration = 0;
};

inline std::vector<char> encode_counter(std::string_view key, std::uint64_t delta) {
  std::vector<char> out;
  out.reserve(12 + key.size());
  detail::append_u32(out, static_cast<std::uint32_t>(key.size()));
  detail::append_i64(out, static_cast<std::int64_t>(delta));
  out.insert(out.end(), key.begin(), key.end());
  return out;
}

inline std::optional<CounterRequest> decode_counter(std::span<const char> payload) {
  std::size_t pos = 0;
  std::uint32_t key_len = 0;
  std::int64_t delta = 0;
  if (!detail::read_u32(payload, pos, key_len)) return std::nullopt;
  if (!detail::read_i64(payload, pos, delta)) return std::nullopt;
  if (pos + key_len != payload.size()) return std::nullopt;
  return CounterRequest{std::string_view(payload.data() + pos, key_len),
                        static_cast<std::uint64_t>(delta)};
}

inline std::vector<char> encode_touch(std::string_view key, std::int64_t expiration) {
  std::vector<char> out;
  out.reserve(12 + key.size());
  detail::append_u32(out, static_cast<std::uint32_t>(key.size()));
  detail::append_i64(out, expiration);
  out.insert(out.end(), key.begin(), key.end());
  return out;
}

inline std::optional<TouchRequest> decode_touch(std::span<const char> payload) {
  std::size_t pos = 0;
  std::uint32_t key_len = 0;
  TouchRequest req;
  if (!detail::read_u32(payload, pos, key_len)) return std::nullopt;
  if (!detail::read_i64(payload, pos, req.expiration)) return std::nullopt;
  if (pos + key_len != payload.size()) return std::nullopt;
  req.key = std::string_view(payload.data() + pos, key_len);
  return req;
}

struct CasRequest {
  std::string_view key;
  std::span<const char> value;
  std::uint32_t flags = 0;
  std::int64_t expiration = 0;
  std::uint64_t cas = 0;
};

inline std::vector<char> encode_cas(const CasRequest& req) {
  std::vector<char> out;
  out.reserve(24 + req.key.size() + req.value.size());
  detail::append_u32(out, static_cast<std::uint32_t>(req.key.size()));
  detail::append_u32(out, req.flags);
  detail::append_i64(out, req.expiration);
  detail::append_i64(out, static_cast<std::int64_t>(req.cas));
  out.insert(out.end(), req.key.begin(), req.key.end());
  out.insert(out.end(), req.value.begin(), req.value.end());
  return out;
}

inline std::optional<CasRequest> decode_cas(std::span<const char> payload) {
  std::size_t pos = 0;
  std::uint32_t key_len = 0;
  std::int64_t cas_bits = 0;
  CasRequest req;
  if (!detail::read_u32(payload, pos, key_len)) return std::nullopt;
  if (!detail::read_u32(payload, pos, req.flags)) return std::nullopt;
  if (!detail::read_i64(payload, pos, req.expiration)) return std::nullopt;
  if (!detail::read_i64(payload, pos, cas_bits)) return std::nullopt;
  req.cas = static_cast<std::uint64_t>(cas_bits);
  if (pos + key_len > payload.size()) return std::nullopt;
  req.key = std::string_view(payload.data() + pos, key_len);
  pos += key_len;
  req.value = payload.subspan(pos);
  return req;
}

// ---- Optional request-deadline header (overload control, DESIGN.md §8) ----
//
// A client propagating its op deadline prepends
//   [u32 kDeadlineMagic][i64 absolute_deadline_ns]
// to any request payload; the server strips it at receipt and sheds
// expired-on-arrival work with kBusy before paying the slab/SSD phase. The
// magic cannot collide with a legitimate first field: every request encoding
// starts with a key_len that the decoders bound by the frame size, and no
// frame approaches 3.5 GB. Decoding is deliberately lenient -- a truncated or
// malformed header yields "no deadline" with the payload untouched (the inner
// decoder then rejects it as malformed); it can never crash or over-read.

inline constexpr std::uint32_t kDeadlineMagic = 0xD14D71FEu;

struct DeadlineEnvelope {
  std::int64_t deadline_ns = 0;   ///< steady-clock ns since epoch; 0 = none.
  std::span<const char> inner{};  ///< Payload with the header stripped.
};

inline std::vector<char> with_deadline(std::int64_t deadline_ns,
                                       std::span<const char> inner) {
  std::vector<char> out;
  out.reserve(12 + inner.size());
  detail::append_u32(out, kDeadlineMagic);
  detail::append_i64(out, deadline_ns);
  out.insert(out.end(), inner.begin(), inner.end());
  return out;
}

inline DeadlineEnvelope split_deadline(std::span<const char> payload) {
  DeadlineEnvelope env;
  env.inner = payload;
  std::size_t pos = 0;
  std::uint32_t magic = 0;
  if (!detail::read_u32(payload, pos, magic)) return env;
  if (magic != kDeadlineMagic) return env;
  std::int64_t deadline_ns = 0;
  if (!detail::read_i64(payload, pos, deadline_ns)) return env;  // truncated
  if (deadline_ns <= 0) return env;  // nonsense deadline -> none
  env.deadline_ns = deadline_ns;
  env.inner = payload.subspan(pos);
  return env;
}

/// Counter responses carry the new value as 8 LE bytes.
inline std::vector<char> encode_counter_value(std::uint64_t value) {
  std::vector<char> out(8);
  std::memcpy(out.data(), &value, 8);
  return out;
}

inline std::optional<std::uint64_t> decode_counter_value(std::span<const char> payload) {
  if (payload.size() != 8) return std::nullopt;
  std::uint64_t v = 0;
  std::memcpy(&v, payload.data(), 8);
  return v;
}

// ---- Batched frames (doorbell batching, DESIGN.md §12) ----
//
// The client TX engine coalesces consecutive same-server requests into one
// kOpBatch frame so the per-message fabric costs (doorbell, propagation,
// response post) are paid once per frame instead of once per op. Layout
// (inner payload -- an optional deadline envelope may wrap the whole frame):
//
//   BATCH : [u32 op_count] then op_count times
//           [u16 opcode][u64 wr_id][u32 len][len bytes of that op's encoding]
//   BRESP : [u32 op_count] then op_count times
//           [u64 wr_id][u32 len][len bytes of RESP encoding]
//
// Correlation: the outer Message::wr_id carries the *first* sub-op's wr_id
// (so even a reply to an undecodable frame reaches a real pending entry);
// per-op completion rides on the wr_ids inside the frame. Decoding is strict
// where the handlers need it to be: zero ops, a count that cannot fit the
// remaining bytes, truncated items, or trailing garbage all yield nullopt
// (the server answers kInvalidArgument, never executes a partial frame).

namespace detail {
inline void append_u16(std::vector<char>& out, std::uint16_t v) {
  const auto offset = out.size();
  out.resize(offset + 2);
  std::memcpy(out.data() + offset, &v, 2);
}
inline bool read_u16(std::span<const char> in, std::size_t& pos, std::uint16_t& v) {
  if (pos + 2 > in.size()) return false;
  std::memcpy(&v, in.data() + pos, 2);
  pos += 2;
  return true;
}
inline void append_u64(std::vector<char>& out, std::uint64_t v) {
  const auto offset = out.size();
  out.resize(offset + 8);
  std::memcpy(out.data() + offset, &v, 8);
}
inline bool read_u64(std::span<const char> in, std::size_t& pos, std::uint64_t& v) {
  if (pos + 8 > in.size()) return false;
  std::memcpy(&v, in.data() + pos, 8);
  pos += 8;
  return true;
}
}  // namespace detail

/// One sub-request of a kOpBatch frame (views into the frame payload).
struct BatchItem {
  std::uint16_t opcode = 0;
  std::uint64_t wr_id = 0;
  std::span<const char> payload{};
};

/// One sub-response of a kOpBatchResponse frame (views into the payload).
struct BatchResponseItem {
  std::uint64_t wr_id = 0;
  std::span<const char> payload{};
};

/// Fixed bytes per batch item before its body ([u16 opcode][u64 wr][u32 len]).
inline constexpr std::size_t kBatchItemHeaderBytes = 14;
/// Fixed bytes per batch-response item ([u64 wr][u32 len]).
inline constexpr std::size_t kBatchResponseHeaderBytes = 12;

inline std::vector<char> encode_batch(std::span<const BatchItem> items) {
  std::size_t total = 4;
  for (const BatchItem& item : items) {
    total += kBatchItemHeaderBytes + item.payload.size();
  }
  std::vector<char> out;
  out.reserve(total);
  detail::append_u32(out, static_cast<std::uint32_t>(items.size()));
  for (const BatchItem& item : items) {
    detail::append_u16(out, item.opcode);
    detail::append_u64(out, item.wr_id);
    detail::append_u32(out, static_cast<std::uint32_t>(item.payload.size()));
    out.insert(out.end(), item.payload.begin(), item.payload.end());
  }
  return out;
}

inline std::optional<std::vector<BatchItem>> decode_batch(
    std::span<const char> payload) {
  std::size_t pos = 0;
  std::uint32_t count = 0;
  if (!detail::read_u32(payload, pos, count)) return std::nullopt;
  if (count == 0) return std::nullopt;  // empty frames are malformed
  // Oversized-count guard: each item needs at least its fixed header, so a
  // count the remaining bytes cannot possibly hold is rejected before any
  // reserve/parse work (a hostile 0xFFFFFFFF count must not allocate).
  if (count > (payload.size() - pos) / kBatchItemHeaderBytes) {
    return std::nullopt;
  }
  std::vector<BatchItem> items;
  items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    BatchItem item;
    std::uint32_t len = 0;
    if (!detail::read_u16(payload, pos, item.opcode)) return std::nullopt;
    if (!detail::read_u64(payload, pos, item.wr_id)) return std::nullopt;
    if (!detail::read_u32(payload, pos, len)) return std::nullopt;
    if (len > payload.size() - pos) return std::nullopt;
    item.payload = payload.subspan(pos, len);
    pos += len;
    items.push_back(item);
  }
  if (pos != payload.size()) return std::nullopt;  // trailing garbage
  return items;
}

inline std::vector<char> encode_batch_response(
    std::span<const BatchResponseItem> items) {
  std::size_t total = 4;
  for (const BatchResponseItem& item : items) {
    total += kBatchResponseHeaderBytes + item.payload.size();
  }
  std::vector<char> out;
  out.reserve(total);
  detail::append_u32(out, static_cast<std::uint32_t>(items.size()));
  for (const BatchResponseItem& item : items) {
    detail::append_u64(out, item.wr_id);
    detail::append_u32(out, static_cast<std::uint32_t>(item.payload.size()));
    out.insert(out.end(), item.payload.begin(), item.payload.end());
  }
  return out;
}

inline std::optional<std::vector<BatchResponseItem>> decode_batch_response(
    std::span<const char> payload) {
  std::size_t pos = 0;
  std::uint32_t count = 0;
  if (!detail::read_u32(payload, pos, count)) return std::nullopt;
  if (count == 0) return std::nullopt;
  if (count > (payload.size() - pos) / kBatchResponseHeaderBytes) {
    return std::nullopt;
  }
  std::vector<BatchResponseItem> items;
  items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    BatchResponseItem item;
    std::uint32_t len = 0;
    if (!detail::read_u64(payload, pos, item.wr_id)) return std::nullopt;
    if (!detail::read_u32(payload, pos, len)) return std::nullopt;
    if (len > payload.size() - pos) return std::nullopt;
    item.payload = payload.subspan(pos, len);
    pos += len;
    items.push_back(item);
  }
  if (pos != payload.size()) return std::nullopt;
  return items;
}

}  // namespace hykv::server
