#include "server/server.hpp"

#include <chrono>
#include <cstring>

#include "common/logging.hpp"
#include "server/protocol.hpp"

namespace hykv::server {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

void append_stat(std::string& out, std::string_view name, std::uint64_t v) {
  out.append(name);
  out.push_back(' ');
  out.append(std::to_string(v));
  out.push_back('\n');
}

// The `stats` schema: one row per line, in render order. The single source
// of truth -- render_stats_text iterates it, stats_field_names() exposes it
// to tests and the docs-consistency tool, so adding a counter here is the
// whole change (no magic line counts to chase). Compatibility rule: only
// ever APPEND rows; existing names and their relative order are frozen.
struct StatsSnapshot {
  const ServerCounters& counters;
  const store::ManagerStats& store;
  const store::SlabStats& slab;
  std::size_t item_count;
  unsigned shards;
};

struct StatsField {
  std::string_view name;
  std::uint64_t (*value)(const StatsSnapshot&);
};

constexpr StatsField kStatsFields[] = {
    {"requests", [](const StatsSnapshot& s) { return s.counters.requests; }},
    {"sets", [](const StatsSnapshot& s) { return s.counters.sets; }},
    {"gets", [](const StatsSnapshot& s) { return s.counters.gets; }},
    {"deletes", [](const StatsSnapshot& s) { return s.counters.deletes; }},
    {"touches", [](const StatsSnapshot& s) { return s.counters.touches; }},
    {"admin", [](const StatsSnapshot& s) { return s.counters.admin; }},
    {"malformed", [](const StatsSnapshot& s) { return s.counters.malformed; }},
    {"shed", [](const StatsSnapshot& s) { return s.counters.shed; }},
    {"expired_on_arrival",
     [](const StatsSnapshot& s) { return s.counters.expired_on_arrival; }},
    {"items",
     [](const StatsSnapshot& s) {
       return static_cast<std::uint64_t>(s.item_count);
     }},
    {"ram_hits", [](const StatsSnapshot& s) { return s.store.ram_hits; }},
    {"ssd_hits", [](const StatsSnapshot& s) { return s.store.ssd_hits; }},
    {"misses", [](const StatsSnapshot& s) { return s.store.misses; }},
    {"expired", [](const StatsSnapshot& s) { return s.store.expired; }},
    {"optimistic_hits",
     [](const StatsSnapshot& s) { return s.store.optimistic_hits; }},
    {"optimistic_retries",
     [](const StatsSnapshot& s) { return s.store.optimistic_retries; }},
    {"locked_fallbacks",
     [](const StatsSnapshot& s) { return s.store.locked_fallbacks; }},
    {"flushes", [](const StatsSnapshot& s) { return s.store.flushes; }},
    {"flushed_bytes",
     [](const StatsSnapshot& s) { return s.store.flushed_bytes; }},
    {"promotions", [](const StatsSnapshot& s) { return s.store.promotions; }},
    {"dropped_evictions",
     [](const StatsSnapshot& s) { return s.store.dropped_evictions; }},
    {"ssd_live_bytes",
     [](const StatsSnapshot& s) { return s.store.ssd_live_bytes; }},
    {"io_errors", [](const StatsSnapshot& s) { return s.store.io_errors; }},
    {"degraded",
     [](const StatsSnapshot& s) {
       return std::uint64_t{s.store.degraded ? 1u : 0u};
     }},
    {"degraded_shards",
     [](const StatsSnapshot& s) {
       return static_cast<std::uint64_t>(s.store.degraded_shards);
     }},
    {"shards",
     [](const StatsSnapshot& s) { return static_cast<std::uint64_t>(s.shards); }},
    {"slab_pages",
     [](const StatsSnapshot& s) {
       return static_cast<std::uint64_t>(s.slab.slab_pages);
     }},
    {"slab_reserved_bytes",
     [](const StatsSnapshot& s) {
       return static_cast<std::uint64_t>(s.slab.reserved_bytes);
     }},
    {"slab_used_chunks",
     [](const StatsSnapshot& s) {
       return static_cast<std::uint64_t>(s.slab.used_chunks);
     }},
    {"batches", [](const StatsSnapshot& s) { return s.counters.batches; }},
    {"batched_ops",
     [](const StatsSnapshot& s) { return s.counters.batched_ops; }},
};

/// Per-histogram stats emitted for each op/span histogram, in order.
constexpr std::string_view kHistogramStats[] = {"count", "mean_ns", "p50_ns",
                                                "p95_ns", "p99_ns", "p999_ns"};

void append_histogram(std::string& out, const std::string& prefix,
                      const LatencyHistogram& hist) {
  append_stat(out, prefix + "_count", hist.count());
  append_stat(out, prefix + "_mean_ns",
              static_cast<std::uint64_t>(hist.mean_ns()));
  append_stat(out, prefix + "_p50_ns", hist.percentile_ns(50));
  append_stat(out, prefix + "_p95_ns", hist.percentile_ns(95));
  append_stat(out, prefix + "_p99_ns", hist.percentile_ns(99));
  append_stat(out, prefix + "_p999_ns", hist.percentile_ns(99.9));
}

}  // namespace

std::string render_stats_text(const ServerCounters& counters,
                              const store::ManagerStats& store,
                              const store::SlabStats& slab,
                              std::size_t item_count, unsigned shards) {
  const StatsSnapshot snapshot{counters, store, slab, item_count, shards};
  std::string out;
  out.reserve(640);
  for (const StatsField& field : kStatsFields) {
    append_stat(out, field.name, field.value(snapshot));
  }
  return out;
}

std::vector<std::string_view> stats_field_names() {
  std::vector<std::string_view> names;
  names.reserve(std::size(kStatsFields));
  for (const StatsField& field : kStatsFields) names.push_back(field.name);
  return names;
}

std::string render_latency_text(const metrics::LatencyRecorder& recorder) {
  std::string out;
  out.reserve(4096);
  append_stat(out, "latency_recording", 1);
  for (std::size_t i = 0; i < metrics::kOpCount; ++i) {
    const auto op = static_cast<metrics::Op>(i);
    append_histogram(out, "latency_" + std::string(metrics::to_string(op)),
                     recorder.op_histogram(op));
  }
  for (std::size_t i = 0; i < metrics::kSpanCount; ++i) {
    const auto span = static_cast<metrics::Span>(i);
    append_histogram(out, "span_" + std::string(metrics::to_string(span)),
                     recorder.span_histogram(span));
  }
  return out;
}

std::vector<std::string> latency_field_names() {
  std::vector<std::string> names;
  names.reserve(1 + (metrics::kOpCount + metrics::kSpanCount) *
                        std::size(kHistogramStats));
  names.emplace_back("latency_recording");
  for (std::size_t i = 0; i < metrics::kOpCount; ++i) {
    const auto op = static_cast<metrics::Op>(i);
    for (const std::string_view stat : kHistogramStats) {
      names.push_back("latency_" + std::string(metrics::to_string(op)) + "_" +
                      std::string(stat));
    }
  }
  for (std::size_t i = 0; i < metrics::kSpanCount; ++i) {
    const auto span = static_cast<metrics::Span>(i);
    for (const std::string_view stat : kHistogramStats) {
      names.push_back("span_" + std::string(metrics::to_string(span)) + "_" +
                      std::string(stat));
    }
  }
  return names;
}

namespace {
store::ManagerConfig with_recorder(store::ManagerConfig manager,
                                   metrics::LatencyRecorder* recorder) {
  manager.latency = recorder;
  return manager;
}
}  // namespace

MemcachedServer::MemcachedServer(net::Fabric& fabric, ServerConfig config,
                                 ssd::StorageStack* storage)
    : fabric_(fabric),
      config_(std::move(config)),
      endpoint_(fabric_.create_endpoint(config_.name)),
      recorder_(config_.record_latency
                    ? std::make_unique<metrics::LatencyRecorder>()
                    : nullptr),
      tracer_(config_.trace_sample_shift > 0
                  ? std::make_unique<metrics::OpTracer>(
                        config_.trace_sample_shift)
                  : nullptr),
      manager_(with_recorder(config_.manager, recorder_.get()), storage),
      buffered_(config_.async_processing ? config_.request_buffer_slots : 0),
      metrics_(1 + (config_.async_processing ? config_.processing_threads : 0)) {}

MemcachedServer::~MemcachedServer() { stop(); }

void MemcachedServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  threads_.emplace_back([this] { network_main(); });
  if (config_.async_processing) {
    for (unsigned i = 0; i < config_.processing_threads; ++i) {
      threads_.emplace_back([this, i] { worker_main(i); });
    }
  }
}

void MemcachedServer::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  endpoint_->close();
  buffered_.close();
  for (auto& thread : threads_) thread.join();
  threads_.clear();
}

void MemcachedServer::network_main() {
  const bool admission_on =
      config_.max_inflight > 0 || config_.admission_queue_limit > 0;
  while (true) {
    auto msg = endpoint_->recv();
    if (!msg.ok()) break;  // endpoint closed
    const sim::TimePoint received_at = sim::now();
    if (config_.async_processing) {
      if (admission_on) {
        if (!admit(msg.value())) continue;  // shed with kBusy
        inflight_.fetch_add(1, kRelaxed);
      }
      // Buffer the request; a full slot pool stalls this receive loop,
      // back-pressuring clients that try to run too far ahead.
      if (!buffered_.push(
              BufferedRequest{std::move(msg).value(), received_at})) {
        break;
      }
    } else {
      handle(msg.value(), metrics_[0],
             RequestContext{received_at, received_at});
    }
  }
}

bool MemcachedServer::admit(const net::Message& request) {
  const bool queue_full = config_.admission_queue_limit > 0 &&
                          buffered_.size() >= config_.admission_queue_limit;
  const bool inflight_full = config_.max_inflight > 0 &&
                             inflight_.load(kRelaxed) >= config_.max_inflight;
  if (!queue_full && !inflight_full) return true;
  // Reject cheaply at receipt: no slab/SSD phase -- just a kBusy response so
  // the client backs off instead of queueing behind work the server cannot
  // absorb. The network thread owns metrics slot 0, so these are the usual
  // uncontended relaxed adds.
  WorkerMetrics& metrics = metrics_[0];
  if (request.opcode == kOpBatch) {
    // Shedding accounting stays exact per sub-op: a frame of n ops sheds n
    // requests, and every sub-op gets its own kBusy so the client retries
    // each one individually (no silent timeouts). This pays the frame decode
    // -- header walking only, no store work -- which is the price of exact
    // admission accounting under batching.
    const auto envelope = split_deadline(request.payload);
    const auto items = decode_batch(envelope.inner);
    if (items.has_value()) {
      const std::size_t n = items->size();
      metrics.requests.fetch_add(n, kRelaxed);
      metrics.shed.fetch_add(n, kRelaxed);
      metrics.batches.fetch_add(1, kRelaxed);
      metrics.batched_ops.fetch_add(n, kRelaxed);
      std::vector<std::vector<char>> bodies;
      std::vector<BatchResponseItem> responses;
      bodies.reserve(n);
      responses.reserve(n);
      for (const BatchItem& item : *items) {
        bodies.push_back(encode_response(StatusCode::kBusy, 0));
        responses.push_back(BatchResponseItem{item.wr_id, bodies.back()});
      }
      endpoint_->send(request.src, kOpBatchResponse, request.wr_id,
                      encode_batch_response(responses));
      return false;
    }
    // Undecodable frame: fall through to the single-request accounting (one
    // malformed-looking arrival, one plain kBusy).
  }
  metrics.requests.fetch_add(1, kRelaxed);
  metrics.shed.fetch_add(1, kRelaxed);
  endpoint_->send(request.src, kOpResponse, request.wr_id,
                  encode_response(StatusCode::kBusy, 0));
  return false;
}

void MemcachedServer::worker_main(std::size_t worker_index) {
  WorkerMetrics& metrics = metrics_[1 + worker_index];
  const bool admission_on =
      config_.max_inflight > 0 || config_.admission_queue_limit > 0;
  while (auto buffered = buffered_.pop()) {
    handle(buffered->msg, metrics,
           RequestContext{buffered->received_at, sim::now()});
    if (admission_on) inflight_.fetch_sub(1, kRelaxed);
  }
}

MemcachedServer::OpResult MemcachedServer::execute_op(
    std::uint16_t opcode, std::span<const char> body, WorkerMetrics& metrics,
    StageBreakdown& stages, std::vector<char>& value, metrics::Op& op_cls) {
  OpResult result;
  StatusCode& status = result.status;
  std::uint32_t& flags = result.flags;
  bool& has_value = result.has_value;

  // Malformed requests land in the kOther histogram whatever their opcode
  // claimed (mirrors the `malformed` counter).
  const auto count_malformed = [&metrics, &op_cls] {
    metrics.malformed.fetch_add(1, kRelaxed);
    op_cls = metrics::Op::kOther;
  };

  switch (opcode) {
    case kOpSet: {
      const auto req = decode_set(body);
      if (req.has_value()) {
        status = manager_.set(req->key, req->value, req->flags,
                              req->expiration, &stages);
        metrics.sets.fetch_add(1, kRelaxed);
      } else {
        count_malformed();
      }
      break;
    }
    case kOpGet: {
      const auto req = decode_key_request(body);
      if (req.has_value()) {
        status = manager_.get(req->key, value, flags, &stages);
        has_value = ok(status);
        metrics.gets.fetch_add(1, kRelaxed);
      } else {
        count_malformed();
      }
      break;
    }
    case kOpDelete: {
      const auto req = decode_key_request(body);
      if (req.has_value()) {
        status = manager_.del(req->key);
        metrics.deletes.fetch_add(1, kRelaxed);
      } else {
        count_malformed();
      }
      break;
    }
    case kOpAdd:
    case kOpReplace:
    case kOpAppend:
    case kOpPrepend: {
      const auto req = decode_set(body);
      if (req.has_value()) {
        switch (opcode) {
          case kOpAdd:
            status = manager_.add(req->key, req->value, req->flags,
                                  req->expiration, &stages);
            break;
          case kOpReplace:
            status = manager_.replace(req->key, req->value, req->flags,
                                      req->expiration, &stages);
            break;
          case kOpAppend:
            status = manager_.append(req->key, req->value, &stages);
            break;
          default:
            status = manager_.prepend(req->key, req->value, &stages);
            break;
        }
        metrics.sets.fetch_add(1, kRelaxed);
      } else {
        count_malformed();
      }
      break;
    }
    case kOpIncr:
    case kOpDecr: {
      const auto req = decode_counter(body);
      if (req.has_value()) {
        const auto result_v = opcode == kOpIncr
                                  ? manager_.incr(req->key, req->delta, &stages)
                                  : manager_.decr(req->key, req->delta, &stages);
        status = result_v.status();
        if (result_v.ok()) {
          value = encode_counter_value(result_v.value());
          has_value = true;
        }
        metrics.sets.fetch_add(1, kRelaxed);
      } else {
        count_malformed();
      }
      break;
    }
    case kOpTouch: {
      const auto req = decode_touch(body);
      if (req.has_value()) {
        status = manager_.touch(req->key, req->expiration);
        metrics.touches.fetch_add(1, kRelaxed);
      } else {
        count_malformed();
      }
      break;
    }
    case kOpFlushAll: {
      manager_.clear();
      status = StatusCode::kOk;
      metrics.admin.fetch_add(1, kRelaxed);
      break;
    }
    case kOpStats: {
      // Subcommands ride in the payload: "" = legacy counter text (frozen
      // format, byte-identical whether recording is on or off), "latency" =
      // histogram percentiles, "trace" = sampled timelines as JSON. Unknown
      // subcommands answer kInvalidArgument but still count as admin so
      // requests == ops_sum() holds.
      const std::string_view what =
          body.empty() ? std::string_view{}
                       : std::string_view(body.data(), body.size());
      if (what.empty()) {
        value = render_stats();
        has_value = true;
        status = StatusCode::kOk;
      } else if (what == "latency") {
        const std::string text = recorder_ != nullptr
                                     ? render_latency_text(*recorder_)
                                     : std::string("latency_recording 0\n");
        value.assign(text.begin(), text.end());
        has_value = true;
        status = StatusCode::kOk;
      } else if (what == "trace") {
        const std::string text =
            tracer_ != nullptr ? tracer_->to_json()
                               : std::string("{\"sample_shift\":0,\"traces\":[]}\n");
        value.assign(text.begin(), text.end());
        has_value = true;
        status = StatusCode::kOk;
      } else {
        status = StatusCode::kInvalidArgument;
      }
      metrics.admin.fetch_add(1, kRelaxed);
      break;
    }
    case kOpGets: {
      const auto req = decode_key_request(body);
      if (req.has_value()) {
        std::vector<char> raw;
        std::uint64_t cas = 0;
        status = manager_.gets(req->key, raw, flags, cas, &stages);
        if (ok(status)) {
          value.resize(8 + raw.size());
          std::memcpy(value.data(), &cas, 8);
          std::memcpy(value.data() + 8, raw.data(), raw.size());
          has_value = true;
        }
        metrics.gets.fetch_add(1, kRelaxed);
      } else {
        count_malformed();
      }
      break;
    }
    case kOpCas: {
      const auto req = decode_cas(body);
      if (req.has_value()) {
        status = manager_.cas(req->key, req->value, req->flags,
                              req->expiration, req->cas, &stages);
        metrics.sets.fetch_add(1, kRelaxed);
      } else {
        count_malformed();
      }
      break;
    }
    default: {
      count_malformed();
      break;
    }
  }
  return result;
}

void MemcachedServer::handle(const net::Message& request,
                             WorkerMetrics& metrics,
                             const RequestContext& ctx) {
  using Clock = std::chrono::steady_clock;

  // Observability (DESIGN.md §10). Recorder/tracer touches are skipped
  // entirely when both are off -- not even a clock read.
  metrics::LatencyRecorder* const recorder = recorder_.get();
  if (recorder != nullptr) {
    // Fabric-transfer span: post -> delivery, stamped by the sender. Guarded
    // because hand-built messages (tests) may lack the stamp. Recorded once
    // per *message*, so a batch frame contributes one transfer span.
    if (request.sent_at != sim::TimePoint{}) {
      recorder->record_span(metrics::Span::kFabricTransfer,
                            metrics::delta_ns(request.sent_at,
                                              request.deliver_at));
    }
    if (ctx.dequeued_at > ctx.received_at) {
      recorder->record_span(metrics::Span::kAdmissionWait,
                            metrics::delta_ns(ctx.received_at,
                                              ctx.dequeued_at));
    }
  }

  // Deadline propagation: strip the optional client-deadline header before
  // anything else so expired work is dropped *before* paying the slab/SSD
  // phase -- the client has already given up on it.
  const auto envelope = split_deadline(request.payload);

  if (request.opcode == kOpBatch) {
    // Coalesced frame: vectorized execution with per-sub-op accounting.
    // Batch frames are not individually traced (the tracer samples single
    // requests); their latency still lands per sub-op in the recorder.
    handle_batch(request, envelope.deadline_ns, envelope.inner, metrics, ctx);
    return;
  }

  metrics.requests.fetch_add(1, kRelaxed);

  std::uint64_t trace_seq = 0;
  const bool traced = tracer_ != nullptr && tracer_->sample(trace_seq);
  const bool observing = recorder != nullptr || traced;
  metrics::Op op_cls = op_class(request.opcode);

  // Expired on arrival: the reply is kBusy (cheap, no side effects); a
  // client that raced its own deadline treats it exactly like the timeout
  // it was about to declare.
  if (envelope.deadline_ns != 0 &&
      Clock::now().time_since_epoch().count() > envelope.deadline_ns) {
    metrics.expired_on_arrival.fetch_add(1, kRelaxed);
    endpoint_->send(request.src, kOpResponse, request.wr_id,
                    encode_response(StatusCode::kBusy, 0));
    return;
  }
  const std::span<const char> body = envelope.inner;

  // Store phase span: opcode dispatch including the store call(s).
  const Clock::time_point store_start =
      observing ? Clock::now() : Clock::time_point{};

  std::vector<char> value;
  StageBreakdown stages;
  const OpResult op = execute_op(request.opcode, body, metrics, stages, value,
                                 op_cls);
  const StatusCode status = op.status;

  // Server response stage: format + hand to the NIC.
  const auto response_start = Clock::now();
  const auto payload = encode_response(
      status, op.flags,
      op.has_value ? std::span<const char>(value) : std::span<const char>{});
  HYKV_DEBUG("server %llu handled wr=%llu op=%u -> status=%u",
             static_cast<unsigned long long>(endpoint_->id()),
             static_cast<unsigned long long>(request.wr_id), request.opcode,
             static_cast<unsigned>(status));
  endpoint_->send(request.src, kOpResponse, request.wr_id, payload);
  const auto response_end = Clock::now();
  stages.add(Stage::kServerResponse, response_end - response_start);
  stages.add_ops();

  if (observing) {
    // End-to-end latency is receipt -> response sent; the fabric-transfer
    // span (recorded above) covers the wire time before receipt.
    if (recorder != nullptr) {
      recorder->record_op(op_cls,
                          metrics::delta_ns(ctx.received_at, response_end));
      recorder->record_span(metrics::Span::kStorePhase,
                            metrics::delta_ns(store_start, response_start));
      recorder->record_span(metrics::Span::kResponse,
                            metrics::delta_ns(response_start, response_end));
    }
    if (traced) {
      // The trace timeline starts at the earliest instant we know about the
      // request: the fabric post when stamped, else server receipt.
      const sim::TimePoint origin = request.sent_at != sim::TimePoint{}
                                        ? request.sent_at
                                        : ctx.received_at;
      metrics::Trace trace;
      trace.seq = trace_seq;
      trace.op = op_cls;
      trace.status = static_cast<std::uint8_t>(status);
      trace.start_ns = static_cast<std::uint64_t>(
          origin.time_since_epoch().count() < 0
              ? 0
              : origin.time_since_epoch().count());
      trace.total_ns = metrics::delta_ns(origin, response_end);
      if (request.sent_at != sim::TimePoint{}) {
        trace.add_span(metrics::Span::kFabricTransfer, 0,
                       metrics::delta_ns(request.sent_at, request.deliver_at));
      }
      if (ctx.dequeued_at > ctx.received_at) {
        trace.add_span(metrics::Span::kAdmissionWait,
                       metrics::delta_ns(origin, ctx.received_at),
                       metrics::delta_ns(ctx.received_at, ctx.dequeued_at));
      }
      trace.add_span(metrics::Span::kStorePhase,
                     metrics::delta_ns(origin, store_start),
                     metrics::delta_ns(store_start, response_start));
      trace.add_span(metrics::Span::kResponse,
                     metrics::delta_ns(origin, response_start),
                     metrics::delta_ns(response_start, response_end));
      tracer_->publish(trace);
    }
  }

  // Publish this request's stage time into the thread's slot (uncontended
  // relaxed adds -- no shared lock anywhere on the request path).
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::uint64_t ns = stages.total_ns(static_cast<Stage>(i));
    if (ns != 0) metrics.stage_ns[i].fetch_add(ns, kRelaxed);
  }
  metrics.stage_ops.fetch_add(stages.ops(), kRelaxed);
}

void MemcachedServer::handle_batch(const net::Message& request,
                                   std::int64_t deadline_ns,
                                   std::span<const char> body,
                                   WorkerMetrics& metrics,
                                   const RequestContext& ctx) {
  using Clock = std::chrono::steady_clock;
  metrics::LatencyRecorder* const recorder = recorder_.get();

  const auto items = decode_batch(body);
  if (!items.has_value()) {
    // Undecodable frame: ONE malformed request (there is no trustworthy
    // sub-op count to charge), answered with a single plain response so the
    // client's first pending op -- the outer wr_id -- fails fast; any other
    // ops the sender meant to pack will cancel at their deadlines.
    metrics.requests.fetch_add(1, kRelaxed);
    metrics.malformed.fetch_add(1, kRelaxed);
    const auto start = ctx.received_at;
    endpoint_->send(request.src, kOpResponse, request.wr_id,
                    encode_response(StatusCode::kInvalidArgument, 0));
    if (recorder != nullptr) {
      recorder->record_op(metrics::Op::kOther,
                          metrics::delta_ns(start, sim::now()));
    }
    return;
  }

  // Admission-exact accounting: a frame of n sub-ops is n requests, exactly
  // as if they had arrived individually (requests == ops_sum() invariant).
  const std::size_t n = items->size();
  metrics.requests.fetch_add(n, kRelaxed);
  metrics.batches.fetch_add(1, kRelaxed);
  metrics.batched_ops.fetch_add(n, kRelaxed);

  std::vector<std::vector<char>> bodies;
  std::vector<BatchResponseItem> responses;
  bodies.reserve(n);
  responses.reserve(n);

  // The frame carries one propagated deadline (the tightest sub-op's): if it
  // passed in flight, every sub-op is expired on arrival -- all-kBusy reply,
  // no store work.
  if (deadline_ns != 0 &&
      Clock::now().time_since_epoch().count() > deadline_ns) {
    metrics.expired_on_arrival.fetch_add(n, kRelaxed);
    for (const BatchItem& item : *items) {
      bodies.push_back(encode_response(StatusCode::kBusy, 0));
      responses.push_back(BatchResponseItem{item.wr_id, bodies.back()});
    }
    endpoint_->send(request.src, kOpBatchResponse, request.wr_id,
                    encode_batch_response(responses));
    return;
  }

  // Vectorized store phase: each sub-op runs through the same dispatch as a
  // single request (same counters, same store calls); the store-phase span
  // covers the whole frame.
  StageBreakdown stages;
  std::vector<metrics::Op> op_classes;
  op_classes.reserve(n);
  const Clock::time_point store_start =
      recorder != nullptr ? Clock::now() : Clock::time_point{};
  for (const BatchItem& item : *items) {
    std::vector<char> value;
    metrics::Op op_cls = op_class(item.opcode);
    const OpResult op =
        execute_op(item.opcode, item.payload, metrics, stages, value, op_cls);
    op_classes.push_back(op_cls);
    bodies.push_back(encode_response(
        op.status, op.flags,
        op.has_value ? std::span<const char>(value) : std::span<const char>{}));
    responses.push_back(BatchResponseItem{item.wr_id, bodies.back()});
  }

  // One response doorbell for the whole frame -- the server-side half of the
  // amortization the client started.
  const auto response_start = Clock::now();
  const auto frame = encode_batch_response(responses);
  HYKV_DEBUG("server %llu handled batch wr=%llu n=%zu",
             static_cast<unsigned long long>(endpoint_->id()),
             static_cast<unsigned long long>(request.wr_id), n);
  endpoint_->send(request.src, kOpBatchResponse, request.wr_id, frame);
  const auto response_end = Clock::now();
  stages.add(Stage::kServerResponse, response_end - response_start);
  stages.add_ops(n);

  if (recorder != nullptr) {
    // Per sub-op latency (receipt -> batched response sent) keeps the
    // METRICS.md balance: sum of op counts == requests - shed -
    // expired_on_arrival. Store/response spans are per *frame* -- spans
    // measure pipeline phases, not ops.
    for (const metrics::Op op_cls : op_classes) {
      recorder->record_op(op_cls,
                          metrics::delta_ns(ctx.received_at, response_end));
    }
    recorder->record_span(metrics::Span::kStorePhase,
                          metrics::delta_ns(store_start, response_start));
    recorder->record_span(metrics::Span::kResponse,
                          metrics::delta_ns(response_start, response_end));
  }

  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::uint64_t ns = stages.total_ns(static_cast<Stage>(i));
    if (ns != 0) metrics.stage_ns[i].fetch_add(ns, kRelaxed);
  }
  metrics.stage_ops.fetch_add(stages.ops(), kRelaxed);
}

std::vector<char> MemcachedServer::render_stats() const {
  const std::string text =
      render_stats_text(counters(), manager_.stats(), manager_.slab_stats(),
                        manager_.item_count(), manager_.num_shards());
  return {text.begin(), text.end()};
}

StageBreakdown MemcachedServer::breakdown() const {
  StageBreakdown merged;
  for (const auto& slot : metrics_) {
    for (std::size_t i = 0; i < kStageCount; ++i) {
      merged.add(static_cast<Stage>(i),
                 std::chrono::nanoseconds(static_cast<std::int64_t>(
                     slot.stage_ns[i].load(kRelaxed))));
    }
    merged.add_ops(slot.stage_ops.load(kRelaxed));
  }
  return merged;
}

ServerCounters MemcachedServer::counters() const {
  ServerCounters c;
  for (const auto& slot : metrics_) {
    c.requests += slot.requests.load(kRelaxed);
    c.sets += slot.sets.load(kRelaxed);
    c.gets += slot.gets.load(kRelaxed);
    c.deletes += slot.deletes.load(kRelaxed);
    c.touches += slot.touches.load(kRelaxed);
    c.admin += slot.admin.load(kRelaxed);
    c.malformed += slot.malformed.load(kRelaxed);
    c.shed += slot.shed.load(kRelaxed);
    c.expired_on_arrival += slot.expired_on_arrival.load(kRelaxed);
    c.batches += slot.batches.load(kRelaxed);
    c.batched_ops += slot.batched_ops.load(kRelaxed);
  }
  return c;
}

void MemcachedServer::reset_metrics() {
  for (auto& slot : metrics_) {
    for (auto& ns : slot.stage_ns) ns.store(0, kRelaxed);
    slot.stage_ops.store(0, kRelaxed);
    slot.requests.store(0, kRelaxed);
    slot.sets.store(0, kRelaxed);
    slot.gets.store(0, kRelaxed);
    slot.deletes.store(0, kRelaxed);
    slot.touches.store(0, kRelaxed);
    slot.admin.store(0, kRelaxed);
    slot.malformed.store(0, kRelaxed);
    slot.shed.store(0, kRelaxed);
    slot.expired_on_arrival.store(0, kRelaxed);
    slot.batches.store(0, kRelaxed);
    slot.batched_ops.store(0, kRelaxed);
  }
  if (recorder_ != nullptr) recorder_->reset();
  if (tracer_ != nullptr) tracer_->reset();
}

}  // namespace hykv::server
