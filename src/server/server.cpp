#include "server/server.hpp"

#include <chrono>
#include <cstring>

#include "common/logging.hpp"
#include "server/protocol.hpp"

namespace hykv::server {

MemcachedServer::MemcachedServer(net::Fabric& fabric, ServerConfig config,
                                 ssd::StorageStack* storage)
    : fabric_(fabric),
      config_(std::move(config)),
      endpoint_(fabric_.create_endpoint(config_.name)),
      manager_(config_.manager, storage),
      buffered_(config_.async_processing ? config_.request_buffer_slots : 0) {}

MemcachedServer::~MemcachedServer() { stop(); }

void MemcachedServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  threads_.emplace_back([this] { network_main(); });
  if (config_.async_processing) {
    for (unsigned i = 0; i < config_.processing_threads; ++i) {
      threads_.emplace_back([this, i] { worker_main(i); });
    }
  }
}

void MemcachedServer::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  endpoint_->close();
  buffered_.close();
  for (auto& thread : threads_) thread.join();
  threads_.clear();
}

void MemcachedServer::network_main() {
  StageBreakdown local;
  while (true) {
    auto msg = endpoint_->recv();
    if (!msg.ok()) break;  // endpoint closed
    if (config_.async_processing) {
      // Buffer the request; a full slot pool stalls this receive loop,
      // back-pressuring clients that try to run too far ahead.
      if (!buffered_.push(std::move(msg).value())) break;
    } else {
      handle(msg.value(), local);
      const std::scoped_lock lock(metrics_mu_);
      stages_.merge(local);
      local.reset();
    }
  }
}

void MemcachedServer::worker_main(std::size_t) {
  StageBreakdown local;
  while (auto msg = buffered_.pop()) {
    handle(*msg, local);
    const std::scoped_lock lock(metrics_mu_);
    stages_.merge(local);
    local.reset();
  }
}

void MemcachedServer::handle(const net::Message& request,
                             StageBreakdown& stages) {
  using Clock = std::chrono::steady_clock;
  StatusCode status = StatusCode::kInvalidArgument;
  std::uint32_t flags = 0;
  std::vector<char> value;
  bool has_value = false;

  {
    const std::scoped_lock lock(metrics_mu_);
    ++counters_.requests;
  }

  switch (request.opcode) {
    case kOpSet: {
      const auto req = decode_set(request.payload);
      if (req.has_value()) {
        status = manager_.set(req->key, req->value, req->flags,
                              req->expiration, &stages);
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.sets;
      } else {
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.malformed;
      }
      break;
    }
    case kOpGet: {
      const auto req = decode_key_request(request.payload);
      if (req.has_value()) {
        status = manager_.get(req->key, value, flags, &stages);
        has_value = ok(status);
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.gets;
      } else {
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.malformed;
      }
      break;
    }
    case kOpDelete: {
      const auto req = decode_key_request(request.payload);
      if (req.has_value()) {
        status = manager_.del(req->key);
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.deletes;
      } else {
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.malformed;
      }
      break;
    }
    case kOpAdd:
    case kOpReplace:
    case kOpAppend:
    case kOpPrepend: {
      const auto req = decode_set(request.payload);
      if (req.has_value()) {
        switch (request.opcode) {
          case kOpAdd:
            status = manager_.add(req->key, req->value, req->flags,
                                  req->expiration, &stages);
            break;
          case kOpReplace:
            status = manager_.replace(req->key, req->value, req->flags,
                                      req->expiration, &stages);
            break;
          case kOpAppend:
            status = manager_.append(req->key, req->value, &stages);
            break;
          default:
            status = manager_.prepend(req->key, req->value, &stages);
            break;
        }
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.sets;
      } else {
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.malformed;
      }
      break;
    }
    case kOpIncr:
    case kOpDecr: {
      const auto req = decode_counter(request.payload);
      if (req.has_value()) {
        const auto result = request.opcode == kOpIncr
                                ? manager_.incr(req->key, req->delta, &stages)
                                : manager_.decr(req->key, req->delta, &stages);
        status = result.status();
        if (result.ok()) {
          value = encode_counter_value(result.value());
          has_value = true;
        }
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.sets;
      } else {
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.malformed;
      }
      break;
    }
    case kOpTouch: {
      const auto req = decode_touch(request.payload);
      if (req.has_value()) {
        status = manager_.touch(req->key, req->expiration);
      } else {
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.malformed;
      }
      break;
    }
    case kOpFlushAll: {
      manager_.clear();
      status = StatusCode::kOk;
      break;
    }
    case kOpStats: {
      value = render_stats();
      has_value = true;
      status = StatusCode::kOk;
      break;
    }
    case kOpGets: {
      const auto req = decode_key_request(request.payload);
      if (req.has_value()) {
        std::vector<char> raw;
        std::uint64_t cas = 0;
        status = manager_.gets(req->key, raw, flags, cas, &stages);
        if (ok(status)) {
          value.resize(8 + raw.size());
          std::memcpy(value.data(), &cas, 8);
          std::memcpy(value.data() + 8, raw.data(), raw.size());
          has_value = true;
        }
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.gets;
      } else {
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.malformed;
      }
      break;
    }
    case kOpCas: {
      const auto req = decode_cas(request.payload);
      if (req.has_value()) {
        status = manager_.cas(req->key, req->value, req->flags,
                              req->expiration, req->cas, &stages);
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.sets;
      } else {
        const std::scoped_lock lock(metrics_mu_);
        ++counters_.malformed;
      }
      break;
    }
    default: {
      const std::scoped_lock lock(metrics_mu_);
      ++counters_.malformed;
      break;
    }
  }

  // Server response stage: format + hand to the NIC.
  const auto response_start = Clock::now();
  const auto payload = encode_response(
      status, flags,
      has_value ? std::span<const char>(value) : std::span<const char>{});
  HYKV_DEBUG("server %llu handled wr=%llu op=%u -> status=%u",
             static_cast<unsigned long long>(endpoint_->id()),
             static_cast<unsigned long long>(request.wr_id), request.opcode,
             static_cast<unsigned>(status));
  endpoint_->send(request.src, kOpResponse, request.wr_id, payload);
  stages.add(Stage::kServerResponse, Clock::now() - response_start);
  stages.add_ops();
}

std::vector<char> MemcachedServer::render_stats() const {
  const auto store = manager_.stats();
  const auto slab = manager_.slab_stats();
  ServerCounters c;
  {
    const std::scoped_lock lock(metrics_mu_);
    c = counters_;
  }
  char buf[1024];
  const int len = std::snprintf(
      buf, sizeof(buf),
      "requests %llu\nsets %llu\ngets %llu\ndeletes %llu\nmalformed %llu\n"
      "items %zu\nram_hits %llu\nssd_hits %llu\nmisses %llu\nexpired %llu\n"
      "flushes %llu\nflushed_bytes %llu\npromotions %llu\n"
      "dropped_evictions %llu\nssd_live_bytes %llu\n"
      "io_errors %llu\ndegraded %d\n"
      "slab_pages %zu\nslab_reserved_bytes %zu\nslab_used_chunks %zu\n",
      static_cast<unsigned long long>(c.requests),
      static_cast<unsigned long long>(c.sets),
      static_cast<unsigned long long>(c.gets),
      static_cast<unsigned long long>(c.deletes),
      static_cast<unsigned long long>(c.malformed), manager_.item_count(),
      static_cast<unsigned long long>(store.ram_hits),
      static_cast<unsigned long long>(store.ssd_hits),
      static_cast<unsigned long long>(store.misses),
      static_cast<unsigned long long>(store.expired),
      static_cast<unsigned long long>(store.flushes),
      static_cast<unsigned long long>(store.flushed_bytes),
      static_cast<unsigned long long>(store.promotions),
      static_cast<unsigned long long>(store.dropped_evictions),
      static_cast<unsigned long long>(store.ssd_live_bytes),
      static_cast<unsigned long long>(store.io_errors),
      store.degraded ? 1 : 0, slab.slab_pages,
      slab.reserved_bytes, slab.used_chunks);
  return {buf, buf + (len > 0 ? len : 0)};
}

StageBreakdown MemcachedServer::breakdown() const {
  const std::scoped_lock lock(metrics_mu_);
  return stages_;
}

ServerCounters MemcachedServer::counters() const {
  const std::scoped_lock lock(metrics_mu_);
  return counters_;
}

void MemcachedServer::reset_metrics() {
  const std::scoped_lock lock(metrics_mu_);
  stages_.reset();
  counters_ = ServerCounters{};
}

}  // namespace hykv::server
