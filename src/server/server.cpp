#include "server/server.hpp"

#include <chrono>
#include <cstring>

#include "common/logging.hpp"
#include "server/protocol.hpp"

namespace hykv::server {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

void append_stat(std::string& out, std::string_view name, std::uint64_t v) {
  out.append(name);
  out.push_back(' ');
  out.append(std::to_string(v));
  out.push_back('\n');
}

}  // namespace

std::string render_stats_text(const ServerCounters& counters,
                              const store::ManagerStats& store,
                              const store::SlabStats& slab,
                              std::size_t item_count, unsigned shards) {
  std::string out;
  out.reserve(640);
  append_stat(out, "requests", counters.requests);
  append_stat(out, "sets", counters.sets);
  append_stat(out, "gets", counters.gets);
  append_stat(out, "deletes", counters.deletes);
  append_stat(out, "touches", counters.touches);
  append_stat(out, "admin", counters.admin);
  append_stat(out, "malformed", counters.malformed);
  append_stat(out, "shed", counters.shed);
  append_stat(out, "expired_on_arrival", counters.expired_on_arrival);
  append_stat(out, "items", item_count);
  append_stat(out, "ram_hits", store.ram_hits);
  append_stat(out, "ssd_hits", store.ssd_hits);
  append_stat(out, "misses", store.misses);
  append_stat(out, "expired", store.expired);
  append_stat(out, "optimistic_hits", store.optimistic_hits);
  append_stat(out, "optimistic_retries", store.optimistic_retries);
  append_stat(out, "locked_fallbacks", store.locked_fallbacks);
  append_stat(out, "flushes", store.flushes);
  append_stat(out, "flushed_bytes", store.flushed_bytes);
  append_stat(out, "promotions", store.promotions);
  append_stat(out, "dropped_evictions", store.dropped_evictions);
  append_stat(out, "ssd_live_bytes", store.ssd_live_bytes);
  append_stat(out, "io_errors", store.io_errors);
  append_stat(out, "degraded", store.degraded ? 1 : 0);
  append_stat(out, "degraded_shards", store.degraded_shards);
  append_stat(out, "shards", shards);
  append_stat(out, "slab_pages", slab.slab_pages);
  append_stat(out, "slab_reserved_bytes", slab.reserved_bytes);
  append_stat(out, "slab_used_chunks", slab.used_chunks);
  return out;
}

MemcachedServer::MemcachedServer(net::Fabric& fabric, ServerConfig config,
                                 ssd::StorageStack* storage)
    : fabric_(fabric),
      config_(std::move(config)),
      endpoint_(fabric_.create_endpoint(config_.name)),
      manager_(config_.manager, storage),
      buffered_(config_.async_processing ? config_.request_buffer_slots : 0),
      metrics_(1 + (config_.async_processing ? config_.processing_threads : 0)) {}

MemcachedServer::~MemcachedServer() { stop(); }

void MemcachedServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  threads_.emplace_back([this] { network_main(); });
  if (config_.async_processing) {
    for (unsigned i = 0; i < config_.processing_threads; ++i) {
      threads_.emplace_back([this, i] { worker_main(i); });
    }
  }
}

void MemcachedServer::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  endpoint_->close();
  buffered_.close();
  for (auto& thread : threads_) thread.join();
  threads_.clear();
}

void MemcachedServer::network_main() {
  const bool admission_on =
      config_.max_inflight > 0 || config_.admission_queue_limit > 0;
  while (true) {
    auto msg = endpoint_->recv();
    if (!msg.ok()) break;  // endpoint closed
    if (config_.async_processing) {
      if (admission_on) {
        if (!admit(msg.value())) continue;  // shed with kBusy
        inflight_.fetch_add(1, kRelaxed);
      }
      // Buffer the request; a full slot pool stalls this receive loop,
      // back-pressuring clients that try to run too far ahead.
      if (!buffered_.push(std::move(msg).value())) break;
    } else {
      handle(msg.value(), metrics_[0]);
    }
  }
}

bool MemcachedServer::admit(const net::Message& request) {
  const bool queue_full = config_.admission_queue_limit > 0 &&
                          buffered_.size() >= config_.admission_queue_limit;
  const bool inflight_full = config_.max_inflight > 0 &&
                             inflight_.load(kRelaxed) >= config_.max_inflight;
  if (!queue_full && !inflight_full) return true;
  // Reject cheaply at receipt: no payload decode, no slab/SSD phase -- just
  // a 5-byte kBusy response so the client backs off instead of queueing
  // behind work the server cannot absorb. The network thread owns metrics
  // slot 0, so these are the usual uncontended relaxed adds.
  WorkerMetrics& metrics = metrics_[0];
  metrics.requests.fetch_add(1, kRelaxed);
  metrics.shed.fetch_add(1, kRelaxed);
  endpoint_->send(request.src, kOpResponse, request.wr_id,
                  encode_response(StatusCode::kBusy, 0));
  return false;
}

void MemcachedServer::worker_main(std::size_t worker_index) {
  WorkerMetrics& metrics = metrics_[1 + worker_index];
  const bool admission_on =
      config_.max_inflight > 0 || config_.admission_queue_limit > 0;
  while (auto msg = buffered_.pop()) {
    handle(*msg, metrics);
    if (admission_on) inflight_.fetch_sub(1, kRelaxed);
  }
}

void MemcachedServer::handle(const net::Message& request,
                             WorkerMetrics& metrics) {
  using Clock = std::chrono::steady_clock;
  StatusCode status = StatusCode::kInvalidArgument;
  std::uint32_t flags = 0;
  std::vector<char> value;
  bool has_value = false;
  StageBreakdown stages;

  metrics.requests.fetch_add(1, kRelaxed);

  // Deadline propagation: strip the optional client-deadline header and drop
  // expired-on-arrival work *before* paying the slab/SSD phase -- the client
  // has already given up on it, so executing it is pure waste. The reply is
  // kBusy (cheap, no side effects); a client that raced its own deadline
  // treats it exactly like the timeout it was about to declare.
  const auto envelope = split_deadline(request.payload);
  if (envelope.deadline_ns != 0 &&
      Clock::now().time_since_epoch().count() > envelope.deadline_ns) {
    metrics.expired_on_arrival.fetch_add(1, kRelaxed);
    endpoint_->send(request.src, kOpResponse, request.wr_id,
                    encode_response(StatusCode::kBusy, 0));
    return;
  }
  const std::span<const char> body = envelope.inner;

  switch (request.opcode) {
    case kOpSet: {
      const auto req = decode_set(body);
      if (req.has_value()) {
        status = manager_.set(req->key, req->value, req->flags,
                              req->expiration, &stages);
        metrics.sets.fetch_add(1, kRelaxed);
      } else {
        metrics.malformed.fetch_add(1, kRelaxed);
      }
      break;
    }
    case kOpGet: {
      const auto req = decode_key_request(body);
      if (req.has_value()) {
        status = manager_.get(req->key, value, flags, &stages);
        has_value = ok(status);
        metrics.gets.fetch_add(1, kRelaxed);
      } else {
        metrics.malformed.fetch_add(1, kRelaxed);
      }
      break;
    }
    case kOpDelete: {
      const auto req = decode_key_request(body);
      if (req.has_value()) {
        status = manager_.del(req->key);
        metrics.deletes.fetch_add(1, kRelaxed);
      } else {
        metrics.malformed.fetch_add(1, kRelaxed);
      }
      break;
    }
    case kOpAdd:
    case kOpReplace:
    case kOpAppend:
    case kOpPrepend: {
      const auto req = decode_set(body);
      if (req.has_value()) {
        switch (request.opcode) {
          case kOpAdd:
            status = manager_.add(req->key, req->value, req->flags,
                                  req->expiration, &stages);
            break;
          case kOpReplace:
            status = manager_.replace(req->key, req->value, req->flags,
                                      req->expiration, &stages);
            break;
          case kOpAppend:
            status = manager_.append(req->key, req->value, &stages);
            break;
          default:
            status = manager_.prepend(req->key, req->value, &stages);
            break;
        }
        metrics.sets.fetch_add(1, kRelaxed);
      } else {
        metrics.malformed.fetch_add(1, kRelaxed);
      }
      break;
    }
    case kOpIncr:
    case kOpDecr: {
      const auto req = decode_counter(body);
      if (req.has_value()) {
        const auto result = request.opcode == kOpIncr
                                ? manager_.incr(req->key, req->delta, &stages)
                                : manager_.decr(req->key, req->delta, &stages);
        status = result.status();
        if (result.ok()) {
          value = encode_counter_value(result.value());
          has_value = true;
        }
        metrics.sets.fetch_add(1, kRelaxed);
      } else {
        metrics.malformed.fetch_add(1, kRelaxed);
      }
      break;
    }
    case kOpTouch: {
      const auto req = decode_touch(body);
      if (req.has_value()) {
        status = manager_.touch(req->key, req->expiration);
        metrics.touches.fetch_add(1, kRelaxed);
      } else {
        metrics.malformed.fetch_add(1, kRelaxed);
      }
      break;
    }
    case kOpFlushAll: {
      manager_.clear();
      status = StatusCode::kOk;
      metrics.admin.fetch_add(1, kRelaxed);
      break;
    }
    case kOpStats: {
      value = render_stats();
      has_value = true;
      status = StatusCode::kOk;
      metrics.admin.fetch_add(1, kRelaxed);
      break;
    }
    case kOpGets: {
      const auto req = decode_key_request(body);
      if (req.has_value()) {
        std::vector<char> raw;
        std::uint64_t cas = 0;
        status = manager_.gets(req->key, raw, flags, cas, &stages);
        if (ok(status)) {
          value.resize(8 + raw.size());
          std::memcpy(value.data(), &cas, 8);
          std::memcpy(value.data() + 8, raw.data(), raw.size());
          has_value = true;
        }
        metrics.gets.fetch_add(1, kRelaxed);
      } else {
        metrics.malformed.fetch_add(1, kRelaxed);
      }
      break;
    }
    case kOpCas: {
      const auto req = decode_cas(body);
      if (req.has_value()) {
        status = manager_.cas(req->key, req->value, req->flags,
                              req->expiration, req->cas, &stages);
        metrics.sets.fetch_add(1, kRelaxed);
      } else {
        metrics.malformed.fetch_add(1, kRelaxed);
      }
      break;
    }
    default: {
      metrics.malformed.fetch_add(1, kRelaxed);
      break;
    }
  }

  // Server response stage: format + hand to the NIC.
  const auto response_start = Clock::now();
  const auto payload = encode_response(
      status, flags,
      has_value ? std::span<const char>(value) : std::span<const char>{});
  HYKV_DEBUG("server %llu handled wr=%llu op=%u -> status=%u",
             static_cast<unsigned long long>(endpoint_->id()),
             static_cast<unsigned long long>(request.wr_id), request.opcode,
             static_cast<unsigned>(status));
  endpoint_->send(request.src, kOpResponse, request.wr_id, payload);
  stages.add(Stage::kServerResponse, Clock::now() - response_start);
  stages.add_ops();

  // Publish this request's stage time into the thread's slot (uncontended
  // relaxed adds -- no shared lock anywhere on the request path).
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::uint64_t ns = stages.total_ns(static_cast<Stage>(i));
    if (ns != 0) metrics.stage_ns[i].fetch_add(ns, kRelaxed);
  }
  metrics.stage_ops.fetch_add(stages.ops(), kRelaxed);
}

std::vector<char> MemcachedServer::render_stats() const {
  const std::string text =
      render_stats_text(counters(), manager_.stats(), manager_.slab_stats(),
                        manager_.item_count(), manager_.num_shards());
  return {text.begin(), text.end()};
}

StageBreakdown MemcachedServer::breakdown() const {
  StageBreakdown merged;
  for (const auto& slot : metrics_) {
    for (std::size_t i = 0; i < kStageCount; ++i) {
      merged.add(static_cast<Stage>(i),
                 std::chrono::nanoseconds(static_cast<std::int64_t>(
                     slot.stage_ns[i].load(kRelaxed))));
    }
    merged.add_ops(slot.stage_ops.load(kRelaxed));
  }
  return merged;
}

ServerCounters MemcachedServer::counters() const {
  ServerCounters c;
  for (const auto& slot : metrics_) {
    c.requests += slot.requests.load(kRelaxed);
    c.sets += slot.sets.load(kRelaxed);
    c.gets += slot.gets.load(kRelaxed);
    c.deletes += slot.deletes.load(kRelaxed);
    c.touches += slot.touches.load(kRelaxed);
    c.admin += slot.admin.load(kRelaxed);
    c.malformed += slot.malformed.load(kRelaxed);
    c.shed += slot.shed.load(kRelaxed);
    c.expired_on_arrival += slot.expired_on_arrival.load(kRelaxed);
  }
  return c;
}

void MemcachedServer::reset_metrics() {
  for (auto& slot : metrics_) {
    for (auto& ns : slot.stage_ns) ns.store(0, kRelaxed);
    slot.stage_ops.store(0, kRelaxed);
    slot.requests.store(0, kRelaxed);
    slot.sets.store(0, kRelaxed);
    slot.gets.store(0, kRelaxed);
    slot.deletes.store(0, kRelaxed);
    slot.touches.store(0, kRelaxed);
    slot.admin.store(0, kRelaxed);
    slot.malformed.store(0, kRelaxed);
    slot.shed.store(0, kRelaxed);
    slot.expired_on_arrival.store(0, kRelaxed);
  }
}

}  // namespace hykv::server
