// OHB-style micro-benchmark engine (Section VI-A): configurable key-value
// size, data-access distribution (Uniform / Zipf), read:write mix and API
// family, plus the block-based bursty-I/O pattern of Listing 2 and a
// multi-client throughput driver.
//
// Measurement model
//   Blocking ops record true per-op latency.
//   Non-blocking ops are issued up to a window; while requests are in
//   flight the driver performs synthetic compute in small chunks and polls
//   completion (memcached_test style). Time inside client calls counts as
//   *blocked*; compute/poll time counts as *available*. overlap_fraction =
//   available / total -- exactly the metric of Fig. 7(a).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "common/histogram.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "core/design.hpp"
#include "core/testbed.hpp"

namespace hykv::workload {

enum class Pattern : std::uint8_t { kUniform = 0, kZipf };

struct WorkloadConfig {
  std::uint64_t key_count = 1000;   ///< Working-set size in keys.
  std::size_t value_bytes = 32 << 10;
  double read_fraction = 0.5;       ///< 1.0 = read-only, 0.5 = 50:50.
  Pattern pattern = Pattern::kZipf;
  double zipf_theta = 0.99;
  std::uint64_t operations = 1000;
  core::ApiMode api = core::ApiMode::kBlocking;
  std::uint64_t seed = 42;
  std::size_t window = 64;          ///< Max outstanding non-blocking requests.
  sim::Nanos poll_compute = sim::us(2);  ///< Compute chunk between polls.
  bool verify_values = false;       ///< Check payload integrity on every hit.
};

struct WorkloadResult {
  LatencyHistogram op_latency;  ///< Per-op latency (blocking) / issue cost (non-blocking).
  LatencyHistogram read_latency;   ///< Blocking Get latencies.
  LatencyHistogram write_latency;  ///< Blocking Set latencies.
  sim::Nanos total_time{0};
  sim::Nanos blocked_time{0};   ///< Time inside client API calls/waits.
  std::uint64_t operations = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t errors = 0;
  std::uint64_t busy = 0;  ///< Ops shed with kBusy (overload, not a failure).
  std::uint64_t verify_failures = 0;

  [[nodiscard]] double avg_latency_us() const {
    return operations == 0 ? 0.0
                           : static_cast<double>(total_time.count()) /
                                 static_cast<double>(operations) / 1e3;
  }
  [[nodiscard]] double throughput_kops() const {
    return total_time.count() == 0
               ? 0.0
               : static_cast<double>(operations) /
                     (static_cast<double>(total_time.count()) / 1e9) / 1e3;
  }
  [[nodiscard]] double overlap_fraction() const {
    return total_time.count() == 0
               ? 0.0
               : 1.0 - static_cast<double>(blocked_time.count()) /
                           static_cast<double>(total_time.count());
  }
  void merge(const WorkloadResult& other);
};

/// YCSB core-workload presets over the paper's micro-benchmark engine
/// (Section VI-A cites YCSB as the pattern source):
///   'A' update-heavy 50:50 Zipf, 'B' read-mostly 95:5 Zipf,
///   'C' read-only Zipf, 'R' read-dominant 99:1 Zipf (the GET-heavy mix the
///   non-blocking read path targets), 'U' uniform 50:50 (the paper's
///   Uniform pattern).
WorkloadConfig ycsb_preset(char preset, std::uint64_t key_count,
                           std::size_t value_bytes, std::uint64_t operations);

/// Deterministic payload for a key index (shared by preload, verification
/// and the backend resolver).
std::vector<char> dataset_value(std::uint64_t key_index, std::size_t value_bytes);

/// Backend resolver serving the synthetic dataset (for in-memory designs'
/// miss path) without materialising it in RAM.
client::BackendDb::Resolver dataset_resolver(std::uint64_t key_count,
                                             std::size_t value_bytes);

/// Loads keys [0, key_count) into the cluster through `client`. Run under
/// sim::ScopedTimeScale(0) when preload time should not be modelled.
void preload(client::Client& client, const WorkloadConfig& config);

/// Runs the mixed Set/Get workload on one client.
WorkloadResult run(client::Client& client, const WorkloadConfig& config);

/// Multi-client aggregated throughput (Fig. 7(c)): spawns `num_clients`
/// threads, each with its own Client, all running `config`.
WorkloadResult run_multi(core::TestBed& bed, unsigned num_clients,
                         const WorkloadConfig& config);

// ---- Bursty block I/O (Listing 2 / Fig. 8(b)) ---------------------------

struct BlockIoConfig {
  std::size_t block_bytes = 2 << 20;
  std::size_t chunk_bytes = 256 << 10;
  std::size_t total_bytes = 64 << 20;
  core::ApiMode api = core::ApiMode::kBlocking;
  std::uint64_t seed = 7;
};

struct BlockIoResult {
  LatencyHistogram write_block_latency;
  LatencyHistogram read_block_latency;
  std::uint64_t blocks = 0;
  std::uint64_t errors = 0;
  std::uint64_t verify_failures = 0;
};

/// Writes the dataset block by block (each block split into chunks, chunks
/// issued with the configured API, completion awaited per block), then reads
/// it all back the same way, verifying every chunk.
BlockIoResult run_block_io(client::Client& client, const BlockIoConfig& config);

}  // namespace hykv::workload
