#include "workload/workload.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <charconv>
#include <cstring>
#include <thread>

#include "common/hash.hpp"
#include "common/logging.hpp"

namespace hykv::workload {
namespace {

using Clock = std::chrono::steady_clock;

// Shared immutable payload pool. Values are deterministic slices of this
// pool, so sets are zero-copy-safe (iset may read the buffer at any later
// time) and verification is a cheap comparison against the same slice.
constexpr std::size_t kPoolBytes = (std::size_t{4} << 20) + (std::size_t{1} << 20);

const std::vector<char>& payload_pool() {
  static const std::vector<char> pool = [] {
    std::vector<char> p(kPoolBytes);
    Rng rng(0xDA7A5E7);
    rng.fill(p.data(), p.size());
    return p;
  }();
  return pool;
}

std::span<const char> dataset_span(std::uint64_t key_index,
                                   std::size_t value_bytes) {
  assert(value_bytes <= (std::size_t{1} << 20));
  const std::size_t offset = (mix64(key_index) % (std::size_t{4} << 20)) & ~std::size_t{7};
  return {payload_pool().data() + offset, value_bytes};
}

std::optional<std::uint64_t> parse_key_index(std::string_view key) {
  // make_key format: "key-%016x".
  if (key.size() != 20 || key.substr(0, 4) != "key-") return std::nullopt;
  std::uint64_t index = 0;
  const auto* begin = key.data() + 4;
  const auto [ptr, ec] = std::from_chars(begin, key.data() + key.size(), index, 16);
  if (ec != std::errc{} || ptr != key.data() + key.size()) return std::nullopt;
  return index;
}

/// Key-index generator behind the configured distribution.
class KeyPicker {
 public:
  KeyPicker(const WorkloadConfig& config, std::uint64_t seed)
      : pattern_(config.pattern),
        uniform_(config.key_count, seed),
        zipf_(config.key_count, config.zipf_theta, seed) {}

  std::uint64_t next() {
    return pattern_ == Pattern::kUniform ? uniform_.next() : zipf_.next();
  }

 private:
  Pattern pattern_;
  UniformGenerator uniform_;
  ScrambledZipfGenerator zipf_;
};

/// One in-flight non-blocking operation. Buffers are owned by the slot and
/// reused across operations -- the Listing 2 application pattern, which also
/// means the engine's registration cache stays hot (a fresh buffer per op
/// would pay a cold ibv_reg_mr each time).
struct Slot {
  client::Request request;
  std::vector<char> dest;       ///< Get destination buffer.
  std::vector<char> value_buf;  ///< Set staging buffer (stable until done).
  std::uint64_t key_index = 0;
  bool is_read = false;
  bool in_use = false;
};

}  // namespace

std::vector<char> dataset_value(std::uint64_t key_index, std::size_t value_bytes) {
  const auto span = dataset_span(key_index, value_bytes);
  return {span.begin(), span.end()};
}

client::BackendDb::Resolver dataset_resolver(std::uint64_t key_count,
                                             std::size_t value_bytes) {
  return [key_count, value_bytes](
             std::string_view key) -> std::optional<std::vector<char>> {
    const auto index = parse_key_index(key);
    if (!index.has_value() || *index >= key_count) return std::nullopt;
    return dataset_value(*index, value_bytes);
  };
}

WorkloadConfig ycsb_preset(char preset, std::uint64_t key_count,
                           std::size_t value_bytes, std::uint64_t operations) {
  WorkloadConfig cfg;
  cfg.key_count = key_count;
  cfg.value_bytes = value_bytes;
  cfg.operations = operations;
  cfg.pattern = Pattern::kZipf;
  switch (preset) {
    case 'A': cfg.read_fraction = 0.5; break;
    case 'B': cfg.read_fraction = 0.95; break;
    case 'C': cfg.read_fraction = 1.0; break;
    case 'R': cfg.read_fraction = 0.99; break;
    case 'U':
      cfg.read_fraction = 0.5;
      cfg.pattern = Pattern::kUniform;
      break;
    default: cfg.read_fraction = 0.5; break;
  }
  return cfg;
}

void WorkloadResult::merge(const WorkloadResult& other) {
  op_latency.merge(other.op_latency);
  read_latency.merge(other.read_latency);
  write_latency.merge(other.write_latency);
  total_time = std::max(total_time, other.total_time);
  blocked_time += other.blocked_time;
  operations += other.operations;
  reads += other.reads;
  writes += other.writes;
  hits += other.hits;
  misses += other.misses;
  errors += other.errors;
  busy += other.busy;
  verify_failures += other.verify_failures;
}

void preload(client::Client& client, const WorkloadConfig& config) {
  for (std::uint64_t i = 0; i < config.key_count; ++i) {
    const StatusCode code =
        client.set(make_key(i), dataset_span(i, config.value_bytes));
    if (!ok(code)) {
      HYKV_WARN("preload: set(%llu) -> %.*s",
                static_cast<unsigned long long>(i),
                static_cast<int>(status_name(code).size()), status_name(code).data());
    }
  }
}

WorkloadResult run(client::Client& client, const WorkloadConfig& config) {
  WorkloadResult result;
  KeyPicker picker(config, config.seed);
  Rng mix_rng(config.seed ^ 0x5EED);

  const auto run_start = Clock::now();
  auto blocked = sim::Nanos{0};

  if (config.api == core::ApiMode::kBlocking) {
    std::vector<char> out;
    out.reserve(config.value_bytes);
    for (std::uint64_t op = 0; op < config.operations; ++op) {
      const std::uint64_t key_index = picker.next();
      const std::string key = make_key(key_index);
      const bool is_read = mix_rng.next_double() < config.read_fraction;
      const auto t0 = Clock::now();
      if (is_read) {
        const StatusCode code = client.get(key, out);
        const auto dt = Clock::now() - t0;
        blocked += dt;
        result.op_latency.record(dt);
        result.read_latency.record(dt);
        ++result.reads;
        if (ok(code)) {
          ++result.hits;
          if (config.verify_values &&
              !std::ranges::equal(out, dataset_span(key_index, config.value_bytes))) {
            ++result.verify_failures;
          }
        } else if (code == StatusCode::kNotFound) {
          ++result.misses;
        } else if (code == StatusCode::kBusy) {
          ++result.busy;  // shed by overload control, not a failure
        } else {
          ++result.errors;
        }
      } else {
        const StatusCode code =
            client.set(key, dataset_span(key_index, config.value_bytes));
        const auto dt = Clock::now() - t0;
        blocked += dt;
        result.op_latency.record(dt);
        result.write_latency.record(dt);
        ++result.writes;
        if (code == StatusCode::kBusy) {
          ++result.busy;
        } else if (!ok(code)) {
          ++result.errors;
        }
      }
      ++result.operations;
    }
  } else {
    const bool buffered = config.api == core::ApiMode::kNonBlockingB;
    std::vector<std::unique_ptr<Slot>> slots;
    slots.reserve(config.window);
    for (std::size_t i = 0; i < config.window; ++i) {
      slots.push_back(std::make_unique<Slot>());
      slots.back()->dest.resize(config.value_bytes);
      slots.back()->value_buf.resize(config.value_bytes);
    }

    auto reap = [&](Slot& slot) {
      // Completion semantics: wait/test returned true -> for Gets the value
      // sits in the user's buffer, for Sets the pair is stored.
      const StatusCode code = slot.request.status();
      if (slot.is_read) {
        ++result.reads;
        if (ok(code)) {
          ++result.hits;
          if (config.verify_values &&
              !std::ranges::equal(
                  std::span<const char>(slot.dest.data(),
                                        slot.request.value_length()),
                  dataset_span(slot.key_index, config.value_bytes))) {
            ++result.verify_failures;
          }
        } else if (code == StatusCode::kNotFound) {
          ++result.misses;
        } else if (code == StatusCode::kBusy) {
          ++result.busy;
        } else {
          ++result.errors;
        }
      } else {
        ++result.writes;
        if (code == StatusCode::kBusy) {
          ++result.busy;
        } else if (!ok(code)) {
          ++result.errors;
        }
      }
      slot.in_use = false;
      ++result.operations;
    };

    auto poll_once = [&]() -> bool {
      bool reaped = false;
      for (auto& slot : slots) {
        if (slot->in_use && client.test(slot->request)) {
          reap(*slot);
          reaped = true;
        }
      }
      return reaped;
    };

    auto acquire = [&]() -> Slot* {
      while (true) {
        for (auto& slot : slots) {
          if (!slot->in_use) return slot.get();
        }
        // Window full: do useful computation, then poll (memcached_test).
        // Coarse sleep: compute must not spin the core away from the
        // server/progress threads it is supposed to overlap with.
        if (!poll_once()) sim::advance_coarse(config.poll_compute);
      }
    };

    for (std::uint64_t op = 0; op < config.operations; ++op) {
      Slot* slot = acquire();
      slot->key_index = picker.next();
      slot->is_read = mix_rng.next_double() < config.read_fraction;
      slot->in_use = true;
      const std::string key = make_key(slot->key_index);

      const auto t0 = Clock::now();
      StatusCode code;
      if (slot->is_read) {
        code = buffered ? client.bget(key, slot->dest, slot->request)
                        : client.iget(key, slot->dest, slot->request);
      } else {
        const auto value = dataset_span(slot->key_index, config.value_bytes);
        std::memcpy(slot->value_buf.data(), value.data(), value.size());
        const std::span<const char> staged(slot->value_buf.data(), value.size());
        code = buffered ? client.bset(key, staged, 0, 0, slot->request)
                        : client.iset(key, staged, 0, 0, slot->request);
      }
      const auto dt = Clock::now() - t0;
      blocked += dt;
      result.op_latency.record(dt);  // issue latency for non-blocking ops
      if (!ok(code)) {
        // kBusy at issue = the local fail-fast window refused it (overload
        // control working as designed), not an error.
        if (code == StatusCode::kBusy) {
          ++result.busy;
        } else {
          ++result.errors;
        }
        slot->in_use = false;
        ++result.operations;
      }
    }

    // Drain: compute + test until all requests complete (Listing 2 pattern).
    while (std::any_of(slots.begin(), slots.end(),
                       [](const auto& s) { return s->in_use; })) {
      if (!poll_once()) sim::advance_coarse(config.poll_compute);
    }
  }

  result.total_time = Clock::now() - run_start;
  result.blocked_time = blocked;
  return result;
}

WorkloadResult run_multi(core::TestBed& bed, unsigned num_clients,
                         const WorkloadConfig& config) {
  std::vector<WorkloadResult> results(num_clients);
  std::vector<std::thread> threads;
  threads.reserve(num_clients);
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};

  const auto wall_start = Clock::now();
  for (unsigned i = 0; i < num_clients; ++i) {
    threads.emplace_back([&, i] {
      auto client = bed.make_client("wl-client-" + std::to_string(i));
      WorkloadConfig mine = config;
      mine.seed = config.seed + i * 7919;
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      results[i] = run(*client, mine);
    });
  }
  while (ready.load() < num_clients) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const auto parallel_start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  const auto wall = Clock::now() - parallel_start;
  (void)wall_start;

  WorkloadResult merged;
  for (auto& r : results) merged.merge(r);
  merged.total_time = wall;  // aggregated throughput uses parallel wall time
  return merged;
}

BlockIoResult run_block_io(client::Client& client, const BlockIoConfig& config) {
  BlockIoResult result;
  const std::size_t chunks_per_block =
      std::max<std::size_t>(1, config.block_bytes / config.chunk_bytes);
  const std::size_t num_blocks =
      std::max<std::size_t>(1, config.total_bytes / config.block_bytes);
  const bool blocking = config.api == core::ApiMode::kBlocking;
  const bool buffered = config.api == core::ApiMode::kNonBlockingB;

  auto chunk_key = [](std::size_t block, std::size_t chunk) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "blk-%08x-%08x",
                  static_cast<unsigned>(block), static_cast<unsigned>(chunk));
    return std::string(buf);
  };
  auto chunk_payload = [&](std::size_t block, std::size_t chunk) {
    return dataset_span(block * chunks_per_block + chunk + 0xB10C,
                        config.chunk_bytes);
  };

  std::vector<std::unique_ptr<client::Request>> requests;
  std::vector<std::vector<char>> dests(chunks_per_block);
  for (std::size_t c = 0; c < chunks_per_block; ++c) {
    requests.push_back(std::make_unique<client::Request>());
    dests[c].resize(config.chunk_bytes);
  }

  // ---- Write pass: Listing 2's write_kv_pairs_to_memcached ----
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const auto t0 = Clock::now();
    if (blocking) {
      for (std::size_t c = 0; c < chunks_per_block; ++c) {
        if (!ok(client.set(chunk_key(b, c), chunk_payload(b, c)))) ++result.errors;
      }
    } else {
      for (std::size_t c = 0; c < chunks_per_block; ++c) {
        const StatusCode code =
            buffered ? client.bset(chunk_key(b, c), chunk_payload(b, c), 0, 0,
                                   *requests[c])
                     : client.iset(chunk_key(b, c), chunk_payload(b, c), 0, 0,
                                   *requests[c]);
        if (!ok(code)) ++result.errors;
        (void)client.test(*requests[c]);  // opportunistic progress check
      }
      for (auto& req : requests) client.wait(*req);
      for (auto& req : requests) {
        if (!ok(req->status())) ++result.errors;
      }
    }
    result.write_block_latency.record(Clock::now() - t0);
    ++result.blocks;
  }

  // ---- Read pass: read_kv_pairs_from_memcached ----
  std::vector<char> out;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const auto t0 = Clock::now();
    if (blocking) {
      for (std::size_t c = 0; c < chunks_per_block; ++c) {
        if (!ok(client.get(chunk_key(b, c), out))) {
          ++result.errors;
        } else if (!std::ranges::equal(out, chunk_payload(b, c))) {
          ++result.verify_failures;
        }
      }
    } else {
      for (std::size_t c = 0; c < chunks_per_block; ++c) {
        const StatusCode code =
            buffered ? client.bget(chunk_key(b, c), dests[c], *requests[c])
                     : client.iget(chunk_key(b, c), dests[c], *requests[c]);
        if (!ok(code)) ++result.errors;
      }
      for (auto& req : requests) client.wait(*req);
      for (std::size_t c = 0; c < chunks_per_block; ++c) {
        if (!ok(requests[c]->status())) {
          ++result.errors;
        } else if (!std::ranges::equal(
                       std::span<const char>(dests[c].data(),
                                             requests[c]->value_length()),
                       chunk_payload(b, c))) {
          ++result.verify_failures;
        }
      }
    }
    result.read_block_latency.record(Clock::now() - t0);
  }
  return result;
}

}  // namespace hykv::workload
