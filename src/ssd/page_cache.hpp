// Simulated OS page cache with asynchronous write-back.
//
// The cached-I/O and mmap-I/O engines route through this component: writes
// pay only host-side costs (copy / page-touch) and become *dirty* bytes that
// a background flusher later writes to the device, exactly like Linux
// write-back. Writers throttle when dirty bytes exceed a high watermark
// (Linux dirty_ratio behaviour) so sustained overload still observes device
// speed -- this is what bounds the cached-I/O advantage in Fig. 4 / Fig. 7c.
//
// Residency granularity is the extent. The hybrid slab manager always writes
// whole extents (one per flushed slab or item run), so per-extent residency
// is exact for every access pattern hykv generates. Partial writes are
// supported for data correctness but only toggle residency when they cover
// the full extent.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <thread>
#include <unordered_map>

#include "common/mutex.hpp"
#include "common/profiles.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "ssd/device.hpp"

namespace hykv::ssd {

struct PageCacheConfig {
  std::size_t dirty_high_watermark = std::size_t{32} << 20;
  std::size_t dirty_low_watermark = std::size_t{16} << 20;
  std::size_t memory_limit = std::size_t{192} << 20;  ///< Clean+dirty resident bytes.
  HostIoProfile host{};
};

struct PageCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writeback_bytes = 0;
  std::uint64_t throttled_ns = 0;  ///< Writer time spent blocked on dirty limit.
  std::uint64_t evictions = 0;
};

class PageCache {
 public:
  PageCache(SsdDevice& device, PageCacheConfig config);
  ~PageCache();

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// write(2)-style cached write: syscall overhead + copy cost, dirty bytes
  /// queued for write-back, throttles above the high watermark.
  StatusCode write(ExtentId id, std::size_t offset, std::span<const char> data)
      EXCLUDES(mu_);

  /// Cached read: residency hit costs host copy; miss pays a device read and
  /// populates the cache.
  StatusCode read(ExtentId id, std::size_t offset, std::span<char> out)
      EXCLUDES(mu_);

  /// mmap-style store: no syscall, per-page touch cost + copy; dirty pages
  /// enter the same write-back pipeline.
  StatusCode mmap_write(ExtentId id, std::size_t offset,
                        std::span<const char> data) EXCLUDES(mu_);

  /// mmap-style load: resident -> copy cost; non-resident -> major fault
  /// (device read) + populate.
  StatusCode mmap_read(ExtentId id, std::size_t offset, std::span<char> out)
      EXCLUDES(mu_);

  /// Drops cache state for a freed extent (dirty data is discarded -- caller
  /// owns the decision, mirroring unlink() of a dirty file).
  void invalidate(ExtentId id) EXCLUDES(mu_);

  /// fsync equivalent: blocks until no dirty bytes remain.
  void sync() EXCLUDES(mu_);

  [[nodiscard]] bool resident(ExtentId id) const EXCLUDES(mu_);
  [[nodiscard]] std::size_t dirty_bytes() const EXCLUDES(mu_);
  [[nodiscard]] PageCacheStats stats() const EXCLUDES(mu_);
  [[nodiscard]] const PageCacheConfig& config() const noexcept { return config_; }

 private:
  struct Entry {
    std::size_t size = 0;
    std::size_t dirty = 0;       ///< Bytes awaiting write-back.
    bool resident = false;
    bool mmap_mapped = false;    ///< First mmap touch already charged.
    std::list<ExtentId>::iterator lru_pos;
    bool in_lru = false;
  };

  void flusher_main() EXCLUDES(mu_);
  void charge_write_path(std::size_t offset, std::span<const char> data,
                         ExtentId id, bool via_mmap) EXCLUDES(mu_);
  void make_room_locked(std::size_t need) REQUIRES(mu_);
  void touch_lru_locked(ExtentId id, Entry& entry) REQUIRES(mu_);

  SsdDevice& device_;
  PageCacheConfig config_;

  mutable Mutex mu_;
  CondVar dirty_cv_;    ///< Signals the flusher.
  CondVar clean_cv_;    ///< Signals throttled writers / sync.
  std::unordered_map<ExtentId, Entry> entries_ GUARDED_BY(mu_);
  std::list<ExtentId> dirty_fifo_ GUARDED_BY(mu_);  ///< Write-back order.
  std::list<ExtentId> lru_ GUARDED_BY(mu_);  ///< Clean eviction order (front = MRU).
  std::size_t dirty_bytes_ GUARDED_BY(mu_) = 0;
  std::size_t resident_bytes_ GUARDED_BY(mu_) = 0;
  PageCacheStats stats_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;

  std::thread flusher_;
};

}  // namespace hykv::ssd
