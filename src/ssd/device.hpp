// Simulated block device (SATA / NVMe SSD).
//
// The device stores real bytes (so every Get served from "flash" returns the
// exact payload that was evicted) behind the SsdProfile latency model.
// Accesses serialise on internal channels: an op acquires a channel for the
// modelled device time, so concurrent requests experience realistic queueing
// -- the effect behind the paper's "busy hybrid Memcached server" bottleneck.
//
// The unit of allocation is an *extent* (the hybrid slab manager allocates
// one extent per flushed slab or item run) addressed by (ExtentId, offset).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/profiles.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"

namespace hykv::ssd {

using ExtentId = std::uint64_t;
constexpr ExtentId kInvalidExtent = 0;

/// Deterministic transient-error injection for the device: each modelled
/// write()/read() draws from a seeded hash chain and fails with kIoError at
/// `error_rate`. Identical seeds reproduce identical error schedules
/// regardless of wall-clock timing (chaos tests rely on this).
struct SsdFaultProfile {
  double error_rate = 0.0;  ///< Probability an access fails with kIoError.
  std::uint64_t seed = 1;
  [[nodiscard]] bool enabled() const noexcept { return error_rate > 0.0; }
};

/// Cumulative device counters (for benches and tests).
struct DeviceStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t written_bytes = 0;
  std::uint64_t busy_ns = 0;  ///< Total modelled channel-occupancy time.
  std::uint64_t io_errors = 0;  ///< Injected/forced access failures.
};

class SsdDevice {
 public:
  explicit SsdDevice(SsdProfile profile);

  SsdDevice(const SsdDevice&) = delete;
  SsdDevice& operator=(const SsdDevice&) = delete;

  /// Reserves an extent of `size` bytes. Fails with kOutOfMemory when the
  /// modelled capacity is exhausted. Allocation itself is a metadata op and
  /// carries no device latency (FTL allocation is asynchronous in practice).
  Result<ExtentId> allocate(std::size_t size);

  /// Releases an extent (TRIM). No modelled latency.
  void free(ExtentId id);

  /// Writes `data` at `offset` within the extent, paying full device write
  /// latency for data.size() bytes (direct-I/O semantics).
  StatusCode write(ExtentId id, std::size_t offset, std::span<const char> data);

  /// Reads `out.size()` bytes at `offset`, paying full device read latency.
  StatusCode read(ExtentId id, std::size_t offset, std::span<char> out);

  /// Data movement without modelled latency -- used by the page cache, which
  /// models its own host-side costs and pays device latency at write-back.
  StatusCode write_raw(ExtentId id, std::size_t offset, std::span<const char> data);
  StatusCode read_raw(ExtentId id, std::size_t offset, std::span<char> out);

  /// Occupies a device channel for the modelled duration of a `bytes`-sized
  /// access without touching data (used for write-back of already-copied
  /// buffers and for queueing-only accounting).
  void occupy_write(std::size_t bytes);
  void occupy_read(std::size_t bytes);

  /// Installs (or clears, with a zero-rate profile) transient-error
  /// injection. The modelled write()/read() paths draw implicitly; the raw
  /// paths model host-side page-cache copies and stay reliable -- the page
  /// cache instead calls check_fault() at its genuine device-touch points.
  void set_fault_profile(SsdFaultProfile faults);

  /// Draws the next transient-fault verdict without moving data: kIoError
  /// when this device access should fail (counted in io_errors), kOk
  /// otherwise. Free when no faults are armed.
  [[nodiscard]] StatusCode check_fault();

  /// Hard outage toggle: while failed, every modelled access returns
  /// kIoError. Models a device drop-off / controller reset window.
  void set_failed(bool failed);
  [[nodiscard]] bool failed() const;

  [[nodiscard]] const SsdProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] std::size_t used_bytes() const;
  [[nodiscard]] std::size_t extent_size(ExtentId id) const;
  [[nodiscard]] DeviceStats stats() const;
  void reset_stats();

 private:
  void occupy(sim::Nanos cost) EXCLUDES(meta_mu_);
  /// True when this access should fail; bumps the io_errors counter.
  [[nodiscard]] bool inject_error() EXCLUDES(meta_mu_);

  SsdProfile profile_;
  mutable Mutex meta_mu_;
  std::unordered_map<ExtentId, std::vector<char>> extents_ GUARDED_BY(meta_mu_);
  ExtentId next_id_ GUARDED_BY(meta_mu_) = 1;
  std::size_t used_bytes_ GUARDED_BY(meta_mu_) = 0;
  DeviceStats stats_ GUARDED_BY(meta_mu_);
  SsdFaultProfile faults_ GUARDED_BY(meta_mu_);
  std::uint64_t fault_seq_ GUARDED_BY(meta_mu_) = 0;  ///< Per-access ordinal.
  bool failed_ GUARDED_BY(meta_mu_) = false;
  /// Lock-free gate: true iff failed_ or faults_ is enabled. Lets the
  /// fault-free data path skip meta_mu_ entirely (zero happy-path overhead).
  std::atomic<bool> fault_armed_ ATOMIC_PUBLISHED(relaxed gate){false};

  // Channel serialisation: ops round-robin over channels; each channel admits
  // one modelled access at a time. The channel mutexes guard no data -- they
  // model occupancy -- so nothing is GUARDED_BY them.
  std::vector<std::unique_ptr<Mutex>> channels_;
  std::atomic<std::uint64_t> channel_cursor_
      ATOMIC_PUBLISHED(relaxed round-robin cursor){0};
};

}  // namespace hykv::ssd
