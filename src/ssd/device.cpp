#include "ssd/device.hpp"

#include <atomic>
#include <cstring>
#include <memory>

#include "common/hash.hpp"
#include "common/sim_time.hpp"

namespace hykv::ssd {

SsdDevice::SsdDevice(SsdProfile profile) : profile_(std::move(profile)) {
  const unsigned channels = profile_.channels == 0 ? 1 : profile_.channels;
  channels_.reserve(channels);
  for (unsigned i = 0; i < channels; ++i) {
    channels_.push_back(std::make_unique<Mutex>());
  }
}

Result<ExtentId> SsdDevice::allocate(std::size_t size) {
  const MutexLock lock(meta_mu_);
  if (used_bytes_ + size > profile_.capacity_bytes) {
    return StatusCode::kOutOfMemory;
  }
  const ExtentId id = next_id_++;
  extents_.emplace(id, std::vector<char>(size));
  used_bytes_ += size;
  return id;
}

void SsdDevice::free(ExtentId id) {
  const MutexLock lock(meta_mu_);
  auto it = extents_.find(id);
  if (it == extents_.end()) return;
  used_bytes_ -= it->second.size();
  extents_.erase(it);
}

void SsdDevice::occupy(sim::Nanos cost) {
  // Round-robin channel choice; the mutex queues concurrent accesses so a
  // saturated device exhibits queueing delay, not magic parallelism.
  const auto idx = channel_cursor_.fetch_add(1, std::memory_order_relaxed) %
                   channels_.size();
  const MutexLock channel(*channels_[idx]);
  sim::advance(cost);
  const MutexLock lock(meta_mu_);
  stats_.busy_ns += static_cast<std::uint64_t>(cost.count());
}

void SsdDevice::occupy_write(std::size_t bytes) {
  occupy(profile_.write_time(bytes));
  const MutexLock lock(meta_mu_);
  ++stats_.writes;
  stats_.written_bytes += bytes;
}

void SsdDevice::occupy_read(std::size_t bytes) {
  occupy(profile_.read_time(bytes));
  const MutexLock lock(meta_mu_);
  ++stats_.reads;
  stats_.read_bytes += bytes;
}

StatusCode SsdDevice::write_raw(ExtentId id, std::size_t offset,
                                std::span<const char> data) {
  const MutexLock lock(meta_mu_);
  auto it = extents_.find(id);
  if (it == extents_.end()) return StatusCode::kInvalidArgument;
  if (offset + data.size() > it->second.size()) return StatusCode::kInvalidArgument;
  std::memcpy(it->second.data() + offset, data.data(), data.size());
  return StatusCode::kOk;
}

StatusCode SsdDevice::read_raw(ExtentId id, std::size_t offset,
                               std::span<char> out) {
  const MutexLock lock(meta_mu_);
  auto it = extents_.find(id);
  if (it == extents_.end()) return StatusCode::kInvalidArgument;
  if (offset + out.size() > it->second.size()) return StatusCode::kInvalidArgument;
  std::memcpy(out.data(), it->second.data() + offset, out.size());
  return StatusCode::kOk;
}

bool SsdDevice::inject_error() {
  if (!fault_armed_.load(std::memory_order_relaxed)) return false;
  const MutexLock lock(meta_mu_);
  if (failed_) {
    ++stats_.io_errors;
    return true;
  }
  if (!faults_.enabled()) return false;
  // Deterministic draw: the n-th access fails iff the seeded chain says so,
  // independent of timing or thread interleaving.
  const std::uint64_t h = mix64(mix64(faults_.seed) ^ mix64(fault_seq_++));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u < faults_.error_rate) {
    ++stats_.io_errors;
    return true;
  }
  return false;
}

StatusCode SsdDevice::check_fault() {
  return inject_error() ? StatusCode::kIoError : StatusCode::kOk;
}

void SsdDevice::set_fault_profile(SsdFaultProfile faults) {
  const MutexLock lock(meta_mu_);
  faults_ = faults;
  fault_seq_ = 0;
  fault_armed_.store(failed_ || faults_.enabled(), std::memory_order_relaxed);
}

void SsdDevice::set_failed(bool failed) {
  const MutexLock lock(meta_mu_);
  failed_ = failed;
  fault_armed_.store(failed_ || faults_.enabled(), std::memory_order_relaxed);
}

bool SsdDevice::failed() const {
  const MutexLock lock(meta_mu_);
  return failed_;
}

StatusCode SsdDevice::write(ExtentId id, std::size_t offset,
                            std::span<const char> data) {
  if (inject_error()) {
    // The failed attempt still occupied the bus/channel before the
    // controller reported the error.
    occupy(profile_.write_time(data.size()));
    return StatusCode::kIoError;
  }
  // Validate + copy first (host-side), then occupy the device for the
  // modelled duration. Ordering is unobservable to callers because write()
  // returns only after both.
  const StatusCode code = write_raw(id, offset, data);
  if (!ok(code)) return code;
  // Synchronous direct write: device time plus the flush barrier that makes
  // it durable before returning (O_DIRECT|O_SYNC semantics).
  occupy(profile_.write_time(data.size()) + profile_.sync_barrier);
  {
    const MutexLock lock(meta_mu_);
    ++stats_.writes;
    stats_.written_bytes += data.size();
  }
  return StatusCode::kOk;
}

StatusCode SsdDevice::read(ExtentId id, std::size_t offset, std::span<char> out) {
  if (inject_error()) {
    occupy(profile_.read_time(out.size()));
    return StatusCode::kIoError;
  }
  occupy_read(out.size());
  return read_raw(id, offset, out);
}

std::size_t SsdDevice::used_bytes() const {
  const MutexLock lock(meta_mu_);
  return used_bytes_;
}

std::size_t SsdDevice::extent_size(ExtentId id) const {
  const MutexLock lock(meta_mu_);
  auto it = extents_.find(id);
  return it == extents_.end() ? 0 : it->second.size();
}

DeviceStats SsdDevice::stats() const {
  const MutexLock lock(meta_mu_);
  return stats_;
}

void SsdDevice::reset_stats() {
  const MutexLock lock(meta_mu_);
  stats_ = DeviceStats{};
}

}  // namespace hykv::ssd
