// I/O schemes for flushing evicted key-value data to the SSD and loading it
// back (Section V-B2 / Fig. 4 of the paper):
//   - DirectIo : O_DIRECT-style synchronous device access, the scheme the
//                existing H-RDMA-Def design uses for every size;
//   - CachedIo : write(2) through the page cache with asynchronous
//                write-back -- wins for large data sizes;
//   - MmapIo   : memory-mapped store/load -- wins for small data sizes.
//
// The adaptive slab manager (store/) picks a scheme per slab class.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "common/status.hpp"
#include "ssd/device.hpp"
#include "ssd/page_cache.hpp"

namespace hykv::ssd {

enum class IoScheme : std::uint8_t { kDirect = 0, kCached, kMmap };

constexpr std::string_view to_string(IoScheme scheme) noexcept {
  switch (scheme) {
    case IoScheme::kDirect: return "direct";
    case IoScheme::kCached: return "cached";
    case IoScheme::kMmap: return "mmap";
  }
  return "?";
}

/// Uniform interface over the three schemes. All implementations move real
/// bytes; they differ only in which modelled costs they pay and when.
class IoEngine {
 public:
  virtual ~IoEngine() = default;
  virtual StatusCode write(ExtentId id, std::size_t offset,
                           std::span<const char> data) = 0;
  virtual StatusCode read(ExtentId id, std::size_t offset,
                          std::span<char> out) = 0;
  /// Blocks until previously written data is durable on the device.
  virtual void sync() = 0;
  [[nodiscard]] virtual IoScheme scheme() const noexcept = 0;
};

class DirectIo final : public IoEngine {
 public:
  explicit DirectIo(SsdDevice& device) : device_(device) {}
  StatusCode write(ExtentId id, std::size_t offset,
                   std::span<const char> data) override {
    return device_.write(id, offset, data);
  }
  StatusCode read(ExtentId id, std::size_t offset, std::span<char> out) override {
    return device_.read(id, offset, out);
  }
  void sync() override {}  // direct writes are already durable
  [[nodiscard]] IoScheme scheme() const noexcept override { return IoScheme::kDirect; }

 private:
  SsdDevice& device_;
};

class CachedIo final : public IoEngine {
 public:
  explicit CachedIo(PageCache& cache) : cache_(cache) {}
  StatusCode write(ExtentId id, std::size_t offset,
                   std::span<const char> data) override {
    return cache_.write(id, offset, data);
  }
  StatusCode read(ExtentId id, std::size_t offset, std::span<char> out) override {
    return cache_.read(id, offset, out);
  }
  void sync() override { cache_.sync(); }
  [[nodiscard]] IoScheme scheme() const noexcept override { return IoScheme::kCached; }

 private:
  PageCache& cache_;
};

class MmapIo final : public IoEngine {
 public:
  explicit MmapIo(PageCache& cache) : cache_(cache) {}
  StatusCode write(ExtentId id, std::size_t offset,
                   std::span<const char> data) override {
    return cache_.mmap_write(id, offset, data);
  }
  StatusCode read(ExtentId id, std::size_t offset, std::span<char> out) override {
    return cache_.mmap_read(id, offset, out);
  }
  void sync() override { cache_.sync(); }
  [[nodiscard]] IoScheme scheme() const noexcept override { return IoScheme::kMmap; }

 private:
  PageCache& cache_;
};

/// Bundles a device, its page cache and one engine of each scheme -- the
/// storage stack one hybrid Memcached server owns.
class StorageStack {
 public:
  StorageStack(SsdProfile profile, PageCacheConfig cache_config)
      : device_(std::move(profile)),
        cache_(device_, cache_config),
        direct_(device_),
        cached_(cache_),
        mmap_(cache_) {}

  [[nodiscard]] SsdDevice& device() noexcept { return device_; }
  [[nodiscard]] PageCache& cache() noexcept { return cache_; }
  [[nodiscard]] IoEngine& engine(IoScheme scheme) noexcept {
    switch (scheme) {
      case IoScheme::kDirect: return direct_;
      case IoScheme::kCached: return cached_;
      case IoScheme::kMmap: return mmap_;
    }
    return direct_;
  }

 private:
  SsdDevice device_;
  PageCache cache_;
  DirectIo direct_;
  CachedIo cached_;
  MmapIo mmap_;
};

}  // namespace hykv::ssd
