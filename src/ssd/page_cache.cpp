#include "ssd/page_cache.hpp"

#include <algorithm>

#include "common/sim_time.hpp"

namespace hykv::ssd {

PageCache::PageCache(SsdDevice& device, PageCacheConfig config)
    : device_(device), config_(config), flusher_([this] { flusher_main(); }) {}

PageCache::~PageCache() {
  {
    const MutexLock lock(mu_);
    stop_ = true;
  }
  dirty_cv_.notify_all();
  clean_cv_.notify_all();
  flusher_.join();
}

void PageCache::touch_lru_locked(ExtentId id, Entry& entry) {
  if (entry.in_lru) lru_.erase(entry.lru_pos);
  lru_.push_front(id);
  entry.lru_pos = lru_.begin();
  entry.in_lru = true;
}

void PageCache::make_room_locked(std::size_t need) {
  while (resident_bytes_ + need > config_.memory_limit && !lru_.empty()) {
    // Evict from the LRU tail, skipping dirty entries (not evictable until
    // written back). If everything cached is dirty we simply exceed the
    // limit transiently -- the throttle bounds how far.
    auto it = std::prev(lru_.end());
    bool evicted = false;
    while (true) {
      Entry& victim = entries_.at(*it);
      if (victim.dirty == 0) {
        victim.resident = false;
        victim.in_lru = false;
        resident_bytes_ -= victim.size;
        ++stats_.evictions;
        lru_.erase(it);
        evicted = true;
        break;
      }
      if (it == lru_.begin()) break;
      --it;
    }
    if (!evicted) break;
  }
}

void PageCache::charge_write_path(std::size_t offset, std::span<const char> data,
                                  ExtentId id, bool via_mmap) {
  const auto& host = config_.host;
  sim::Nanos cost = host.copy_time(data.size());
  bool first_map = false;
  if (via_mmap) {
    {
      const MutexLock lock(mu_);
      auto it = entries_.find(id);
      first_map = (it == entries_.end() || !it->second.mmap_mapped);
    }
    cost += host.page_touch * static_cast<std::int64_t>(host.pages(data.size()));
    if (first_map) cost += host.mmap_setup;
  } else {
    cost += host.syscall_overhead;
  }
  (void)offset;
  sim::advance(cost);
}

StatusCode PageCache::write(ExtentId id, std::size_t offset,
                            std::span<const char> data) {
  charge_write_path(offset, data, id, /*via_mmap=*/false);
  // Transient device errors surface to the writer (EIO from write(2) once
  // the kernel knows the device is erroring) -- the hook that lets the
  // hybrid manager's flush path observe SSD outages through this engine.
  if (const StatusCode fault = device_.check_fault(); !ok(fault)) return fault;
  const StatusCode code = device_.write_raw(id, offset, data);
  if (!ok(code)) return code;

  const MutexLock lock(mu_);
  Entry& entry = entries_[id];
  entry.size = device_.extent_size(id);
  if (offset == 0 && data.size() == entry.size && !entry.resident) {
    entry.resident = true;
    resident_bytes_ += entry.size;
  }
  if (entry.resident) touch_lru_locked(id, entry);
  const bool was_clean = entry.dirty == 0;
  entry.dirty += data.size();
  dirty_bytes_ += data.size();
  if (was_clean) dirty_fifo_.push_back(id);
  make_room_locked(0);
  dirty_cv_.notify_one();

  if (dirty_bytes_ > config_.dirty_high_watermark) {
    const auto start = sim::now();
    clean_cv_.wait(mu_, [&]() REQUIRES(mu_) {
      return stop_ || dirty_bytes_ <= config_.dirty_low_watermark;
    });
    stats_.throttled_ns +=
        static_cast<std::uint64_t>((sim::now() - start).count());
  }
  return StatusCode::kOk;
}

StatusCode PageCache::mmap_write(ExtentId id, std::size_t offset,
                                 std::span<const char> data) {
  charge_write_path(offset, data, id, /*via_mmap=*/true);
  // A store into a failing mapping raises SIGBUS in reality; modelled as a
  // clean kIoError so flush_batch can react (degraded mode).
  if (const StatusCode fault = device_.check_fault(); !ok(fault)) return fault;
  const StatusCode code = device_.write_raw(id, offset, data);
  if (!ok(code)) return code;

  const MutexLock lock(mu_);
  Entry& entry = entries_[id];
  entry.size = device_.extent_size(id);
  entry.mmap_mapped = true;
  if (offset == 0 && data.size() == entry.size && !entry.resident) {
    entry.resident = true;
    resident_bytes_ += entry.size;
  }
  if (entry.resident) touch_lru_locked(id, entry);
  const bool was_clean = entry.dirty == 0;
  entry.dirty += data.size();
  dirty_bytes_ += data.size();
  if (was_clean) dirty_fifo_.push_back(id);
  make_room_locked(0);
  dirty_cv_.notify_one();

  if (dirty_bytes_ > config_.dirty_high_watermark) {
    const auto start = sim::now();
    clean_cv_.wait(mu_, [&]() REQUIRES(mu_) {
      return stop_ || dirty_bytes_ <= config_.dirty_low_watermark;
    });
    stats_.throttled_ns +=
        static_cast<std::uint64_t>((sim::now() - start).count());
  }
  return StatusCode::kOk;
}

StatusCode PageCache::read(ExtentId id, std::size_t offset, std::span<char> out) {
  bool hit;
  {
    const MutexLock lock(mu_);
    auto it = entries_.find(id);
    hit = it != entries_.end() && it->second.resident;
    if (hit) {
      touch_lru_locked(id, it->second);
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
  }
  if (hit) {
    sim::advance(config_.host.syscall_overhead + config_.host.copy_time(out.size()));
    return device_.read_raw(id, offset, out);
  }
  sim::advance(config_.host.syscall_overhead);
  // Cache miss: a real device read -- transient errors apply (hits above are
  // served from RAM and cannot fail).
  if (const StatusCode fault = device_.check_fault(); !ok(fault)) return fault;
  device_.occupy_read(out.size());
  const StatusCode code = device_.read_raw(id, offset, out);
  if (!ok(code)) return code;
  const MutexLock lock(mu_);
  Entry& entry = entries_[id];
  entry.size = device_.extent_size(id);
  if (offset == 0 && out.size() == entry.size && !entry.resident) {
    entry.resident = true;
    resident_bytes_ += entry.size;
    touch_lru_locked(id, entry);
    make_room_locked(0);
  }
  return StatusCode::kOk;
}

StatusCode PageCache::mmap_read(ExtentId id, std::size_t offset,
                                std::span<char> out) {
  bool hit;
  bool first_map;
  {
    const MutexLock lock(mu_);
    auto it = entries_.find(id);
    hit = it != entries_.end() && it->second.resident;
    first_map = it == entries_.end() || !it->second.mmap_mapped;
    if (hit) {
      touch_lru_locked(id, it->second);
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
  }
  if (hit) {
    sim::advance(config_.host.copy_time(out.size()) +
                 (first_map ? config_.host.mmap_setup : sim::Nanos{0}));
    {
      const MutexLock relock(mu_);
      entries_[id].mmap_mapped = true;
    }
    return device_.read_raw(id, offset, out);
  }
  // Major fault: device read for the touched pages.
  if (first_map) sim::advance(config_.host.mmap_setup);
  if (const StatusCode fault = device_.check_fault(); !ok(fault)) return fault;
  device_.occupy_read(out.size());
  const StatusCode code = device_.read_raw(id, offset, out);
  if (!ok(code)) return code;
  const MutexLock lock(mu_);
  Entry& entry = entries_[id];
  entry.size = device_.extent_size(id);
  entry.mmap_mapped = true;
  if (offset == 0 && out.size() == entry.size && !entry.resident) {
    entry.resident = true;
    resident_bytes_ += entry.size;
    touch_lru_locked(id, entry);
    make_room_locked(0);
  }
  return StatusCode::kOk;
}

void PageCache::invalidate(ExtentId id) {
  const MutexLock lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  if (entry.dirty > 0) {
    dirty_bytes_ -= entry.dirty;
    dirty_fifo_.remove(id);
    clean_cv_.notify_all();
  }
  if (entry.resident) {
    resident_bytes_ -= entry.size;
    if (entry.in_lru) lru_.erase(entry.lru_pos);
  }
  entries_.erase(it);
}

void PageCache::sync() {
  const MutexLock lock(mu_);
  clean_cv_.wait(mu_, [&]() REQUIRES(mu_) { return stop_ || dirty_bytes_ == 0; });
}

bool PageCache::resident(ExtentId id) const {
  const MutexLock lock(mu_);
  auto it = entries_.find(id);
  return it != entries_.end() && it->second.resident;
}

std::size_t PageCache::dirty_bytes() const {
  const MutexLock lock(mu_);
  return dirty_bytes_;
}

PageCacheStats PageCache::stats() const {
  const MutexLock lock(mu_);
  return stats_;
}

void PageCache::flusher_main() {
  // Direct lock()/unlock() instead of a scoped lock: the loop drops mu_ for
  // the duration of each device write so writers keep making progress into
  // the cache while write-back proceeds. The analysis tracks the capability
  // through the explicit calls and checks it is re-held at the back edge.
  mu_.lock();
  while (true) {
    dirty_cv_.wait(mu_, [&]() REQUIRES(mu_) { return stop_ || !dirty_fifo_.empty(); });
    if (dirty_fifo_.empty()) {
      if (stop_) {
        mu_.unlock();
        return;
      }
      continue;
    }
    const ExtentId id = dirty_fifo_.front();
    dirty_fifo_.pop_front();
    auto it = entries_.find(id);
    if (it == entries_.end()) continue;  // invalidated while queued
    const std::size_t amount = it->second.dirty;
    it->second.dirty = 0;  // re-dirtying after this point re-queues the id
    mu_.unlock();

    // Pay device write latency outside the lock.
    device_.occupy_write(amount);

    mu_.lock();
    dirty_bytes_ -= std::min(dirty_bytes_, amount);
    stats_.writeback_bytes += amount;
    clean_cv_.notify_all();
  }
}

}  // namespace hykv::ssd
