#include "ssd/async_io.hpp"

namespace hykv::ssd {

AsyncSsdQueue::AsyncSsdQueue(SsdDevice& device, unsigned workers,
                             std::size_t submission_slots)
    : device_(device), queue_(submission_slots) {
  workers_.reserve(workers == 0 ? 1 : workers);
  for (unsigned i = 0; i < (workers == 0 ? 1 : workers); ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

AsyncSsdQueue::~AsyncSsdQueue() {
  queue_.close();  // workers drain the backlog, then exit
  for (auto& worker : workers_) worker.join();
}

StatusCode AsyncSsdQueue::submit_write(ExtentId id, std::size_t offset,
                                       std::span<const char> data,
                                       Completion on_done) {
  Op op;
  op.is_write = true;
  op.id = id;
  op.offset = offset;
  op.data.assign(data.begin(), data.end());
  op.on_done = std::move(on_done);
  {
    const MutexLock lock(mu_);
    ++in_flight_;
    ++stats_.submitted;
  }
  if (!queue_.push(std::move(op))) {
    const MutexLock lock(mu_);
    --in_flight_;
    --stats_.submitted;
    return StatusCode::kShutdown;
  }
  return StatusCode::kOk;
}

StatusCode AsyncSsdQueue::submit_read(ExtentId id, std::size_t offset,
                                      std::span<char> out, Completion on_done) {
  Op op;
  op.is_write = false;
  op.id = id;
  op.offset = offset;
  op.out = out;
  op.on_done = std::move(on_done);
  {
    const MutexLock lock(mu_);
    ++in_flight_;
    ++stats_.submitted;
  }
  if (!queue_.push(std::move(op))) {
    const MutexLock lock(mu_);
    --in_flight_;
    --stats_.submitted;
    return StatusCode::kShutdown;
  }
  return StatusCode::kOk;
}

void AsyncSsdQueue::worker_main() {
  while (auto op = queue_.pop()) {
    StatusCode code;
    if (op->is_write) {
      // Async path: no sync barrier -- durability is signalled by the
      // completion, not enforced per write (callers needing a barrier drain).
      code = device_.write_raw(op->id, op->offset, op->data);
      if (ok(code)) device_.occupy_write(op->data.size());
    } else {
      device_.occupy_read(op->out.size());
      code = device_.read_raw(op->id, op->offset, op->out);
    }
    if (op->on_done) op->on_done(code);
    {
      const MutexLock lock(mu_);
      --in_flight_;
      ++stats_.completed;
      if (!ok(code)) ++stats_.errors;
    }
    drained_cv_.notify_all();
  }
}

void AsyncSsdQueue::drain() {
  const MutexLock lock(mu_);
  drained_cv_.wait(mu_, [&]() REQUIRES(mu_) { return in_flight_ == 0; });
}

AsyncIoStats AsyncSsdQueue::stats() const {
  const MutexLock lock(mu_);
  return stats_;
}

std::size_t AsyncSsdQueue::in_flight() const {
  const MutexLock lock(mu_);
  return in_flight_;
}

}  // namespace hykv::ssd
