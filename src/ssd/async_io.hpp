// Asynchronous SSD I/O queue -- the paper's §VII future work ("we plan on
// exploring the benefits of employing asynchronous SSD I/O").
//
// Models a libaio/io_uring-style interface over the simulated device: a
// bounded submission queue, worker threads that pay the device time, and
// per-operation completion callbacks. On multi-channel devices (NVMe) a
// queue depth > 1 exposes internal parallelism that the synchronous engines
// cannot reach; on single-channel SATA it degrades gracefully to pipelining
// submission against one in-flight access.
//
// Data semantics mirror the synchronous engines: writes snapshot the buffer
// at submission (the caller may reuse it immediately), reads fill the
// caller's buffer before the completion fires.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/queue.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "ssd/device.hpp"

namespace hykv::ssd {

struct AsyncIoStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
};

class AsyncSsdQueue {
 public:
  using Completion = std::function<void(StatusCode)>;

  /// `workers` concurrent operations are serviced at once (the effective
  /// queue depth); `submission_slots` bounds how far submitters may run
  /// ahead of completions before submit blocks (0 = unbounded).
  AsyncSsdQueue(SsdDevice& device, unsigned workers = 4,
                std::size_t submission_slots = 64);
  ~AsyncSsdQueue();

  AsyncSsdQueue(const AsyncSsdQueue&) = delete;
  AsyncSsdQueue& operator=(const AsyncSsdQueue&) = delete;

  /// Queues a write. The data is snapshotted; the buffer is reusable on
  /// return. Returns kShutdown after shutdown began.
  StatusCode submit_write(ExtentId id, std::size_t offset,
                          std::span<const char> data, Completion on_done = {});

  /// Queues a read into `out`, which must stay valid until the completion
  /// fires. Returns kShutdown after shutdown began.
  StatusCode submit_read(ExtentId id, std::size_t offset, std::span<char> out,
                         Completion on_done = {});

  /// Blocks until every submitted operation has completed.
  void drain() EXCLUDES(mu_);

  [[nodiscard]] AsyncIoStats stats() const EXCLUDES(mu_);
  [[nodiscard]] std::size_t in_flight() const EXCLUDES(mu_);

 private:
  struct Op {
    bool is_write = false;
    ExtentId id = kInvalidExtent;
    std::size_t offset = 0;
    std::vector<char> data;   ///< Write payload snapshot.
    std::span<char> out{};    ///< Read destination.
    Completion on_done;
  };

  void worker_main();

  SsdDevice& device_;
  BlockingQueue<Op> queue_;
  std::vector<std::thread> workers_;

  mutable Mutex mu_;
  CondVar drained_cv_;
  std::size_t in_flight_ GUARDED_BY(mu_) = 0;
  AsyncIoStats stats_ GUARDED_BY(mu_);
};

}  // namespace hykv::ssd
