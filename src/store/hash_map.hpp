// Chained hash map from key bytes to an arbitrary mapped value, modelled on
// memcached's assoc table: power-of-two buckets, jenkins one-at-a-time key
// hash, incremental growth when the load factor exceeds 1.5.
//
// Header-only template so the slab manager can map keys to storage handles
// without type erasure. Not thread-safe (the owner serialises access).
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hash.hpp"

namespace hykv::store {

template <typename V>
class HashMap {
 public:
  explicit HashMap(std::size_t initial_buckets = 1024)
      : buckets_(round_up_pow2(initial_buckets)) {}

  HashMap(const HashMap&) = delete;
  HashMap& operator=(const HashMap&) = delete;
  HashMap(HashMap&&) = default;
  HashMap& operator=(HashMap&&) = default;

  /// Inserts or overwrites. Returns a reference to the mapped value.
  V& upsert(std::string_view key, V value) {
    maybe_grow();
    const std::uint32_t h = jenkins_oaat(key);
    Node* node = find_node(key, h);
    if (node != nullptr) {
      node->value = std::move(value);
      return node->value;
    }
    auto fresh = std::make_unique<Node>();
    fresh->key = std::string(key);
    fresh->hash = h;
    fresh->value = std::move(value);
    const std::size_t index = h & (buckets_.size() - 1);
    fresh->next = std::move(buckets_[index]);
    buckets_[index] = std::move(fresh);
    ++size_;
    return buckets_[index]->value;
  }

  [[nodiscard]] V* find(std::string_view key) {
    Node* node = find_node(key, jenkins_oaat(key));
    return node != nullptr ? &node->value : nullptr;
  }
  [[nodiscard]] const V* find(std::string_view key) const {
    return const_cast<HashMap*>(this)->find(key);
  }

  /// Removes the key; returns the mapped value if it was present.
  std::optional<V> erase(std::string_view key) {
    const std::uint32_t h = jenkins_oaat(key);
    const std::size_t index = h & (buckets_.size() - 1);
    std::unique_ptr<Node>* slot = &buckets_[index];
    while (*slot != nullptr) {
      if ((*slot)->hash == h && (*slot)->key == key) {
        std::unique_ptr<Node> victim = std::move(*slot);
        *slot = std::move(victim->next);
        --size_;
        return std::move(victim->value);
      }
      slot = &(*slot)->next;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// Visits every (key, value&) pair; mutation of keys is not allowed.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& head : buckets_) {
      for (Node* node = head.get(); node != nullptr; node = node->next.get()) {
        fn(std::string_view(node->key), node->value);
      }
    }
  }

  void clear() {
    for (auto& head : buckets_) head.reset();
    size_ = 0;
  }

 private:
  struct Node {
    std::string key;
    std::uint32_t hash = 0;
    V value{};
    std::unique_ptr<Node> next;
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 16;
    while (p < v) p <<= 1;
    return p;
  }

  Node* find_node(std::string_view key, std::uint32_t h) {
    const std::size_t index = h & (buckets_.size() - 1);
    for (Node* node = buckets_[index].get(); node != nullptr;
         node = node->next.get()) {
      if (node->hash == h && node->key == key) return node;
    }
    return nullptr;
  }

  void maybe_grow() {
    if (size_ < buckets_.size() + buckets_.size() / 2) return;  // load < 1.5
    std::vector<std::unique_ptr<Node>> grown(buckets_.size() * 2);
    for (auto& head : buckets_) {
      while (head != nullptr) {
        std::unique_ptr<Node> node = std::move(head);
        head = std::move(node->next);
        const std::size_t index = node->hash & (grown.size() - 1);
        node->next = std::move(grown[index]);
        grown[index] = std::move(node);
      }
    }
    buckets_ = std::move(grown);
  }

  std::vector<std::unique_ptr<Node>> buckets_;
  std::size_t size_ = 0;
};

}  // namespace hykv::store
