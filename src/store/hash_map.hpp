// Chained hash map from key bytes to an arbitrary mapped value, modelled on
// memcached's assoc table: power-of-two buckets, jenkins one-at-a-time key
// hash, growth when the load factor exceeds 1.5.
//
// Header-only template so the slab manager can map keys to storage handles
// without type erasure.
//
// Concurrency model (single writer, many lock-free readers):
//   - All mutation (upsert/erase/clear/grow) is serialised by the owner --
//     the shard lock -- exactly as before.
//   - find_optimistic() may run WITHOUT the lock, concurrently with any
//     mutation, provided the caller holds an epoch::Domain guard. It only
//     ever follows atomically published pointers: the table pointer
//     (acquire), bucket heads (acquire) and next links (acquire). A node's
//     key/hash are immutable after publication, so the walk needs no per-node
//     versioning. The mapped value V may be mutated in place by the writer;
//     interpreting it safely is the caller's job (the store brackets item
//     mutation with a seqlock, see item.hpp).
//   - Nothing reachable by readers is freed directly. Unlinked nodes, cleared
//     chains and superseded tables go through the attached epoch::Limbo
//     (set_limbo); without one the map assumes single-threaded use and
//     deletes eagerly (tests, tools).
//   - Growth clones every node into a fresh table and publishes it with one
//     atomic store, then retires the old table whole. A reader mid-walk on
//     the old table sees a consistent -- merely slightly stale -- snapshot,
//     which linearises the lookup before the concurrent insert.
#pragma once

#include <atomic>

#include "common/thread_annotations.hpp"
#include <cassert>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/epoch.hpp"
#include "common/hash.hpp"

namespace hykv::store {

template <typename V>
class HashMap {
 public:
  explicit HashMap(std::size_t initial_buckets = 1024)
      : table_(new Table(round_up_pow2(initial_buckets))) {}

  HashMap(const HashMap&) = delete;
  HashMap& operator=(const HashMap&) = delete;
  HashMap(HashMap&&) = delete;
  HashMap& operator=(HashMap&&) = delete;

  ~HashMap() {
    // Teardown is quiescent by contract (no concurrent readers); free
    // directly rather than through limbo.
    Table* table = table_.load(std::memory_order_relaxed);
    delete_table_chains(table);
    delete table;
  }

  /// Attaches the limbo list unlinked nodes and retired tables are deferred
  /// to. Must be set before any concurrent reader exists and the owner must
  /// serialise retire/flush on it (the store holds its shard mutex).
  void set_limbo(epoch::Limbo* limbo) noexcept { limbo_ = limbo; }

  /// Inserts or overwrites. Returns a reference to the mapped value.
  /// Writer-only. Growth happens only on the insert path: an overwrite never
  /// changes the load factor, so rehashing there was pure waste.
  V& upsert(std::string_view key, V value) {
    const std::uint32_t h = jenkins_oaat(key);
    Table* table = table_.load(std::memory_order_relaxed);
    Node* node = find_node(table, key, h);
    if (node != nullptr) {
      node->value = std::move(value);
      return node->value;
    }
    if (maybe_grow(table)) {
      table = table_.load(std::memory_order_relaxed);
    }
    Node* fresh = new Node();
    fresh->key = std::string(key);
    fresh->hash = h;
    fresh->value = std::move(value);
    std::atomic<Node*>& head = table->buckets[h & (table->buckets.size() - 1)];
    fresh->next.store(head.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    // Release so readers that see the node see its key/hash/value.
    head.store(fresh, std::memory_order_release);
    ++size_;
    return fresh->value;
  }

  /// Writer-side lookup (owner holds the shard lock).
  [[nodiscard]] V* find(std::string_view key) {
    Table* table = table_.load(std::memory_order_relaxed);
    Node* node = find_node(table, key, jenkins_oaat(key));
    return node != nullptr ? &node->value : nullptr;
  }
  [[nodiscard]] const V* find(std::string_view key) const {
    return const_cast<HashMap*>(this)->find(key);
  }

  /// Lock-free lookup: safe concurrently with any writer, PROVIDED the
  /// calling thread holds an epoch::Domain guard for the map's limbo domain
  /// (otherwise a just-erased node could be freed mid-walk). The returned
  /// pointer is valid only while the guard is held, and the pointed-to value
  /// may be concurrently mutated by the writer.
  [[nodiscard]] const V* find_optimistic(std::string_view key) const {
    const std::uint32_t h = jenkins_oaat(key);
    const Table* table = table_.load(std::memory_order_acquire);
    const std::atomic<Node*>& head =
        table->buckets[h & (table->buckets.size() - 1)];
    for (const Node* node = head.load(std::memory_order_acquire);
         node != nullptr; node = node->next.load(std::memory_order_acquire)) {
      if (node->hash == h && node->key == key) return &node->value;
    }
    return nullptr;
  }

  /// Removes the key; returns the mapped value if it was present.
  /// Writer-only. The node is unlinked with a release store and retired.
  std::optional<V> erase(std::string_view key) {
    const std::uint32_t h = jenkins_oaat(key);
    Table* table = table_.load(std::memory_order_relaxed);
    std::atomic<Node*>* slot =
        &table->buckets[h & (table->buckets.size() - 1)];
    for (Node* node = slot->load(std::memory_order_relaxed); node != nullptr;
         node = slot->load(std::memory_order_relaxed)) {
      if (node->hash == h && node->key == key) {
        slot->store(node->next.load(std::memory_order_relaxed),
                    std::memory_order_release);
        --size_;
        std::optional<V> out(std::move(node->value));
        retire_node(node);
        return out;
      }
      slot = &node->next;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return table_.load(std::memory_order_relaxed)->buckets.size();
  }

  /// Visits every (key, value&) pair. Writer-only.
  template <typename Fn>
  void for_each(Fn&& fn) {
    Table* table = table_.load(std::memory_order_relaxed);
    for (auto& head : table->buckets) {
      for (Node* node = head.load(std::memory_order_relaxed); node != nullptr;
           node = node->next.load(std::memory_order_relaxed)) {
        fn(std::string_view(node->key), node->value);
      }
    }
  }

  /// Empties the map. Writer-only; chains are retired, not freed, so a
  /// concurrent reader mid-walk stays safe.
  void clear() {
    Table* table = table_.load(std::memory_order_relaxed);
    for (auto& head : table->buckets) {
      Node* node = head.load(std::memory_order_relaxed);
      head.store(nullptr, std::memory_order_release);
      while (node != nullptr) {
        Node* next = node->next.load(std::memory_order_relaxed);
        retire_node(node);
        node = next;
      }
    }
    size_ = 0;
  }

 private:
  struct Node;  // fwd for Table

  struct Table {
    explicit Table(std::size_t n) : buckets(n) {}
    /// Bucket heads: release-published by the single writer, acquire-walked
    /// by epoch-guarded readers -- never lock-guarded.
    std::vector<std::atomic<Node*>> buckets;
  };

  struct Node {
    std::string key;            ///< Immutable after publication.
    std::uint32_t hash = 0;     ///< Immutable after publication.
    V value{};                  ///< Writer-mutable; readers interpret via V's
                                ///< own protocol (seqlock'd item pointers).
    std::atomic<Node*> next ATOMIC_PUBLISHED(release chain link){nullptr};
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 16;
    while (p < v) p <<= 1;
    return p;
  }

  static Node* find_node(Table* table, std::string_view key, std::uint32_t h) {
    const std::size_t index = h & (table->buckets.size() - 1);
    for (Node* node = table->buckets[index].load(std::memory_order_relaxed);
         node != nullptr; node = node->next.load(std::memory_order_relaxed)) {
      if (node->hash == h && node->key == key) return node;
    }
    return nullptr;
  }

  void retire_node(Node* node) {
    if (limbo_ != nullptr) {
      limbo_->retire_delete(node);
    } else {
      delete node;
    }
  }

  static void delete_table_chains(Table* table) {
    for (auto& head : table->buckets) {
      Node* node = head.load(std::memory_order_relaxed);
      while (node != nullptr) {
        Node* next = node->next.load(std::memory_order_relaxed);
        delete node;
        node = next;
      }
    }
  }

  /// Grows by cloning every node into a table twice the size and publishing
  /// it atomically; the superseded table is retired whole (nodes included)
  /// because readers may still be walking it. Returns true if it grew.
  bool maybe_grow(Table* table) {
    const std::size_t buckets = table->buckets.size();
    if (size_ < buckets + buckets / 2) return false;  // load < 1.5
    auto* grown = new Table(buckets * 2);
    for (auto& head : table->buckets) {
      for (Node* node = head.load(std::memory_order_relaxed); node != nullptr;
           node = node->next.load(std::memory_order_relaxed)) {
        Node* clone = new Node();
        clone->key = node->key;
        clone->hash = node->hash;
        clone->value = node->value;
        std::atomic<Node*>& slot =
            grown->buckets[node->hash & (grown->buckets.size() - 1)];
        // Pre-publication stores: the table publish below is the release.
        clone->next.store(slot.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
        slot.store(clone, std::memory_order_relaxed);
      }
    }
    table_.store(grown, std::memory_order_release);
    if (limbo_ != nullptr) {
      limbo_->retire(
          table, 0,
          [](void*, void* obj, std::uint64_t) {
            auto* old = static_cast<Table*>(obj);
            delete_table_chains(old);
            delete old;
          },
          nullptr);
    } else {
      delete_table_chains(table);
      delete table;
    }
    return true;
  }

  std::atomic<Table*> table_ ATOMIC_PUBLISHED(acquire-loaded by readers,
                                             swapped whole on grow);
  std::size_t size_ = 0;  ///< Writer-only (under the owner's shard mutex).
  epoch::Limbo* limbo_ = nullptr;
};

}  // namespace hykv::store
