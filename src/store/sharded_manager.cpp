#include "store/sharded_manager.hpp"

#include <algorithm>
#include <bit>
#include <thread>

#include "common/hash.hpp"

namespace hykv::store {
namespace {

unsigned floor_pow2(unsigned v) { return v == 0 ? 1 : std::bit_floor(v); }

}  // namespace

unsigned ShardedManager::resolve_shards(const ManagerConfig& config) {
  unsigned n = config.shards;
  if (n == 0) {
    n = 2 * std::max(1u, std::thread::hardware_concurrency());
    // Auto mode never shards below kMinPagesPerShard slab pages of arena
    // each: tiny-memory configs stay single-shard (identical behaviour to
    // the unsharded manager), big arenas shard for the cores.
    const std::size_t floor_bytes =
        std::max<std::size_t>(1, kMinPagesPerShard * config.slab.slab_bytes);
    const std::size_t cap = config.slab.memory_limit / floor_bytes;
    n = static_cast<unsigned>(
        std::min<std::size_t>(n, std::max<std::size_t>(1, cap)));
  }
  return std::min(floor_pow2(n), kMaxShards);
}

ShardedManager::ShardedManager(ManagerConfig config, ssd::StorageStack* storage)
    : config_(config) {
  const unsigned n = resolve_shards(config);
  shard_bits_ = static_cast<unsigned>(std::countr_zero(n));

  ManagerConfig per_shard = config;
  per_shard.shards = 1;
  // Split the arena and the SSD cap evenly, but never hand a shard less
  // than one slab page -- a shard that cannot hold a single page cannot
  // store anything at all.
  per_shard.slab.memory_limit = std::max(config.slab.memory_limit / n,
                                         config.slab.slab_bytes);
  if (config.ssd_limit != 0) {
    per_shard.ssd_limit =
        std::max<std::size_t>(config.ssd_limit / n, config.flush_batch_bytes);
  }
  shards_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<HybridSlabManager>(per_shard, storage));
  }
}

unsigned ShardedManager::shard_index(std::string_view key) const noexcept {
  if (shard_bits_ == 0) return 0;
  // Top bits of the assoc-table hash: the per-shard HashMap buckets on the
  // low bits, so every shard still uses its full bucket range.
  return jenkins_oaat(key) >> (32u - shard_bits_);
}

void ShardedManager::clear() {
  for (auto& shard : shards_) shard->clear();
}

std::size_t ShardedManager::item_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->item_count();
  return total;
}

ManagerStats ShardedManager::stats() const {
  ManagerStats total;
  for (const auto& shard : shards_) total.merge_from(shard->stats());
  return total;
}

SlabStats ShardedManager::slab_stats() const {
  SlabStats total;
  for (const auto& shard : shards_) {
    const SlabStats s = shard->slab_stats();
    total.slab_pages += s.slab_pages;
    total.reserved_bytes += s.reserved_bytes;
    total.used_chunks += s.used_chunks;
    total.free_chunks += s.free_chunks;
  }
  return total;
}

void ShardedManager::sync_storage() {
  // The shards share one storage stack; one sync drains it for all of them.
  shards_.front()->sync_storage();
}

}  // namespace hykv::store
