// Sharded storage tier: N independent HybridSlabManager shards behind the
// single-manager API.
//
// The paper's H-RDMA-Opt server decouples request receipt from the hybrid
// slab/LRU/SSD phase so multiple processing threads can overlap
// hybrid-memory work -- but with one manager behind one mutex those threads
// still serialise on the store. Partitioning the store is the standard cure
// in this design space (HiStore partitions its RDMA-side index per core;
// HSE shards its KV layer to scale on multicore + SSD): each shard owns its
// own hash index, slab arena, per-class LRU lists, flush state and
// degraded/heal state, so operations on different shards never touch a
// shared lock.
//
// Shard selection reuses the key hash the assoc table already computes
// (jenkins one-at-a-time) but takes its *top* bits, so the per-shard hash
// maps -- which bucket on the low bits -- still spread keys over all their
// buckets.
//
// Semantics are identical to a single HybridSlabManager: every per-key
// operation maps to exactly one shard, so per-key linearisability (last
// write wins, CAS versions) is inherited from the shard's lock.
// Cross-shard operations aggregate:
//   clear()        -- clears every shard (not atomic across shards; a
//                     concurrent set to an already-cleared shard survives,
//                     same as memcached's flush_all vs racing sets),
//   stats()        -- per-shard counter sums; `degraded` is true when ANY
//                     shard is degraded and `degraded_shards` counts them.
//                     The read-path counters (optimistic_hits /
//                     optimistic_retries / locked_fallbacks) also sum, and
//                     each shard folds its optimistic hits into ram_hits, so
//                     the aggregate invariant "every GET is exactly one of
//                     {optimistic_hits, locked_fallbacks}" (with
//                     optimistic_reads on) holds across the facade too,
//   item_count()   -- sum of per-shard index sizes,
//   slab_stats()   -- per-shard arena sums.
// Degraded (RAM-only) mode remains a per-shard property: a shard whose
// flushes fail stops flushing and heals on its own probe timer while the
// other shards keep using the SSD.
//
// Observability: the per-shard configs inherit ManagerConfig::latency from
// the facade config, so every shard records its read-path and flush spans
// into the same LatencyRecorder (whose slots are per-*thread*, not
// per-shard -- concurrent shards never contend on a slot they don't share).
//
// Sizing: the configured RAM arena and SSD cap are split evenly over the
// shards (like the testbed splits cluster memory over servers). A shard is
// never given less than one slab page; the auto shard count (config.shards
// == 0, ~2x hardware threads) is additionally capped so every shard keeps
// at least kMinPagesPerShard pages, which keeps tiny-memory configs at one
// shard -- byte-for-byte the single-manager behaviour.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/stage.hpp"
#include "common/status.hpp"
#include "ssd/io_engine.hpp"
#include "store/hybrid_manager.hpp"

namespace hykv::store {

class ShardedManager {
 public:
  /// Shards below this many slab pages of arena stop paying for themselves
  /// (flush batches shrink and per-class carving waste dominates).
  static constexpr std::size_t kMinPagesPerShard = 4;
  static constexpr unsigned kMaxShards = 256;

  /// Resolves `config.shards` (0 = auto) to the power-of-two shard count a
  /// ShardedManager built from `config` will use.
  [[nodiscard]] static unsigned resolve_shards(const ManagerConfig& config);

  /// `storage` must outlive the manager; may be nullptr iff mode==kInMemory.
  /// All shards share the storage stack (one device, like one server).
  ShardedManager(ManagerConfig config, ssd::StorageStack* storage);

  ShardedManager(const ShardedManager&) = delete;
  ShardedManager& operator=(const ShardedManager&) = delete;

  // -- Per-key operations: forwarded to the key's shard. Signatures and
  //    semantics match HybridSlabManager exactly (drop-in replacement).
  StatusCode set(std::string_view key, std::span<const char> value,
                 std::uint32_t flags, std::int64_t expiration,
                 StageBreakdown* stages = nullptr) {
    return shard_for(key).set(key, value, flags, expiration, stages);
  }
  StatusCode get(std::string_view key, std::vector<char>& out,
                 std::uint32_t& flags, StageBreakdown* stages = nullptr) {
    return shard_for(key).get(key, out, flags, stages);
  }
  StatusCode del(std::string_view key) { return shard_for(key).del(key); }
  [[nodiscard]] bool exists(std::string_view key) const {
    return shard_for(key).exists(key);
  }
  StatusCode add(std::string_view key, std::span<const char> value,
                 std::uint32_t flags, std::int64_t expiration,
                 StageBreakdown* stages = nullptr) {
    return shard_for(key).add(key, value, flags, expiration, stages);
  }
  StatusCode replace(std::string_view key, std::span<const char> value,
                     std::uint32_t flags, std::int64_t expiration,
                     StageBreakdown* stages = nullptr) {
    return shard_for(key).replace(key, value, flags, expiration, stages);
  }
  StatusCode append(std::string_view key, std::span<const char> suffix,
                    StageBreakdown* stages = nullptr) {
    return shard_for(key).append(key, suffix, stages);
  }
  StatusCode prepend(std::string_view key, std::span<const char> prefix,
                     StageBreakdown* stages = nullptr) {
    return shard_for(key).prepend(key, prefix, stages);
  }
  Result<std::uint64_t> incr(std::string_view key, std::uint64_t delta,
                             StageBreakdown* stages = nullptr) {
    return shard_for(key).incr(key, delta, stages);
  }
  Result<std::uint64_t> decr(std::string_view key, std::uint64_t delta,
                             StageBreakdown* stages = nullptr) {
    return shard_for(key).decr(key, delta, stages);
  }
  StatusCode touch(std::string_view key, std::int64_t expiration) {
    return shard_for(key).touch(key, expiration);
  }
  StatusCode gets(std::string_view key, std::vector<char>& out,
                  std::uint32_t& flags, std::uint64_t& cas,
                  StageBreakdown* stages = nullptr) {
    return shard_for(key).gets(key, out, flags, cas, stages);
  }
  StatusCode cas(std::string_view key, std::span<const char> value,
                 std::uint32_t flags, std::int64_t expiration,
                 std::uint64_t expected_cas, StageBreakdown* stages = nullptr) {
    return shard_for(key).cas(key, value, flags, expiration, expected_cas,
                              stages);
  }

  // -- Cross-shard operations: aggregate per-shard results.
  void clear();
  [[nodiscard]] std::size_t item_count() const;
  [[nodiscard]] ManagerStats stats() const;
  [[nodiscard]] SlabStats slab_stats() const;
  void sync_storage();

  /// The configuration as given (pre-split limits), like a single manager
  /// reports the limits it was built with.
  [[nodiscard]] const ManagerConfig& config() const noexcept { return config_; }

  [[nodiscard]] unsigned num_shards() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  /// Direct shard access (tests / diagnostics).
  [[nodiscard]] HybridSlabManager& shard(unsigned i) { return *shards_[i]; }
  /// The shard `key` maps to (stable for the manager's lifetime).
  [[nodiscard]] unsigned shard_index(std::string_view key) const noexcept;

 private:
  [[nodiscard]] HybridSlabManager& shard_for(std::string_view key) {
    return *shards_[shard_index(key)];
  }
  [[nodiscard]] const HybridSlabManager& shard_for(std::string_view key) const {
    return *shards_[shard_index(key)];
  }

  // All facade state is immutable after construction -- no capability needed.
  // Mutable per-shard state (index, slabs, LRU, degraded/heal) lives behind
  // each HybridSlabManager's own mu_; the facade never adds a second lock.
  ManagerConfig config_;   ///< As given (un-split limits).
  unsigned shard_bits_ = 0;
  std::vector<std::unique_ptr<HybridSlabManager>> shards_;
};

}  // namespace hykv::store
