// In-chunk item layout and the intrusive LRU list.
//
// An item occupies one slab chunk: a fixed ItemHeader followed by the key
// bytes and the value bytes. The header embeds the LRU links (like
// memcached's it_prev/it_next) so promotion/eviction never allocates.
//
// Concurrency: a published item (reachable through the index) may be read by
// lock-free optimistic GETs while the shard lock holder mutates it in place.
// The header therefore carries a seqlock `version` (odd = mutation in
// progress) and every in-place field/byte write goes through the
// seq_write_begin/end bracket with relaxed-atomic stores (common/
// atomic_bytes.hpp). Fields that never change after publication (key bytes,
// key_len, slab_class) and items not yet published stay plain. `touched` is
// the optimistic path's LRU recency hint: readers set it lock-free, eviction
// grants a second chance instead of taking a recently-read tail victim.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <new>
#include <span>
#include <string_view>

#include "common/atomic_bytes.hpp"
#include "common/thread_annotations.hpp"

namespace hykv::store {

struct ItemHeader {
  ItemHeader* lru_prev = nullptr;
  ItemHeader* lru_next = nullptr;
  std::uint32_t key_len = 0;
  std::uint32_t value_len = 0;
  std::uint32_t flags = 0;
  std::uint32_t slab_class = 0;
  std::int64_t expiry = 0;   ///< Absolute seconds (steady); 0 = never.
  std::uint64_t cas = 0;     ///< Version stamp for check-and-set.
  /// Seqlock word: odd while the lock holder mutates the item in place;
  /// optimistic readers retry/fall back on odd or changed versions.
  std::atomic<std::uint64_t> version ATOMIC_PUBLISHED(seqlock word){0};
  /// Set (relaxed) by optimistic GETs instead of an LRU move; consumed by
  /// eviction as a CLOCK-style second chance.
  std::atomic<std::uint8_t> touched ATOMIC_PUBLISHED(relaxed CLOCK bit){0};

  [[nodiscard]] char* key_data() noexcept {
    return reinterpret_cast<char*>(this) + sizeof(ItemHeader);
  }
  [[nodiscard]] const char* key_data() const noexcept {
    return reinterpret_cast<const char*>(this) + sizeof(ItemHeader);
  }
  [[nodiscard]] char* value_data() noexcept { return key_data() + key_len; }
  [[nodiscard]] const char* value_data() const noexcept {
    return key_data() + key_len;
  }
  [[nodiscard]] std::string_view key() const noexcept {
    return {key_data(), key_len};
  }
  [[nodiscard]] std::span<const char> value() const noexcept {
    return {value_data(), value_len};
  }
};
static_assert(sizeof(ItemHeader) % 8 == 0, "keep key bytes aligned");

/// Bytes an item with the given key/value lengths needs inside a chunk.
constexpr std::size_t item_total_size(std::size_t key_len,
                                      std::size_t value_len) noexcept {
  return sizeof(ItemHeader) + key_len + value_len;
}

/// Formats an item into a chunk the caller obtained from the allocator.
/// Plain stores: the item is unpublished, so no reader can race them -- the
/// publishing release-store (entry->ram) orders them for later readers.
inline ItemHeader* format_item(char* chunk, std::string_view key,
                               std::span<const char> value, std::uint32_t flags,
                               std::int64_t expiry, unsigned slab_class) {
  auto* item = new (chunk) ItemHeader();
  item->key_len = static_cast<std::uint32_t>(key.size());
  item->value_len = static_cast<std::uint32_t>(value.size());
  item->flags = flags;
  item->expiry = expiry;
  item->slab_class = slab_class;
  std::memcpy(item->key_data(), key.data(), key.size());
  if (!value.empty()) {
    std::memcpy(item->value_data(), value.data(), value.size());
  }
  return item;
}

// ---------------------------------------------------------------------------
// Seqlock write bracket (writer holds the shard lock; readers are lock-free).
//
// Writer:   even = seq_write_begin(item);     // version odd
//           seq_store(...) / atomic_store_bytes(...)   // release stores
//           seq_write_end(item, even);        // version even again (release)
// Reader:   v1 = version.load(acquire); if odd retry
//           seq_load(...) / atomic_load_bytes(...)     // acquire loads
//           v2 = version.load(relaxed); valid iff v1 == v2
//
// This is the fence-free seqlock (common/atomic_bytes.hpp explains why no
// atomic_thread_fence: TSan cannot model fences). Each *release* data store
// keeps the preceding odd store ordered before it — a reader that observes
// any mid-mutation data then observes an odd/changed version and retries.
// Each *acquire* data load keeps the reader's validating v2 load ordered
// after it, and the release even-store orders the data stores before it, so
// a reader whose v1 == v2 == even copied a consistent snapshot.

/// Marks the item as mid-mutation. Returns the even version to publish via
/// seq_write_end once the data stores are done.
[[nodiscard]] inline std::uint64_t seq_write_begin(ItemHeader* item) noexcept {
  const std::uint64_t v = item->version.load(std::memory_order_relaxed);
  item->version.store(v + 1, std::memory_order_relaxed);
  return v + 2;
}

inline void seq_write_end(ItemHeader* item, std::uint64_t even) noexcept {
  item->version.store(even, std::memory_order_release);
}

/// Intrusive doubly-linked LRU: front = most recently used. One list per
/// slab class (memcached's per-class LRU).
class LruList {
 public:
  void push_front(ItemHeader* item) noexcept {
    item->lru_prev = nullptr;
    item->lru_next = head_;
    if (head_ != nullptr) head_->lru_prev = item;
    head_ = item;
    if (tail_ == nullptr) tail_ = item;
    ++size_;
  }

  void remove(ItemHeader* item) noexcept {
    if (item->lru_prev != nullptr) {
      item->lru_prev->lru_next = item->lru_next;
    } else {
      head_ = item->lru_next;
    }
    if (item->lru_next != nullptr) {
      item->lru_next->lru_prev = item->lru_prev;
    } else {
      tail_ = item->lru_prev;
    }
    item->lru_prev = item->lru_next = nullptr;
    --size_;
  }

  void move_to_front(ItemHeader* item) noexcept {
    if (head_ == item) return;
    remove(item);
    push_front(item);
  }

  [[nodiscard]] ItemHeader* tail() const noexcept { return tail_; }
  [[nodiscard]] ItemHeader* front() const noexcept { return head_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }

  void clear() noexcept {
    head_ = tail_ = nullptr;
    size_ = 0;
  }

 private:
  ItemHeader* head_ = nullptr;
  ItemHeader* tail_ = nullptr;
  std::size_t size_ = 0;
};

/// On-SSD flat record framing used when items are flushed:
/// [u32 key_len][u32 value_len][u32 flags][u32 crc32c(value)][i64 expiry][key][value]
struct SsdItemFraming {
  static constexpr std::size_t kHeaderBytes = 4 * 4 + 8;
  static constexpr std::size_t record_size(std::size_t key_len,
                                           std::size_t value_len) noexcept {
    return kHeaderBytes + key_len + value_len;
  }
};

}  // namespace hykv::store
