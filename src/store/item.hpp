// In-chunk item layout and the intrusive LRU list.
//
// An item occupies one slab chunk: a fixed ItemHeader followed by the key
// bytes and the value bytes. The header embeds the LRU links (like
// memcached's it_prev/it_next) so promotion/eviction never allocates.
#pragma once

#include <cstdint>
#include <cstring>
#include <new>
#include <span>
#include <string_view>

namespace hykv::store {

struct ItemHeader {
  ItemHeader* lru_prev = nullptr;
  ItemHeader* lru_next = nullptr;
  std::uint32_t key_len = 0;
  std::uint32_t value_len = 0;
  std::uint32_t flags = 0;
  std::uint32_t slab_class = 0;
  std::int64_t expiry = 0;   ///< Absolute seconds (steady); 0 = never.
  std::uint64_t cas = 0;     ///< Version stamp for check-and-set.

  [[nodiscard]] char* key_data() noexcept {
    return reinterpret_cast<char*>(this) + sizeof(ItemHeader);
  }
  [[nodiscard]] const char* key_data() const noexcept {
    return reinterpret_cast<const char*>(this) + sizeof(ItemHeader);
  }
  [[nodiscard]] char* value_data() noexcept { return key_data() + key_len; }
  [[nodiscard]] const char* value_data() const noexcept {
    return key_data() + key_len;
  }
  [[nodiscard]] std::string_view key() const noexcept {
    return {key_data(), key_len};
  }
  [[nodiscard]] std::span<const char> value() const noexcept {
    return {value_data(), value_len};
  }
};
static_assert(sizeof(ItemHeader) % 8 == 0, "keep key bytes aligned");

/// Bytes an item with the given key/value lengths needs inside a chunk.
constexpr std::size_t item_total_size(std::size_t key_len,
                                      std::size_t value_len) noexcept {
  return sizeof(ItemHeader) + key_len + value_len;
}

/// Formats an item into a chunk the caller obtained from the allocator.
inline ItemHeader* format_item(char* chunk, std::string_view key,
                               std::span<const char> value, std::uint32_t flags,
                               std::int64_t expiry, unsigned slab_class) {
  auto* item = new (chunk) ItemHeader();
  item->key_len = static_cast<std::uint32_t>(key.size());
  item->value_len = static_cast<std::uint32_t>(value.size());
  item->flags = flags;
  item->expiry = expiry;
  item->slab_class = slab_class;
  std::memcpy(item->key_data(), key.data(), key.size());
  if (!value.empty()) {
    std::memcpy(item->value_data(), value.data(), value.size());
  }
  return item;
}

/// Intrusive doubly-linked LRU: front = most recently used. One list per
/// slab class (memcached's per-class LRU).
class LruList {
 public:
  void push_front(ItemHeader* item) noexcept {
    item->lru_prev = nullptr;
    item->lru_next = head_;
    if (head_ != nullptr) head_->lru_prev = item;
    head_ = item;
    if (tail_ == nullptr) tail_ = item;
    ++size_;
  }

  void remove(ItemHeader* item) noexcept {
    if (item->lru_prev != nullptr) {
      item->lru_prev->lru_next = item->lru_next;
    } else {
      head_ = item->lru_next;
    }
    if (item->lru_next != nullptr) {
      item->lru_next->lru_prev = item->lru_prev;
    } else {
      tail_ = item->lru_prev;
    }
    item->lru_prev = item->lru_next = nullptr;
    --size_;
  }

  void move_to_front(ItemHeader* item) noexcept {
    if (head_ == item) return;
    remove(item);
    push_front(item);
  }

  [[nodiscard]] ItemHeader* tail() const noexcept { return tail_; }
  [[nodiscard]] ItemHeader* front() const noexcept { return head_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }

  void clear() noexcept {
    head_ = tail_ = nullptr;
    size_ = 0;
  }

 private:
  ItemHeader* head_ = nullptr;
  ItemHeader* tail_ = nullptr;
  std::size_t size_ = 0;
};

/// On-SSD flat record framing used when items are flushed:
/// [u32 key_len][u32 value_len][u32 flags][u32 crc32c(value)][i64 expiry][key][value]
struct SsdItemFraming {
  static constexpr std::size_t kHeaderBytes = 4 * 4 + 8;
  static constexpr std::size_t record_size(std::size_t key_len,
                                           std::size_t value_len) noexcept {
    return kHeaderBytes + key_len + value_len;
  }
};

}  // namespace hykv::store
