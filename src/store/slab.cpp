#include "store/slab.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hykv::store {

SlabAllocator::SlabAllocator(Config config) : config_(config) {
  assert(config_.growth_factor > 1.0);
  assert(config_.min_chunk >= 64);
  std::size_t chunk = config_.min_chunk;
  while (chunk < config_.slab_bytes) {
    SlabClass cls;
    cls.chunk_size = chunk;
    classes_.push_back(std::move(cls));
    const auto next = static_cast<std::size_t>(
        std::ceil(static_cast<double>(chunk) * config_.growth_factor));
    // Align chunk sizes to 8 bytes so item headers stay aligned.
    chunk = (std::max(next, chunk + 8) + 7) & ~std::size_t{7};
  }
  SlabClass top;
  top.chunk_size = config_.slab_bytes;
  classes_.push_back(std::move(top));
}

unsigned SlabAllocator::class_for(std::size_t size) const noexcept {
  // Classes are sorted; binary search the first chunk_size >= size.
  const auto it = std::lower_bound(
      classes_.begin(), classes_.end(), size,
      [](const SlabClass& cls, std::size_t s) { return cls.chunk_size < s; });
  if (it == classes_.end()) return kInvalidClass;
  return static_cast<unsigned>(it - classes_.begin());
}

bool SlabAllocator::grow(unsigned cls) {
  if (reserved_ + config_.slab_bytes > config_.memory_limit) return false;
  auto page = std::make_unique<char[]>(config_.slab_bytes);
  char* base = page.get();
  pages_.push_back(std::move(page));
  reserved_ += config_.slab_bytes;
  SlabClass& slab_class = classes_[cls];
  const std::size_t count = config_.slab_bytes / slab_class.chunk_size;
  slab_class.free.reserve(slab_class.free.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    slab_class.free.push_back(base + i * slab_class.chunk_size);
  }
  slab_class.total_chunks += count;
  return true;
}

char* SlabAllocator::allocate(unsigned cls) {
  assert(cls < classes_.size());
  SlabClass& slab_class = classes_[cls];
  if (slab_class.free.empty() && !grow(cls)) return nullptr;
  char* chunk = slab_class.free.back();
  slab_class.free.pop_back();
  ++used_chunks_;
  return chunk;
}

void SlabAllocator::deallocate(char* chunk, unsigned cls) {
  assert(cls < classes_.size());
  assert(chunk != nullptr);
  classes_[cls].free.push_back(chunk);
  --used_chunks_;
}

bool SlabAllocator::can_allocate(unsigned cls) const noexcept {
  return !classes_[cls].free.empty() ||
         reserved_ + config_.slab_bytes <= config_.memory_limit;
}

SlabStats SlabAllocator::stats() const noexcept {
  SlabStats stats;
  stats.slab_pages = pages_.size();
  stats.reserved_bytes = reserved_;
  stats.used_chunks = used_chunks_;
  for (const auto& cls : classes_) stats.free_chunks += cls.free.size();
  return stats;
}

std::size_t slab_item_footprint(const SlabAllocator::Config& config,
                                std::size_t item_size) {
  SlabAllocator::Config probe = config;
  probe.memory_limit = 0;  // ladder only; never allocates pages
  const SlabAllocator ladder(probe);
  const unsigned cls = ladder.class_for(item_size);
  if (cls == kInvalidClass) return item_size;
  const std::size_t chunk = ladder.chunk_size(cls);
  const std::size_t per_page = config.slab_bytes / chunk;
  return per_page == 0 ? chunk : config.slab_bytes / per_page;
}

}  // namespace hykv::store
