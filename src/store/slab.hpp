// Memcached-style slab allocator.
//
// Memory is reserved from the OS in fixed slab pages (1 MB by default) and
// carved into equal-sized chunks per *slab class*; chunk sizes grow
// geometrically (factor 1.25, like memcached's default). An item occupies
// exactly one chunk of the smallest class that fits it. This prevents
// fragmentation as items churn (Section III-A stage 1 of the paper).
//
// Not thread-safe: the owning slab manager serialises access.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace hykv::store {

constexpr unsigned kInvalidClass = ~0u;

struct SlabStats {
  std::size_t slab_pages = 0;     ///< Pages reserved from the arena.
  std::size_t reserved_bytes = 0; ///< slab_pages * slab_bytes.
  std::size_t used_chunks = 0;
  std::size_t free_chunks = 0;
};

class SlabAllocator {
 public:
  struct Config {
    std::size_t slab_bytes = std::size_t{1} << 20;  ///< Page size (1 MB).
    std::size_t memory_limit = std::size_t{64} << 20;
    std::size_t min_chunk = 128;
    double growth_factor = 1.25;
  };

  explicit SlabAllocator(Config config);

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  [[nodiscard]] unsigned num_classes() const noexcept {
    return static_cast<unsigned>(classes_.size());
  }

  /// Smallest class whose chunk holds `size` bytes; kInvalidClass when the
  /// size exceeds the slab page size (item too large to store).
  [[nodiscard]] unsigned class_for(std::size_t size) const noexcept;

  [[nodiscard]] std::size_t chunk_size(unsigned cls) const noexcept {
    return classes_[cls].chunk_size;
  }

  /// Returns a chunk of class `cls`, growing the class by one slab page if
  /// the memory limit allows; nullptr when both the free list and the arena
  /// are exhausted (caller must evict).
  [[nodiscard]] char* allocate(unsigned cls);

  void deallocate(char* chunk, unsigned cls);

  /// True if allocate(cls) would succeed without any eviction.
  [[nodiscard]] bool can_allocate(unsigned cls) const noexcept;

  [[nodiscard]] SlabStats stats() const noexcept;
  [[nodiscard]] std::size_t free_chunks(unsigned cls) const noexcept {
    return classes_[cls].free.size();
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  struct SlabClass {
    std::size_t chunk_size = 0;
    std::vector<char*> free;  ///< LIFO free list.
    std::size_t total_chunks = 0;
  };

  bool grow(unsigned cls);

  Config config_;
  std::vector<SlabClass> classes_;
  std::vector<std::unique_ptr<char[]>> pages_;
  std::size_t reserved_ = 0;
  std::size_t used_chunks_ = 0;
};

/// Bytes of arena one stored item of `item_size` effectively consumes under
/// `config`: its slab-class chunk size plus the pro-rata page remainder that
/// cannot hold another chunk. Used by benches to size datasets that truly
/// fit (or truly overflow) a given memory limit.
std::size_t slab_item_footprint(const SlabAllocator::Config& config,
                                std::size_t item_size);

}  // namespace hykv::store
