// The heart of the hybrid Memcached server: slab-backed RAM storage with an
// SSD overflow tier ("RAM+SSD hybrid memory", Ouyang et al. ICPP'12, as
// extended by the paper's Section V-B).
//
// Behaviour by mode:
//   kInMemory -- memcached semantics: when RAM is exhausted, LRU items are
//                *dropped* (later Gets miss and hit the backend database).
//   kHybrid   -- when RAM is exhausted, a batch of LRU items (up to one slab,
//                1 MB) is serialised and flushed to the SSD; items remain
//                retrievable from flash. No data is lost until SSD capacity
//                is exhausted.
//
// I/O policy (hybrid only):
//   kDirectAll -- every flush uses direct I/O on the full batch, the
//                 H-RDMA-Def behaviour whose cost Fig. 2(b) exposes.
//   kAdaptive  -- per-slab-class scheme selection (Fig. 5): classes with
//                 chunks <= adaptive_threshold flush via mmap I/O, larger
//                 classes via cached I/O.
//
// Thread safety: all public operations are safe for concurrent callers. The
// internal mutex is *not* held across modelled SSD time: flush batches are
// serialised under the lock but written outside it, and SSD reads pin their
// extent via shared_ptr so concurrent deletes/frees stay safe. Readers of an
// extent whose write-back is still in flight wait on the extent's ready flag.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/epoch.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/metrics.hpp"
#include "common/sim_time.hpp"
#include "common/stage.hpp"
#include "common/status.hpp"
#include "ssd/io_engine.hpp"
#include "store/hash_map.hpp"
#include "store/item.hpp"
#include "store/slab.hpp"

namespace hykv::store {

enum class StorageMode : std::uint8_t { kInMemory = 0, kHybrid };
enum class IoPolicy : std::uint8_t { kDirectAll = 0, kAdaptive };

struct ManagerConfig {
  StorageMode mode = StorageMode::kInMemory;
  IoPolicy io_policy = IoPolicy::kDirectAll;
  /// Slab classes with chunk_size <= threshold evict via mmap I/O under
  /// kAdaptive; larger ones via cached I/O.
  std::size_t adaptive_threshold = std::size_t{64} << 10;
  SlabAllocator::Config slab{};
  /// Cap on live SSD bytes (0 = device capacity only). Mirrors the paper's
  /// "SSD usage is limited to 4 GB" setup in Fig. 7(c).
  std::size_t ssd_limit = 0;
  /// Promote an SSD-resident item back to RAM on Get when a chunk is free.
  bool promote_on_hit = true;
  /// Swap-in semantics (the H-RDMA-Def behaviour, after Ouyang et al.): an
  /// SSD hit *always* promotes, evicting/flushing other items if needed --
  /// so cold Gets pay allocation churn on top of the SSD read. The optimised
  /// designs promote opportunistically instead (promote_on_hit only).
  bool force_promote = false;
  /// Max bytes serialised per flush (one slab page by default).
  std::size_t flush_batch_bytes = std::size_t{1} << 20;
  /// Degraded (RAM-only) mode: after this many *consecutive* SSD I/O errors
  /// the manager stops flushing and evicts like the in-memory design --
  /// better to lose cold cache entries than to wedge every Set behind a
  /// failing device.
  unsigned degrade_after_io_errors = 3;
  /// While degraded, one flush is re-attempted (half-open probe) after this
  /// much real time; success leaves degraded mode.
  sim::Nanos heal_probe_after = sim::ms(50);
  /// Shard count for ShardedManager (always a power of two). 0 = auto:
  /// ~2x hardware threads, capped so every shard keeps at least a few slab
  /// pages of arena. Ignored by a bare HybridSlabManager, which is always
  /// one shard.
  unsigned shards = 0;
  /// Modelled per-operation CPU cost realised *while holding the store
  /// lock* (set/get only). Production servers spend ~a microsecond of CPU
  /// under the lock per op; on few-core build hosts that serialisation is
  /// invisible because one core serialises everything anyway. Benches set
  /// this so shard-scaling behaviour reproduces on any host, exactly like
  /// the fabric/SSD latency models. Realised with advance_coarse (pure
  /// sleep): holders of different shard locks overlap even on one core,
  /// holders of the same lock serialise -- the contention being modelled.
  /// 0 (default) = off; no behaviour change.
  sim::Nanos modelled_op_cost{0};
  /// Non-blocking read path: RAM-resident GETs run lock-free (seqlock
  /// validation + epoch-based reclamation) and fall back to the locked path
  /// on conflict/miss/SSD residency. Results are byte-identical either way;
  /// off restores the pre-optimistic, strictly-locked behaviour.
  bool optimistic_reads = true;
  /// Optional latency recorder for store-phase spans (optimistic vs locked
  /// reads, SSD flush attempts). Not owned; must outlive the manager. The
  /// server injects its recorder here; bare managers default to nullptr and
  /// pay zero recording cost. ShardedManager copies the pointer into every
  /// shard's config, so all shards record into the same recorder.
  metrics::LatencyRecorder* latency = nullptr;
};

struct ManagerStats {
  std::uint64_t sets = 0;
  std::uint64_t ram_hits = 0;
  std::uint64_t ssd_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t expired = 0;
  std::uint64_t deletes = 0;
  std::uint64_t flushes = 0;          ///< Flush batches written to SSD.
  std::uint64_t flushed_items = 0;
  std::uint64_t flushed_bytes = 0;
  std::uint64_t promotions = 0;       ///< SSD items promoted back to RAM.
  std::uint64_t dropped_evictions = 0;///< Items lost (in-memory LRU / SSD full).
  std::uint64_t ssd_live_bytes = 0;   ///< Live (referenced) bytes on SSD.
  std::uint64_t checksum_failures = 0;
  std::uint64_t io_errors = 0;        ///< SSD accesses that failed (kIoError).
  bool degraded = false;              ///< RAM-only mode (SSD deemed unhealthy).
  std::uint32_t degraded_shards = 0;  ///< Shards currently degraded (<= shard count).
  std::uint64_t optimistic_hits = 0;  ///< GETs served lock-free (RAM seqlock).
  std::uint64_t optimistic_retries = 0;///< Seqlock validation conflicts retried.
  std::uint64_t locked_fallbacks = 0; ///< GETs that fell back to the locked path.

  /// Accumulates `other` into this (counter sums; degraded ORs). Used by the
  /// sharded facade and the testbed to aggregate per-shard / per-server stats.
  void merge_from(const ManagerStats& other) noexcept {
    sets += other.sets;
    ram_hits += other.ram_hits;
    ssd_hits += other.ssd_hits;
    misses += other.misses;
    expired += other.expired;
    deletes += other.deletes;
    flushes += other.flushes;
    flushed_items += other.flushed_items;
    flushed_bytes += other.flushed_bytes;
    promotions += other.promotions;
    dropped_evictions += other.dropped_evictions;
    ssd_live_bytes += other.ssd_live_bytes;
    checksum_failures += other.checksum_failures;
    io_errors += other.io_errors;
    degraded = degraded || other.degraded;
    degraded_shards += other.degraded_shards;
    optimistic_hits += other.optimistic_hits;
    optimistic_retries += other.optimistic_retries;
    locked_fallbacks += other.locked_fallbacks;
  }
};

class HybridSlabManager {
 public:
  /// `storage` must outlive the manager; may be nullptr iff mode==kInMemory.
  HybridSlabManager(ManagerConfig config, ssd::StorageStack* storage);
  ~HybridSlabManager();

  HybridSlabManager(const HybridSlabManager&) = delete;
  HybridSlabManager& operator=(const HybridSlabManager&) = delete;

  /// Stores (or overwrites) key -> value. `expiration` is relative seconds
  /// (0 = never). Stage time lands in kSlabAllocation (allocation + any
  /// flush) and kCacheUpdate (item write + index/LRU update); the lookup of
  /// a previous version lands in kCacheCheckLoad.
  StatusCode set(std::string_view key, std::span<const char> value,
                 std::uint32_t flags, std::int64_t expiration,
                 StageBreakdown* stages = nullptr) EXCLUDES(mu_);

  /// Fetches key into `out` (resized to the value length). SSD loads are
  /// attributed to kCacheCheckLoad, LRU promotion to kCacheUpdate.
  StatusCode get(std::string_view key, std::vector<char>& out,
                 std::uint32_t& flags, StageBreakdown* stages = nullptr)
      EXCLUDES(mu_);

  StatusCode del(std::string_view key) EXCLUDES(mu_);
  [[nodiscard]] bool exists(std::string_view key) const EXCLUDES(mu_);

  /// memcached "add": stores only if the key does not exist (kNotStored
  /// otherwise).
  StatusCode add(std::string_view key, std::span<const char> value,
                 std::uint32_t flags, std::int64_t expiration,
                 StageBreakdown* stages = nullptr);

  /// memcached "replace": stores only if the key exists (kNotStored
  /// otherwise).
  StatusCode replace(std::string_view key, std::span<const char> value,
                     std::uint32_t flags, std::int64_t expiration,
                     StageBreakdown* stages = nullptr);

  /// memcached "append"/"prepend": extends an existing value (kNotStored if
  /// absent). Reads the current value (possibly from SSD) and re-stores.
  StatusCode append(std::string_view key, std::span<const char> suffix,
                    StageBreakdown* stages = nullptr);
  StatusCode prepend(std::string_view key, std::span<const char> prefix,
                     StageBreakdown* stages = nullptr);

  /// memcached "incr"/"decr": the value must be an ASCII unsigned integer;
  /// applies the delta (decr saturates at 0, memcached semantics) and
  /// returns the new value. kNotFound if absent, kInvalidArgument if the
  /// value is not numeric.
  Result<std::uint64_t> incr(std::string_view key, std::uint64_t delta,
                             StageBreakdown* stages = nullptr);
  Result<std::uint64_t> decr(std::string_view key, std::uint64_t delta,
                             StageBreakdown* stages = nullptr);

  /// memcached "touch": updates the expiration without moving data.
  StatusCode touch(std::string_view key, std::int64_t expiration) EXCLUDES(mu_);

  /// memcached "gets": like get() but also returns the item's CAS version.
  StatusCode gets(std::string_view key, std::vector<char>& out,
                  std::uint32_t& flags, std::uint64_t& cas,
                  StageBreakdown* stages = nullptr) EXCLUDES(mu_);

  /// memcached "cas": stores only if the item's current version equals
  /// `expected_cas`. kNotFound if absent; kNotStored on version mismatch
  /// (memcached's EXISTS).
  StatusCode cas(std::string_view key, std::span<const char> value,
                 std::uint32_t flags, std::int64_t expiration,
                 std::uint64_t expected_cas, StageBreakdown* stages = nullptr)
      EXCLUDES(mu_);

  /// Drops every item (memcached flush_all).
  void clear() EXCLUDES(mu_);

  [[nodiscard]] std::size_t item_count() const EXCLUDES(mu_);
  [[nodiscard]] ManagerStats stats() const EXCLUDES(mu_);
  [[nodiscard]] SlabStats slab_stats() const EXCLUDES(mu_);
  [[nodiscard]] const ManagerConfig& config() const noexcept { return config_; }

  /// Blocks until all flushed data is durable (test/shutdown hook).
  void sync_storage();

 private:
  /// An SSD extent holding one flushed batch; freed (TRIM + page-cache
  /// invalidate) when the last record referencing it dies.
  struct ExtentHandle {
    ssd::StorageStack* storage = nullptr;
    ssd::ExtentId id = ssd::kInvalidExtent;
    std::size_t bytes = 0;
    Mutex mu;
    CondVar cv;
    bool ready GUARDED_BY(mu) = false;
    /// Write-back never became durable (I/O error).
    bool failed GUARDED_BY(mu) = false;

    void mark_ready() EXCLUDES(mu);
    /// Wakes waiters with failed set: readers pinned to this extent must
    /// report the loss (kIoError) instead of returning garbage.
    void mark_failed() EXCLUDES(mu);
    /// Blocks until the write-back completes; returns true iff it failed.
    [[nodiscard]] bool wait_ready() EXCLUDES(mu);
    ~ExtentHandle();
  };

  struct SsdRecord {
    std::shared_ptr<ExtentHandle> extent;
    std::uint32_t record_offset = 0;  ///< Offset of the framed record.
    std::uint32_t key_len = 0;
    std::uint32_t value_len = 0;
    std::uint32_t flags = 0;
    std::uint32_t value_crc = 0;
    std::int64_t expiry = 0;
    std::uint64_t cas = 0;
    ssd::IoScheme scheme = ssd::IoScheme::kDirect;
  };

  /// Index value. `ram` is atomically published so optimistic readers can
  /// load it without the shard lock: the writer's release store makes the
  /// formatted item bytes visible, and nulling it (flush/evict/delete)
  /// precedes retirement through the epoch limbo. `ssd` is writer-only --
  /// the optimistic path never touches it (SSD hits always fall back).
  /// Copyable because HashMap clones entries on growth; copies snapshot the
  /// ram pointer (relaxed is enough: the publishing table store orders it).
  struct Entry {
    /// Release-published / acquire-read RAM pointer: the one Entry field the
    /// optimistic (lock-free) read path dereferences.
    std::atomic<ItemHeader*> ram ATOMIC_PUBLISHED(release-published
                                                  item pointer){nullptr};
    std::shared_ptr<SsdRecord> ssd;

    Entry() = default;
    Entry(ItemHeader* r, std::shared_ptr<SsdRecord> s)
        : ram(r), ssd(std::move(s)) {}
    Entry(const Entry& other)
        : ram(other.ram.load(std::memory_order_relaxed)), ssd(other.ssd) {}
    Entry(Entry&& other) noexcept
        : ram(other.ram.load(std::memory_order_relaxed)),
          ssd(std::move(other.ssd)) {}
    Entry& operator=(const Entry& other) {
      ram.store(other.ram.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
      ssd = other.ssd;
      return *this;
    }
    Entry& operator=(Entry&& other) noexcept {
      ram.store(other.ram.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
      ssd = std::move(other.ssd);
      return *this;
    }
  };

  /// Allocates a chunk, evicting (in-memory) or flushing (hybrid) as needed.
  /// May release and reacquire mu_ around SSD writes (always re-held on
  /// return -- the analysis checks this through the direct unlock/lock).
  char* allocate_with_reclaim(unsigned cls) REQUIRES(mu_);

  /// Flushes up to flush_batch_bytes of LRU-tail items of `cls` to the SSD.
  /// Returns false if the class had nothing to flush. Lock juggling as above.
  /// flush_batch is the recording wrapper (Span::kSsdFlush); do_flush_batch
  /// does the work.
  bool flush_batch(unsigned cls) REQUIRES(mu_);
  bool do_flush_batch(unsigned cls) REQUIRES(mu_);

  /// Drops the LRU-tail item of `cls` (or of the fullest other class when
  /// empty). Returns false when nothing anywhere is evictable.
  bool drop_one(unsigned cls) REQUIRES(mu_);

  void unlink_ram_item(ItemHeader* item) REQUIRES(mu_);

  /// Unlinks a *published* RAM item and defers its chunk to the epoch limbo
  /// (a lock-free reader may still be copying it); with optimistic reads off
  /// this is plain unlink_ram_item. The caller must already have unpublished
  /// the entry's ram pointer.
  void retire_ram_item(ItemHeader* item) REQUIRES(mu_);

  /// LRU-tail victim of `cls` with CLOCK-style second chances: tails whose
  /// `touched` flag is set (an optimistic GET read them recently) are rescued
  /// to the front (bounded per call) instead of returned. nullptr when empty.
  ItemHeader* lru_tail_victim(unsigned cls) REQUIRES(mu_);

  /// Lock-free GET attempt: epoch-guarded bucket walk + seqlock-validated
  /// copy. True only on a RAM hit whose bytes validated; every other outcome
  /// (miss, expired, SSD-resident, version churn, guard exhaustion) returns
  /// false and the caller takes the locked path for the authoritative
  /// answer. `cas_out` may be nullptr (plain get).
  bool try_optimistic_get(std::string_view key, std::vector<char>& out,
                          std::uint32_t& flags, std::uint64_t* cas_out)
      EXCLUDES(mu_);

  /// The pre-optimistic locked paths; `pay_modelled_cost` is false when the
  /// caller already realised modelled_op_cost before falling back.
  StatusCode get_locked(std::string_view key, std::vector<char>& out,
                        std::uint32_t& flags, StageBreakdown* stages,
                        bool pay_modelled_cost) EXCLUDES(mu_);
  StatusCode gets_locked(std::string_view key, std::vector<char>& out,
                         std::uint32_t& flags, std::uint64_t& cas,
                         StageBreakdown* stages, bool pay_modelled_cost)
      EXCLUDES(mu_);

  [[nodiscard]] ssd::IoScheme scheme_for_class(unsigned cls) const noexcept;
  [[nodiscard]] bool expired(std::int64_t expiry) const noexcept;
  void release_record_locked(const std::shared_ptr<SsdRecord>& record)
      REQUIRES(mu_);

  /// Accounts one failed SSD access; enters degraded mode at the configured
  /// streak and (re)arms the heal-probe timer.
  void note_io_failure_locked() REQUIRES(mu_);

  /// Current CAS version of the entry, whichever tier it lives in
  /// (0 = entry absent/expired).
  std::uint64_t current_cas_locked(const Entry* entry) const REQUIRES(mu_);

  ManagerConfig config_;
  ssd::StorageStack* storage_;
  std::uint64_t cas_seq_ GUARDED_BY(mu_) = 1;  ///< Monotonic CAS stamp source.

  mutable Mutex mu_;
  SlabAllocator slabs_ GUARDED_BY(mu_);
  /// Single-writer / lock-free-reader: every mutation happens under mu_, but
  /// find_optimistic runs epoch-guarded with no lock at all, so the map
  /// cannot be GUARDED_BY(mu_) -- its internal atomics carry the publication
  /// contract (release bucket stores, clone-on-grow retirement).
  HashMap<Entry> index_ ATOMIC_PUBLISHED(single-writer under mu_,
                                         lock-free epoch-guarded readers);
  std::vector<LruList> lru_ GUARDED_BY(mu_);  ///< One per slab class.
  ManagerStats stats_ GUARDED_BY(mu_);
  unsigned consecutive_io_errors_ GUARDED_BY(mu_) = 0;  ///< Degradation streak.
  sim::TimePoint heal_probe_at_ GUARDED_BY(mu_){};  ///< Next half-open probe.

  /// Chunks of each slab class sitting in limbo_: reclaim prefers waiting
  /// for these over evicting more items when allocation stalls. Declared
  /// before limbo_ so it outlives limbo_'s destructor-time callbacks.
  std::vector<std::uint32_t> limbo_chunks_ GUARDED_BY(mu_);
  /// Deferred-free list for chunks/nodes still visible to lock-free readers.
  /// Accessed only under mu_ (Limbo is not thread-safe).
  epoch::Limbo limbo_ GUARDED_BY(mu_){epoch::global()};

  // Read-path counters: relaxed atomics because the optimistic path must not
  // touch mu_; folded into stats() output.
  std::atomic<std::uint64_t> opt_hits_ ATOMIC_PUBLISHED(relaxed counter){0};
  std::atomic<std::uint64_t> opt_retries_ ATOMIC_PUBLISHED(relaxed counter){0};
  std::atomic<std::uint64_t> opt_fallbacks_ ATOMIC_PUBLISHED(relaxed counter){0};
};

/// Seconds on the steady clock -- the manager's expiry time base.
std::int64_t steady_seconds() noexcept;

}  // namespace hykv::store
