#include "store/hybrid_manager.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/hash.hpp"
#include "common/logging.hpp"

namespace hykv::store {
namespace {

using SteadyClock = std::chrono::steady_clock;

void put_u32(char* dst, std::uint32_t v) { std::memcpy(dst, &v, 4); }
void put_i64(char* dst, std::int64_t v) { std::memcpy(dst, &v, 8); }

}  // namespace

std::int64_t steady_seconds() noexcept {
  static const SteadyClock::time_point start = SteadyClock::now();
  return std::chrono::duration_cast<std::chrono::seconds>(SteadyClock::now() -
                                                          start)
      .count();
}

void HybridSlabManager::ExtentHandle::mark_ready() {
  {
    const std::scoped_lock lock(mu);
    ready = true;
  }
  cv.notify_all();
}

void HybridSlabManager::ExtentHandle::mark_failed() {
  {
    const std::scoped_lock lock(mu);
    failed = true;
    ready = true;  // wake waiters; they must check `failed`
  }
  cv.notify_all();
}

void HybridSlabManager::ExtentHandle::wait_ready() {
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return ready; });
}

HybridSlabManager::ExtentHandle::~ExtentHandle() {
  if (storage != nullptr && id != ssd::kInvalidExtent) {
    storage->cache().invalidate(id);
    storage->device().free(id);
  }
}

HybridSlabManager::HybridSlabManager(ManagerConfig config,
                                     ssd::StorageStack* storage)
    : config_(config), storage_(storage), slabs_(config.slab) {
  assert(config_.mode == StorageMode::kInMemory || storage_ != nullptr);
  lru_.resize(slabs_.num_classes());
}

HybridSlabManager::~HybridSlabManager() = default;

bool HybridSlabManager::expired(std::int64_t expiry) const noexcept {
  return expiry != 0 && steady_seconds() >= expiry;
}

ssd::IoScheme HybridSlabManager::scheme_for_class(unsigned cls) const noexcept {
  if (config_.io_policy == IoPolicy::kDirectAll) return ssd::IoScheme::kDirect;
  return slabs_.chunk_size(cls) <= config_.adaptive_threshold
             ? ssd::IoScheme::kMmap
             : ssd::IoScheme::kCached;
}

void HybridSlabManager::unlink_ram_item(ItemHeader* item) {
  lru_[item->slab_class].remove(item);
  slabs_.deallocate(reinterpret_cast<char*>(item), item->slab_class);
}

void HybridSlabManager::release_record_locked(
    const std::shared_ptr<SsdRecord>& record) {
  const std::size_t bytes =
      SsdItemFraming::record_size(record->key_len, record->value_len);
  stats_.ssd_live_bytes -= std::min<std::uint64_t>(stats_.ssd_live_bytes, bytes);
}

void HybridSlabManager::note_io_failure_locked() {
  ++stats_.io_errors;
  ++consecutive_io_errors_;
  if (!stats_.degraded &&
      consecutive_io_errors_ >= config_.degrade_after_io_errors) {
    stats_.degraded = true;
    HYKV_WARN("storage degraded after %u consecutive I/O errors: "
              "RAM-only mode (evict instead of flush)",
              consecutive_io_errors_);
  }
  if (stats_.degraded) {
    heal_probe_at_ = sim::now() + config_.heal_probe_after;
  }
}

bool HybridSlabManager::drop_one(unsigned cls) {
  ItemHeader* victim = lru_[cls].tail();
  if (victim == nullptr) return false;
  const std::string key(victim->key());
  unlink_ram_item(victim);
  index_.erase(key);
  ++stats_.dropped_evictions;
  return true;
}

bool HybridSlabManager::flush_batch(unsigned cls,
                                    std::unique_lock<std::mutex>& lock) {
  assert(lock.owns_lock());
  if (lru_[cls].empty()) return false;

  // 1. Collect LRU-tail victims until the batch is full (<= one slab page).
  struct Victim {
    std::string key;
    std::uint32_t record_offset;
  };
  std::vector<char> staging;
  staging.reserve(config_.flush_batch_bytes);
  std::vector<Victim> victims;
  std::vector<std::shared_ptr<SsdRecord>> records;

  const ssd::IoScheme scheme = scheme_for_class(cls);
  while (ItemHeader* item = lru_[cls].tail()) {
    const std::size_t rec_size =
        SsdItemFraming::record_size(item->key_len, item->value_len);
    if (!victims.empty() &&
        staging.size() + rec_size > config_.flush_batch_bytes) {
      break;
    }
    const auto offset = static_cast<std::uint32_t>(staging.size());
    staging.resize(staging.size() + rec_size);
    char* p = staging.data() + offset;
    const std::uint32_t crc = crc32c(static_cast<const void*>(item->value_data()), item->value_len);
    put_u32(p, item->key_len);
    put_u32(p + 4, item->value_len);
    put_u32(p + 8, item->flags);
    put_u32(p + 12, crc);
    put_i64(p + 16, item->expiry);
    std::memcpy(p + SsdItemFraming::kHeaderBytes, item->key_data(),
                item->key_len);
    std::memcpy(p + SsdItemFraming::kHeaderBytes + item->key_len,
                item->value_data(), item->value_len);

    auto record = std::make_shared<SsdRecord>();
    record->record_offset = offset;
    record->key_len = item->key_len;
    record->value_len = item->value_len;
    record->flags = item->flags;
    record->value_crc = crc;
    record->expiry = item->expiry;
    record->cas = item->cas;
    record->scheme = scheme;
    records.push_back(std::move(record));
    victims.push_back(Victim{std::string(item->key()), offset});
    // Detach the RAM presence before the chunk returns to the free list so
    // the index never holds a dangling item pointer.
    Entry* entry = index_.find(victims.back().key);
    assert(entry != nullptr && entry->ram == item);
    entry->ram = nullptr;
    unlink_ram_item(item);
  }

  // 2. Reserve the SSD extent; on failure fall back to dropping the victims
  //    (data loss, like the in-memory design -- counted, never silent).
  const bool over_limit =
      config_.ssd_limit != 0 &&
      stats_.ssd_live_bytes + staging.size() > config_.ssd_limit;
  Result<ssd::ExtentId> extent =
      over_limit ? Result<ssd::ExtentId>(StatusCode::kOutOfMemory)
                 : storage_->device().allocate(staging.size());
  if (!extent.ok()) {
    for (const auto& victim : victims) index_.erase(victim.key);
    stats_.dropped_evictions += victims.size();
    HYKV_WARN("SSD full: dropped %zu items (%zu bytes)", victims.size(),
              staging.size());
    return true;  // chunks were freed; allocation can proceed
  }

  auto handle = std::make_shared<ExtentHandle>();
  handle->storage = storage_;
  handle->id = extent.value();
  handle->bytes = staging.size();

  // 3. Point the index entries at the (not yet durable) SSD records.
  for (std::size_t i = 0; i < victims.size(); ++i) {
    records[i]->extent = handle;
    Entry* entry = index_.find(victims[i].key);
    assert(entry != nullptr && entry->ram == nullptr);
    if (entry != nullptr) entry->ssd = records[i];
  }
  ++stats_.flushes;
  stats_.flushed_items += victims.size();
  stats_.flushed_bytes += staging.size();
  stats_.ssd_live_bytes += staging.size();

  // 4. Write outside the lock; readers of these records wait on ready.
  lock.unlock();
  const StatusCode code =
      storage_->engine(scheme).write(handle->id, 0, staging);
  if (!ok(code)) {
    HYKV_ERROR("flush write failed: %.*s",
               static_cast<int>(to_string(code).size()), to_string(code).data());
    handle->mark_failed();
  } else {
    handle->mark_ready();
  }
  lock.lock();
  if (!ok(code)) {
    // The extent never became durable: these victims are lost. Erase every
    // entry still pointing at the failed batch (a concurrent set may have
    // displaced some already) -- counted, never silent.
    //
    // Roll back *exactly* what step 3 added for this batch. Concurrent
    // flushes only ever add to these counters and each failed flush subtracts
    // only its own contribution, so the subtraction can never underflow --
    // clamping it (as this once did) would silently absorb a real accounting
    // bug instead of surfacing it. ssd_live_bytes is rolled back per record
    // via release_record_locked below (records displaced by a concurrent set
    // during the write were already released at displacement).
    assert(stats_.flushes >= 1);
    assert(stats_.flushed_items >= victims.size());
    assert(stats_.flushed_bytes >= staging.size());
    stats_.flushes -= 1;
    stats_.flushed_items -= victims.size();
    stats_.flushed_bytes -= staging.size();
    for (std::size_t i = 0; i < victims.size(); ++i) {
      Entry* entry = index_.find(victims[i].key);
      if (entry != nullptr && entry->ram == nullptr &&
          entry->ssd == records[i]) {
        release_record_locked(records[i]);
        index_.erase(victims[i].key);
        ++stats_.dropped_evictions;
      }
    }
    note_io_failure_locked();
  } else {
    consecutive_io_errors_ = 0;
    if (stats_.degraded) {
      stats_.degraded = false;
      HYKV_WARN("storage healed: flush probe succeeded, leaving RAM-only mode");
    }
  }
  return true;
}

char* HybridSlabManager::allocate_with_reclaim(
    unsigned cls, std::unique_lock<std::mutex>& lock) {
  for (int attempt = 0; attempt < 4096; ++attempt) {
    char* chunk = slabs_.allocate(cls);
    if (chunk != nullptr) return chunk;
    if (config_.mode == StorageMode::kInMemory) {
      if (!drop_one(cls)) return nullptr;
    } else if (stats_.degraded && sim::now() < heal_probe_at_) {
      // Degraded (RAM-only) mode: the SSD is misbehaving, so evict like the
      // in-memory design instead of queueing stores behind a failing device.
      // Once the probe timer expires the next allocation falls through to
      // flush_batch, which is the half-open heal attempt.
      if (!drop_one(cls)) return nullptr;
    } else {
      if (!flush_batch(cls, lock)) {
        // Nothing left to flush in this class (slab calcification): fail the
        // store rather than stealing carved pages from other classes.
        return nullptr;
      }
    }
  }
  return nullptr;
}

StatusCode HybridSlabManager::set(std::string_view key,
                                  std::span<const char> value,
                                  std::uint32_t flags, std::int64_t expiration,
                                  StageBreakdown* stages) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  const std::size_t total = item_total_size(key.size(), value.size());
  const unsigned cls = slabs_.class_for(total);
  if (cls == kInvalidClass) return StatusCode::kInvalidArgument;
  const std::int64_t expiry =
      expiration == 0 ? 0 : steady_seconds() + expiration;

  std::unique_lock lock(mu_);
  if (config_.modelled_op_cost.count() > 0) {
    sim::advance_coarse(config_.modelled_op_cost);  // modelled under-lock CPU work
  }

  // Fast path: overwrite in place when the existing RAM item lives in the
  // same slab class and the key matches -- the common hot-key update. No
  // allocation, no flush churn; memcached-grade stores optimise this case
  // and without it a write-heavy Zipf workload would evict on every update.
  {
    const auto check_start = SteadyClock::now();
    Entry* hot = index_.find(key);
    if (hot != nullptr && hot->ram != nullptr && hot->ram->slab_class == cls &&
        hot->ram->key_len == key.size()) {
      ItemHeader* item = hot->ram;
      if (stages != nullptr) {
        stages->add(Stage::kCacheCheckLoad, SteadyClock::now() - check_start);
      }
      const auto update_start = SteadyClock::now();
      item->value_len = static_cast<std::uint32_t>(value.size());
      item->flags = flags;
      item->expiry = expiry;
      item->cas = cas_seq_++;
      if (!value.empty()) {
        std::memcpy(item->value_data(), value.data(), value.size());
      }
      lru_[cls].move_to_front(item);
      ++stats_.sets;
      if (stages != nullptr) {
        stages->add(Stage::kCacheUpdate, SteadyClock::now() - update_start);
      }
      return StatusCode::kOk;
    }
  }

  // Slab allocation (including any flush/eviction it triggers).
  const auto alloc_start = SteadyClock::now();
  char* chunk = allocate_with_reclaim(cls, lock);
  if (stages != nullptr) {
    stages->add(Stage::kSlabAllocation, SteadyClock::now() - alloc_start);
  }
  if (chunk == nullptr) return StatusCode::kOutOfMemory;

  // Cache check: displace any previous version of the key. (The entry must
  // be re-looked-up here: the lock may have been dropped during a flush.)
  const auto check_start = SteadyClock::now();
  Entry* existing = index_.find(key);
  if (existing != nullptr) {
    if (existing->ram != nullptr) unlink_ram_item(existing->ram);
    if (existing->ssd != nullptr) release_record_locked(existing->ssd);
  }
  if (stages != nullptr) {
    stages->add(Stage::kCacheCheckLoad, SteadyClock::now() - check_start);
  }

  // Cache update: format the item, (re)index it, promote to LRU head.
  const auto update_start = SteadyClock::now();
  ItemHeader* item = format_item(chunk, key, value, flags, expiry, cls);
  item->cas = cas_seq_++;
  if (existing != nullptr) {
    existing->ram = item;
    existing->ssd.reset();
  } else {
    index_.upsert(key, Entry{.ram = item, .ssd = nullptr});
  }
  lru_[cls].push_front(item);
  ++stats_.sets;
  if (stages != nullptr) {
    stages->add(Stage::kCacheUpdate, SteadyClock::now() - update_start);
  }
  return StatusCode::kOk;
}

StatusCode HybridSlabManager::get(std::string_view key, std::vector<char>& out,
                                  std::uint32_t& flags,
                                  StageBreakdown* stages) {
  std::unique_lock lock(mu_);
  if (config_.modelled_op_cost.count() > 0) {
    sim::advance_coarse(config_.modelled_op_cost);  // modelled under-lock CPU work
  }
  const auto check_start = SteadyClock::now();
  auto charge_check = [&] {
    if (stages != nullptr) {
      stages->add(Stage::kCacheCheckLoad, SteadyClock::now() - check_start);
    }
  };

  Entry* entry = index_.find(key);
  if (entry == nullptr) {
    ++stats_.misses;
    charge_check();
    return StatusCode::kNotFound;
  }

  // RAM hit.
  if (entry->ram != nullptr) {
    ItemHeader* item = entry->ram;
    if (expired(item->expiry)) {
      unlink_ram_item(item);
      index_.erase(key);
      ++stats_.expired;
      ++stats_.misses;
      charge_check();
      return StatusCode::kNotFound;
    }
    out.assign(item->value_data(), item->value_data() + item->value_len);
    flags = item->flags;
    ++stats_.ram_hits;
    charge_check();
    const auto update_start = SteadyClock::now();
    lru_[item->slab_class].move_to_front(item);
    if (stages != nullptr) {
      stages->add(Stage::kCacheUpdate, SteadyClock::now() - update_start);
    }
    return StatusCode::kOk;
  }

  // SSD hit: pin the record, drop the lock, read from flash.
  std::shared_ptr<SsdRecord> record = entry->ssd;
  assert(record != nullptr);
  if (expired(record->expiry)) {
    release_record_locked(record);
    index_.erase(key);
    ++stats_.expired;
    ++stats_.misses;
    charge_check();
    return StatusCode::kNotFound;
  }
  lock.unlock();

  record->extent->wait_ready();
  if (record->extent->failed) {
    // The flush backing this record never reached the device: the data is
    // gone. flush_batch already erased the index entries; this reader just
    // pinned the record before that happened.
    charge_check();
    lock.lock();
    Entry* current = index_.find(key);
    if (current != nullptr && current->ram == nullptr &&
        current->ssd == record) {
      release_record_locked(record);
      index_.erase(key);
    }
    ++stats_.misses;
    return StatusCode::kIoError;
  }
  out.resize(record->value_len);
  const std::size_t value_offset = record->record_offset +
                                   SsdItemFraming::kHeaderBytes +
                                   record->key_len;
  const StatusCode code = storage_->engine(record->scheme)
                              .read(record->extent->id, value_offset, out);
  if (record->scheme == ssd::IoScheme::kDirect) {
    // H-RDMA-Def swap-in reads the slab from the item's offset onward
    // (Ouyang'12 slab-granular layout): fetching one item streams in the
    // rest of its flushed slab -- on average half a slab of read
    // amplification. The adaptive designs read item-granular through their
    // page-cache-backed engines instead, a large part of this paper's win
    // on the Get path.
    const std::size_t read_total = record->extent->bytes - record->record_offset;
    if (read_total > out.size()) {
      storage_->device().occupy_read(read_total - out.size());
    }
  }
  flags = record->flags;
  charge_check();  // SSD load is part of "Cache Check and Load"

  lock.lock();
  if (!ok(code)) {
    ++stats_.misses;
    if (code == StatusCode::kIoError) {
      // Transient read error: the record stays indexed (a later read may
      // succeed) but the failure counts toward the degradation streak.
      note_io_failure_locked();
      return StatusCode::kIoError;
    }
    return StatusCode::kServerError;
  }
  consecutive_io_errors_ = 0;  // a served read breaks the failure streak
  if (crc32c(static_cast<const void*>(out.data()), out.size()) != record->value_crc) {
    ++stats_.checksum_failures;
    ++stats_.misses;
    return StatusCode::kServerError;
  }
  ++stats_.ssd_hits;

  // Promotion back to RAM.
  //  - Opportunistic (promote_on_hit): only when a chunk is free -- the
  //    optimised designs; promotion never causes flush churn.
  //  - Forced (force_promote): swap-in semantics -- allocate even if that
  //    means flushing other items first (H-RDMA-Def; this is why its Gets
  //    from SSD are so expensive).
  if (config_.promote_on_hit || config_.force_promote) {
    const auto update_start = SteadyClock::now();
    const std::size_t total = item_total_size(key.size(), out.size());
    const unsigned cls = slabs_.class_for(total);
    char* chunk = nullptr;
    if (cls != kInvalidClass) {
      if (config_.force_promote) {
        // May drop and re-acquire the lock around a flush; the allocation
        // cost (incl. flush) is slab-management work on the Get path.
        const auto alloc_start = SteadyClock::now();
        chunk = allocate_with_reclaim(cls, lock);
        if (stages != nullptr) {
          stages->add(Stage::kSlabAllocation, SteadyClock::now() - alloc_start);
        }
      } else if (slabs_.can_allocate(cls)) {
        chunk = slabs_.allocate(cls);
      }
    }
    if (chunk != nullptr) {
      // Re-validate: the lock may have been dropped during a flush and the
      // key overwritten/deleted meanwhile.
      Entry* current = index_.find(key);
      if (current != nullptr && current->ssd == record) {
        ItemHeader* item =
            format_item(chunk, key, out, record->flags, record->expiry, cls);
        item->cas = record->cas;  // promotion is relocation, not mutation
        release_record_locked(current->ssd);
        current->ram = item;
        current->ssd.reset();
        lru_[cls].push_front(item);
        ++stats_.promotions;
      } else {
        slabs_.deallocate(chunk, cls);
      }
    }
    if (stages != nullptr) {
      stages->add(Stage::kCacheUpdate, SteadyClock::now() - update_start);
    }
  }
  return StatusCode::kOk;
}

StatusCode HybridSlabManager::add(std::string_view key,
                                  std::span<const char> value,
                                  std::uint32_t flags, std::int64_t expiration,
                                  StageBreakdown* stages) {
  if (exists(key)) return StatusCode::kNotStored;
  // Benign TOCTOU with concurrent setters: a racing set simply wins, which
  // matches memcached's last-writer semantics under its coarse lock.
  return set(key, value, flags, expiration, stages);
}

StatusCode HybridSlabManager::replace(std::string_view key,
                                      std::span<const char> value,
                                      std::uint32_t flags,
                                      std::int64_t expiration,
                                      StageBreakdown* stages) {
  if (!exists(key)) return StatusCode::kNotStored;
  return set(key, value, flags, expiration, stages);
}

StatusCode HybridSlabManager::append(std::string_view key,
                                     std::span<const char> suffix,
                                     StageBreakdown* stages) {
  std::vector<char> current;
  std::uint32_t flags = 0;
  const StatusCode code = get(key, current, flags, stages);
  if (!ok(code)) {
    return code == StatusCode::kNotFound ? StatusCode::kNotStored : code;
  }
  current.insert(current.end(), suffix.begin(), suffix.end());
  return set(key, current, flags, 0, stages);
}

StatusCode HybridSlabManager::prepend(std::string_view key,
                                      std::span<const char> prefix,
                                      StageBreakdown* stages) {
  std::vector<char> current;
  std::uint32_t flags = 0;
  const StatusCode code = get(key, current, flags, stages);
  if (!ok(code)) {
    return code == StatusCode::kNotFound ? StatusCode::kNotStored : code;
  }
  current.insert(current.begin(), prefix.begin(), prefix.end());
  return set(key, current, flags, 0, stages);
}

namespace {
bool parse_ascii_u64(std::span<const char> bytes, std::uint64_t& out) {
  if (bytes.empty() || bytes.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char c : bytes) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}
}  // namespace

Result<std::uint64_t> HybridSlabManager::incr(std::string_view key,
                                              std::uint64_t delta,
                                              StageBreakdown* stages) {
  std::vector<char> current;
  std::uint32_t flags = 0;
  const StatusCode code = get(key, current, flags, stages);
  if (!ok(code)) return code;
  std::uint64_t value = 0;
  if (!parse_ascii_u64(current, value)) return StatusCode::kInvalidArgument;
  value += delta;  // memcached wraps on overflow; uint64 wrap matches
  char buf[24];
  const int len = std::snprintf(buf, sizeof(buf), "%llu",
                                static_cast<unsigned long long>(value));
  const StatusCode stored = set(key, std::span<const char>(buf, static_cast<std::size_t>(len)),
                                flags, 0, stages);
  if (!ok(stored)) return stored;
  return value;
}

Result<std::uint64_t> HybridSlabManager::decr(std::string_view key,
                                              std::uint64_t delta,
                                              StageBreakdown* stages) {
  std::vector<char> current;
  std::uint32_t flags = 0;
  const StatusCode code = get(key, current, flags, stages);
  if (!ok(code)) return code;
  std::uint64_t value = 0;
  if (!parse_ascii_u64(current, value)) return StatusCode::kInvalidArgument;
  value = value > delta ? value - delta : 0;  // memcached saturates decr at 0
  char buf[24];
  const int len = std::snprintf(buf, sizeof(buf), "%llu",
                                static_cast<unsigned long long>(value));
  const StatusCode stored = set(key, std::span<const char>(buf, static_cast<std::size_t>(len)),
                                flags, 0, stages);
  if (!ok(stored)) return stored;
  return value;
}

StatusCode HybridSlabManager::touch(std::string_view key,
                                    std::int64_t expiration) {
  const std::scoped_lock lock(mu_);
  Entry* entry = index_.find(key);
  if (entry == nullptr) return StatusCode::kNotFound;
  const std::int64_t expiry =
      expiration == 0 ? 0 : steady_seconds() + expiration;
  if (entry->ram != nullptr) {
    if (expired(entry->ram->expiry)) return StatusCode::kNotFound;
    entry->ram->expiry = expiry;
    return StatusCode::kOk;
  }
  if (entry->ssd != nullptr) {
    if (expired(entry->ssd->expiry)) return StatusCode::kNotFound;
    entry->ssd->expiry = expiry;
    return StatusCode::kOk;
  }
  return StatusCode::kNotFound;
}

std::uint64_t HybridSlabManager::current_cas_locked(const Entry* entry) const {
  if (entry == nullptr) return 0;
  if (entry->ram != nullptr) {
    return expired(entry->ram->expiry) ? 0 : entry->ram->cas;
  }
  if (entry->ssd != nullptr) {
    return expired(entry->ssd->expiry) ? 0 : entry->ssd->cas;
  }
  return 0;
}

StatusCode HybridSlabManager::gets(std::string_view key, std::vector<char>& out,
                                   std::uint32_t& flags, std::uint64_t& cas,
                                   StageBreakdown* stages) {
  {
    const std::scoped_lock lock(mu_);
    cas = current_cas_locked(index_.find(key));
  }
  if (cas == 0) {
    std::uint32_t unused = 0;
    (void)get(key, out, unused, stages);  // counts the miss consistently
    return StatusCode::kNotFound;
  }
  // The value matching this CAS token: any interleaved overwrite bumps the
  // version, so a stale read here simply fails the subsequent cas() -- the
  // exact guarantee memcached provides.
  return get(key, out, flags, stages);
}

StatusCode HybridSlabManager::cas(std::string_view key,
                                  std::span<const char> value,
                                  std::uint32_t flags, std::int64_t expiration,
                                  std::uint64_t expected_cas,
                                  StageBreakdown* stages) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  const std::size_t total = item_total_size(key.size(), value.size());
  const unsigned cls = slabs_.class_for(total);
  if (cls == kInvalidClass) return StatusCode::kInvalidArgument;
  const std::int64_t expiry =
      expiration == 0 ? 0 : steady_seconds() + expiration;

  std::unique_lock lock(mu_);
  Entry* entry = index_.find(key);
  std::uint64_t current = current_cas_locked(entry);
  if (current == 0) return StatusCode::kNotFound;
  if (current != expected_cas) return StatusCode::kNotStored;  // EXISTS

  // In-place path (same class): check and store under one lock hold.
  if (entry->ram != nullptr && entry->ram->slab_class == cls &&
      entry->ram->key_len == key.size()) {
    ItemHeader* item = entry->ram;
    item->value_len = static_cast<std::uint32_t>(value.size());
    item->flags = flags;
    item->expiry = expiry;
    item->cas = cas_seq_++;
    if (!value.empty()) {
      std::memcpy(item->value_data(), value.data(), value.size());
    }
    lru_[cls].move_to_front(item);
    ++stats_.sets;
    return StatusCode::kOk;
  }

  // Relocating path: the allocation may drop the lock (flush), so the
  // version must be re-validated before committing.
  char* chunk = allocate_with_reclaim(cls, lock);
  if (chunk == nullptr) return StatusCode::kOutOfMemory;
  entry = index_.find(key);
  current = current_cas_locked(entry);
  if (current != expected_cas) {
    slabs_.deallocate(chunk, cls);
    return current == 0 ? StatusCode::kNotFound : StatusCode::kNotStored;
  }
  if (entry->ram != nullptr) unlink_ram_item(entry->ram);
  if (entry->ssd != nullptr) release_record_locked(entry->ssd);
  ItemHeader* item = format_item(chunk, key, value, flags, expiry, cls);
  item->cas = cas_seq_++;
  entry->ram = item;
  entry->ssd.reset();
  lru_[cls].push_front(item);
  ++stats_.sets;
  (void)stages;
  return StatusCode::kOk;
}

StatusCode HybridSlabManager::del(std::string_view key) {
  const std::scoped_lock lock(mu_);
  Entry* entry = index_.find(key);
  if (entry == nullptr) return StatusCode::kNotFound;
  if (entry->ram != nullptr) unlink_ram_item(entry->ram);
  if (entry->ssd != nullptr) release_record_locked(entry->ssd);
  index_.erase(key);
  ++stats_.deletes;
  return StatusCode::kOk;
}

bool HybridSlabManager::exists(std::string_view key) const {
  const std::scoped_lock lock(mu_);
  const Entry* entry = index_.find(key);
  if (entry == nullptr) return false;
  if (entry->ram != nullptr) return !expired(entry->ram->expiry);
  return entry->ssd != nullptr && !expired(entry->ssd->expiry);
}

void HybridSlabManager::clear() {
  const std::scoped_lock lock(mu_);
  index_.for_each([&](std::string_view, Entry& entry) {
    if (entry.ram != nullptr) unlink_ram_item(entry.ram);
    if (entry.ssd != nullptr) release_record_locked(entry.ssd);
    entry = Entry{};
  });
  index_.clear();
}

std::size_t HybridSlabManager::item_count() const {
  const std::scoped_lock lock(mu_);
  return index_.size();
}

ManagerStats HybridSlabManager::stats() const {
  const std::scoped_lock lock(mu_);
  ManagerStats out = stats_;
  out.degraded_shards = stats_.degraded ? 1 : 0;
  return out;
}

SlabStats HybridSlabManager::slab_stats() const {
  const std::scoped_lock lock(mu_);
  return slabs_.stats();
}

void HybridSlabManager::sync_storage() {
  if (storage_ != nullptr) storage_->cache().sync();
}

}  // namespace hykv::store
