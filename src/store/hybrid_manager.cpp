#include "store/hybrid_manager.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/atomic_bytes.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"

namespace hykv::store {
namespace {

using SteadyClock = std::chrono::steady_clock;

void put_u32(char* dst, std::uint32_t v) { std::memcpy(dst, &v, 4); }
void put_i64(char* dst, std::int64_t v) { std::memcpy(dst, &v, 8); }

}  // namespace

std::int64_t steady_seconds() noexcept {
  static const SteadyClock::time_point start = SteadyClock::now();
  return std::chrono::duration_cast<std::chrono::seconds>(SteadyClock::now() -
                                                          start)
      .count();
}

void HybridSlabManager::ExtentHandle::mark_ready() {
  {
    const MutexLock lock(mu);
    ready = true;
  }
  cv.notify_all();
}

void HybridSlabManager::ExtentHandle::mark_failed() {
  {
    const MutexLock lock(mu);
    failed = true;
    ready = true;  // wake waiters; they must check `failed`
  }
  cv.notify_all();
}

bool HybridSlabManager::ExtentHandle::wait_ready() {
  const MutexLock lock(mu);
  cv.wait(mu, [&]() REQUIRES(mu) { return ready; });
  return failed;
}

HybridSlabManager::ExtentHandle::~ExtentHandle() {
  if (storage != nullptr && id != ssd::kInvalidExtent) {
    storage->cache().invalidate(id);
    storage->device().free(id);
  }
}

HybridSlabManager::HybridSlabManager(ManagerConfig config,
                                     ssd::StorageStack* storage)
    : config_(config), storage_(storage), slabs_(config.slab) {
  assert(config_.mode == StorageMode::kInMemory || storage_ != nullptr);
  lru_.resize(slabs_.num_classes());
  limbo_chunks_.resize(slabs_.num_classes(), 0);
  if (config_.optimistic_reads) index_.set_limbo(&limbo_);
}

HybridSlabManager::~HybridSlabManager() {
  // Teardown is quiescent by contract (no readers in flight). Drain limbo
  // while slabs_/limbo_chunks_ are guaranteed alive for the callbacks.
  limbo_.flush_all();
}

bool HybridSlabManager::expired(std::int64_t expiry) const noexcept {
  return expiry != 0 && steady_seconds() >= expiry;
}

ssd::IoScheme HybridSlabManager::scheme_for_class(unsigned cls) const noexcept {
  if (config_.io_policy == IoPolicy::kDirectAll) return ssd::IoScheme::kDirect;
  return slabs_.chunk_size(cls) <= config_.adaptive_threshold
             ? ssd::IoScheme::kMmap
             : ssd::IoScheme::kCached;
}

void HybridSlabManager::unlink_ram_item(ItemHeader* item) {
  lru_[item->slab_class].remove(item);
  slabs_.deallocate(reinterpret_cast<char*>(item), item->slab_class);
}

void HybridSlabManager::retire_ram_item(ItemHeader* item) {
  const unsigned cls = item->slab_class;
  if (!config_.optimistic_reads) {
    unlink_ram_item(item);
    return;
  }
  lru_[cls].remove(item);
  ++limbo_chunks_[cls];
  // NO_THREAD_SAFETY_ANALYSIS: the deleter runs from limbo_.flush(), which is
  // only ever called under mu_, but the void* ctx round-trip erases the
  // capability so the analysis cannot see it.
  limbo_.retire(
      item, cls,
      [](void* ctx, void* obj, std::uint64_t aux) NO_THREAD_SAFETY_ANALYSIS {
        auto* self = static_cast<HybridSlabManager*>(ctx);
        const auto klass = static_cast<unsigned>(aux);
        self->slabs_.deallocate(static_cast<char*>(obj), klass);
        --self->limbo_chunks_[klass];
      },
      this);
}

ItemHeader* HybridSlabManager::lru_tail_victim(unsigned cls) {
  int rescues = 0;
  while (ItemHeader* tail = lru_[cls].tail()) {
    if (rescues < 8 &&
        tail->touched.exchange(0, std::memory_order_relaxed) != 0) {
      // An optimistic GET read this item since the last sweep: second
      // chance. Bounded so a fully-hot class still yields a victim.
      lru_[cls].move_to_front(tail);
      ++rescues;
      continue;
    }
    return tail;
  }
  return nullptr;
}

void HybridSlabManager::release_record_locked(
    const std::shared_ptr<SsdRecord>& record) {
  const std::size_t bytes =
      SsdItemFraming::record_size(record->key_len, record->value_len);
  stats_.ssd_live_bytes -= std::min<std::uint64_t>(stats_.ssd_live_bytes, bytes);
}

void HybridSlabManager::note_io_failure_locked() {
  ++stats_.io_errors;
  ++consecutive_io_errors_;
  if (!stats_.degraded &&
      consecutive_io_errors_ >= config_.degrade_after_io_errors) {
    stats_.degraded = true;
    HYKV_WARN("storage degraded after %u consecutive I/O errors: "
              "RAM-only mode (evict instead of flush)",
              consecutive_io_errors_);
  }
  if (stats_.degraded) {
    heal_probe_at_ = sim::now() + config_.heal_probe_after;
  }
}

bool HybridSlabManager::drop_one(unsigned cls) {
  ItemHeader* victim = lru_tail_victim(cls);
  if (victim == nullptr) return false;
  const std::string key(victim->key());
  Entry* entry = index_.find(key);
  assert(entry != nullptr &&
         entry->ram.load(std::memory_order_relaxed) == victim);
  // Unpublish before retiring: a lock-free reader that already loaded the
  // item pointer finishes safely (the chunk sits in limbo), and new readers
  // see the entry empty.
  if (entry != nullptr) entry->ram.store(nullptr, std::memory_order_release);
  retire_ram_item(victim);
  index_.erase(key);
  ++stats_.dropped_evictions;
  return true;
}

bool HybridSlabManager::flush_batch(unsigned cls) {
  metrics::LatencyRecorder* const rec = config_.latency;
  if (rec == nullptr) return do_flush_batch(cls);
  const SteadyClock::time_point start = SteadyClock::now();
  const bool flushed = do_flush_batch(cls);
  rec->record_span(metrics::Span::kSsdFlush,
                   metrics::delta_ns(start, SteadyClock::now()));
  return flushed;
}

bool HybridSlabManager::do_flush_batch(unsigned cls) {
  if (lru_[cls].empty()) return false;

  // 1. Collect LRU-tail victims until the batch is full (<= one slab page).
  struct Victim {
    std::string key;
    std::uint32_t record_offset;
  };
  std::vector<char> staging;
  staging.reserve(config_.flush_batch_bytes);
  std::vector<Victim> victims;
  std::vector<std::shared_ptr<SsdRecord>> records;

  const ssd::IoScheme scheme = scheme_for_class(cls);
  while (ItemHeader* item = lru_tail_victim(cls)) {
    const std::size_t rec_size =
        SsdItemFraming::record_size(item->key_len, item->value_len);
    if (!victims.empty() &&
        staging.size() + rec_size > config_.flush_batch_bytes) {
      break;
    }
    const auto offset = static_cast<std::uint32_t>(staging.size());
    staging.resize(staging.size() + rec_size);
    char* p = staging.data() + offset;
    const std::uint32_t crc = crc32c(static_cast<const void*>(item->value_data()), item->value_len);
    put_u32(p, item->key_len);
    put_u32(p + 4, item->value_len);
    put_u32(p + 8, item->flags);
    put_u32(p + 12, crc);
    put_i64(p + 16, item->expiry);
    std::memcpy(p + SsdItemFraming::kHeaderBytes, item->key_data(),
                item->key_len);
    std::memcpy(p + SsdItemFraming::kHeaderBytes + item->key_len,
                item->value_data(), item->value_len);

    auto record = std::make_shared<SsdRecord>();
    record->record_offset = offset;
    record->key_len = item->key_len;
    record->value_len = item->value_len;
    record->flags = item->flags;
    record->value_crc = crc;
    record->expiry = item->expiry;
    record->cas = item->cas;
    record->scheme = scheme;
    records.push_back(std::move(record));
    victims.push_back(Victim{std::string(item->key()), offset});
    // Detach the RAM presence before the chunk returns to the free list so
    // the index never holds a dangling item pointer. Unpublish (release)
    // first: a lock-free reader mid-copy keeps the chunk alive via limbo.
    Entry* entry = index_.find(victims.back().key);
    assert(entry != nullptr && entry->ram.load(std::memory_order_relaxed) == item);
    entry->ram.store(nullptr, std::memory_order_release);
    retire_ram_item(item);
  }

  // 2. Reserve the SSD extent; on failure fall back to dropping the victims
  //    (data loss, like the in-memory design -- counted, never silent).
  const bool over_limit =
      config_.ssd_limit != 0 &&
      stats_.ssd_live_bytes + staging.size() > config_.ssd_limit;
  Result<ssd::ExtentId> extent =
      over_limit ? Result<ssd::ExtentId>(StatusCode::kOutOfMemory)
                 : storage_->device().allocate(staging.size());
  if (!extent.ok()) {
    for (const auto& victim : victims) index_.erase(victim.key);
    stats_.dropped_evictions += victims.size();
    HYKV_WARN("SSD full: dropped %zu items (%zu bytes)", victims.size(),
              staging.size());
    return true;  // chunks were freed; allocation can proceed
  }

  auto handle = std::make_shared<ExtentHandle>();
  handle->storage = storage_;
  handle->id = extent.value();
  handle->bytes = staging.size();

  // 3. Point the index entries at the (not yet durable) SSD records.
  for (std::size_t i = 0; i < victims.size(); ++i) {
    records[i]->extent = handle;
    Entry* entry = index_.find(victims[i].key);
    assert(entry != nullptr &&
           entry->ram.load(std::memory_order_relaxed) == nullptr);
    if (entry != nullptr) entry->ssd = records[i];
  }
  ++stats_.flushes;
  stats_.flushed_items += victims.size();
  stats_.flushed_bytes += staging.size();
  stats_.ssd_live_bytes += staging.size();

  // 4. Write outside the lock; readers of these records wait on ready.
  mu_.unlock();
  const StatusCode code =
      storage_->engine(scheme).write(handle->id, 0, staging);
  if (!ok(code)) {
    HYKV_ERROR("flush write failed: %.*s",
               static_cast<int>(status_name(code).size()), status_name(code).data());
    handle->mark_failed();
  } else {
    handle->mark_ready();
  }
  mu_.lock();
  if (!ok(code)) {
    // The extent never became durable: these victims are lost. Erase every
    // entry still pointing at the failed batch (a concurrent set may have
    // displaced some already) -- counted, never silent.
    //
    // Roll back *exactly* what step 3 added for this batch. Concurrent
    // flushes only ever add to these counters and each failed flush subtracts
    // only its own contribution, so the subtraction can never underflow --
    // clamping it (as this once did) would silently absorb a real accounting
    // bug instead of surfacing it. ssd_live_bytes is rolled back per record
    // via release_record_locked below (records displaced by a concurrent set
    // during the write were already released at displacement).
    assert(stats_.flushes >= 1);
    assert(stats_.flushed_items >= victims.size());
    assert(stats_.flushed_bytes >= staging.size());
    stats_.flushes -= 1;
    stats_.flushed_items -= victims.size();
    stats_.flushed_bytes -= staging.size();
    for (std::size_t i = 0; i < victims.size(); ++i) {
      Entry* entry = index_.find(victims[i].key);
      if (entry != nullptr &&
          entry->ram.load(std::memory_order_relaxed) == nullptr &&
          entry->ssd == records[i]) {
        release_record_locked(records[i]);
        index_.erase(victims[i].key);
        ++stats_.dropped_evictions;
      }
    }
    note_io_failure_locked();
  } else {
    consecutive_io_errors_ = 0;
    if (stats_.degraded) {
      stats_.degraded = false;
      HYKV_WARN("storage healed: flush probe succeeded, leaving RAM-only mode");
    }
  }
  return true;
}

char* HybridSlabManager::allocate_with_reclaim(unsigned cls) {
  for (int attempt = 0; attempt < 4096; ++attempt) {
    // Retired chunks whose epoch has passed are the cheapest source of
    // memory: drain them before evicting or flushing anything live.
    if (config_.optimistic_reads && !limbo_.empty()) limbo_.flush();
    char* chunk = slabs_.allocate(cls);
    if (chunk != nullptr) return chunk;
    if (config_.optimistic_reads && limbo_chunks_[cls] > 0) {
      // Chunks of this class are already unlinked, just waiting for readers
      // to leave the epoch. Yield for them instead of evicting more data --
      // read critical sections are short by contract.
      mu_.unlock();
      std::this_thread::yield();
      mu_.lock();
      continue;
    }
    if (config_.mode == StorageMode::kInMemory) {
      if (!drop_one(cls)) return nullptr;
    } else if (stats_.degraded && sim::now() < heal_probe_at_) {
      // Degraded (RAM-only) mode: the SSD is misbehaving, so evict like the
      // in-memory design instead of queueing stores behind a failing device.
      // Once the probe timer expires the next allocation falls through to
      // flush_batch, which is the half-open heal attempt.
      if (!drop_one(cls)) return nullptr;
    } else {
      if (!flush_batch(cls)) {
        // Nothing left to flush in this class (slab calcification): fail the
        // store rather than stealing carved pages from other classes.
        return nullptr;
      }
    }
  }
  return nullptr;
}

StatusCode HybridSlabManager::set(std::string_view key,
                                  std::span<const char> value,
                                  std::uint32_t flags, std::int64_t expiration,
                                  StageBreakdown* stages) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  const std::size_t total = item_total_size(key.size(), value.size());
  const unsigned cls = slabs_.class_for(total);
  if (cls == kInvalidClass) return StatusCode::kInvalidArgument;
  const std::int64_t expiry =
      expiration == 0 ? 0 : steady_seconds() + expiration;

  const MutexLock lock(mu_);
  if (config_.modelled_op_cost.count() > 0) {
    sim::advance_coarse(config_.modelled_op_cost);  // modelled under-lock CPU work
  }

  // Fast path: overwrite in place when the existing RAM item lives in the
  // same slab class and the key matches -- the common hot-key update. No
  // allocation, no flush churn; memcached-grade stores optimise this case
  // and without it a write-heavy Zipf workload would evict on every update.
  {
    const auto check_start = SteadyClock::now();
    Entry* hot = index_.find(key);
    ItemHeader* item =
        hot != nullptr ? hot->ram.load(std::memory_order_relaxed) : nullptr;
    if (item != nullptr && item->slab_class == cls &&
        item->key_len == key.size()) {
      if (stages != nullptr) {
        stages->add(Stage::kCacheCheckLoad, SteadyClock::now() - check_start);
      }
      const auto update_start = SteadyClock::now();
      // Published item: optimistic readers may be copying it right now, so
      // the in-place mutation runs under the seqlock bracket and every store
      // is a relaxed atomic (tears are detected, never undefined).
      const std::uint64_t even = seq_write_begin(item);
      seq_store(item->value_len, static_cast<std::uint32_t>(value.size()));
      seq_store(item->flags, flags);
      seq_store(item->expiry, expiry);
      seq_store(item->cas, cas_seq_++);
      if (!value.empty()) {
        atomic_store_bytes(item->value_data(), value.data(), value.size());
      }
      seq_write_end(item, even);
      lru_[cls].move_to_front(item);
      ++stats_.sets;
      if (stages != nullptr) {
        stages->add(Stage::kCacheUpdate, SteadyClock::now() - update_start);
      }
      return StatusCode::kOk;
    }
  }

  // Slab allocation (including any flush/eviction it triggers).
  const auto alloc_start = SteadyClock::now();
  char* chunk = allocate_with_reclaim(cls);
  if (stages != nullptr) {
    stages->add(Stage::kSlabAllocation, SteadyClock::now() - alloc_start);
  }
  if (chunk == nullptr) return StatusCode::kOutOfMemory;

  // Cache check: displace any previous version of the key. (The entry must
  // be re-looked-up here: the lock may have been dropped during a flush.)
  const auto check_start = SteadyClock::now();
  Entry* existing = index_.find(key);
  if (existing != nullptr) {
    ItemHeader* old = existing->ram.load(std::memory_order_relaxed);
    if (old != nullptr) {
      existing->ram.store(nullptr, std::memory_order_release);
      retire_ram_item(old);
    }
    if (existing->ssd != nullptr) release_record_locked(existing->ssd);
  }
  if (stages != nullptr) {
    stages->add(Stage::kCacheCheckLoad, SteadyClock::now() - check_start);
  }

  // Cache update: format the item, (re)index it, promote to LRU head. The
  // release publication store makes the plain format_item writes visible to
  // lock-free readers.
  const auto update_start = SteadyClock::now();
  ItemHeader* item = format_item(chunk, key, value, flags, expiry, cls);
  item->cas = cas_seq_++;
  if (existing != nullptr) {
    existing->ssd.reset();
    existing->ram.store(item, std::memory_order_release);
  } else {
    index_.upsert(key, Entry{item, nullptr});
  }
  lru_[cls].push_front(item);
  ++stats_.sets;
  if (stages != nullptr) {
    stages->add(Stage::kCacheUpdate, SteadyClock::now() - update_start);
  }
  return StatusCode::kOk;
}

StatusCode HybridSlabManager::get(std::string_view key, std::vector<char>& out,
                                  std::uint32_t& flags,
                                  StageBreakdown* stages) {
  // One timestamp classifies the whole read by outcome: a GET that falls
  // back pays the failed optimistic attempt too, and that full cost lands in
  // the locked_read span (the cost the fallback actually imposed).
  metrics::LatencyRecorder* const rec = config_.latency;
  const SteadyClock::time_point read_start =
      rec != nullptr ? SteadyClock::now() : SteadyClock::time_point{};
  if (config_.optimistic_reads) {
    // The modelled per-op CPU cost is realised *outside* any lock here: on
    // the optimistic design the hash/copy work genuinely runs without the
    // shard lock, which is exactly the contention the ablation measures.
    if (config_.modelled_op_cost.count() > 0) {
      sim::advance_coarse(config_.modelled_op_cost);
    }
    if (try_optimistic_get(key, out, flags, nullptr)) {
      if (rec != nullptr) {
        rec->record_span(metrics::Span::kOptimisticRead,
                         metrics::delta_ns(read_start, SteadyClock::now()));
      }
      return StatusCode::kOk;
    }
    opt_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    const StatusCode code =
        get_locked(key, out, flags, stages, /*pay_modelled_cost=*/false);
    if (rec != nullptr) {
      rec->record_span(metrics::Span::kLockedRead,
                       metrics::delta_ns(read_start, SteadyClock::now()));
    }
    return code;
  }
  const StatusCode code =
      get_locked(key, out, flags, stages, /*pay_modelled_cost=*/true);
  if (rec != nullptr) {
    rec->record_span(metrics::Span::kLockedRead,
                     metrics::delta_ns(read_start, SteadyClock::now()));
  }
  return code;
}

bool HybridSlabManager::try_optimistic_get(std::string_view key,
                                           std::vector<char>& out,
                                           std::uint32_t& flags,
                                           std::uint64_t* cas_out) {
  constexpr int kAttempts = 4;
  // Pin the epoch for the whole lookup: every pointer loaded below (hash
  // nodes, the entry, the item chunk) stays allocated until the guard drops,
  // however many writers unlink/retire concurrently.
  epoch::Domain::Guard guard(epoch::global());
  if (!guard.engaged()) return false;  // reader slots exhausted: locked path
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    const Entry* entry = index_.find_optimistic(key);
    if (entry == nullptr) return false;  // miss: locked path is authoritative
    ItemHeader* item = entry->ram.load(std::memory_order_acquire);
    if (item == nullptr) return false;   // SSD-resident / being relocated
    const std::uint64_t v1 = item->version.load(std::memory_order_acquire);
    if ((v1 & 1u) != 0) {  // writer mid-mutation
      opt_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const auto value_len = seq_load(item->value_len);
    const auto item_flags = seq_load(item->flags);
    const auto item_expiry = seq_load(item->expiry);
    const auto item_cas = seq_load(item->cas);
    out.resize(value_len);
    atomic_load_bytes(out.data(), item->value_data(), value_len);
    // Fence-free validation: the acquire data loads above cannot be
    // reordered past this re-check (see common/atomic_bytes.hpp).
    if (item->version.load(std::memory_order_relaxed) != v1) {
      opt_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;  // torn: a writer overlapped the copy
    }
    if (expired(item_expiry)) return false;  // locked path reaps + counts it
    flags = item_flags;
    if (cas_out != nullptr) *cas_out = item_cas;
    // LRU recency without the lock: flag the item; eviction grants flagged
    // tails a second chance (lru_tail_victim).
    item->touched.store(1, std::memory_order_relaxed);
    opt_hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;  // persistent churn on this key: serialise with the writers
}

StatusCode HybridSlabManager::get_locked(std::string_view key,
                                         std::vector<char>& out,
                                         std::uint32_t& flags,
                                         StageBreakdown* stages,
                                         bool pay_modelled_cost) {
  MutexLock lock(mu_);
  if (pay_modelled_cost && config_.modelled_op_cost.count() > 0) {
    sim::advance_coarse(config_.modelled_op_cost);  // modelled under-lock CPU work
  }
  const auto check_start = SteadyClock::now();
  auto charge_check = [&] {
    if (stages != nullptr) {
      stages->add(Stage::kCacheCheckLoad, SteadyClock::now() - check_start);
    }
  };

  Entry* entry = index_.find(key);
  if (entry == nullptr) {
    ++stats_.misses;
    charge_check();
    return StatusCode::kNotFound;
  }

  // RAM hit.
  if (ItemHeader* item = entry->ram.load(std::memory_order_relaxed)) {
    if (expired(item->expiry)) {
      entry->ram.store(nullptr, std::memory_order_release);
      retire_ram_item(item);
      index_.erase(key);
      ++stats_.expired;
      ++stats_.misses;
      charge_check();
      return StatusCode::kNotFound;
    }
    out.assign(item->value_data(), item->value_data() + item->value_len);
    flags = item->flags;
    ++stats_.ram_hits;
    charge_check();
    const auto update_start = SteadyClock::now();
    lru_[item->slab_class].move_to_front(item);
    if (stages != nullptr) {
      stages->add(Stage::kCacheUpdate, SteadyClock::now() - update_start);
    }
    return StatusCode::kOk;
  }

  // SSD hit: pin the record, drop the lock, read from flash.
  std::shared_ptr<SsdRecord> record = entry->ssd;
  assert(record != nullptr);
  if (expired(record->expiry)) {
    release_record_locked(record);
    index_.erase(key);
    ++stats_.expired;
    ++stats_.misses;
    charge_check();
    return StatusCode::kNotFound;
  }
  lock.unlock();

  const bool extent_failed = record->extent->wait_ready();
  if (extent_failed) {
    // The flush backing this record never reached the device: the data is
    // gone. flush_batch already erased the index entries; this reader just
    // pinned the record before that happened.
    charge_check();
    lock.lock();
    Entry* current = index_.find(key);
    if (current != nullptr &&
        current->ram.load(std::memory_order_relaxed) == nullptr &&
        current->ssd == record) {
      release_record_locked(record);
      index_.erase(key);
    }
    ++stats_.misses;
    return StatusCode::kIoError;
  }
  out.resize(record->value_len);
  const std::size_t value_offset = record->record_offset +
                                   SsdItemFraming::kHeaderBytes +
                                   record->key_len;
  const StatusCode code = storage_->engine(record->scheme)
                              .read(record->extent->id, value_offset, out);
  if (record->scheme == ssd::IoScheme::kDirect) {
    // H-RDMA-Def swap-in reads the slab from the item's offset onward
    // (Ouyang'12 slab-granular layout): fetching one item streams in the
    // rest of its flushed slab -- on average half a slab of read
    // amplification. The adaptive designs read item-granular through their
    // page-cache-backed engines instead, a large part of this paper's win
    // on the Get path.
    const std::size_t read_total = record->extent->bytes - record->record_offset;
    if (read_total > out.size()) {
      storage_->device().occupy_read(read_total - out.size());
    }
  }
  flags = record->flags;
  charge_check();  // SSD load is part of "Cache Check and Load"

  lock.lock();
  if (!ok(code)) {
    ++stats_.misses;
    if (code == StatusCode::kIoError) {
      // Transient read error: the record stays indexed (a later read may
      // succeed) but the failure counts toward the degradation streak.
      note_io_failure_locked();
      return StatusCode::kIoError;
    }
    return StatusCode::kServerError;
  }
  consecutive_io_errors_ = 0;  // a served read breaks the failure streak
  if (crc32c(static_cast<const void*>(out.data()), out.size()) != record->value_crc) {
    ++stats_.checksum_failures;
    ++stats_.misses;
    return StatusCode::kServerError;
  }
  ++stats_.ssd_hits;

  // Promotion back to RAM.
  //  - Opportunistic (promote_on_hit): only when a chunk is free -- the
  //    optimised designs; promotion never causes flush churn.
  //  - Forced (force_promote): swap-in semantics -- allocate even if that
  //    means flushing other items first (H-RDMA-Def; this is why its Gets
  //    from SSD are so expensive).
  if (config_.promote_on_hit || config_.force_promote) {
    const auto update_start = SteadyClock::now();
    const std::size_t total = item_total_size(key.size(), out.size());
    const unsigned cls = slabs_.class_for(total);
    char* chunk = nullptr;
    if (cls != kInvalidClass) {
      if (config_.force_promote) {
        // May drop and re-acquire the lock around a flush; the allocation
        // cost (incl. flush) is slab-management work on the Get path.
        const auto alloc_start = SteadyClock::now();
        chunk = allocate_with_reclaim(cls);
        if (stages != nullptr) {
          stages->add(Stage::kSlabAllocation, SteadyClock::now() - alloc_start);
        }
      } else {
        // Epoch-expired chunks are free memory in waiting: drain them so an
        // opportunistic promotion isn't refused while RAM is available.
        if (config_.optimistic_reads && !limbo_.empty()) limbo_.flush();
        if (slabs_.can_allocate(cls)) chunk = slabs_.allocate(cls);
      }
    }
    if (chunk != nullptr) {
      // Re-validate: the lock may have been dropped during a flush and the
      // key overwritten/deleted meanwhile.
      Entry* current = index_.find(key);
      if (current != nullptr && current->ssd == record) {
        ItemHeader* item =
            format_item(chunk, key, out, record->flags, record->expiry, cls);
        item->cas = record->cas;  // promotion is relocation, not mutation
        release_record_locked(current->ssd);
        current->ssd.reset();
        current->ram.store(item, std::memory_order_release);
        lru_[cls].push_front(item);
        ++stats_.promotions;
      } else {
        slabs_.deallocate(chunk, cls);
      }
    }
    if (stages != nullptr) {
      stages->add(Stage::kCacheUpdate, SteadyClock::now() - update_start);
    }
  }
  return StatusCode::kOk;
}

StatusCode HybridSlabManager::add(std::string_view key,
                                  std::span<const char> value,
                                  std::uint32_t flags, std::int64_t expiration,
                                  StageBreakdown* stages) {
  if (exists(key)) return StatusCode::kNotStored;
  // Benign TOCTOU with concurrent setters: a racing set simply wins, which
  // matches memcached's last-writer semantics under its coarse lock.
  return set(key, value, flags, expiration, stages);
}

StatusCode HybridSlabManager::replace(std::string_view key,
                                      std::span<const char> value,
                                      std::uint32_t flags,
                                      std::int64_t expiration,
                                      StageBreakdown* stages) {
  if (!exists(key)) return StatusCode::kNotStored;
  return set(key, value, flags, expiration, stages);
}

StatusCode HybridSlabManager::append(std::string_view key,
                                     std::span<const char> suffix,
                                     StageBreakdown* stages) {
  std::vector<char> current;
  std::uint32_t flags = 0;
  const StatusCode code = get(key, current, flags, stages);
  if (!ok(code)) {
    return code == StatusCode::kNotFound ? StatusCode::kNotStored : code;
  }
  current.insert(current.end(), suffix.begin(), suffix.end());
  return set(key, current, flags, 0, stages);
}

StatusCode HybridSlabManager::prepend(std::string_view key,
                                      std::span<const char> prefix,
                                      StageBreakdown* stages) {
  std::vector<char> current;
  std::uint32_t flags = 0;
  const StatusCode code = get(key, current, flags, stages);
  if (!ok(code)) {
    return code == StatusCode::kNotFound ? StatusCode::kNotStored : code;
  }
  current.insert(current.begin(), prefix.begin(), prefix.end());
  return set(key, current, flags, 0, stages);
}

namespace {
bool parse_ascii_u64(std::span<const char> bytes, std::uint64_t& out) {
  if (bytes.empty() || bytes.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char c : bytes) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}
}  // namespace

Result<std::uint64_t> HybridSlabManager::incr(std::string_view key,
                                              std::uint64_t delta,
                                              StageBreakdown* stages) {
  std::vector<char> current;
  std::uint32_t flags = 0;
  const StatusCode code = get(key, current, flags, stages);
  if (!ok(code)) return code;
  std::uint64_t value = 0;
  if (!parse_ascii_u64(current, value)) return StatusCode::kInvalidArgument;
  value += delta;  // memcached wraps on overflow; uint64 wrap matches
  char buf[24];
  const int len = std::snprintf(buf, sizeof(buf), "%llu",
                                static_cast<unsigned long long>(value));
  const StatusCode stored = set(key, std::span<const char>(buf, static_cast<std::size_t>(len)),
                                flags, 0, stages);
  if (!ok(stored)) return stored;
  return value;
}

Result<std::uint64_t> HybridSlabManager::decr(std::string_view key,
                                              std::uint64_t delta,
                                              StageBreakdown* stages) {
  std::vector<char> current;
  std::uint32_t flags = 0;
  const StatusCode code = get(key, current, flags, stages);
  if (!ok(code)) return code;
  std::uint64_t value = 0;
  if (!parse_ascii_u64(current, value)) return StatusCode::kInvalidArgument;
  value = value > delta ? value - delta : 0;  // memcached saturates decr at 0
  char buf[24];
  const int len = std::snprintf(buf, sizeof(buf), "%llu",
                                static_cast<unsigned long long>(value));
  const StatusCode stored = set(key, std::span<const char>(buf, static_cast<std::size_t>(len)),
                                flags, 0, stages);
  if (!ok(stored)) return stored;
  return value;
}

StatusCode HybridSlabManager::touch(std::string_view key,
                                    std::int64_t expiration) {
  const MutexLock lock(mu_);
  Entry* entry = index_.find(key);
  if (entry == nullptr) return StatusCode::kNotFound;
  const std::int64_t expiry =
      expiration == 0 ? 0 : steady_seconds() + expiration;
  if (ItemHeader* item = entry->ram.load(std::memory_order_relaxed)) {
    if (expired(item->expiry)) return StatusCode::kNotFound;
    // Single aligned field: a bare relaxed-atomic store suffices (a
    // concurrent optimistic read of the old expiry linearises before).
    seq_store(item->expiry, expiry);
    return StatusCode::kOk;
  }
  if (entry->ssd != nullptr) {
    if (expired(entry->ssd->expiry)) return StatusCode::kNotFound;
    entry->ssd->expiry = expiry;
    return StatusCode::kOk;
  }
  return StatusCode::kNotFound;
}

std::uint64_t HybridSlabManager::current_cas_locked(const Entry* entry) const {
  if (entry == nullptr) return 0;
  if (const ItemHeader* item = entry->ram.load(std::memory_order_relaxed)) {
    return expired(item->expiry) ? 0 : item->cas;
  }
  if (entry->ssd != nullptr) {
    return expired(entry->ssd->expiry) ? 0 : entry->ssd->cas;
  }
  return 0;
}

StatusCode HybridSlabManager::gets(std::string_view key, std::vector<char>& out,
                                   std::uint32_t& flags, std::uint64_t& cas,
                                   StageBreakdown* stages) {
  metrics::LatencyRecorder* const rec = config_.latency;
  const SteadyClock::time_point read_start =
      rec != nullptr ? SteadyClock::now() : SteadyClock::time_point{};
  if (config_.optimistic_reads) {
    if (config_.modelled_op_cost.count() > 0) {
      sim::advance_coarse(config_.modelled_op_cost);
    }
    // The seqlock bracket snapshots (value, flags, cas) atomically, so the
    // CAS token always matches the returned bytes -- the same guarantee the
    // locked path gets from holding the mutex.
    if (try_optimistic_get(key, out, flags, &cas)) {
      if (rec != nullptr) {
        rec->record_span(metrics::Span::kOptimisticRead,
                         metrics::delta_ns(read_start, SteadyClock::now()));
      }
      return StatusCode::kOk;
    }
    opt_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    const StatusCode code = gets_locked(key, out, flags, cas, stages,
                                        /*pay_modelled_cost=*/false);
    if (rec != nullptr) {
      rec->record_span(metrics::Span::kLockedRead,
                       metrics::delta_ns(read_start, SteadyClock::now()));
    }
    return code;
  }
  const StatusCode code =
      gets_locked(key, out, flags, cas, stages, /*pay_modelled_cost=*/true);
  if (rec != nullptr) {
    rec->record_span(metrics::Span::kLockedRead,
                     metrics::delta_ns(read_start, SteadyClock::now()));
  }
  return code;
}

StatusCode HybridSlabManager::gets_locked(std::string_view key,
                                          std::vector<char>& out,
                                          std::uint32_t& flags,
                                          std::uint64_t& cas,
                                          StageBreakdown* stages,
                                          bool pay_modelled_cost) {
  {
    const MutexLock lock(mu_);
    cas = current_cas_locked(index_.find(key));
  }
  if (cas == 0) {
    std::uint32_t unused = 0;
    // Counts the miss consistently.
    (void)get_locked(key, out, unused, stages, pay_modelled_cost);
    return StatusCode::kNotFound;
  }
  // The value matching this CAS token: any interleaved overwrite bumps the
  // version, so a stale read here simply fails the subsequent cas() -- the
  // exact guarantee memcached provides.
  return get_locked(key, out, flags, stages, pay_modelled_cost);
}

StatusCode HybridSlabManager::cas(std::string_view key,
                                  std::span<const char> value,
                                  std::uint32_t flags, std::int64_t expiration,
                                  std::uint64_t expected_cas,
                                  StageBreakdown* stages) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  const std::size_t total = item_total_size(key.size(), value.size());
  const unsigned cls = slabs_.class_for(total);
  if (cls == kInvalidClass) return StatusCode::kInvalidArgument;
  const std::int64_t expiry =
      expiration == 0 ? 0 : steady_seconds() + expiration;

  const MutexLock lock(mu_);
  Entry* entry = index_.find(key);
  std::uint64_t current = current_cas_locked(entry);
  if (current == 0) return StatusCode::kNotFound;
  if (current != expected_cas) return StatusCode::kNotStored;  // EXISTS

  // In-place path (same class): check and store under one lock hold. The
  // seqlock bracket keeps concurrent optimistic readers torn-free.
  if (ItemHeader* item = entry->ram.load(std::memory_order_relaxed);
      item != nullptr && item->slab_class == cls &&
      item->key_len == key.size()) {
    const std::uint64_t even = seq_write_begin(item);
    seq_store(item->value_len, static_cast<std::uint32_t>(value.size()));
    seq_store(item->flags, flags);
    seq_store(item->expiry, expiry);
    seq_store(item->cas, cas_seq_++);
    if (!value.empty()) {
      atomic_store_bytes(item->value_data(), value.data(), value.size());
    }
    seq_write_end(item, even);
    lru_[cls].move_to_front(item);
    ++stats_.sets;
    return StatusCode::kOk;
  }

  // Relocating path: the allocation may drop the lock (flush), so the
  // version must be re-validated before committing.
  char* chunk = allocate_with_reclaim(cls);
  if (chunk == nullptr) return StatusCode::kOutOfMemory;
  entry = index_.find(key);
  current = current_cas_locked(entry);
  if (current != expected_cas) {
    slabs_.deallocate(chunk, cls);
    return current == 0 ? StatusCode::kNotFound : StatusCode::kNotStored;
  }
  if (ItemHeader* old = entry->ram.load(std::memory_order_relaxed)) {
    entry->ram.store(nullptr, std::memory_order_release);
    retire_ram_item(old);
  }
  if (entry->ssd != nullptr) release_record_locked(entry->ssd);
  ItemHeader* item = format_item(chunk, key, value, flags, expiry, cls);
  item->cas = cas_seq_++;
  entry->ssd.reset();
  entry->ram.store(item, std::memory_order_release);
  lru_[cls].push_front(item);
  ++stats_.sets;
  (void)stages;
  return StatusCode::kOk;
}

StatusCode HybridSlabManager::del(std::string_view key) {
  const MutexLock lock(mu_);
  Entry* entry = index_.find(key);
  if (entry == nullptr) return StatusCode::kNotFound;
  if (ItemHeader* item = entry->ram.load(std::memory_order_relaxed)) {
    entry->ram.store(nullptr, std::memory_order_release);
    retire_ram_item(item);
  }
  if (entry->ssd != nullptr) release_record_locked(entry->ssd);
  index_.erase(key);
  ++stats_.deletes;
  return StatusCode::kOk;
}

bool HybridSlabManager::exists(std::string_view key) const {
  const MutexLock lock(mu_);
  const Entry* entry = index_.find(key);
  if (entry == nullptr) return false;
  if (const ItemHeader* item = entry->ram.load(std::memory_order_relaxed)) {
    return !expired(item->expiry);
  }
  return entry->ssd != nullptr && !expired(entry->ssd->expiry);
}

void HybridSlabManager::clear() {
  const MutexLock lock(mu_);
  index_.for_each([&](std::string_view, Entry& entry) {
    if (ItemHeader* item = entry.ram.load(std::memory_order_relaxed)) {
      entry.ram.store(nullptr, std::memory_order_release);
      retire_ram_item(item);
    }
    if (entry.ssd != nullptr) {
      release_record_locked(entry.ssd);
      entry.ssd.reset();
    }
  });
  index_.clear();
}

std::size_t HybridSlabManager::item_count() const {
  const MutexLock lock(mu_);
  return index_.size();
}

ManagerStats HybridSlabManager::stats() const {
  const MutexLock lock(mu_);
  ManagerStats out = stats_;
  out.degraded_shards = stats_.degraded ? 1 : 0;
  // Optimistic GETs never touch mu_ or stats_; fold their counters in here.
  // An optimistic hit IS a RAM hit, so ram_hits stays the all-paths total.
  const std::uint64_t hits = opt_hits_.load(std::memory_order_relaxed);
  out.optimistic_hits = hits;
  out.optimistic_retries = opt_retries_.load(std::memory_order_relaxed);
  out.locked_fallbacks = opt_fallbacks_.load(std::memory_order_relaxed);
  out.ram_hits += hits;
  return out;
}

SlabStats HybridSlabManager::slab_stats() const {
  const MutexLock lock(mu_);
  return slabs_.stats();
}

void HybridSlabManager::sync_storage() {
  if (storage_ != nullptr) storage_->cache().sync();
}

}  // namespace hykv::store
