// Ketama-style consistent-hash ring for key -> server selection, the
// mechanism libmemcached uses to scatter keys over a Memcached cluster.
//
// The hash points are immutable after construction, but the ring tracks a
// mutable per-server health record for failover: after `eject_after`
// consecutive failures a server is ejected (keys it owns remap to the next
// live hash point, the standard ketama failover) and re-probed after
// `reprobe_after` of real time -- selection then returns the dead server
// once (half-open circuit) so a single request can test it; success readmits
// it, failure re-arms the probe timer. All methods are thread-safe.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/sim_time.hpp"
#include "net/message.hpp"

namespace hykv::client {

/// Ejection / readmission policy for ring failover. Durations are real
/// (wall-clock) time, like client deadlines -- failure detection is a
/// property of the observer, not of the modelled hardware.
struct FailoverPolicy {
  unsigned eject_after = 3;             ///< Consecutive failures to eject.
  sim::Nanos reprobe_after = sim::ms(50);  ///< Real time until a re-probe.
};

class ServerRing {
 public:
  /// `servers` must be non-empty (throws std::invalid_argument otherwise --
  /// an assert would compile out in release and leave front() UB).
  /// `vnodes` hash points are placed per server.
  explicit ServerRing(std::vector<net::EndpointId> servers,
                      unsigned vnodes = 160, FailoverPolicy policy = {})
      : servers_(std::move(servers)), policy_(policy) {
    if (servers_.empty()) {
      throw std::invalid_argument("ServerRing: server list must be non-empty");
    }
    for (const net::EndpointId server : servers_) {
      health_.emplace(server, Health{});
      for (unsigned v = 0; v < vnodes; ++v) {
        const std::uint64_t point = mix64(server * 0x1000193ULL + v);
        ring_.emplace(point, server);
      }
    }
  }

  /// Server owning `key`: first *live* hash point clockwise from hash(key).
  /// A dead server whose probe timer expired counts as live (half-open); if
  /// every server is dead and none is probe-due, the primary owner is
  /// returned so the request fails fast with a terminal status.
  [[nodiscard]] net::EndpointId select(std::string_view key) const
      EXCLUDES(mu_) {
    if (servers_.size() == 1) return servers_.front();
    const std::uint64_t h = xxh64(key);
    const MutexLock lock(mu_);
    if (dead_count_ == 0) return owner_at(h);  // fast path: all healthy
    auto it = ring_.lower_bound(h);
    for (std::size_t hops = 0; hops < ring_.size(); ++hops, ++it) {
      if (it == ring_.end()) it = ring_.begin();
      if (selectable_locked(it->second)) return it->second;
    }
    return owner_at(h);  // everything is down: fail fast on the owner
  }

  /// Records a failed operation against `server` (timeout / transport
  /// error). Ejects it after policy.eject_after consecutive failures.
  /// A kBusy response must NEVER be recorded here: an overloaded server is
  /// alive (it answered!), and ejecting it would dogpile its keys onto the
  /// ring neighbours -- spreading the overload instead of containing it.
  void record_failure(net::EndpointId server) EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    auto it = health_.find(server);
    if (it == health_.end()) return;
    Health& h = it->second;
    ++h.consecutive_failures;
    if (!h.dead && h.consecutive_failures >= policy_.eject_after) {
      h.dead = true;
      ++dead_count_;
    }
    if (h.dead) h.reprobe_at = sim::now() + policy_.reprobe_after;
  }

  /// Records a successful operation: clears the failure streak and readmits
  /// the server if it was ejected.
  void record_success(net::EndpointId server) EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    auto it = health_.find(server);
    if (it == health_.end()) return;
    Health& h = it->second;
    h.consecutive_failures = 0;
    if (h.dead) {
      h.dead = false;
      --dead_count_;
    }
  }

  [[nodiscard]] bool is_dead(net::EndpointId server) const EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    auto it = health_.find(server);
    return it != health_.end() && it->second.dead;
  }

  /// Whether a request may be issued to `server` right now: healthy, or dead
  /// but due for a half-open probe. Requests to non-accepting servers should
  /// fail fast with kServerDown instead of burning their deadline.
  [[nodiscard]] bool accepting(net::EndpointId server) const EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return selectable_locked(server);
  }

  [[nodiscard]] std::size_t dead_count() const EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return dead_count_;
  }

  [[nodiscard]] const std::vector<net::EndpointId>& servers() const noexcept {
    return servers_;
  }

  [[nodiscard]] const FailoverPolicy& policy() const noexcept { return policy_; }

 private:
  struct Health {
    unsigned consecutive_failures = 0;
    bool dead = false;
    sim::TimePoint reprobe_at{};  ///< Valid while dead.
  };

  [[nodiscard]] net::EndpointId owner_at(std::uint64_t h) const {
    auto it = ring_.lower_bound(h);
    if (it == ring_.end()) it = ring_.begin();
    return it->second;
  }

  [[nodiscard]] bool selectable_locked(net::EndpointId server) const
      REQUIRES(mu_) {
    auto it = health_.find(server);
    if (it == health_.end() || !it->second.dead) return true;
    // Half-open probe: once the timer expires the dead server is offered
    // again; record_failure re-arms the timer if the probe fails.
    return sim::now() >= it->second.reprobe_at;
  }

  std::vector<net::EndpointId> servers_;
  FailoverPolicy policy_;
  std::map<std::uint64_t, net::EndpointId> ring_;

  mutable Mutex mu_;
  std::unordered_map<net::EndpointId, Health> health_ GUARDED_BY(mu_);
  std::size_t dead_count_ GUARDED_BY(mu_) = 0;
};

}  // namespace hykv::client
