// Ketama-style consistent-hash ring for key -> server selection, the
// mechanism libmemcached uses to scatter keys over a Memcached cluster.
// Immutable after construction; safe to share across threads.
#pragma once

#include <cassert>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.hpp"
#include "net/message.hpp"

namespace hykv::client {

class ServerRing {
 public:
  /// `servers` must be non-empty. `vnodes` hash points are placed per server.
  explicit ServerRing(std::vector<net::EndpointId> servers,
                      unsigned vnodes = 160)
      : servers_(std::move(servers)) {
    assert(!servers_.empty());
    for (const net::EndpointId server : servers_) {
      for (unsigned v = 0; v < vnodes; ++v) {
        const std::uint64_t point = mix64(server * 0x1000193ULL + v);
        ring_.emplace(point, server);
      }
    }
  }

  /// Server owning `key`: first hash point clockwise from hash(key).
  [[nodiscard]] net::EndpointId select(std::string_view key) const {
    if (servers_.size() == 1) return servers_.front();
    const std::uint64_t h = xxh64(key);
    auto it = ring_.lower_bound(h);
    if (it == ring_.end()) it = ring_.begin();
    return it->second;
  }

  [[nodiscard]] const std::vector<net::EndpointId>& servers() const noexcept {
    return servers_;
  }

 private:
  std::vector<net::EndpointId> servers_;
  std::map<std::uint64_t, net::EndpointId> ring_;
};

}  // namespace hykv::client
