#include "client/compat.hpp"

#include <cstring>

namespace hykv::compat {
namespace {

std::span<const char> value_span(const char* value, std::size_t len) {
  return {value, len};
}

}  // namespace

void memcached_req::publish_outputs() {
  if (!request.done()) return;
  if (value_length_out != nullptr) *value_length_out = request.value_length();
  if (flags_out != nullptr) *flags_out = request.flags();
}

memcached_st memcached_wrap(client::Client& impl) {
  memcached_st st;
  st.impl = &impl;
  return st;
}

memcached_return memcached_set(memcached_st* ptr, const char* key,
                               std::size_t key_length, const char* value,
                               std::size_t value_length, std::time_t expiration,
                               std::uint32_t flags) {
  return ptr->impl->set({key, key_length}, value_span(value, value_length),
                        flags, static_cast<std::int64_t>(expiration));
}

char* memcached_get(memcached_st* ptr, const char* key, std::size_t key_length,
                    std::size_t* value_length, std::uint32_t* flags,
                    memcached_return* error) {
  static thread_local std::vector<char> result;
  std::uint32_t out_flags = 0;
  const StatusCode code = ptr->impl->get({key, key_length}, result, &out_flags);
  if (error != nullptr) *error = code;
  if (!ok(code)) return nullptr;
  if (value_length != nullptr) *value_length = result.size();
  if (flags != nullptr) *flags = out_flags;
  return result.data();
}

memcached_return memcached_delete(memcached_st* ptr, const char* key,
                                  std::size_t key_length, std::time_t) {
  return ptr->impl->del({key, key_length});
}

memcached_return memcached_add(memcached_st* ptr, const char* key,
                               std::size_t key_length, const char* value,
                               std::size_t value_length, std::time_t expiration,
                               std::uint32_t flags) {
  return ptr->impl->add({key, key_length}, value_span(value, value_length),
                        flags, static_cast<std::int64_t>(expiration));
}

memcached_return memcached_replace(memcached_st* ptr, const char* key,
                                   std::size_t key_length, const char* value,
                                   std::size_t value_length,
                                   std::time_t expiration, std::uint32_t flags) {
  return ptr->impl->replace({key, key_length}, value_span(value, value_length),
                            flags, static_cast<std::int64_t>(expiration));
}

memcached_return memcached_append(memcached_st* ptr, const char* key,
                                  std::size_t key_length, const char* value,
                                  std::size_t value_length) {
  return ptr->impl->append({key, key_length}, value_span(value, value_length));
}

memcached_return memcached_prepend(memcached_st* ptr, const char* key,
                                   std::size_t key_length, const char* value,
                                   std::size_t value_length) {
  return ptr->impl->prepend({key, key_length}, value_span(value, value_length));
}

memcached_return memcached_increment(memcached_st* ptr, const char* key,
                                     std::size_t key_length, std::uint32_t offset,
                                     std::uint64_t* value) {
  const auto result = ptr->impl->incr({key, key_length}, offset);
  if (result.ok() && value != nullptr) *value = result.value();
  return result.status();
}

memcached_return memcached_decrement(memcached_st* ptr, const char* key,
                                     std::size_t key_length, std::uint32_t offset,
                                     std::uint64_t* value) {
  const auto result = ptr->impl->decr({key, key_length}, offset);
  if (result.ok() && value != nullptr) *value = result.value();
  return result.status();
}

memcached_return memcached_touch(memcached_st* ptr, const char* key,
                                 std::size_t key_length, std::time_t expiration) {
  return ptr->impl->touch({key, key_length},
                          static_cast<std::int64_t>(expiration));
}

memcached_return memcached_flush(memcached_st* ptr, std::time_t) {
  return ptr->impl->flush_all();
}

memcached_return memcached_iset(memcached_st* ptr, const char* key,
                                std::size_t key_length, const char* value,
                                std::size_t value_length, std::time_t expiration,
                                std::uint32_t flags, memcached_req* req) {
  req->value_length_out = nullptr;
  req->flags_out = nullptr;
  return ptr->impl->iset({key, key_length}, value_span(value, value_length),
                         flags, static_cast<std::int64_t>(expiration),
                         req->request);
}

char* memcached_iget(memcached_st* ptr, const char* key, std::size_t key_length,
                     std::size_t* value_length, std::uint32_t* flags,
                     memcached_req* req, memcached_return* error) {
  req->response_buffer.resize(ptr->max_value_bytes);
  req->value_length_out = value_length;
  req->flags_out = flags;
  const StatusCode code =
      ptr->impl->iget({key, key_length}, req->response_buffer, req->request);
  if (error != nullptr) *error = code;
  return ok(code) ? req->response_buffer.data() : nullptr;
}

memcached_return memcached_bset(memcached_st* ptr, const char* key,
                                std::size_t key_length, const char* value,
                                std::size_t value_length, std::time_t expiration,
                                std::uint32_t flags, memcached_req* req) {
  req->value_length_out = nullptr;
  req->flags_out = nullptr;
  return ptr->impl->bset({key, key_length}, value_span(value, value_length),
                         flags, static_cast<std::int64_t>(expiration),
                         req->request);
}

char* memcached_bget(memcached_st* ptr, const char* key, std::size_t key_length,
                     std::size_t* value_length, std::uint32_t* flags,
                     memcached_req* req, memcached_return* error) {
  req->response_buffer.resize(ptr->max_value_bytes);
  req->value_length_out = value_length;
  req->flags_out = flags;
  const StatusCode code =
      ptr->impl->bget({key, key_length}, req->response_buffer, req->request);
  if (error != nullptr) *error = code;
  return ok(code) ? req->response_buffer.data() : nullptr;
}

void memcached_test(memcached_st* ptr, memcached_req* req) {
  if (ptr->impl->test(req->request)) req->publish_outputs();
}

void memcached_wait(memcached_st* ptr, memcached_req* req) {
  ptr->impl->wait(req->request);
  req->publish_outputs();
}

memcached_return memcached_req_status(const memcached_req* req) {
  return req->request.status();
}

}  // namespace hykv::compat
