// The non-blocking request handle -- the C++ face of the paper's
// memcached_req structure (Listing 1): a completion flag the user can wait
// or test on, the operation's final status, and (for Gets) where the fetched
// value was placed.
//
// Lifetime contract (like an MPI_Request): the handle must stay alive until
// wait()/test() reports completion or the owning Client is destroyed. A
// handle is single-use; Client::*set/*get calls reset() it.
//
// Completion signalling deliberately lives in the Client (a client-wide
// condition variable), not here: the progress thread's *last* access to a
// Request is the release-store of the done flag, so the caller may destroy
// the handle the moment test()/wait() observes completion -- no
// destroyed-while-notifying races.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "common/sim_time.hpp"
#include "common/status.hpp"

namespace hykv::client {

class Client;

class Request {
 public:
  Request() = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// True once the operation finished (successfully or not). Non-blocking --
  /// the paper's memcached_test.
  [[nodiscard]] bool done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  /// Final status; kInProgress until done(). kBusy is terminal: the server
  /// (or the client's own fail-fast window) refused the request before
  /// executing it, so it had no side effects and may be re-issued -- even a
  /// non-idempotent one.
  [[nodiscard]] StatusCode status() const noexcept {
    return done() ? status_ : StatusCode::kInProgress;
  }

  /// For Get requests: length of the fetched value (valid once done()).
  /// When the user's destination buffer was too small the status is
  /// kBufferTooSmall and this still reports the full length needed.
  [[nodiscard]] std::size_t value_length() const noexcept { return value_len_; }
  [[nodiscard]] std::uint32_t flags() const noexcept { return flags_; }

  /// True once the engine has injected the request (local send completion)
  /// -- the bget/bset "data sent out" point.
  [[nodiscard]] bool sent() const noexcept {
    return sent_.load(std::memory_order_acquire) || done();
  }

 private:
  friend class Client;

  void reset(std::span<char> dest) noexcept {
    done_.store(false, std::memory_order_relaxed);
    sent_.store(false, std::memory_order_relaxed);
    status_ = StatusCode::kInProgress;
    value_len_ = 0;
    flags_ = 0;
    wr_id_ = 0;
    server_ = 0;
    opcode_ = 0;
    issued_at_ = sim::TimePoint{};
    dest_ = dest;
  }

  /// Publishes the result. MUST be the caller's last access to the Request:
  /// once done_ is visible, the owner may destroy the handle.
  void publish_completion(StatusCode status, std::uint32_t flags,
                          std::size_t value_len) noexcept {
    status_ = status;
    flags_ = flags;
    value_len_ = value_len;
    done_.store(true, std::memory_order_release);
  }

  std::atomic<bool> done_{false};
  std::atomic<bool> sent_{false};
  std::uint64_t wr_id_ = 0;  ///< Set by Client::issue; used for cancel.
  std::uint64_t server_ = 0; ///< Target server (EndpointId); for failover.
  std::uint16_t opcode_ = 0; ///< For the issue->complete latency op class.
  /// Stamped at issue when the client records latency; both fields are set
  /// before the request is registered in the pending map, so the completing
  /// thread reads them race-free.
  sim::TimePoint issued_at_{};
  StatusCode status_ = StatusCode::kInProgress;
  std::uint32_t flags_ = 0;
  std::size_t value_len_ = 0;
  std::span<char> dest_{};  ///< Get destination; empty for Sets.
};

}  // namespace hykv::client
