// Model of the backend data store behind the caching tier (the database the
// paper's in-memory designs fall back to on a cache miss, at a < 2 ms
// penalty). Thread-safe.
//
// Data resolution order on fetch(): the explicit put() store first, then the
// optional resolver callback (lets benches serve a deterministic synthetic
// dataset without materialising it). Every fetch pays the modelled access
// penalty regardless of source.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/profiles.hpp"
#include "common/thread_annotations.hpp"

namespace hykv::client {

class BackendDb {
 public:
  using Resolver =
      std::function<std::optional<std::vector<char>>(std::string_view key)>;

  explicit BackendDb(BackendDbProfile profile = {}, Resolver resolver = nullptr)
      : profile_(profile), resolver_(std::move(resolver)) {}

  /// Stores authoritative data (no penalty: writes to the backend happen on
  /// a path the paper does not measure).
  void put(std::string_view key, std::vector<char> value) EXCLUDES(mu_);

  /// Fetches with the modelled miss penalty applied.
  std::optional<std::vector<char>> fetch(std::string_view key) EXCLUDES(mu_);

  [[nodiscard]] std::uint64_t fetches() const EXCLUDES(mu_);
  [[nodiscard]] const BackendDbProfile& profile() const noexcept { return profile_; }

 private:
  BackendDbProfile profile_;
  Resolver resolver_;
  mutable Mutex mu_;
  std::unordered_map<std::string, std::vector<char>> data_ GUARDED_BY(mu_);
  std::uint64_t fetches_ GUARDED_BY(mu_) = 0;
};

}  // namespace hykv::client
