// C-style shim mirroring the paper's Listing 1 ("Non-Blocking API Extensions
// to libMemcached") on top of hykv::client::Client, so code written against
// the paper's proposed libmemcached surface ports over 1:1:
//
//   memcached_set / memcached_get               (blocking, stock names)
//   memcached_iset / memcached_iget             (issue-only)
//   memcached_bset / memcached_bget             (buffer-reuse-safe)
//   memcached_wait / memcached_test             (completion)
//
// Differences from raw C libmemcached, by design:
//  - memcached_st wraps a Client& created by the C++ embedding (no
//    memcached_create/server_add config strings);
//  - memcached_return is hykv's StatusCode (values map 1:1 in spirit);
//  - memory returned by the get family is owned by the memcached_req (freed
//    by its destructor), not by malloc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ctime>
#include <vector>

#include "client/client.hpp"
#include "client/request.hpp"

namespace hykv::compat {

using memcached_return = StatusCode;

/// Wraps one hykv Client (the paper's memcached_st connection handle).
struct memcached_st {
  client::Client* impl = nullptr;
  /// Capacity of buffers handed out by the iget/bget family.
  std::size_t max_value_bytes = std::size_t{1} << 20;
};

/// The paper's memcached_req: completion flag + response-buffer pointer +
/// user buffer bookkeeping.
struct memcached_req {
  client::Request request;
  std::vector<char> response_buffer;
  std::size_t* value_length_out = nullptr;
  std::uint32_t* flags_out = nullptr;

  /// Publishes value_length/flags to the user's out-pointers (idempotent).
  void publish_outputs();
};

memcached_st memcached_wrap(client::Client& impl);

// ---- Blocking API -------------------------------------------------------

memcached_return memcached_set(memcached_st* ptr, const char* key,
                               std::size_t key_length, const char* value,
                               std::size_t value_length, std::time_t expiration,
                               std::uint32_t flags);

/// Returns a pointer to the fetched value (owned by *this call's* internal
/// buffer inside memcached_st -- copy it out before the next get), or
/// nullptr with *error set.
char* memcached_get(memcached_st* ptr, const char* key, std::size_t key_length,
                    std::size_t* value_length, std::uint32_t* flags,
                    memcached_return* error);

memcached_return memcached_delete(memcached_st* ptr, const char* key,
                                  std::size_t key_length, std::time_t expiration);

memcached_return memcached_add(memcached_st* ptr, const char* key,
                               std::size_t key_length, const char* value,
                               std::size_t value_length, std::time_t expiration,
                               std::uint32_t flags);
memcached_return memcached_replace(memcached_st* ptr, const char* key,
                                   std::size_t key_length, const char* value,
                                   std::size_t value_length,
                                   std::time_t expiration, std::uint32_t flags);
memcached_return memcached_append(memcached_st* ptr, const char* key,
                                  std::size_t key_length, const char* value,
                                  std::size_t value_length);
memcached_return memcached_prepend(memcached_st* ptr, const char* key,
                                   std::size_t key_length, const char* value,
                                   std::size_t value_length);
memcached_return memcached_increment(memcached_st* ptr, const char* key,
                                     std::size_t key_length, std::uint32_t offset,
                                     std::uint64_t* value);
memcached_return memcached_decrement(memcached_st* ptr, const char* key,
                                     std::size_t key_length, std::uint32_t offset,
                                     std::uint64_t* value);
memcached_return memcached_touch(memcached_st* ptr, const char* key,
                                 std::size_t key_length, std::time_t expiration);
memcached_return memcached_flush(memcached_st* ptr, std::time_t expiration);

// ---- Non-blocking extensions (Listing 1) --------------------------------

/// Non-blocking set. You can NOT reuse the key/value buffers until either a
/// successful wait/test or you know the key/value reached the server side.
memcached_return memcached_iset(memcached_st* ptr, const char* key,
                                std::size_t key_length, const char* value,
                                std::size_t value_length, std::time_t expiration,
                                std::uint32_t flags, memcached_req* req);

/// Non-blocking get. You can NOT reuse the key buffer until wait/test.
/// Returns the buffer the value will appear in once the request completes.
char* memcached_iget(memcached_st* ptr, const char* key, std::size_t key_length,
                     std::size_t* value_length, std::uint32_t* flags,
                     memcached_req* req, memcached_return* error);

/// Non-blocking set. You CAN reuse the key/value buffers once this returns.
memcached_return memcached_bset(memcached_st* ptr, const char* key,
                                std::size_t key_length, const char* value,
                                std::size_t value_length, std::time_t expiration,
                                std::uint32_t flags, memcached_req* req);

/// Non-blocking get. You CAN reuse the key buffer once this returns.
char* memcached_bget(memcached_st* ptr, const char* key, std::size_t key_length,
                     std::size_t* value_length, std::uint32_t* flags,
                     memcached_req* req, memcached_return* error);

/// Testing non-blocking API completion (updates req's out-pointers when the
/// operation has completed).
void memcached_test(memcached_st* ptr, memcached_req* req);

/// Waiting on non-blocking API completion.
void memcached_wait(memcached_st* ptr, memcached_req* req);

/// Completion status accessor (kInProgress until complete).
memcached_return memcached_req_status(const memcached_req* req);

}  // namespace hykv::compat
