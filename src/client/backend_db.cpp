#include "client/backend_db.hpp"

#include "common/sim_time.hpp"

namespace hykv::client {

void BackendDb::put(std::string_view key, std::vector<char> value) {
  const MutexLock lock(mu_);
  data_[std::string(key)] = std::move(value);
}

std::optional<std::vector<char>> BackendDb::fetch(std::string_view key) {
  std::optional<std::vector<char>> result;
  {
    const MutexLock lock(mu_);
    ++fetches_;
    auto it = data_.find(std::string(key));
    if (it != data_.end()) result = it->second;
  }
  if (!result.has_value() && resolver_) result = resolver_(key);
  // Pay the penalty outside the lock so concurrent clients queue on the
  // database, not on our bookkeeping.
  sim::advance(profile_.access_time(result ? result->size() : 0));
  return result;
}

std::uint64_t BackendDb::fetches() const {
  const MutexLock lock(mu_);
  return fetches_;
}

}  // namespace hykv::client
