#include "client/client.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.hpp"
#include "common/sim_time.hpp"
#include "server/protocol.hpp"

namespace hykv::client {

using server::Opcode;

Client::Client(net::Fabric& fabric, ClientConfig config, BackendDb* backend)
    : fabric_(fabric),
      config_(std::move(config)),
      backend_(backend),
      endpoint_(fabric_.create_endpoint(config_.name)),
      ring_(config_.servers, 160, config_.failover),
      latency_(config_.record_latency
                   ? std::make_unique<metrics::LatencyRecorder>(4)
                   : nullptr),
      retry_tokens_(config_.retry_budget) {
  scratch_.resize(config_.bounce_slot_bytes);
  assert(!config_.use_backend_on_miss || backend_ != nullptr);
  // Pre-register the bounce pool: the cold ibv_reg_mr cost is paid once at
  // startup, which is exactly why bset can afford buffer-reuse semantics.
  slots_.reserve(config_.bounce_slots);
  for (std::size_t i = 0; i < config_.bounce_slots; ++i) {
    slots_.push_back(std::make_unique<char[]>(config_.bounce_slot_bytes));
    endpoint_->register_memory(slots_.back().get(), config_.bounce_slot_bytes);
    free_slots_.push(static_cast<int>(i));
  }
  endpoint_->register_memory(scratch_.data(), scratch_.size());
  tx_thread_ = std::thread([this] { tx_main(); });
  rx_thread_ = std::thread([this] { rx_main(); });
}

Client::~Client() {
  {
    const MutexLock lock(pending_mu_);
    closed_ = true;
  }
  tx_queue_.close();   // TX drains remaining jobs, then exits
  if (tx_thread_.joinable()) tx_thread_.join();
  endpoint_->close();  // unblocks RX
  if (rx_thread_.joinable()) rx_thread_.join();
  complete_all_pending(StatusCode::kShutdown);
  free_slots_.close();
}

void Client::complete_all_pending(StatusCode status) {
  std::unordered_map<std::uint64_t, Pending> orphans;
  {
    const MutexLock lock(pending_mu_);
    orphans.swap(pending_);
    pending_per_server_.clear();  // every window occupant is being orphaned
  }
  for (auto& [wr_id, pend] : orphans) {
    if (pend.slot >= 0) free_slots_.push(pend.slot);
    signal_completion(*pend.req, status, 0, 0);
  }
}

void Client::tx_main() {
  // Request-frame bytes a job contributes to a coalesced run. A Get's value
  // span is the caller's *destination* buffer (kept for engine-side
  // registration modelling), not request payload -- only the key travels in
  // the frame, so counting the dest would veto coalescing for any Get whose
  // buffer exceeds batch_max_bytes.
  const auto wire_payload_bytes = [](const TxJob& job) {
    if (job.opcode == Opcode::kOpGet || job.opcode == Opcode::kOpGets) {
      return job.key.size();
    }
    return job.key.size() + job.value.size();
  };
  // Doorbell batching (DESIGN.md §12): after the blocking pop, the engine
  // opportunistically drains whatever else is already queued and coalesces
  // consecutive same-server jobs -- up to batch_max_ops / batch_max_bytes --
  // into one kOpBatch frame. A job bound for a *different* server closes the
  // current run and carries over as the seed of the next one, preserving
  // per-server FIFO order. With batch_max_ops <= 1 (the default) none of
  // this runs: every job takes the single-frame path, byte for byte the
  // pre-batching wire behaviour.
  std::optional<TxJob> carry;
  while (true) {
    std::optional<TxJob> job =
        carry.has_value() ? std::exchange(carry, std::nullopt)
                          : tx_queue_.pop();
    if (!job.has_value()) break;
    if (config_.batch_max_ops <= 1) {
      send_single(*job);
      continue;
    }
    std::vector<TxJob> run;
    std::size_t run_bytes = wire_payload_bytes(*job);
    run.push_back(*std::move(job));
    while (run.size() < config_.batch_max_ops) {
      std::optional<TxJob> next = tx_queue_.try_pop();
      if (!next.has_value()) break;  // queue momentarily empty: ship the run
      if (next->server != run.front().server) {
        carry = std::move(next);  // different server closes the run
        break;
      }
      const std::size_t next_bytes = wire_payload_bytes(*next);
      if (run_bytes + next_bytes > config_.batch_max_bytes) {
        carry = std::move(next);
        break;
      }
      run_bytes += next_bytes;
      run.push_back(*std::move(next));
    }
    if (run.size() == 1) {
      send_single(run.front());  // runs of one are never wrapped
    } else {
      send_batch(run);
    }
  }
}

std::vector<char> Client::encode_job(const TxJob& job) const {
  std::vector<char> payload;
  switch (job.opcode) {
    case Opcode::kOpSet:
      // The value span is read *here*, on the engine thread -- this is the
      // zero-copy hazard window the iset documentation warns about.
      payload = server::encode_set(server::SetRequest{
          .key = job.key,
          .value = job.value,
          .flags = job.flags,
          .expiration = job.expiration,
      });
      break;
    case Opcode::kOpGet:
    case Opcode::kOpDelete:
      payload = server::encode_key_request(job.key);
      break;
    case Opcode::kOpAdd:
    case Opcode::kOpReplace:
    case Opcode::kOpAppend:
    case Opcode::kOpPrepend:
      payload = server::encode_set(server::SetRequest{
          .key = job.key,
          .value = job.value,
          .flags = job.flags,
          .expiration = job.expiration,
      });
      break;
    case Opcode::kOpIncr:
    case Opcode::kOpDecr:
      payload = server::encode_counter(
          job.key, static_cast<std::uint64_t>(job.expiration));
      break;
    case Opcode::kOpTouch:
      payload = server::encode_touch(job.key, job.expiration);
      break;
    case Opcode::kOpGets:
      payload = server::encode_key_request(job.key);
      break;
    case Opcode::kOpCas:
      payload = server::encode_cas(server::CasRequest{
          .key = job.key,
          .value = job.value,
          .flags = job.flags,
          .expiration = job.expiration,
          .cas = job.cas_token,
      });
      break;
    case Opcode::kOpFlushAll:
      break;  // empty payload
    case Opcode::kOpStats:
      // Subcommand bytes ride in job.key ("" = legacy counter text).
      payload.assign(job.key.begin(), job.key.end());
      break;
    default:
      break;
  }
  return payload;
}

void Client::register_job_memory(const TxJob& job) {
  // Model the engine-side registration of the source/destination buffer
  // (registration cache makes repeats nearly free).
  if (!job.value.empty()) {
    endpoint_->register_memory(const_cast<char*>(job.value.data()),
                               job.value.size());
  }
}

void Client::send_single(const TxJob& job) {
  register_job_memory(job);
  std::vector<char> payload = encode_job(job);
  if (job.deadline_ns != 0) {
    // Deadline propagation: the server strips this header at receipt and
    // sheds the request with kBusy if the deadline already passed.
    payload = server::with_deadline(job.deadline_ns, payload);
  }
  endpoint_->send(job.server, job.opcode, job.wr_id, payload);
  HYKV_DEBUG("client %llu tx wr=%llu op=%u to=%llu n=%zu",
             static_cast<unsigned long long>(endpoint_->id()),
             static_cast<unsigned long long>(job.wr_id), job.opcode,
             static_cast<unsigned long long>(job.server), payload.size());
  // NOTE: the response may already be in flight (or even processed) by the
  // time send() returns -- the request may only be touched via the pending
  // map, never via job.req.
  signal_sent(job.wr_id);
}

void Client::send_batch(const std::vector<TxJob>& run) {
  // Each sub-op still registers its own buffer (the HCA needs every source/
  // destination pinned); only the per-message costs are amortised.
  std::vector<std::vector<char>> bodies;
  std::vector<server::BatchItem> items;
  bodies.reserve(run.size());
  items.reserve(run.size());
  std::int64_t deadline_ns = 0;
  for (const TxJob& job : run) {
    register_job_memory(job);
    bodies.push_back(encode_job(job));
    items.push_back(server::BatchItem{
        .opcode = job.opcode,
        .wr_id = job.wr_id,
        .payload = bodies.back(),
    });
    // One propagated deadline header per frame: the tightest sub-op deadline
    // governs the whole frame (coalesced ops were issued microseconds apart
    // under the same op_deadline, so the min loses essentially nothing).
    if (job.deadline_ns != 0 &&
        (deadline_ns == 0 || job.deadline_ns < deadline_ns)) {
      deadline_ns = job.deadline_ns;
    }
  }
  std::vector<char> frame = server::encode_batch(items);
  if (deadline_ns != 0) {
    frame = server::with_deadline(deadline_ns, frame);
  }
  // Count before posting: once the frame is on the wire its ops can complete
  // and a caller may read counters() before this thread runs again, so
  // counting after the send would under-report against the server's view.
  {
    const MutexLock lock(metrics_mu_);
    ++counters_.batches_sent;
    counters_.batched_ops += run.size();
  }
  // The outer wr_id mirrors the first sub-op so even a reply to a frame the
  // server could not decode correlates to a live pending entry.
  endpoint_->send(run.front().server, Opcode::kOpBatch, run.front().wr_id,
                  frame);
  HYKV_DEBUG("client %llu tx batch n=%zu to=%llu bytes=%zu",
             static_cast<unsigned long long>(endpoint_->id()), run.size(),
             static_cast<unsigned long long>(run.front().server),
             frame.size());
  for (const TxJob& job : run) signal_sent(job.wr_id);
}

void Client::rx_main() {
  while (true) {
    auto msg = endpoint_->recv();
    if (!msg.ok()) break;
    if (msg.value().opcode == Opcode::kOpBatchResponse) {
      // Demultiplex a batched response into individual completions. Each
      // sub-response carries its own wr_id, so completion order/semantics
      // are identical to the unbatched path.
      const auto items = server::decode_batch_response(msg.value().payload);
      if (!items.has_value()) {
        HYKV_WARN("client %llu: malformed batch response (%zu bytes)",
                  static_cast<unsigned long long>(endpoint_->id()),
                  msg.value().payload.size());
        continue;  // affected ops will time out and cancel individually
      }
      for (const auto& item : *items) {
        complete_one(item.wr_id, item.payload);
      }
      continue;
    }
    if (msg.value().opcode != Opcode::kOpResponse) continue;
    complete_one(msg.value().wr_id, msg.value().payload);
  }
}

void Client::complete_one(std::uint64_t wr_id,
                          std::span<const char> response_bytes) {
  const auto resp = server::decode_response(response_bytes);

  Pending pend;
  {
    const MutexLock lock(pending_mu_);
    auto it = pending_.find(wr_id);
    if (it == pending_.end()) {
      HYKV_WARN("client %llu: stale response wr=%llu",
                static_cast<unsigned long long>(endpoint_->id()),
                static_cast<unsigned long long>(wr_id));
      return;
    }
    pend = it->second;
    pending_.erase(it);
  }
  release_pending_window(pend.server);

  StatusCode status = resp.has_value() ? resp->status : StatusCode::kServerError;
  std::uint32_t flags = resp.has_value() ? resp->flags : 0;
  std::size_t value_len = 0;
  if (pend.is_get && resp.has_value() && ok(status)) {
    value_len = resp->value.size();
    if (value_len <= pend.req->dest_.size()) {
      // The engine places the fetched value straight into the user's
      // buffer (the RDMA-write-into-destination step).
      std::memcpy(pend.req->dest_.data(), resp->value.data(), value_len);
    } else {
      status = StatusCode::kBufferTooSmall;
    }
  }
  if (pend.is_get) {
    const MutexLock lock(metrics_mu_);
    if (ok(status)) {
      ++counters_.hits;
    } else if (status == StatusCode::kNotFound) {
      ++counters_.misses;
    }
  }
  if (pend.slot >= 0) free_slots_.push(pend.slot);
  if (status == StatusCode::kBusy || config_.retry_budget != 0) {
    // Gated so the default happy path never takes metrics_mu_ here.
    note_response(status);
  }
  // Any response proves the server is alive: clear its failure streak
  // (and readmit it if a probe just succeeded). A kBusy response counts
  // too -- a busy server is alive, not dead.
  ring_.record_success(pend.server);
  HYKV_DEBUG("client %llu rx wr=%llu status=%u",
             static_cast<unsigned long long>(endpoint_->id()),
             static_cast<unsigned long long>(wr_id),
             static_cast<unsigned>(status));
  signal_completion(*pend.req, status, flags, value_len);
}

void Client::signal_completion(Request& req, StatusCode status,
                               std::uint32_t flags, std::size_t value_len) {
  // Issue->complete latency: recorded for every terminal status (a timeout
  // is a completion the caller observed too). Reading the request here is
  // safe -- publish_completion below is what releases it to its owner.
  if (latency_ != nullptr && req.issued_at_ != sim::TimePoint{}) {
    latency_->record_op(server::op_class(req.opcode_),
                        metrics::delta_ns(req.issued_at_, sim::now()));
  }
  req.publish_completion(status, flags, value_len);
  // After this point `req` may be gone: the lock-unlock pairs with a waiter
  // between its predicate check and its sleep (lost-wakeup prevention); the
  // notify touches only the client-owned cv.
  { const MutexLock lock(completion_mu_); }
  completion_cv_.notify_all();
}

void Client::signal_sent(std::uint64_t wr_id) {
  {
    const MutexLock lock(pending_mu_);
    auto it = pending_.find(wr_id);
    // Entry gone => the request already completed (done_ implies sent);
    // its owner may have destroyed it, so it must not be dereferenced.
    if (it == pending_.end()) return;
    it->second.req->sent_.store(true, std::memory_order_release);
  }
  { const MutexLock lock(completion_mu_); }
  completion_cv_.notify_all();
}

StatusCode Client::issue(TxJob job, Request& req, int slot, bool is_get,
                         std::span<char> dest) {
  req.reset(dest);
  req.server_ = job.server;
  req.opcode_ = job.opcode;
  // Latency stamp before the request becomes reachable from the pending map
  // (the completing thread reads it; see request.hpp).
  if (latency_ != nullptr) req.issued_at_ = sim::now();
  if (!ring_.accepting(job.server)) {
    // Target is ejected and not yet due for a probe: fail fast instead of
    // letting the request burn its whole deadline against a dead server.
    const MutexLock lock(metrics_mu_);
    ++counters_.server_down;
    return StatusCode::kServerDown;
  }
  std::uint64_t wr_id = 0;
  bool window_full = false;
  {
    const MutexLock lock(pending_mu_);
    if (closed_) return StatusCode::kShutdown;
    if (config_.max_pending_per_server > 0) {
      std::size_t& inflight = pending_per_server_[job.server];
      if (inflight >= config_.max_pending_per_server) {
        window_full = true;
      } else {
        ++inflight;
      }
    }
    if (!window_full) {
      wr_id = wr_id_seq_++;
      pending_.emplace(wr_id, Pending{.req = &req,
                                      .slot = slot,
                                      .is_get = is_get,
                                      .server = job.server});
    }
  }
  if (window_full) {
    // Fail fast at the source: the caller learns immediately that this
    // server's window is saturated instead of queueing yet more work.
    const MutexLock lock(metrics_mu_);
    ++counters_.busy_fail_fast;
    return StatusCode::kBusy;
  }
  if (config_.propagate_deadline && config_.op_deadline.count() > 0) {
    job.deadline_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          (std::chrono::steady_clock::now() +
                           config_.op_deadline).time_since_epoch())
                          .count();
  }
  job.wr_id = wr_id;
  req.wr_id_ = wr_id;
  job.req = &req;
  const net::EndpointId server = job.server;
  if (!tx_queue_.push(std::move(job))) {
    {
      const MutexLock lock(pending_mu_);
      pending_.erase(wr_id);
    }
    release_pending_window(server);
    return StatusCode::kShutdown;
  }
  return StatusCode::kOk;
}

StatusCode Client::iset(std::string_view key, std::span<const char> value,
                        std::uint32_t flags, std::int64_t expiration,
                        Request& req) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  TxJob job;
  job.opcode = Opcode::kOpSet;
  job.server = ring_.select(key);
  job.key = std::string(key);
  job.value = value;  // zero copy: user must not touch until completion
  job.flags = flags;
  job.expiration = expiration;
  {
    const MutexLock lock(metrics_mu_);
    ++counters_.nonblocking_issued;
  }
  return issue(std::move(job), req, /*slot=*/-1, /*is_get=*/false, {});
}

StatusCode Client::bset(std::string_view key, std::span<const char> value,
                        std::uint32_t flags, std::int64_t expiration,
                        Request& req) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  TxJob job;
  job.opcode = Opcode::kOpSet;
  job.server = ring_.select(key);
  job.key = std::string(key);
  job.flags = flags;
  job.expiration = expiration;

  int slot = -1;
  if (value.size() <= config_.bounce_slot_bytes) {
    // Acquire a pre-registered bounce slot; blocks while the pool is fully
    // in flight (this is the bounded-outstanding-writes backpressure).
    const auto acquired = free_slots_.pop();
    if (!acquired.has_value()) return StatusCode::kShutdown;
    slot = *acquired;
    char* buffer = slots_[static_cast<std::size_t>(slot)].get();
    std::memcpy(buffer, value.data(), value.size());
    job.value = std::span<const char>(buffer, value.size());
  } else {
    // Oversized for the pool: fall back to a private copy (cold
    // registration will be paid by the engine).
    job.owned_value.assign(value.begin(), value.end());
    job.value = job.owned_value;
  }
  {
    const MutexLock lock(metrics_mu_);
    ++counters_.nonblocking_issued;
  }
  const StatusCode code = issue(std::move(job), req, slot, /*is_get=*/false, {});
  if (!ok(code)) {
    if (slot >= 0) free_slots_.push(slot);
    return code;
  }
  // "Waits for the engine to communicate that it has sent out the data."
  park_until([&req] { return req.sent(); });
  return StatusCode::kOk;
}

StatusCode Client::iget(std::string_view key, std::span<char> dest, Request& req) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  TxJob job;
  job.opcode = Opcode::kOpGet;
  job.server = ring_.select(key);
  job.key = std::string(key);
  // Destination registration is modelled via the value span (engine-side).
  job.value = std::span<const char>(dest.data(), dest.size());
  {
    const MutexLock lock(metrics_mu_);
    ++counters_.nonblocking_issued;
  }
  return issue(std::move(job), req, /*slot=*/-1, /*is_get=*/true, dest);
}

StatusCode Client::bget(std::string_view key, std::span<char> dest, Request& req) {
  const StatusCode code = iget(key, dest, req);
  if (!ok(code)) return code;
  // Key buffer reusable once the header has left the engine.
  park_until([&req] { return req.sent(); });
  return StatusCode::kOk;
}

void Client::wait(Request& req) {
  if (config_.op_deadline.count() > 0) {
    // Termination guarantee: with a deadline configured, wait() can never
    // hang on a lost request -- it cancels to kTimedOut at the deadline.
    (void)wait_for(req, config_.op_deadline);
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  park_until([&req] { return req.done(); });
  const MutexLock lock(metrics_mu_);
  stages_.add(Stage::kClientWait, std::chrono::steady_clock::now() - start);
  stages_.add_ops();
}

StatusCode Client::run_attempts(
    Request& req, const std::function<StatusCode(Request&)>& issue_attempt,
    bool idempotent) {
  using Clock = std::chrono::steady_clock;
  const bool deadline_on = config_.op_deadline.count() > 0;
  const unsigned attempts_max =
      deadline_on && idempotent ? config_.max_retries + 1 : 1;
  const auto overall = Clock::now() + config_.op_deadline;
  sim::Nanos backoff = config_.retry_backoff;
  StatusCode last = StatusCode::kTimedOut;
  net::EndpointId last_server = net::kInvalidEndpoint;

  for (unsigned attempt = 0; attempt < attempts_max; ++attempt) {
    if (attempt > 0) {
      // Every retry spends a shared token (config_.retry_budget); when the
      // bucket runs dry the last status stands -- under saturation the
      // client converges instead of amplifying load into a retry storm.
      if (!try_spend_retry_token()) break;
      const MutexLock lock(metrics_mu_);
      ++counters_.retries;
    }
    const StatusCode issued = issue_attempt(req);
    last_server = req.server_;
    if (issued == StatusCode::kServerDown || issued == StatusCode::kBusy) {
      // kServerDown: refused before posting (target ejected); a retry
      // re-selects and may fail over. kBusy: refused by the local fail-fast
      // window; backing off and retrying is exactly the right response.
      last = issued;
    } else if (!ok(issued)) {
      return issued;  // kShutdown / kInvalidArgument: not retryable
    } else if (!deadline_on) {
      wait(req);
      return req.status();
    } else {
      const auto now = Clock::now();
      if (now >= overall) {
        last = cancel(req);
        break;
      }
      // Split the remaining budget evenly over the attempts left so a slow
      // first attempt cannot starve the retries of wait time.
      const auto slice = (overall - now) / (attempts_max - attempt);
      last = wait_for(req, std::chrono::duration_cast<sim::Nanos>(slice));
      if (last != StatusCode::kTimedOut && last != StatusCode::kServerDown &&
          last != StatusCode::kBusy) {
        return last;
      }
    }
    if (attempt + 1 < attempts_max) {
      const auto now = Clock::now();
      if (now >= overall) break;
      const auto nap = std::min<Clock::duration>(backoff, overall - now);
      if (nap.count() > 0) std::this_thread::sleep_for(nap);
      backoff = std::min(backoff * 2, config_.retry_backoff_max);
    }
  }
  if (last == StatusCode::kTimedOut &&
      last_server != net::kInvalidEndpoint && ring_.is_dead(last_server)) {
    return StatusCode::kServerDown;
  }
  return last;
}

StatusCode Client::set(std::string_view key, std::span<const char> value,
                       std::uint32_t flags, std::int64_t expiration) {
  Request req;
  // Set is idempotent (last-writer-wins): safe to re-issue after a timeout.
  const StatusCode code = run_attempts(
      req,
      [&](Request& r) { return bset(key, value, flags, expiration, r); },
      /*idempotent=*/true);
  {
    const MutexLock lock(metrics_mu_);
    ++counters_.sets;
  }
  return code;
}

StatusCode Client::get(std::string_view key, std::vector<char>& out,
                       std::uint32_t* flags) {
  Request req;
  StatusCode code = run_attempts(
      req, [&](Request& r) { return bget(key, scratch_, r); },
      /*idempotent=*/true);
  {
    const MutexLock lock(metrics_mu_);
    ++counters_.gets;
  }
  if (ok(code)) {
    out.assign(scratch_.begin(),
               scratch_.begin() + static_cast<std::ptrdiff_t>(req.value_length()));
    if (flags != nullptr) *flags = req.flags();
    return code;
  }
  if (code == StatusCode::kNotFound && config_.use_backend_on_miss) {
    // Cache-aside miss path: hit the backend database (the paper's
    // "Miss Penalty" stage), then re-populate the cache.
    const auto miss_start = std::chrono::steady_clock::now();
    auto value = backend_->fetch(key);
    {
      const MutexLock lock(metrics_mu_);
      stages_.add(Stage::kMissPenalty,
                  std::chrono::steady_clock::now() - miss_start);
      ++counters_.backend_fetches;
    }
    if (!value.has_value()) return StatusCode::kNotFound;
    out = std::move(*value);
    if (flags != nullptr) *flags = 0;
    (void)set(key, out, 0, 0);  // best-effort repopulation
    return StatusCode::kOk;
  }
  return code;
}

StatusCode Client::del(std::string_view key) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  // Delete is idempotent (deleting twice deletes once); the lambda rebuilds
  // the job so a retry re-selects the server and can fail over.
  const StatusCode code = run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpDelete;
        job.server = ring_.select(key);
        job.key = std::string(key);
        return issue(std::move(job), r, -1, /*is_get=*/false, {});
      },
      /*idempotent=*/true);
  {
    const MutexLock lock(metrics_mu_);
    ++counters_.deletes;
  }
  return code;
}

// add/replace/append/prepend/incr/decr/cas are NOT idempotent: a timed-out
// first attempt may have been applied server-side, so re-issuing could
// double-apply (append twice, incr twice, add observing its own first
// attempt). They get the deadline's termination guarantee but never retry.

StatusCode Client::store_op(std::uint16_t opcode, std::string_view key,
                            std::span<const char> value, std::uint32_t flags,
                            std::int64_t expiration) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  return run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = opcode;
        job.server = ring_.select(key);
        job.key = std::string(key);
        job.owned_value.assign(value.begin(), value.end());
        job.value = job.owned_value;
        job.flags = flags;
        job.expiration = expiration;
        return issue(std::move(job), r, -1, false, {});
      },
      /*idempotent=*/false);
}

StatusCode Client::add(std::string_view key, std::span<const char> value,
                       std::uint32_t flags, std::int64_t expiration) {
  return store_op(Opcode::kOpAdd, key, value, flags, expiration);
}

StatusCode Client::replace(std::string_view key, std::span<const char> value,
                           std::uint32_t flags, std::int64_t expiration) {
  return store_op(Opcode::kOpReplace, key, value, flags, expiration);
}

StatusCode Client::append(std::string_view key, std::span<const char> suffix) {
  return store_op(Opcode::kOpAppend, key, suffix, 0, 0);
}

StatusCode Client::prepend(std::string_view key, std::span<const char> prefix) {
  return store_op(Opcode::kOpPrepend, key, prefix, 0, 0);
}

namespace {
Result<std::uint64_t> parse_counter_response(const Request& req,
                                             std::span<const char> scratch) {
  if (!ok(req.status())) return req.status();
  const auto value = server::decode_counter_value(
      std::span<const char>(scratch.data(), req.value_length()));
  if (!value.has_value()) return StatusCode::kServerError;
  return *value;
}
}  // namespace

Result<std::uint64_t> Client::incr(std::string_view key, std::uint64_t delta) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  const StatusCode code = run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpIncr;
        job.server = ring_.select(key);
        job.key = std::string(key);
        job.expiration = static_cast<std::int64_t>(delta);  // in encoding
        return issue(std::move(job), r, -1, true, scratch_);
      },
      /*idempotent=*/false);
  if (!ok(code)) return code;
  return parse_counter_response(req, scratch_);
}

Result<std::uint64_t> Client::decr(std::string_view key, std::uint64_t delta) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  const StatusCode code = run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpDecr;
        job.server = ring_.select(key);
        job.key = std::string(key);
        job.expiration = static_cast<std::int64_t>(delta);
        return issue(std::move(job), r, -1, true, scratch_);
      },
      /*idempotent=*/false);
  if (!ok(code)) return code;
  return parse_counter_response(req, scratch_);
}

StatusCode Client::touch(std::string_view key, std::int64_t expiration) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  // Touch is idempotent: refreshing the expiration twice lands on the same
  // absolute deadline.
  return run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpTouch;
        job.server = ring_.select(key);
        job.key = std::string(key);
        job.expiration = expiration;
        return issue(std::move(job), r, -1, false, {});
      },
      /*idempotent=*/true);
}

StatusCode Client::flush_all() {
  StatusCode worst = StatusCode::kOk;
  for (const net::EndpointId server : ring_.servers()) {
    Request req;
    // Pinned to one explicit server (no ring selection): a retry targets
    // the same server again -- failing over a flush makes no sense.
    const StatusCode code = run_attempts(
        req,
        [&, server](Request& r) {
          TxJob job;
          job.opcode = Opcode::kOpFlushAll;
          job.server = server;
          return issue(std::move(job), r, -1, false, {});
        },
        /*idempotent=*/true);
    if (code == StatusCode::kShutdown) return code;
    if (!ok(code)) worst = code;
  }
  return worst;
}

Result<std::string> Client::stats_request(std::size_t server_index,
                                          std::string_view what) {
  if (server_index >= ring_.servers().size()) return StatusCode::kInvalidArgument;
  const net::EndpointId server = ring_.servers()[server_index];
  Request req;
  const StatusCode code = run_attempts(
      req,
      [&, server](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpStats;
        job.server = server;
        job.key = std::string(what);  // subcommand ("", "latency", "trace")
        return issue(std::move(job), r, -1, true, scratch_);
      },
      /*idempotent=*/true);
  if (!ok(code)) return code;
  return std::string(scratch_.data(), req.value_length());
}

Result<std::string> Client::stats_text(std::size_t server_index,
                                       StatsKind kind) {
  // The typed enum is the supported surface; it maps onto the wire-level
  // subcommand strings the server has always understood.
  switch (kind) {
    case StatsKind::kCounters:
      return stats_request(server_index, "");
    case StatsKind::kLatency:
      return stats_request(server_index, "latency");
    case StatsKind::kTrace:
      return stats_request(server_index, "trace");
  }
  return StatusCode::kInvalidArgument;
}

Result<std::string> Client::stats_text(std::size_t server_index,
                                       std::string_view what) {
  return stats_request(server_index, what);
}

StatusCode Client::gets(std::string_view key, std::vector<char>& out,
                        std::uint32_t* flags, std::uint64_t* cas) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  const StatusCode code = run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpGets;
        job.server = ring_.select(key);
        job.key = std::string(key);
        return issue(std::move(job), r, -1, true, scratch_);
      },
      /*idempotent=*/true);
  if (!ok(code)) return code;
  if (req.value_length() < 8) return StatusCode::kServerError;
  std::uint64_t token = 0;
  std::memcpy(&token, scratch_.data(), 8);
  if (cas != nullptr) *cas = token;
  if (flags != nullptr) *flags = req.flags();
  out.assign(scratch_.begin() + 8,
             scratch_.begin() + static_cast<std::ptrdiff_t>(req.value_length()));
  return StatusCode::kOk;
}

StatusCode Client::cas(std::string_view key, std::span<const char> value,
                       std::uint64_t cas_token, std::uint32_t flags,
                       std::int64_t expiration) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  return run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpCas;
        job.server = ring_.select(key);
        job.key = std::string(key);
        job.owned_value.assign(value.begin(), value.end());
        job.value = job.owned_value;
        job.flags = flags;
        job.expiration = expiration;
        // The CAS token travels in the job's wr-independent slot: tx_main
        // packs it from job.cas_token.
        job.cas_token = cas_token;
        return issue(std::move(job), r, -1, false, {});
      },
      /*idempotent=*/false);
}

std::vector<Result<std::vector<char>>> Client::mget_status(
    std::span<const std::string> keys) {
  std::vector<Result<std::vector<char>>> results(
      keys.size(), Result<std::vector<char>>(StatusCode::kInvalidArgument));
  if (keys.empty()) return results;
  // One request + destination buffer per key, all in flight at once --
  // the whole point of mget over a loop of blocking gets. Issue order is
  // grouped by target server so that with batching enabled (batch_max_ops
  // > 1) the TX engine coalesces each server's gets into one kOpBatch
  // frame instead of interleaving servers and fragmenting the runs.
  std::vector<std::size_t> order;
  order.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!keys[i].empty()) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [this, keys](std::size_t a, std::size_t b) {
                     return ring_.select(keys[a]) < ring_.select(keys[b]);
                   });
  std::vector<std::unique_ptr<Request>> requests(keys.size());
  std::vector<std::vector<char>> dests(keys.size());
  // Allocate every destination before issuing anything: zeroing
  // bounce_slot_bytes per key inside the issue loop would throttle the
  // issuer below the TX engine's drain rate and starve the coalescer.
  for (const std::size_t i : order) {
    requests[i] = std::make_unique<Request>();
    dests[i].resize(config_.bounce_slot_bytes);
  }
  for (const std::size_t i : order) {
    const StatusCode issued = iget(keys[i], dests[i], *requests[i]);
    if (!ok(issued)) {
      results[i] = Result<std::vector<char>>(issued);
      requests[i].reset();
    }
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (requests[i] == nullptr) continue;
    wait(*requests[i]);
    const StatusCode status = requests[i]->status();
    if (ok(status)) {
      dests[i].resize(requests[i]->value_length());
      results[i] = Result<std::vector<char>>(std::move(dests[i]));
    } else {
      // kNotFound (a genuine miss) stays distinguishable from kTimedOut /
      // kBusy / kServerDown -- the distinction mget() used to flatten away.
      results[i] = Result<std::vector<char>>(status);
    }
  }
  return results;
}

std::vector<std::optional<std::vector<char>>> Client::mget(
    std::span<const std::string> keys) {
  // Compatibility shape: every non-kOk outcome (miss, timeout, busy, down)
  // flattens to nullopt. Callers that care use mget_status directly.
  std::vector<Result<std::vector<char>>> detailed = mget_status(keys);
  std::vector<std::optional<std::vector<char>>> results(keys.size());
  for (std::size_t i = 0; i < detailed.size(); ++i) {
    if (detailed[i].ok()) results[i] = std::move(detailed[i]).value();
  }
  return results;
}

StatusCode Client::cancel(Request& req) {
  if (req.done()) return req.status();
  bool removed = false;
  net::EndpointId server = net::kInvalidEndpoint;
  {
    const MutexLock lock(pending_mu_);
    auto it = pending_.find(req.wr_id_);
    if (it != pending_.end() && it->second.req == &req) {
      if (it->second.slot >= 0) free_slots_.push(it->second.slot);
      server = it->second.server;
      pending_.erase(it);
      removed = true;
    }
  }
  if (removed) {
    release_pending_window(server);
    // A true cancellation is a strike against the target server: enough
    // consecutive ones eject it from the ring (failover).
    ring_.record_failure(server);
    {
      const MutexLock lock(metrics_mu_);
      ++counters_.timeouts;
    }
    signal_completion(req, StatusCode::kTimedOut, 0, 0);
    return StatusCode::kTimedOut;
  }
  // The progress thread is completing it right now; wait for the verdict.
  park_until([&req] { return req.done(); });
  return req.status();
}

StatusCode Client::wait_for(Request& req, sim::Nanos timeout) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + timeout;
  {
    const MutexLock lock(completion_mu_);
    completion_cv_.wait_until(completion_mu_, deadline,
                              [&req] { return req.done(); });
  }
  {
    const MutexLock lock(metrics_mu_);
    stages_.add(Stage::kClientWait, std::chrono::steady_clock::now() - start);
    stages_.add_ops();
  }
  if (req.done()) return req.status();
  return cancel(req);
}

StageBreakdown Client::breakdown() const {
  const MutexLock lock(metrics_mu_);
  return stages_;
}

ClientCounters Client::counters() const {
  const MutexLock lock(metrics_mu_);
  return counters_;
}

bool Client::try_spend_retry_token() {
  if (config_.retry_budget == 0) return true;  // unlimited
  const MutexLock lock(metrics_mu_);
  if (retry_tokens_ == 0) {
    ++counters_.retry_budget_exhausted;
    return false;
  }
  --retry_tokens_;
  return true;
}

void Client::note_response(StatusCode status) {
  const MutexLock lock(metrics_mu_);
  if (status == StatusCode::kBusy) {
    ++counters_.busy;
    return;
  }
  // A completed (non-busy) round trip refunds one retry token, capped at the
  // configured budget: a healthy cluster keeps its full retry allowance.
  if (config_.retry_budget != 0 && retry_tokens_ < config_.retry_budget) {
    ++retry_tokens_;
  }
}

void Client::release_pending_window(net::EndpointId server) {
  if (config_.max_pending_per_server == 0) return;
  const MutexLock lock(pending_mu_);
  auto it = pending_per_server_.find(server);
  if (it == pending_per_server_.end()) return;
  if (--it->second == 0) pending_per_server_.erase(it);
}

LatencyHistogram Client::op_latency(metrics::Op op) const {
  return latency_ != nullptr ? latency_->op_histogram(op) : LatencyHistogram{};
}

void Client::reset_metrics() {
  {
    const MutexLock lock(metrics_mu_);
    stages_.reset();
    counters_ = ClientCounters{};
    retry_tokens_ = config_.retry_budget;
  }
  if (latency_ != nullptr) latency_->reset();
}

}  // namespace hykv::client
