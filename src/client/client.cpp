#include "client/client.hpp"

#include <cassert>
#include <chrono>
#include <cstring>

#include "common/logging.hpp"
#include "common/sim_time.hpp"
#include "server/protocol.hpp"

namespace hykv::client {

using server::Opcode;

Client::Client(net::Fabric& fabric, ClientConfig config, BackendDb* backend)
    : fabric_(fabric),
      config_(std::move(config)),
      backend_(backend),
      endpoint_(fabric_.create_endpoint(config_.name)),
      ring_(config_.servers, 160, config_.failover),
      latency_(config_.record_latency
                   ? std::make_unique<metrics::LatencyRecorder>(4)
                   : nullptr),
      retry_tokens_(config_.retry_budget) {
  scratch_.resize(config_.bounce_slot_bytes);
  assert(!config_.use_backend_on_miss || backend_ != nullptr);
  // Pre-register the bounce pool: the cold ibv_reg_mr cost is paid once at
  // startup, which is exactly why bset can afford buffer-reuse semantics.
  slots_.reserve(config_.bounce_slots);
  for (std::size_t i = 0; i < config_.bounce_slots; ++i) {
    slots_.push_back(std::make_unique<char[]>(config_.bounce_slot_bytes));
    endpoint_->register_memory(slots_.back().get(), config_.bounce_slot_bytes);
    free_slots_.push(static_cast<int>(i));
  }
  endpoint_->register_memory(scratch_.data(), scratch_.size());
  tx_thread_ = std::thread([this] { tx_main(); });
  rx_thread_ = std::thread([this] { rx_main(); });
}

Client::~Client() {
  {
    const MutexLock lock(pending_mu_);
    closed_ = true;
  }
  tx_queue_.close();   // TX drains remaining jobs, then exits
  if (tx_thread_.joinable()) tx_thread_.join();
  endpoint_->close();  // unblocks RX
  if (rx_thread_.joinable()) rx_thread_.join();
  complete_all_pending(StatusCode::kShutdown);
  free_slots_.close();
}

void Client::complete_all_pending(StatusCode status) {
  std::unordered_map<std::uint64_t, Pending> orphans;
  {
    const MutexLock lock(pending_mu_);
    orphans.swap(pending_);
    pending_per_server_.clear();  // every window occupant is being orphaned
  }
  for (auto& [wr_id, pend] : orphans) {
    if (pend.slot >= 0) free_slots_.push(pend.slot);
    signal_completion(*pend.req, status, 0, 0);
  }
}

void Client::tx_main() {
  while (auto job = tx_queue_.pop()) {
    // Model the engine-side registration of the source/destination buffer
    // (registration cache makes repeats nearly free).
    if (!job->value.empty()) {
      endpoint_->register_memory(const_cast<char*>(job->value.data()),
                                 job->value.size());
    }
    std::vector<char> payload;
    switch (job->opcode) {
      case Opcode::kOpSet: {
        // The value span is read *here*, on the engine thread -- this is the
        // zero-copy hazard window the iset documentation warns about.
        payload = server::encode_set(server::SetRequest{
            .key = job->key,
            .value = job->value,
            .flags = job->flags,
            .expiration = job->expiration,
        });
        break;
      }
      case Opcode::kOpGet:
      case Opcode::kOpDelete:
        payload = server::encode_key_request(job->key);
        break;
      case Opcode::kOpAdd:
      case Opcode::kOpReplace:
      case Opcode::kOpAppend:
      case Opcode::kOpPrepend:
        payload = server::encode_set(server::SetRequest{
            .key = job->key,
            .value = job->value,
            .flags = job->flags,
            .expiration = job->expiration,
        });
        break;
      case Opcode::kOpIncr:
      case Opcode::kOpDecr:
        payload = server::encode_counter(
            job->key, static_cast<std::uint64_t>(job->expiration));
        break;
      case Opcode::kOpTouch:
        payload = server::encode_touch(job->key, job->expiration);
        break;
      case Opcode::kOpGets:
        payload = server::encode_key_request(job->key);
        break;
      case Opcode::kOpCas:
        payload = server::encode_cas(server::CasRequest{
            .key = job->key,
            .value = job->value,
            .flags = job->flags,
            .expiration = job->expiration,
            .cas = job->cas_token,
        });
        break;
      case Opcode::kOpFlushAll:
        break;  // empty payload
      case Opcode::kOpStats:
        // Subcommand bytes ride in job.key ("" = legacy counter text).
        payload.assign(job->key.begin(), job->key.end());
        break;
      default:
        break;
    }
    if (job->deadline_ns != 0) {
      // Deadline propagation: the server strips this header at receipt and
      // sheds the request with kBusy if the deadline already passed.
      payload = server::with_deadline(job->deadline_ns, payload);
    }
    endpoint_->send(job->server, job->opcode, job->wr_id, payload);
    HYKV_DEBUG("client %llu tx wr=%llu op=%u to=%llu n=%zu",
               static_cast<unsigned long long>(endpoint_->id()),
               static_cast<unsigned long long>(job->wr_id), job->opcode,
               static_cast<unsigned long long>(job->server), payload.size());
    // NOTE: the response may already be in flight (or even processed) by the
    // time send() returns -- the request may only be touched via the pending
    // map, never via job->req.
    signal_sent(job->wr_id);
  }
}

void Client::rx_main() {
  while (true) {
    auto msg = endpoint_->recv();
    if (!msg.ok()) break;
    if (msg.value().opcode != Opcode::kOpResponse) continue;
    const auto resp = server::decode_response(msg.value().payload);

    Pending pend;
    {
      const MutexLock lock(pending_mu_);
      auto it = pending_.find(msg.value().wr_id);
      if (it == pending_.end()) {
        HYKV_WARN("client %llu: stale response wr=%llu",
                  static_cast<unsigned long long>(endpoint_->id()),
                  static_cast<unsigned long long>(msg.value().wr_id));
        continue;
      }
      pend = it->second;
      pending_.erase(it);
    }
    release_pending_window(pend.server);

    StatusCode status = resp.has_value() ? resp->status : StatusCode::kServerError;
    std::uint32_t flags = resp.has_value() ? resp->flags : 0;
    std::size_t value_len = 0;
    if (pend.is_get && resp.has_value() && ok(status)) {
      value_len = resp->value.size();
      if (value_len <= pend.req->dest_.size()) {
        // The engine places the fetched value straight into the user's
        // buffer (the RDMA-write-into-destination step).
        std::memcpy(pend.req->dest_.data(), resp->value.data(), value_len);
      } else {
        status = StatusCode::kBufferTooSmall;
      }
    }
    if (pend.is_get) {
      const MutexLock lock(metrics_mu_);
      if (ok(status)) {
        ++counters_.hits;
      } else if (status == StatusCode::kNotFound) {
        ++counters_.misses;
      }
    }
    if (pend.slot >= 0) free_slots_.push(pend.slot);
    if (status == StatusCode::kBusy || config_.retry_budget != 0) {
      // Gated so the default happy path never takes metrics_mu_ here.
      note_response(status);
    }
    // Any response proves the server is alive: clear its failure streak
    // (and readmit it if a probe just succeeded). A kBusy response counts
    // too -- a busy server is alive, not dead.
    ring_.record_success(pend.server);
    HYKV_DEBUG("client %llu rx wr=%llu status=%u",
               static_cast<unsigned long long>(endpoint_->id()),
               static_cast<unsigned long long>(msg.value().wr_id),
               static_cast<unsigned>(status));
    signal_completion(*pend.req, status, flags, value_len);
  }
}

void Client::signal_completion(Request& req, StatusCode status,
                               std::uint32_t flags, std::size_t value_len) {
  // Issue->complete latency: recorded for every terminal status (a timeout
  // is a completion the caller observed too). Reading the request here is
  // safe -- publish_completion below is what releases it to its owner.
  if (latency_ != nullptr && req.issued_at_ != sim::TimePoint{}) {
    latency_->record_op(server::op_class(req.opcode_),
                        metrics::delta_ns(req.issued_at_, sim::now()));
  }
  req.publish_completion(status, flags, value_len);
  // After this point `req` may be gone: the lock-unlock pairs with a waiter
  // between its predicate check and its sleep (lost-wakeup prevention); the
  // notify touches only the client-owned cv.
  { const MutexLock lock(completion_mu_); }
  completion_cv_.notify_all();
}

void Client::signal_sent(std::uint64_t wr_id) {
  {
    const MutexLock lock(pending_mu_);
    auto it = pending_.find(wr_id);
    // Entry gone => the request already completed (done_ implies sent);
    // its owner may have destroyed it, so it must not be dereferenced.
    if (it == pending_.end()) return;
    it->second.req->sent_.store(true, std::memory_order_release);
  }
  { const MutexLock lock(completion_mu_); }
  completion_cv_.notify_all();
}

StatusCode Client::issue(TxJob job, Request& req, int slot, bool is_get,
                         std::span<char> dest) {
  req.reset(dest);
  req.server_ = job.server;
  req.opcode_ = job.opcode;
  // Latency stamp before the request becomes reachable from the pending map
  // (the completing thread reads it; see request.hpp).
  if (latency_ != nullptr) req.issued_at_ = sim::now();
  if (!ring_.accepting(job.server)) {
    // Target is ejected and not yet due for a probe: fail fast instead of
    // letting the request burn its whole deadline against a dead server.
    const MutexLock lock(metrics_mu_);
    ++counters_.server_down;
    return StatusCode::kServerDown;
  }
  std::uint64_t wr_id = 0;
  bool window_full = false;
  {
    const MutexLock lock(pending_mu_);
    if (closed_) return StatusCode::kShutdown;
    if (config_.max_pending_per_server > 0) {
      std::size_t& inflight = pending_per_server_[job.server];
      if (inflight >= config_.max_pending_per_server) {
        window_full = true;
      } else {
        ++inflight;
      }
    }
    if (!window_full) {
      wr_id = wr_id_seq_++;
      pending_.emplace(wr_id, Pending{.req = &req,
                                      .slot = slot,
                                      .is_get = is_get,
                                      .server = job.server});
    }
  }
  if (window_full) {
    // Fail fast at the source: the caller learns immediately that this
    // server's window is saturated instead of queueing yet more work.
    const MutexLock lock(metrics_mu_);
    ++counters_.busy_fail_fast;
    return StatusCode::kBusy;
  }
  if (config_.propagate_deadline && config_.op_deadline.count() > 0) {
    job.deadline_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          (std::chrono::steady_clock::now() +
                           config_.op_deadline).time_since_epoch())
                          .count();
  }
  job.wr_id = wr_id;
  req.wr_id_ = wr_id;
  job.req = &req;
  const net::EndpointId server = job.server;
  if (!tx_queue_.push(std::move(job))) {
    {
      const MutexLock lock(pending_mu_);
      pending_.erase(wr_id);
    }
    release_pending_window(server);
    return StatusCode::kShutdown;
  }
  return StatusCode::kOk;
}

StatusCode Client::iset(std::string_view key, std::span<const char> value,
                        std::uint32_t flags, std::int64_t expiration,
                        Request& req) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  TxJob job;
  job.opcode = Opcode::kOpSet;
  job.server = ring_.select(key);
  job.key = std::string(key);
  job.value = value;  // zero copy: user must not touch until completion
  job.flags = flags;
  job.expiration = expiration;
  {
    const MutexLock lock(metrics_mu_);
    ++counters_.nonblocking_issued;
  }
  return issue(std::move(job), req, /*slot=*/-1, /*is_get=*/false, {});
}

StatusCode Client::bset(std::string_view key, std::span<const char> value,
                        std::uint32_t flags, std::int64_t expiration,
                        Request& req) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  TxJob job;
  job.opcode = Opcode::kOpSet;
  job.server = ring_.select(key);
  job.key = std::string(key);
  job.flags = flags;
  job.expiration = expiration;

  int slot = -1;
  if (value.size() <= config_.bounce_slot_bytes) {
    // Acquire a pre-registered bounce slot; blocks while the pool is fully
    // in flight (this is the bounded-outstanding-writes backpressure).
    const auto acquired = free_slots_.pop();
    if (!acquired.has_value()) return StatusCode::kShutdown;
    slot = *acquired;
    char* buffer = slots_[static_cast<std::size_t>(slot)].get();
    std::memcpy(buffer, value.data(), value.size());
    job.value = std::span<const char>(buffer, value.size());
  } else {
    // Oversized for the pool: fall back to a private copy (cold
    // registration will be paid by the engine).
    job.owned_value.assign(value.begin(), value.end());
    job.value = job.owned_value;
  }
  {
    const MutexLock lock(metrics_mu_);
    ++counters_.nonblocking_issued;
  }
  const StatusCode code = issue(std::move(job), req, slot, /*is_get=*/false, {});
  if (!ok(code)) {
    if (slot >= 0) free_slots_.push(slot);
    return code;
  }
  // "Waits for the engine to communicate that it has sent out the data."
  park_until([&req] { return req.sent(); });
  return StatusCode::kOk;
}

StatusCode Client::iget(std::string_view key, std::span<char> dest, Request& req) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  TxJob job;
  job.opcode = Opcode::kOpGet;
  job.server = ring_.select(key);
  job.key = std::string(key);
  // Destination registration is modelled via the value span (engine-side).
  job.value = std::span<const char>(dest.data(), dest.size());
  {
    const MutexLock lock(metrics_mu_);
    ++counters_.nonblocking_issued;
  }
  return issue(std::move(job), req, /*slot=*/-1, /*is_get=*/true, dest);
}

StatusCode Client::bget(std::string_view key, std::span<char> dest, Request& req) {
  const StatusCode code = iget(key, dest, req);
  if (!ok(code)) return code;
  // Key buffer reusable once the header has left the engine.
  park_until([&req] { return req.sent(); });
  return StatusCode::kOk;
}

void Client::wait(Request& req) {
  if (config_.op_deadline.count() > 0) {
    // Termination guarantee: with a deadline configured, wait() can never
    // hang on a lost request -- it cancels to kTimedOut at the deadline.
    (void)wait_for(req, config_.op_deadline);
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  park_until([&req] { return req.done(); });
  const MutexLock lock(metrics_mu_);
  stages_.add(Stage::kClientWait, std::chrono::steady_clock::now() - start);
  stages_.add_ops();
}

StatusCode Client::run_attempts(
    Request& req, const std::function<StatusCode(Request&)>& issue_attempt,
    bool idempotent) {
  using Clock = std::chrono::steady_clock;
  const bool deadline_on = config_.op_deadline.count() > 0;
  const unsigned attempts_max =
      deadline_on && idempotent ? config_.max_retries + 1 : 1;
  const auto overall = Clock::now() + config_.op_deadline;
  sim::Nanos backoff = config_.retry_backoff;
  StatusCode last = StatusCode::kTimedOut;
  net::EndpointId last_server = net::kInvalidEndpoint;

  for (unsigned attempt = 0; attempt < attempts_max; ++attempt) {
    if (attempt > 0) {
      // Every retry spends a shared token (config_.retry_budget); when the
      // bucket runs dry the last status stands -- under saturation the
      // client converges instead of amplifying load into a retry storm.
      if (!try_spend_retry_token()) break;
      const MutexLock lock(metrics_mu_);
      ++counters_.retries;
    }
    const StatusCode issued = issue_attempt(req);
    last_server = req.server_;
    if (issued == StatusCode::kServerDown || issued == StatusCode::kBusy) {
      // kServerDown: refused before posting (target ejected); a retry
      // re-selects and may fail over. kBusy: refused by the local fail-fast
      // window; backing off and retrying is exactly the right response.
      last = issued;
    } else if (!ok(issued)) {
      return issued;  // kShutdown / kInvalidArgument: not retryable
    } else if (!deadline_on) {
      wait(req);
      return req.status();
    } else {
      const auto now = Clock::now();
      if (now >= overall) {
        last = cancel(req);
        break;
      }
      // Split the remaining budget evenly over the attempts left so a slow
      // first attempt cannot starve the retries of wait time.
      const auto slice = (overall - now) / (attempts_max - attempt);
      last = wait_for(req, std::chrono::duration_cast<sim::Nanos>(slice));
      if (last != StatusCode::kTimedOut && last != StatusCode::kServerDown &&
          last != StatusCode::kBusy) {
        return last;
      }
    }
    if (attempt + 1 < attempts_max) {
      const auto now = Clock::now();
      if (now >= overall) break;
      const auto nap = std::min<Clock::duration>(backoff, overall - now);
      if (nap.count() > 0) std::this_thread::sleep_for(nap);
      backoff = std::min(backoff * 2, config_.retry_backoff_max);
    }
  }
  if (last == StatusCode::kTimedOut &&
      last_server != net::kInvalidEndpoint && ring_.is_dead(last_server)) {
    return StatusCode::kServerDown;
  }
  return last;
}

StatusCode Client::set(std::string_view key, std::span<const char> value,
                       std::uint32_t flags, std::int64_t expiration) {
  Request req;
  // Set is idempotent (last-writer-wins): safe to re-issue after a timeout.
  const StatusCode code = run_attempts(
      req,
      [&](Request& r) { return bset(key, value, flags, expiration, r); },
      /*idempotent=*/true);
  {
    const MutexLock lock(metrics_mu_);
    ++counters_.sets;
  }
  return code;
}

StatusCode Client::get(std::string_view key, std::vector<char>& out,
                       std::uint32_t* flags) {
  Request req;
  StatusCode code = run_attempts(
      req, [&](Request& r) { return bget(key, scratch_, r); },
      /*idempotent=*/true);
  {
    const MutexLock lock(metrics_mu_);
    ++counters_.gets;
  }
  if (ok(code)) {
    out.assign(scratch_.begin(),
               scratch_.begin() + static_cast<std::ptrdiff_t>(req.value_length()));
    if (flags != nullptr) *flags = req.flags();
    return code;
  }
  if (code == StatusCode::kNotFound && config_.use_backend_on_miss) {
    // Cache-aside miss path: hit the backend database (the paper's
    // "Miss Penalty" stage), then re-populate the cache.
    const auto miss_start = std::chrono::steady_clock::now();
    auto value = backend_->fetch(key);
    {
      const MutexLock lock(metrics_mu_);
      stages_.add(Stage::kMissPenalty,
                  std::chrono::steady_clock::now() - miss_start);
      ++counters_.backend_fetches;
    }
    if (!value.has_value()) return StatusCode::kNotFound;
    out = std::move(*value);
    if (flags != nullptr) *flags = 0;
    (void)set(key, out, 0, 0);  // best-effort repopulation
    return StatusCode::kOk;
  }
  return code;
}

StatusCode Client::del(std::string_view key) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  // Delete is idempotent (deleting twice deletes once); the lambda rebuilds
  // the job so a retry re-selects the server and can fail over.
  const StatusCode code = run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpDelete;
        job.server = ring_.select(key);
        job.key = std::string(key);
        return issue(std::move(job), r, -1, /*is_get=*/false, {});
      },
      /*idempotent=*/true);
  {
    const MutexLock lock(metrics_mu_);
    ++counters_.deletes;
  }
  return code;
}

// add/replace/append/prepend/incr/decr/cas are NOT idempotent: a timed-out
// first attempt may have been applied server-side, so re-issuing could
// double-apply (append twice, incr twice, add observing its own first
// attempt). They get the deadline's termination guarantee but never retry.

StatusCode Client::store_op(std::uint16_t opcode, std::string_view key,
                            std::span<const char> value, std::uint32_t flags,
                            std::int64_t expiration) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  return run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = opcode;
        job.server = ring_.select(key);
        job.key = std::string(key);
        job.owned_value.assign(value.begin(), value.end());
        job.value = job.owned_value;
        job.flags = flags;
        job.expiration = expiration;
        return issue(std::move(job), r, -1, false, {});
      },
      /*idempotent=*/false);
}

StatusCode Client::add(std::string_view key, std::span<const char> value,
                       std::uint32_t flags, std::int64_t expiration) {
  return store_op(Opcode::kOpAdd, key, value, flags, expiration);
}

StatusCode Client::replace(std::string_view key, std::span<const char> value,
                           std::uint32_t flags, std::int64_t expiration) {
  return store_op(Opcode::kOpReplace, key, value, flags, expiration);
}

StatusCode Client::append(std::string_view key, std::span<const char> suffix) {
  return store_op(Opcode::kOpAppend, key, suffix, 0, 0);
}

StatusCode Client::prepend(std::string_view key, std::span<const char> prefix) {
  return store_op(Opcode::kOpPrepend, key, prefix, 0, 0);
}

namespace {
Result<std::uint64_t> parse_counter_response(const Request& req,
                                             std::span<const char> scratch) {
  if (!ok(req.status())) return req.status();
  const auto value = server::decode_counter_value(
      std::span<const char>(scratch.data(), req.value_length()));
  if (!value.has_value()) return StatusCode::kServerError;
  return *value;
}
}  // namespace

Result<std::uint64_t> Client::incr(std::string_view key, std::uint64_t delta) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  const StatusCode code = run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpIncr;
        job.server = ring_.select(key);
        job.key = std::string(key);
        job.expiration = static_cast<std::int64_t>(delta);  // in encoding
        return issue(std::move(job), r, -1, true, scratch_);
      },
      /*idempotent=*/false);
  if (!ok(code)) return code;
  return parse_counter_response(req, scratch_);
}

Result<std::uint64_t> Client::decr(std::string_view key, std::uint64_t delta) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  const StatusCode code = run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpDecr;
        job.server = ring_.select(key);
        job.key = std::string(key);
        job.expiration = static_cast<std::int64_t>(delta);
        return issue(std::move(job), r, -1, true, scratch_);
      },
      /*idempotent=*/false);
  if (!ok(code)) return code;
  return parse_counter_response(req, scratch_);
}

StatusCode Client::touch(std::string_view key, std::int64_t expiration) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  // Touch is idempotent: refreshing the expiration twice lands on the same
  // absolute deadline.
  return run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpTouch;
        job.server = ring_.select(key);
        job.key = std::string(key);
        job.expiration = expiration;
        return issue(std::move(job), r, -1, false, {});
      },
      /*idempotent=*/true);
}

StatusCode Client::flush_all() {
  StatusCode worst = StatusCode::kOk;
  for (const net::EndpointId server : ring_.servers()) {
    Request req;
    // Pinned to one explicit server (no ring selection): a retry targets
    // the same server again -- failing over a flush makes no sense.
    const StatusCode code = run_attempts(
        req,
        [&, server](Request& r) {
          TxJob job;
          job.opcode = Opcode::kOpFlushAll;
          job.server = server;
          return issue(std::move(job), r, -1, false, {});
        },
        /*idempotent=*/true);
    if (code == StatusCode::kShutdown) return code;
    if (!ok(code)) worst = code;
  }
  return worst;
}

Result<std::string> Client::stats_text(std::size_t server_index,
                                       std::string_view what) {
  if (server_index >= ring_.servers().size()) return StatusCode::kInvalidArgument;
  const net::EndpointId server = ring_.servers()[server_index];
  Request req;
  const StatusCode code = run_attempts(
      req,
      [&, server](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpStats;
        job.server = server;
        job.key = std::string(what);  // subcommand ("", "latency", "trace")
        return issue(std::move(job), r, -1, true, scratch_);
      },
      /*idempotent=*/true);
  if (!ok(code)) return code;
  return std::string(scratch_.data(), req.value_length());
}

StatusCode Client::gets(std::string_view key, std::vector<char>& out,
                        std::uint32_t* flags, std::uint64_t* cas) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  const StatusCode code = run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpGets;
        job.server = ring_.select(key);
        job.key = std::string(key);
        return issue(std::move(job), r, -1, true, scratch_);
      },
      /*idempotent=*/true);
  if (!ok(code)) return code;
  if (req.value_length() < 8) return StatusCode::kServerError;
  std::uint64_t token = 0;
  std::memcpy(&token, scratch_.data(), 8);
  if (cas != nullptr) *cas = token;
  if (flags != nullptr) *flags = req.flags();
  out.assign(scratch_.begin() + 8,
             scratch_.begin() + static_cast<std::ptrdiff_t>(req.value_length()));
  return StatusCode::kOk;
}

StatusCode Client::cas(std::string_view key, std::span<const char> value,
                       std::uint64_t cas_token, std::uint32_t flags,
                       std::int64_t expiration) {
  if (key.empty()) return StatusCode::kInvalidArgument;
  Request req;
  return run_attempts(
      req,
      [&](Request& r) {
        TxJob job;
        job.opcode = Opcode::kOpCas;
        job.server = ring_.select(key);
        job.key = std::string(key);
        job.owned_value.assign(value.begin(), value.end());
        job.value = job.owned_value;
        job.flags = flags;
        job.expiration = expiration;
        // The CAS token travels in the job's wr-independent slot: tx_main
        // packs it from job.cas_token.
        job.cas_token = cas_token;
        return issue(std::move(job), r, -1, false, {});
      },
      /*idempotent=*/false);
}

std::vector<std::optional<std::vector<char>>> Client::mget(
    std::span<const std::string> keys) {
  std::vector<std::optional<std::vector<char>>> results(keys.size());
  if (keys.empty()) return results;
  // One request + destination buffer per key, all in flight at once --
  // the whole point of mget over a loop of blocking gets.
  std::vector<std::unique_ptr<Request>> requests;
  std::vector<std::vector<char>> dests(keys.size());
  requests.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    requests.push_back(std::make_unique<Request>());
    dests[i].resize(config_.bounce_slot_bytes);
    if (keys[i].empty() ||
        !ok(iget(keys[i], dests[i], *requests.back()))) {
      requests.back().reset();
    }
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (requests[i] == nullptr) continue;
    wait(*requests[i]);
    if (ok(requests[i]->status())) {
      dests[i].resize(requests[i]->value_length());
      results[i] = std::move(dests[i]);
    }
  }
  return results;
}

StatusCode Client::cancel(Request& req) {
  if (req.done()) return req.status();
  bool removed = false;
  net::EndpointId server = net::kInvalidEndpoint;
  {
    const MutexLock lock(pending_mu_);
    auto it = pending_.find(req.wr_id_);
    if (it != pending_.end() && it->second.req == &req) {
      if (it->second.slot >= 0) free_slots_.push(it->second.slot);
      server = it->second.server;
      pending_.erase(it);
      removed = true;
    }
  }
  if (removed) {
    release_pending_window(server);
    // A true cancellation is a strike against the target server: enough
    // consecutive ones eject it from the ring (failover).
    ring_.record_failure(server);
    {
      const MutexLock lock(metrics_mu_);
      ++counters_.timeouts;
    }
    signal_completion(req, StatusCode::kTimedOut, 0, 0);
    return StatusCode::kTimedOut;
  }
  // The progress thread is completing it right now; wait for the verdict.
  park_until([&req] { return req.done(); });
  return req.status();
}

StatusCode Client::wait_for(Request& req, sim::Nanos timeout) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + timeout;
  {
    const MutexLock lock(completion_mu_);
    completion_cv_.wait_until(completion_mu_, deadline,
                              [&req] { return req.done(); });
  }
  {
    const MutexLock lock(metrics_mu_);
    stages_.add(Stage::kClientWait, std::chrono::steady_clock::now() - start);
    stages_.add_ops();
  }
  if (req.done()) return req.status();
  return cancel(req);
}

StageBreakdown Client::breakdown() const {
  const MutexLock lock(metrics_mu_);
  return stages_;
}

ClientCounters Client::counters() const {
  const MutexLock lock(metrics_mu_);
  return counters_;
}

bool Client::try_spend_retry_token() {
  if (config_.retry_budget == 0) return true;  // unlimited
  const MutexLock lock(metrics_mu_);
  if (retry_tokens_ == 0) {
    ++counters_.retry_budget_exhausted;
    return false;
  }
  --retry_tokens_;
  return true;
}

void Client::note_response(StatusCode status) {
  const MutexLock lock(metrics_mu_);
  if (status == StatusCode::kBusy) {
    ++counters_.busy;
    return;
  }
  // A completed (non-busy) round trip refunds one retry token, capped at the
  // configured budget: a healthy cluster keeps its full retry allowance.
  if (config_.retry_budget != 0 && retry_tokens_ < config_.retry_budget) {
    ++retry_tokens_;
  }
}

void Client::release_pending_window(net::EndpointId server) {
  if (config_.max_pending_per_server == 0) return;
  const MutexLock lock(pending_mu_);
  auto it = pending_per_server_.find(server);
  if (it == pending_per_server_.end()) return;
  if (--it->second == 0) pending_per_server_.erase(it);
}

LatencyHistogram Client::op_latency(metrics::Op op) const {
  return latency_ != nullptr ? latency_->op_histogram(op) : LatencyHistogram{};
}

void Client::reset_metrics() {
  {
    const MutexLock lock(metrics_mu_);
    stages_.reset();
    counters_ = ClientCounters{};
    retry_tokens_ = config_.retry_budget;
  }
  if (latency_ != nullptr) latency_->reset();
}

}  // namespace hykv::client
