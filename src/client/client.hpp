// The hykv client library -- a libmemcached work-alike with the paper's
// non-blocking extensions (Listing 1 / Section IV):
//
//   blocking   : set / get / del              (memcached_set / _get)
//   issue-only : iset / iget                  (memcached_iset / _iget)
//   buffer-safe: bset / bget                  (memcached_bset / _bget)
//   completion : wait / test                  (memcached_wait / _test)
//
// Semantics, mirrored from the paper:
//  - iset/iget return as soon as the request is posted to the RDMA engine.
//    The user's key/value buffers MUST NOT be touched until completion: the
//    engine reads them asynchronously (zero copy).
//  - bset copies the value into a pre-registered bounce buffer from a bounded
//    pool, so the user's buffers are reusable the moment the call returns;
//    the pool bound is what throttles write-bursts against a slow server.
//  - bget additionally blocks until the request header has been injected.
//  - wait/test guarantee operation completion: for Sets, the key-value pair
//    is stored (or the failure is known); for Gets, the value has been copied
//    into the user's destination buffer.
//
// Threading: one application thread may call the public API per Client
// instance; the client runs two internal threads (TX engine and RX progress).
// Create one Client per application thread for concurrent use (matches
// libmemcached's non-thread-safe memcached_st).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "client/backend_db.hpp"
#include "client/request.hpp"
#include "client/ring.hpp"
#include "common/metrics.hpp"
#include "common/mutex.hpp"
#include "common/queue.hpp"
#include "common/stage.hpp"
#include "common/sim_time.hpp"
#include "common/thread_annotations.hpp"
#include "net/fabric.hpp"

namespace hykv::client {

struct ClientConfig {
  std::vector<net::EndpointId> servers;
  std::string name = "client";
  std::size_t bounce_slots = 16;
  std::size_t bounce_slot_bytes = std::size_t{1} << 20;
  /// Blocking Gets consult the backend database on a miss (cache-aside) and
  /// re-populate the cache -- the in-memory designs' miss path.
  bool use_backend_on_miss = false;

  // ---- Failure handling (all real/wall-clock time) ----
  /// Per-operation deadline. 0 disables deadlines entirely: blocking ops and
  /// wait() block until completion, retries never trigger, and the happy
  /// path is byte-for-byte the pre-failure-model behaviour.
  sim::Nanos op_deadline{0};
  /// Extra attempts for *idempotent* blocking ops (set/get/del) after a
  /// timeout. Non-idempotent ops (incr, append, cas, ...) never retry --
  /// the first attempt may have been applied.
  unsigned max_retries = 2;
  /// Exponential backoff between retries: first wait, then doubled up to
  /// the cap. Backoff never extends past the op deadline.
  sim::Nanos retry_backoff{sim::ms(1)};
  sim::Nanos retry_backoff_max{sim::ms(8)};
  /// Server ejection/readmission thresholds for the ring dead-set.
  FailoverPolicy failover{};

  // ---- Overload control (DESIGN.md §8; all default-off, keeping the happy
  //      path byte-for-byte the pre-overload behaviour) ----
  /// Shared retry-token budget across every operation of this client
  /// (0 = unlimited). Each retry spends a token; each successful round trip
  /// refunds one (capped at the budget), so a healthy cluster retries freely
  /// while a saturated one converges instead of amplifying into a retry
  /// storm. When the bucket is dry a would-be retry is skipped and the last
  /// status stands.
  std::uint64_t retry_budget = 0;
  /// Fail-fast window for the non-blocking issue path (0 = off): when this
  /// many requests are already in flight to the target server, iset/iget/
  /// bset/bget return kBusy at issue instead of queueing more work -- an
  /// iset storm is bounded at the source.
  std::size_t max_pending_per_server = 0;
  /// Attach the op deadline to outgoing requests (protocol deadline header)
  /// so servers can drop expired-on-arrival work instead of executing it.
  /// Requires op_deadline > 0 to have any effect.
  bool propagate_deadline = false;

  // ---- Doorbell batching (DESIGN.md §12; default-off, keeping the wire
  //      byte-for-byte the pre-batching behaviour) ----
  /// TX coalescing bound: the engine opportunistically drains the TX queue
  /// and packs up to this many *consecutive same-server* requests into one
  /// kOpBatch frame, paying the per-message fabric costs (doorbell,
  /// propagation, response post) once per frame instead of once per op.
  /// 1 (default) disables coalescing entirely -- every op is its own frame,
  /// byte-identical to the unbatched protocol. A run of length 1 is always
  /// sent as a plain frame, never wrapped.
  std::size_t batch_max_ops = 1;
  /// Byte bound on one batch frame's accumulated key+value payload; the
  /// engine closes the frame early when the next op would exceed it.
  std::size_t batch_max_bytes = std::size_t{256} << 10;

  // ---- Observability (DESIGN.md §10) ----
  /// Per-op-class issue->complete latency histograms (op_latency()): the
  /// client-side view of the same request the server histograms time, so the
  /// paper's issue/completion-overlap benefit is measurable from both ends.
  /// Recording is a few relaxed atomic adds per completion.
  bool record_latency = true;
};

struct ClientCounters {
  std::uint64_t sets = 0;
  std::uint64_t gets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t backend_fetches = 0;
  std::uint64_t nonblocking_issued = 0;
  std::uint64_t timeouts = 0;       ///< Requests cancelled on deadline.
  std::uint64_t retries = 0;        ///< Re-issued idempotent attempts.
  std::uint64_t server_down = 0;    ///< Issues refused: target ejected.
  std::uint64_t busy = 0;           ///< kBusy responses (server shed/expired).
  std::uint64_t busy_fail_fast = 0; ///< Issues refused: local window full.
  std::uint64_t retry_budget_exhausted = 0;  ///< Retries skipped: no tokens.
  std::uint64_t batches_sent = 0;   ///< kOpBatch frames posted by the engine.
  std::uint64_t batched_ops = 0;    ///< Ops that rode inside those frames.

  /// Average ops per batch frame (the batch-fill ratio); 0 when no frame
  /// has been sent. Single-op sends bypass the batch path entirely, so this
  /// is always >= 2 once nonzero.
  [[nodiscard]] double batch_fill() const noexcept {
    return batches_sent == 0
               ? 0.0
               : static_cast<double>(batched_ops) /
                     static_cast<double>(batches_sent);
  }
};

/// Typed `stats` subcommand selector (replaces the stringly-typed `what`
/// argument of the deprecated stats_text overload).
enum class StatsKind {
  kCounters,  ///< Legacy counter text ("" on the wire; frozen format).
  kLatency,   ///< Histogram percentiles ("latency").
  kTrace,     ///< Sampled op timelines as JSON ("trace").
};

class Client {
 public:
  /// `backend` may be nullptr when use_backend_on_miss is false; it must
  /// outlive the client otherwise.
  Client(net::Fabric& fabric, ClientConfig config, BackendDb* backend = nullptr);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ---- Blocking API (memcached_set / memcached_get / memcached_delete) ----

  StatusCode set(std::string_view key, std::span<const char> value,
                 std::uint32_t flags = 0, std::int64_t expiration = 0);

  /// On success `out` holds the value. On a miss with a backend configured,
  /// fetches from the backend (kMissPenalty stage), re-populates the cache,
  /// and returns kOk; otherwise returns kNotFound.
  StatusCode get(std::string_view key, std::vector<char>& out,
                 std::uint32_t* flags = nullptr);

  StatusCode del(std::string_view key);

  /// memcached add/replace/append/prepend (blocking). kNotStored when the
  /// existence precondition fails.
  StatusCode add(std::string_view key, std::span<const char> value,
                 std::uint32_t flags = 0, std::int64_t expiration = 0);
  StatusCode replace(std::string_view key, std::span<const char> value,
                     std::uint32_t flags = 0, std::int64_t expiration = 0);
  StatusCode append(std::string_view key, std::span<const char> suffix);
  StatusCode prepend(std::string_view key, std::span<const char> prefix);

  /// memcached incr/decr (blocking): returns the new counter value.
  Result<std::uint64_t> incr(std::string_view key, std::uint64_t delta = 1);
  Result<std::uint64_t> decr(std::string_view key, std::uint64_t delta = 1);

  /// memcached touch (blocking): refreshes expiration in place.
  StatusCode touch(std::string_view key, std::int64_t expiration);

  /// memcached flush_all across every server in the ring.
  StatusCode flush_all();

  /// memcached "stats" from one server, as "name value" lines. The typed
  /// StatsKind selects the subcommand; this is the preferred overload.
  Result<std::string> stats_text(std::size_t server_index, StatsKind kind);

  /// DEPRECATED stringly-typed variant, kept as a thin shim so compat.cpp
  /// and existing callers still build (no [[deprecated]] attribute: the tree
  /// builds with -Werror). `what` rides verbatim on the wire: "" = legacy
  /// counter text, "latency", "trace"; anything else answers
  /// kInvalidArgument server-side. New code should pass a StatsKind.
  Result<std::string> stats_text(std::size_t server_index = 0,
                                 std::string_view what = {});

  /// memcached "gets": fetch value + CAS version token.
  StatusCode gets(std::string_view key, std::vector<char>& out,
                  std::uint32_t* flags, std::uint64_t* cas);

  /// memcached "cas": conditional store; kNotStored when the version moved
  /// (memcached EXISTS), kNotFound when the key vanished.
  StatusCode cas(std::string_view key, std::span<const char> value,
                 std::uint64_t cas_token, std::uint32_t flags = 0,
                 std::int64_t expiration = 0);

  /// memcached_mget: fetches many keys with one pipelined burst of
  /// non-blocking Gets, issued grouped by target server so the TX engine's
  /// coalescing turns each server's keys into one (or few) batch frames.
  /// Returns one entry per input key; missing keys yield an empty optional.
  /// Implemented on mget_status -- any per-key failure (timeout, busy,
  /// server down) also collapses to an empty optional here.
  std::vector<std::optional<std::vector<char>>> mget(
      std::span<const std::string> keys);

  /// Like mget, but status-preserving: each entry is the key's value (kOk),
  /// or the per-key terminal status -- kNotFound for a true miss, kTimedOut/
  /// kBusy/kServerDown/... for delivery failures -- so callers can tell a
  /// miss from a key they should retry.
  std::vector<Result<std::vector<char>>> mget_status(
      std::span<const std::string> keys);

  // ---- Non-blocking API (Listing 1) ----

  /// Issue-only Set: returns after posting to the engine. `value` (and `key`)
  /// must stay untouched until `req` completes.
  StatusCode iset(std::string_view key, std::span<const char> value,
                  std::uint32_t flags, std::int64_t expiration, Request& req);

  /// Buffer-safe Set: the value is copied into a registered bounce buffer;
  /// key/value are reusable as soon as this returns. Blocks when all bounce
  /// slots are in flight (bounded-pool backpressure).
  StatusCode bset(std::string_view key, std::span<const char> value,
                  std::uint32_t flags, std::int64_t expiration, Request& req);

  /// Issue-only Get: on completion the value is in `dest` (or status is
  /// kBufferTooSmall with req.value_length() telling the needed size).
  StatusCode iget(std::string_view key, std::span<char> dest, Request& req);

  /// Buffer-safe Get: additionally waits for header injection so the key
  /// buffer is reusable on return.
  StatusCode bget(std::string_view key, std::span<char> dest, Request& req);

  /// Blocks until `req` completes (memcached_wait). Time spent is attributed
  /// to the kClientWait stage.
  void wait(Request& req);

  /// Like wait() but gives up after `timeout` (real time): the request is
  /// cancelled (kTimedOut) unless its completion raced in, in which case the
  /// real status is returned. Safe against late responses -- a cancelled
  /// request is unregistered before this returns.
  StatusCode wait_for(Request& req, sim::Nanos timeout);

  /// Cancels an in-flight request: completes it with kTimedOut unless it
  /// already finished. Returns the final status.
  StatusCode cancel(Request& req);

  /// Non-blocking completion check (memcached_test).
  [[nodiscard]] bool test(const Request& req) const { return req.done(); }

  // ---- Introspection ----

  [[nodiscard]] StageBreakdown breakdown() const;
  [[nodiscard]] ClientCounters counters() const;
  /// Merged issue->complete latency histogram for one op class. Covers every
  /// completion path (response, timeout/cancel, shutdown) of blocking and
  /// non-blocking ops alike; empty when record_latency is off.
  [[nodiscard]] LatencyHistogram op_latency(metrics::Op op) const;
  void reset_metrics();
  [[nodiscard]] const ServerRing& ring() const noexcept { return ring_; }
  [[nodiscard]] net::EndpointId endpoint_id() const { return endpoint_->id(); }

  /// Bounce slots currently idle -- equals the configured pool size whenever
  /// no request is in flight (chaos tests assert no slot is ever leaked).
  [[nodiscard]] std::size_t free_bounce_slots() const {
    return free_slots_.size();
  }
  /// Requests currently registered in the pending map (0 once every issued
  /// request reached a terminal status).
  [[nodiscard]] std::size_t pending_requests() const EXCLUDES(pending_mu_) {
    const MutexLock lock(pending_mu_);
    return pending_.size();
  }

 private:
  struct TxJob {
    std::uint16_t opcode = 0;
    std::uint64_t wr_id = 0;
    net::EndpointId server = net::kInvalidEndpoint;
    std::string key;
    std::span<const char> value{};   ///< Zero-copy source (iset) or slot view.
    std::vector<char> owned_value;   ///< Fallback copy for oversized bsets.
    std::uint32_t flags = 0;
    std::int64_t expiration = 0;
    std::uint64_t cas_token = 0;
    std::int64_t deadline_ns = 0;  ///< Propagated deadline (0 = none).
    Request* req = nullptr;
  };

  struct Pending {
    Request* req = nullptr;
    int slot = -1;      ///< Bounce slot to release on completion (-1: none).
    bool is_get = false;
    net::EndpointId server = net::kInvalidEndpoint;  ///< Ring health target.
  };

  void tx_main();
  void rx_main();
  /// Encodes one job's request payload (the per-opcode wire encoding,
  /// without the deadline envelope). Shared by the single-frame and batch
  /// TX paths so both emit byte-identical op encodings.
  [[nodiscard]] std::vector<char> encode_job(const TxJob& job) const;
  /// Registers the job's source/destination memory with the engine
  /// (registration-cache hits make repeats nearly free).
  void register_job_memory(const TxJob& job);
  /// Sends one job as a plain single-op frame (the pre-batching wire
  /// behaviour, byte for byte) and signals its local send completion.
  void send_single(const TxJob& job);
  /// Sends a coalesced run (>= 2 consecutive same-server jobs) as one
  /// kOpBatch frame carrying per-op wr_ids and the minimum propagated
  /// deadline, then signals each op's local send completion.
  void send_batch(const std::vector<TxJob>& run);
  /// Completes the pending op `wr_id` from its raw RESP-encoded bytes
  /// (undecodable bytes complete as kServerError): pending-map erase, GET
  /// value placement, hit/miss + overload counters, bounce-slot release,
  /// ring health, completion signal. Shared by the single-response and
  /// batch-demux RX paths.
  void complete_one(std::uint64_t wr_id, std::span<const char> response_bytes);
  /// Publishes req's result and wakes waiters. Last access to `req`.
  void signal_completion(Request& req, StatusCode status, std::uint32_t flags,
                         std::size_t value_len);
  /// Marks the request with this wr_id injected (local send completion) and
  /// wakes waiters. Touches the Request only while it is still registered in
  /// the pending map -- once a request completes (and may be destroyed by
  /// its owner) it is no longer reachable from here.
  void signal_sent(std::uint64_t wr_id);
  /// Parks until the predicate holds (predicate may read request atomics,
  /// never state guarded by completion_mu_ -- the lock only serialises the
  /// sleep/notify handshake).
  template <typename Pred>
  void park_until(Pred&& pred) EXCLUDES(completion_mu_) {
    const MutexLock lock(completion_mu_);
    completion_cv_.wait(completion_mu_, std::forward<Pred>(pred));
  }
  StatusCode issue(TxJob job, Request& req, int slot, bool is_get,
                   std::span<char> dest);
  /// Shared body of add/replace/append/prepend (non-idempotent stores).
  StatusCode store_op(std::uint16_t opcode, std::string_view key,
                      std::span<const char> value, std::uint32_t flags,
                      std::int64_t expiration);
  /// Runs one blocking operation under the deadline/retry policy:
  /// `issue_attempt` posts a fresh request (re-selecting the server, so a
  /// retry after ejection fails over) and is re-run on timeout while budget
  /// remains, but only when `idempotent`. Returns the final status --
  /// kServerDown when attempts exhausted against an ejected server.
  StatusCode run_attempts(
      Request& req, const std::function<StatusCode(Request&)>& issue_attempt,
      bool idempotent);
  void complete_all_pending(StatusCode status);
  /// Spends one retry token; false (and counts) when the bucket is dry.
  /// Always true with retry_budget == 0 (unlimited).
  bool try_spend_retry_token();
  /// Counts a response toward the overload counters and refunds a retry
  /// token on a successful (non-busy) round trip.
  void note_response(StatusCode status);
  /// Drops the per-server in-flight count for an unregistered request.
  /// Call after erasing its pending-map entry (no-op when the window is off).
  void release_pending_window(net::EndpointId server);
  /// Raw stats round trip with the subcommand bytes sent verbatim; the
  /// typed and deprecated stats_text overloads are both shims over this.
  Result<std::string> stats_request(std::size_t server_index,
                                    std::string_view what);
  std::uint64_t next_wr_id() REQUIRES(pending_mu_) { return wr_id_seq_++; }

  net::Fabric& fabric_;
  ClientConfig config_;
  BackendDb* backend_;
  std::shared_ptr<net::Endpoint> endpoint_;
  ServerRing ring_;

  // Bounce buffer pool (pre-registered with the HCA at startup).
  std::vector<std::unique_ptr<char[]>> slots_;
  BlockingQueue<int> free_slots_;

  BlockingQueue<TxJob> tx_queue_;
  std::thread tx_thread_;
  std::thread rx_thread_;

  // Completion signalling: requests carry only atomic flags; sleeping
  // waiters park on this client-wide cv so the progress threads never touch
  // a (possibly already destroyed) per-request cv. See request.hpp.
  Mutex completion_mu_;
  CondVar completion_cv_;

  mutable Mutex pending_mu_;
  std::unordered_map<std::uint64_t, Pending> pending_ GUARDED_BY(pending_mu_);
  /// In-flight requests per server; maintained only when
  /// max_pending_per_server > 0.
  std::unordered_map<net::EndpointId, std::size_t> pending_per_server_
      GUARDED_BY(pending_mu_);
  std::uint64_t wr_id_seq_ GUARDED_BY(pending_mu_) = 1;
  bool closed_ GUARDED_BY(pending_mu_) = false;

  mutable Mutex metrics_mu_;
  StageBreakdown stages_ GUARDED_BY(metrics_mu_);
  ClientCounters counters_ GUARDED_BY(metrics_mu_);
  /// Issue->complete histograms (null when record_latency is off). Written
  /// by whichever thread completes a request (rx, cancel, shutdown) --
  /// recorder slots are atomic, so no lock is involved.
  std::unique_ptr<metrics::LatencyRecorder> latency_;
  /// Retry-token bucket; starts full at config_.retry_budget and is
  /// refunded by successful round trips.
  std::uint64_t retry_tokens_ GUARDED_BY(metrics_mu_) = 0;

  std::vector<char> scratch_;  ///< Blocking-get destination buffer.
};

}  // namespace hykv::client
