#!/usr/bin/env sh
# Negative-compile check for the thread-safety annotations: proves that the
# macros in src/common/thread_annotations.hpp are not silently inert -- a
# guarded field touched without its lock, and a REQUIRES method called
# unlocked, must BOTH fail to compile under clang -Werror=thread-safety.
# A correctly locked control snippet must still compile, so a macro typo
# cannot pass by breaking everything.
#
#   usage: check_thread_safety.sh <repo-root> [clang++-binary]
#
# Exit codes: 0 = annotations fire as designed; 1 = a probe compiled that
# must not (or the control failed); 77 = no clang++ available, skipped
# (ctest SKIP_RETURN_CODE; GCC ignores the attributes so only clang can run
# this). Run by ctest as `thread_safety_negative_compile` and by the CI lint
# job.
set -eu

if [ "$#" -lt 1 ] || [ "$#" -gt 2 ]; then
    echo "usage: $0 <repo-root> [clang++-binary]" >&2
    exit 2
fi

root="$1"
cxx="${2:-${HYKV_CLANGXX:-clang++}}"

if ! command -v "$cxx" >/dev/null 2>&1; then
    echo "skip: no clang++ on PATH (the analysis is clang-only)" >&2
    exit 77
fi
if ! "$cxx" --version 2>/dev/null | grep -qi clang; then
    echo "skip: $cxx is not clang (the analysis is clang-only)" >&2
    exit 77
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT INT TERM

flags="-std=c++20 -I$root/src -Wthread-safety -Werror=thread-safety -fsyntax-only"

# Shared fixture: one guarded counter behind the repo's annotated wrappers.
cat > "$tmpdir/fixture.hpp" <<'EOF'
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

struct Counter {
  void bump_locked() REQUIRES(mu_) { ++value_; }
  void bump() EXCLUDES(mu_) {
    const hykv::MutexLock lock(mu_);
    ++value_;
  }
  hykv::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};
EOF

# Control: correct locking must compile clean.
cat > "$tmpdir/control.cpp" <<'EOF'
#include "fixture.hpp"
int main() {
  Counter c;
  c.bump();
  const hykv::MutexLock lock(c.mu_);
  c.bump_locked();
  return c.value_;
}
EOF

# Probe 1: guarded field touched without the lock.
cat > "$tmpdir/unguarded_field.cpp" <<'EOF'
#include "fixture.hpp"
int main() {
  Counter c;
  return ++c.value_;  // no lock held: must not compile
}
EOF

# Probe 2: REQUIRES method called without the lock.
cat > "$tmpdir/requires_unlocked.cpp" <<'EOF'
#include "fixture.hpp"
int main() {
  Counter c;
  c.bump_locked();  // no lock held: must not compile
  return 0;
}
EOF

fail=0

if ! "$cxx" $flags -I"$tmpdir" "$tmpdir/control.cpp" 2> "$tmpdir/control.log"; then
    echo "FAIL: correctly locked control snippet did not compile:" >&2
    cat "$tmpdir/control.log" >&2
    fail=1
else
    echo "ok: control snippet compiles clean"
fi

for probe in unguarded_field requires_unlocked; do
    if "$cxx" $flags -I"$tmpdir" "$tmpdir/$probe.cpp" 2> "$tmpdir/$probe.log"; then
        echo "FAIL: probe $probe compiled but must trigger -Werror=thread-safety" >&2
        fail=1
    elif ! grep -q "thread-safety" "$tmpdir/$probe.log"; then
        echo "FAIL: probe $probe failed for a reason other than thread safety:" >&2
        cat "$tmpdir/$probe.log" >&2
        fail=1
    else
        echo "ok: probe $probe rejected ($(grep -c 'warning\|error' "$tmpdir/$probe.log") diagnostics)"
    fi
done

exit "$fail"
