#!/usr/bin/env sh
# Runs the repo's curated clang-tidy gate (.clang-tidy) over every
# translation unit in compile_commands.json.
#
#   usage: run_clang_tidy.sh [build-dir] [--fix] [extra clang-tidy args...]
#
# The build dir must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the default dev configure). --fix and
# any other extra arguments are passed straight through to clang-tidy, so
#   scripts/run_clang_tidy.sh build --fix
# applies the auto-fixes in place. Exits 77 when clang-tidy is unavailable
# (GCC-only container); CI's lint job installs it and treats findings as
# errors (WarningsAsErrors: '*').
set -eu

build_dir="build"
if [ "$#" -ge 1 ] && [ "${1#-}" = "$1" ]; then
    build_dir="$1"
    shift
fi

tidy="${HYKV_CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
    echo "skip: $tidy not on PATH (set HYKV_CLANG_TIDY to override)" >&2
    exit 77
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
    echo "error: $db not found; configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

# run-clang-tidy parallelises over the compilation database when available;
# fall back to a portable per-file loop otherwise.
runner="${HYKV_RUN_CLANG_TIDY:-run-clang-tidy}"
if command -v "$runner" >/dev/null 2>&1; then
    exec "$runner" -clang-tidy-binary "$tidy" -p "$build_dir" -quiet "$@" \
        '(src|tests|bench|tools|examples)/.*\.cpp$'
fi

status=0
for f in $(sed -n 's/^ *"file": *"\(.*\)",*$/\1/p' "$db" | sort -u); do
    case "$f" in
        */src/*|*/tests/*|*/bench/*|*/tools/*|*/examples/*) ;;
        *) continue ;;
    esac
    echo "== $f"
    "$tidy" -p "$build_dir" "$@" "$f" || status=1
done
exit "$status"
