#!/usr/bin/env sh
# Docs-consistency check: every metric name emitted by the server's stats
# surfaces must be documented in docs/METRICS.md as a backticked token.
#
#   usage: check_metrics_docs.sh <dump_metrics-binary> <path/to/METRICS.md>
#
# Exits non-zero listing every undocumented metric. Run by ctest as
# `docs_metrics_consistency` (tools/CMakeLists.txt) and by CI.
set -eu

if [ "$#" -ne 2 ]; then
    echo "usage: $0 <dump_metrics-binary> <METRICS.md>" >&2
    exit 2
fi

dump_bin="$1"
docs="$2"

if [ ! -x "$dump_bin" ]; then
    echo "error: dump_metrics binary not found/executable: $dump_bin" >&2
    exit 2
fi
if [ ! -f "$docs" ]; then
    echo "error: docs file not found: $docs" >&2
    exit 2
fi

missing=0
total=0
for name in $("$dump_bin"); do
    total=$((total + 1))
    if ! grep -q "\`$name\`" "$docs"; then
        echo "UNDOCUMENTED: $name (add it to $docs)"
        missing=$((missing + 1))
    fi
done

if [ "$missing" -ne 0 ]; then
    echo "docs-consistency FAILED: $missing of $total metrics missing from $docs"
    exit 1
fi
echo "docs-consistency OK: all $total emitted metrics documented in $docs"
