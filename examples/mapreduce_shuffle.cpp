// Intermediate-data caching example, modelled on "Accelerating MapReduce
// with Distributed Memory Cache" (ref [22] of the paper): mappers publish
// partition outputs into the key-value cluster with non-blocking sets while
// continuing to compute; reducers later pull their partitions with
// non-blocking gets.
//
//   ./mapreduce_shuffle
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "client/request.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "core/testbed.hpp"

namespace {

constexpr int kMappers = 4;
constexpr int kReducers = 4;
constexpr std::size_t kPartitionBytes = 64 << 10;

std::string partition_key(int mapper, int reducer) {
  return "shuffle-m" + std::to_string(mapper) + "-r" + std::to_string(reducer);
}

std::uint64_t partition_seed(int mapper, int reducer) {
  return static_cast<std::uint64_t>(mapper) * 100 +
         static_cast<std::uint64_t>(reducer);
}

}  // namespace

int main() {
  using namespace hykv;
  sim::init_precise_timing();

  core::TestBedConfig config;
  config.design = core::Design::kHRdmaOptNonbI;
  config.num_servers = 2;
  config.total_server_memory = 8 << 20;
  core::TestBed bed(config);

  // ---- Map phase: each mapper emits kReducers partitions, non-blocking ----
  const auto map_start = sim::now();
  sim::Nanos compute_done_at{};
  {
    auto mapper_client = bed.make_client("mapper");
    std::vector<std::vector<char>> partitions;  // stable until completion
    std::vector<std::unique_ptr<client::Request>> requests;
    for (int m = 0; m < kMappers; ++m) {
      for (int r = 0; r < kReducers; ++r) {
        partitions.push_back(make_value(partition_seed(m, r), kPartitionBytes));
        requests.push_back(std::make_unique<client::Request>());
        if (!ok(mapper_client->iset(partition_key(m, r), partitions.back(), 0, 0,
                                    *requests.back()))) {
          std::fprintf(stderr, "iset failed\n");
          return 1;
        }
      }
      // The mapper overlaps the next split's "computation" with the
      // in-flight transfers -- the whole point of the non-blocking API.
      sim::advance(sim::us(500));
    }
    compute_done_at = sim::now() - map_start;
    for (auto& req : requests) {
      mapper_client->wait(*req);
      if (!ok(req->status())) {
        std::fprintf(stderr, "partition store failed\n");
        return 1;
      }
    }
  }
  const auto map_total = sim::now() - map_start;
  std::printf("map phase : %lld us total, compute finished at %lld us "
              "(transfer fully overlapped: %s)\n",
              static_cast<long long>(map_total.count() / 1000),
              static_cast<long long>(compute_done_at.count() / 1000),
              map_total - compute_done_at < sim::ms(2) ? "mostly" : "no");

  // ---- Reduce phase: each reducer pulls its column of partitions ----
  int verified = 0;
  const auto reduce_start = sim::now();
  for (int r = 0; r < kReducers; ++r) {
    auto reducer_client = bed.make_client("reducer-" + std::to_string(r));
    std::vector<std::vector<char>> dests(kMappers);
    std::vector<std::unique_ptr<client::Request>> requests;
    for (int m = 0; m < kMappers; ++m) {
      dests[static_cast<std::size_t>(m)].resize(kPartitionBytes);
      requests.push_back(std::make_unique<client::Request>());
      reducer_client->iget(partition_key(m, r), dests[static_cast<std::size_t>(m)],
                           *requests.back());
    }
    for (int m = 0; m < kMappers; ++m) {
      reducer_client->wait(*requests[static_cast<std::size_t>(m)]);
      if (ok(requests[static_cast<std::size_t>(m)]->status()) &&
          dests[static_cast<std::size_t>(m)] ==
              make_value(partition_seed(m, r), kPartitionBytes)) {
        ++verified;
      }
    }
  }
  const auto reduce_total = sim::now() - reduce_start;
  std::printf("reduce    : %lld us, %d/%d partitions fetched and verified\n",
              static_cast<long long>(reduce_total.count() / 1000), verified,
              kMappers * kReducers);
  return verified == kMappers * kReducers ? 0 : 1;
}
