// The paper's Listing 2 ("An Example of Bursty I/O Applications Using the
// Proposed Non-Blocking Memcached APIs"), ported line-for-line onto the
// C-style compat shim: data written in blocks, each block divided into
// chunks stored with memcached_iset, tested with memcached_test after each
// block, and finally awaited with memcached_wait.
//
//   ./listing2_compat
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "client/compat.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "core/testbed.hpp"

namespace {

constexpr std::size_t kBlocks = 4;
constexpr std::size_t kChunksPerBlock = 8;
constexpr std::size_t kChunkBytes = 64 << 10;

std::string chunk_key(std::size_t block, std::size_t chunk) {
  return "l2-" + std::to_string(block) + "-" + std::to_string(chunk);
}

}  // namespace

int main() {
  using namespace hykv;
  sim::init_precise_timing();

  core::TestBedConfig config;
  config.design = core::Design::kHRdmaOptNonbI;
  config.num_servers = 2;
  config.total_server_memory = 8 << 20;
  core::TestBed bed(config);
  auto client = bed.make_client("listing2");
  auto st = compat::memcached_wrap(*client);

  // write_kv_pairs_to_memcached(...)
  std::vector<std::vector<char>> chunks;  // stable buffers until completion
  std::vector<std::unique_ptr<compat::memcached_req>> reqs;
  for (std::size_t b = 0; b < kBlocks; ++b) {
    for (std::size_t c = 0; c < kChunksPerBlock; ++c) {
      const std::string key = chunk_key(b, c);
      chunks.push_back(make_value(b * kChunksPerBlock + c, kChunkBytes));
      reqs.push_back(std::make_unique<compat::memcached_req>());
      const auto rc = compat::memcached_iset(
          &st, key.data(), key.size(), chunks.back().data(),
          chunks.back().size(), 0, 0, reqs.back().get());
      if (rc != StatusCode::kOk) {
        std::fprintf(stderr, "iset failed\n");
        return 1;
      }
    }
    // Test completion at the end of each data-block send (non-blocking).
    for (auto& req : reqs) compat::memcached_test(&st, req.get());
  }
  // Wait to ensure all data blocks are written to the Memcached servers.
  for (auto& req : reqs) compat::memcached_wait(&st, req.get());
  std::size_t stored = 0;
  for (auto& req : reqs) {
    if (compat::memcached_req_status(req.get()) == StatusCode::kOk) ++stored;
  }
  std::printf("write pass: %zu/%zu chunks stored\n", stored,
              kBlocks * kChunksPerBlock);

  // read_kv_pairs_from_memcached(...)
  std::size_t verified = 0;
  std::vector<std::unique_ptr<compat::memcached_req>> get_reqs;
  std::vector<char*> dests;
  std::vector<std::size_t> lens(kBlocks * kChunksPerBlock, 0);
  for (std::size_t b = 0; b < kBlocks; ++b) {
    for (std::size_t c = 0; c < kChunksPerBlock; ++c) {
      const std::string key = chunk_key(b, c);
      get_reqs.push_back(std::make_unique<compat::memcached_req>());
      compat::memcached_return error = StatusCode::kServerError;
      char* dest = compat::memcached_iget(
          &st, key.data(), key.size(), &lens[b * kChunksPerBlock + c], nullptr,
          get_reqs.back().get(), &error);
      if (error != StatusCode::kOk || dest == nullptr) {
        std::fprintf(stderr, "iget failed\n");
        return 1;
      }
      dests.push_back(dest);
    }
  }
  for (auto& req : get_reqs) compat::memcached_wait(&st, req.get());
  for (std::size_t i = 0; i < dests.size(); ++i) {
    const auto expected = make_value(i, kChunkBytes);
    if (compat::memcached_req_status(get_reqs[i].get()) == StatusCode::kOk &&
        lens[i] == kChunkBytes &&
        std::memcmp(dests[i], expected.data(), kChunkBytes) == 0) {
      ++verified;
    }
  }
  std::printf("read pass : %zu/%zu chunks fetched and verified\n", verified,
              kBlocks * kChunksPerBlock);
  return verified == kBlocks * kChunksPerBlock ? 0 : 1;
}
