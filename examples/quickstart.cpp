// Quickstart: bring up a hybrid RDMA-Memcached deployment in-process, store
// and fetch data with the blocking API, then do the same asynchronously with
// the paper's non-blocking extensions.
//
//   ./quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "client/request.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "core/testbed.hpp"

int main() {
  using namespace hykv;
  sim::init_precise_timing();

  // 1. Deploy: one hybrid Memcached server (adaptive I/O, non-blocking
  //    capable) on a simulated FDR InfiniBand fabric with a SATA SSD.
  core::TestBedConfig config;
  config.design = core::Design::kHRdmaOptNonbI;
  config.total_server_memory = 16 << 20;  // 16 MB of cache RAM
  core::TestBed bed(config);

  auto client = bed.make_client("quickstart");

  // 2. Blocking API -- the classic memcached_set / memcached_get.
  const std::string greeting = "hello, hybrid key-value world";
  if (!ok(client->set("greeting", {greeting.data(), greeting.size()}))) {
    std::fprintf(stderr, "set failed\n");
    return 1;
  }
  std::vector<char> fetched;
  if (!ok(client->get("greeting", fetched))) {
    std::fprintf(stderr, "get failed\n");
    return 1;
  }
  std::printf("blocking get  : %.*s\n", static_cast<int>(fetched.size()),
              fetched.data());

  // 3. Non-blocking API -- issue a batch of isets, overlap "computation",
  //    then wait for completion (Listing 1 semantics).
  constexpr int kBatch = 32;
  std::vector<std::vector<char>> values;   // must stay stable until completion
  std::vector<client::Request> requests(kBatch);
  values.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    values.push_back(make_value(static_cast<std::uint64_t>(i), 8 << 10));
    const auto code = client->iset(make_key(static_cast<std::uint64_t>(i)),
                                   values.back(), 0, 0, requests[static_cast<std::size_t>(i)]);
    if (!ok(code)) {
      std::fprintf(stderr, "iset failed: %s\n", std::string(status_name(code)).c_str());
      return 1;
    }
  }
  // ... the application is free to compute here while transfers complete ...
  int completed_early = 0;
  for (auto& req : requests) {
    if (client->test(req)) ++completed_early;  // memcached_test
  }
  for (auto& req : requests) client->wait(req);  // memcached_wait
  std::printf("non-blocking  : %d sets issued, %d already done at first test\n",
              kBatch, completed_early);

  // 4. Read one back asynchronously into a user buffer.
  std::vector<char> dest(8 << 10);
  client::Request get_req;
  client->iget(make_key(5), dest, get_req);
  client->wait(get_req);
  std::printf("iget status   : %s (%zu bytes, intact=%s)\n",
              std::string(to_string(get_req.status())).c_str(),
              get_req.value_length(),
              dest == make_value(5, 8 << 10) ? "yes" : "NO");

  std::printf("server stats  : %llu sets, %llu flushes to SSD\n",
              static_cast<unsigned long long>(bed.store_stats().sets),
              static_cast<unsigned long long>(bed.store_stats().flushes));
  return 0;
}
