// Burst-buffer example -- the paper's motivating bursty-I/O application
// (Section IV-B, Listing 2): an HPC checkpoint-style writer that dumps data
// block by block into a Memcached cluster, each block split into chunks
// scattered over servers, with per-block completion guarantees.
//
// Compares the default blocking APIs against the non-blocking iset/iget
// extensions on the same deployment, and prints per-block latencies.
//
//   ./burst_buffer
#include <cstdio>
#include <string>

#include "common/sim_time.hpp"
#include "core/testbed.hpp"
#include "workload/workload.hpp"

namespace {

void run_mode(hykv::core::TestBed& bed, hykv::core::ApiMode api,
              const char* label) {
  using namespace hykv;
  auto client = bed.make_client(std::string("bb-") + label);

  workload::BlockIoConfig config;
  config.block_bytes = 2 << 20;    // 2 MB checkpoint blocks
  config.chunk_bytes = 256 << 10;  // 256 KB chunks (paper Fig. 8b setup)
  config.total_bytes = 16 << 20;   // 16 MB of checkpoint data
  config.api = api;

  const auto result = workload::run_block_io(*client, config);
  std::printf(
      "  %-18s write-block %8.0f us (p99 %8.0f)   read-block %8.0f us (p99 "
      "%8.0f)   errors=%llu verify_failures=%llu\n",
      label, result.write_block_latency.mean_us(),
      result.write_block_latency.p99_us(), result.read_block_latency.mean_us(),
      result.read_block_latency.p99_us(),
      static_cast<unsigned long long>(result.errors),
      static_cast<unsigned long long>(result.verify_failures));
}

}  // namespace

int main() {
  using namespace hykv;
  sim::init_precise_timing();

  // A 4-server hybrid cluster, as in the paper's bursty-I/O evaluation.
  core::TestBedConfig config;
  config.design = core::Design::kHRdmaOptNonbI;
  config.num_servers = 4;
  config.total_server_memory = 16 << 20;  // small RAM: blocks spill to SSD
  config.ssd = SsdProfile::nvme();
  core::TestBed bed(config);

  std::printf("burst buffer over 4 hybrid Memcached servers (%s):\n",
              config.ssd.name.c_str());
  run_mode(bed, core::ApiMode::kBlocking, "blocking");
  run_mode(bed, core::ApiMode::kNonBlockingB, "non-blocking bset");
  run_mode(bed, core::ApiMode::kNonBlockingI, "non-blocking iset");

  const auto stats = bed.store_stats();
  std::printf("cluster: %llu sets, %llu slab flushes, %llu bytes on SSD\n",
              static_cast<unsigned long long>(stats.sets),
              static_cast<unsigned long long>(stats.flushes),
              static_cast<unsigned long long>(stats.ssd_live_bytes));
  return 0;
}
