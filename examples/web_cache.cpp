// Online-data-processing example: a web-scale query cache in front of a slow
// database (the paper's Section I motivation). Demonstrates the cache-aside
// pattern with the in-memory design -- and why hybrid retention matters when
// the working set outgrows RAM.
//
//   ./web_cache
#include <cstdio>

#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "core/testbed.hpp"
#include "workload/workload.hpp"

namespace {

void serve_queries(hykv::core::Design design, const char* label) {
  using namespace hykv;

  workload::WorkloadConfig wl;
  wl.key_count = 400;          // working set: 400 "query results"
  wl.value_bytes = 16 << 10;   // 16 KB result pages
  wl.read_fraction = 0.9;      // read-heavy online workload
  wl.pattern = workload::Pattern::kZipf;
  wl.operations = 800;
  wl.verify_values = true;

  core::TestBedConfig config;
  config.design = design;
  // RAM holds only ~half of the working set -> in-memory designs miss.
  config.total_server_memory = 4 << 20;
  config.backend_resolver = workload::dataset_resolver(wl.key_count, wl.value_bytes);
  core::TestBed bed(config);

  auto client = bed.make_client("frontend");
  {
    sim::ScopedTimeScale preload_scale(0.0);  // instant warm-up
    workload::preload(*client, wl);
  }

  const auto result = workload::run(*client, wl);
  const auto breakdown = client->breakdown();
  std::printf(
      "  %-18s avg %8.1f us/op   throughput %7.2f kops/s   backend trips %5llu"
      "   miss-penalty %6.1f us/op\n",
      label, result.avg_latency_us(), result.throughput_kops(),
      static_cast<unsigned long long>(bed.backend().fetches()),
      breakdown.per_op_us(Stage::kMissPenalty));
  if (result.verify_failures != 0) {
    std::printf("  !! %llu corrupted results\n",
                static_cast<unsigned long long>(result.verify_failures));
  }
}

}  // namespace

int main() {
  using namespace hykv;
  sim::init_precise_timing();

  std::printf("web query cache, working set 2x of cache RAM, Zipf reads:\n");
  serve_queries(core::Design::kIpoibMem, "IPoIB-Mem");
  serve_queries(core::Design::kRdmaMem, "RDMA-Mem");
  serve_queries(core::Design::kHRdmaDef, "H-RDMA-Def");
  serve_queries(core::Design::kHRdmaOptBlock, "H-RDMA-Opt-Block");
  std::printf(
      "note: hybrid designs avoid the ~2ms database trips entirely by\n"
      "      retaining the overflow on SSD.\n");
  return 0;
}
