// OHB-style command-line benchmark driver -- the hykv equivalent of the OSU
// HiBD Benchmark (paper ref [16]) this paper's evaluation is built on. Runs
// any design / workload combination from the shell:
//
//   ./ohb_cli --design=h-rdma-opt-nonb-i --ratio=1.5 --value=32768
//             --ops=2000 --read=0.5 --pattern=zipf --servers=1 --clients=1
//
// Prints the standard OHB-style summary: average latency, throughput,
// hit rate, overlap%, and the server-side stage breakdown.
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#include "common/sim_time.hpp"
#include "core/testbed.hpp"
#include "store/item.hpp"
#include "store/slab.hpp"
#include "workload/workload.hpp"

namespace {

using namespace hykv;

std::optional<core::Design> parse_design(std::string_view name) {
  for (const core::Design design : core::kAllDesigns) {
    std::string lowered(to_string(design));
    for (char& c : lowered) c = static_cast<char>(std::tolower(c));
    if (name == lowered) return design;
  }
  return std::nullopt;
}

std::optional<std::string_view> arg_value(int argc, char** argv,
                                          std::string_view name) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.size() > name.size() + 3 && arg.substr(0, 2) == "--" &&
        arg.substr(2, name.size()) == name && arg[2 + name.size()] == '=') {
      return arg.substr(name.size() + 3);
    }
  }
  return std::nullopt;
}

double arg_double(int argc, char** argv, std::string_view name, double fallback) {
  const auto v = arg_value(argc, argv, name);
  return v.has_value() ? std::atof(std::string(*v).c_str()) : fallback;
}

long arg_long(int argc, char** argv, std::string_view name, long fallback) {
  const auto v = arg_value(argc, argv, name);
  return v.has_value() ? std::atol(std::string(*v).c_str()) : fallback;
}

void usage() {
  std::printf(
      "usage: ohb_cli [--design=NAME] [--ratio=R] [--value=BYTES] [--ops=N]\n"
      "               [--read=FRACTION] [--pattern=zipf|uniform] [--servers=N]\n"
      "               [--clients=N] [--memory=BYTES] [--ssd=sata|nvme]\n"
      "designs: ipoib-mem rdma-mem h-rdma-def h-rdma-opt-block\n"
      "         h-rdma-opt-nonb-b h-rdma-opt-nonb-i\n");
}

}  // namespace

int main(int argc, char** argv) {
  sim::init_precise_timing();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      usage();
      return 0;
    }
  }

  const auto design_name = arg_value(argc, argv, "design").value_or("h-rdma-opt-nonb-i");
  const auto design = parse_design(design_name);
  if (!design.has_value()) {
    std::fprintf(stderr, "unknown design '%s'\n", std::string(design_name).c_str());
    usage();
    return 1;
  }

  const double ratio = arg_double(argc, argv, "ratio", 1.5);
  const auto value_bytes = static_cast<std::size_t>(arg_long(argc, argv, "value", 32 << 10));
  const auto ops = static_cast<std::uint64_t>(arg_long(argc, argv, "ops", 1000));
  const double read_fraction = arg_double(argc, argv, "read", 0.5);
  const auto servers = static_cast<unsigned>(arg_long(argc, argv, "servers", 1));
  const auto clients = static_cast<unsigned>(arg_long(argc, argv, "clients", 1));
  const auto memory = static_cast<std::size_t>(
      arg_long(argc, argv, "memory", 64 << 20));
  const bool uniform = arg_value(argc, argv, "pattern").value_or("zipf") == "uniform";
  const bool nvme = arg_value(argc, argv, "ssd").value_or("sata") == "nvme";

  workload::WorkloadConfig wl;
  {
    store::SlabAllocator::Config slab_cfg;
    const std::size_t footprint = store::slab_item_footprint(
        slab_cfg, store::item_total_size(20, value_bytes));
    wl.key_count = static_cast<std::uint64_t>(
        ratio * 0.98 * static_cast<double>(memory) / static_cast<double>(footprint));
  }
  wl.value_bytes = value_bytes;
  wl.read_fraction = read_fraction;
  wl.operations = ops;
  wl.pattern = uniform ? workload::Pattern::kUniform : workload::Pattern::kZipf;
  wl.api = core::api_mode(*design);
  wl.verify_values = true;

  core::TestBedConfig bed_cfg;
  bed_cfg.design = *design;
  bed_cfg.num_servers = servers;
  bed_cfg.total_server_memory = memory;
  bed_cfg.ssd = nvme ? SsdProfile::nvme() : SsdProfile::sata();
  bed_cfg.backend_resolver = workload::dataset_resolver(wl.key_count, wl.value_bytes);
  core::TestBed bed(bed_cfg);

  std::printf("design=%s servers=%u clients=%u keys=%llu value=%zuB ratio=%.2f "
              "read=%.2f pattern=%s ssd=%s\n",
              std::string(to_string(*design)).c_str(), servers, clients,
              static_cast<unsigned long long>(wl.key_count), value_bytes, ratio,
              read_fraction, uniform ? "uniform" : "zipf",
              bed_cfg.ssd.name.c_str());

  {
    sim::ScopedTimeScale preload_scale(0.0);
    auto loader = bed.make_client("preload");
    workload::preload(*loader, wl);
    bed.sync_storage();
  }
  bed.reset_metrics();

  workload::WorkloadResult result;
  if (clients <= 1) {
    auto client = bed.make_client("ohb");
    result = workload::run(*client, wl);
  } else {
    result = workload::run_multi(bed, clients, wl);
  }

  const double hit_pct = result.reads == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(result.hits) /
                                   static_cast<double>(result.reads);
  std::printf("\navg latency    : %10.1f us/op\n", result.avg_latency_us());
  std::printf("throughput     : %10.2f kops/s\n", result.throughput_kops());
  std::printf("hit rate       : %9.1f%%\n", hit_pct);
  std::printf("overlap        : %9.1f%%\n", 100.0 * result.overlap_fraction());
  std::printf("errors/corrupt : %llu / %llu\n",
              static_cast<unsigned long long>(result.errors),
              static_cast<unsigned long long>(result.verify_failures));

  const auto stages = bed.server_breakdown();
  std::printf("\nserver stages [us/op]: slab=%.1f check+load=%.1f update=%.1f "
              "resp=%.1f\n",
              stages.per_op_us(Stage::kSlabAllocation),
              stages.per_op_us(Stage::kCacheCheckLoad),
              stages.per_op_us(Stage::kCacheUpdate),
              stages.per_op_us(Stage::kServerResponse));
  const auto store = bed.store_stats();
  std::printf("store: ram_hits=%llu ssd_hits=%llu flushes=%llu promoted=%llu "
              "dropped=%llu\n",
              static_cast<unsigned long long>(store.ram_hits),
              static_cast<unsigned long long>(store.ssd_hits),
              static_cast<unsigned long long>(store.flushes),
              static_cast<unsigned long long>(store.promotions),
              static_cast<unsigned long long>(store.dropped_evictions));
  return result.errors == 0 && result.verify_failures == 0 ? 0 : 1;
}
