// Non-blocking read path: optimistic seqlock GETs against the locked path.
//
// Covers the four contracts the tentpole claims:
//   1. Agreement -- under concurrent SET/GET/DEL/eviction/flush churn, every
//      optimistic result is a value some writer actually stored for that key
//      (no torn bytes, no cross-key bleed), on both the in-memory and the
//      hybrid (SSD flush) configurations. Run under TSan/ASan via the
//      `stress` ctest label, this is also the data-race/use-after-free proof
//      for the seqlock + EBR machinery.
//   2. Torn-read regression -- a single hot key rewritten in place between
//      two uniform patterns: if version validation were removed, readers
//      would observe mixed-pattern values. Fails against a build that skips
//      the v1==v2 check.
//   3. Counter balance -- with optimistic reads on, every GET is exactly one
//      of {optimistic_hit, locked_fallback}.
//   4. Byte-identical semantics -- a deterministic op sequence produces
//      identical get/gets results (bytes, flags, CAS tokens, status codes)
//      with optimistic_reads on and off.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "store/hybrid_manager.hpp"
#include "store/sharded_manager.hpp"

namespace hykv::store {
namespace {

ssd::PageCacheConfig test_cache() {
  ssd::PageCacheConfig cfg;
  cfg.dirty_high_watermark = 4 << 20;
  cfg.dirty_low_watermark = 2 << 20;
  cfg.memory_limit = 16 << 20;
  return cfg;
}

ManagerConfig small_config(StorageMode mode, bool optimistic) {
  ManagerConfig cfg;
  cfg.mode = mode;
  cfg.slab.slab_bytes = 64 << 10;
  cfg.slab.memory_limit = 512 << 10;  // tiny RAM: constant eviction/flush
  cfg.slab.min_chunk = 64;
  cfg.flush_batch_bytes = 64 << 10;
  cfg.optimistic_reads = optimistic;
  return cfg;
}

class ReadPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.0);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

// Self-validating payload: key index + generation stamped through the whole
// value, so any torn read or cross-key bleed breaks the pattern.
std::vector<char> stamped_value(std::uint64_t key, std::uint32_t gen,
                                std::size_t size) {
  std::vector<char> v(size);
  const std::uint64_t seed = key * 0x9e3779b97f4a7c15ull + gen;
  for (std::size_t i = 0; i < size; ++i) {
    v[i] = static_cast<char>((seed >> ((i % 8) * 8)) & 0xff);
  }
  return v;
}

bool value_is_some_generation(std::uint64_t key, std::span<const char> got,
                              std::uint32_t max_gen) {
  for (std::uint32_t gen = 0; gen <= max_gen; ++gen) {
    const auto want = stamped_value(key, gen, got.size());
    if (std::memcmp(got.data(), want.data(), got.size()) == 0) return true;
  }
  return false;
}

void churn_agreement(StorageMode mode, ssd::StorageStack* storage) {
  HybridSlabManager m(small_config(mode, /*optimistic=*/true), storage);
  constexpr std::uint64_t kKeys = 64;
  constexpr std::uint32_t kMaxGen = 16;
  constexpr std::size_t kValueBytes = 512;

  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(m.set(make_key(k), stamped_value(k, 0, kValueBytes),
                    static_cast<std::uint32_t>(k), 0),
              StatusCode::kOk);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> good_reads{0};

  std::thread writer([&] {
    Rng rng(7);
    for (std::uint32_t gen = 1; !stop.load(std::memory_order_relaxed);
         gen = gen % kMaxGen + 1) {
      const std::uint64_t k = rng.next_below(kKeys);
      switch (rng.next_below(8)) {
        case 0:
          (void)m.del(make_key(k));
          break;
        default:
          (void)m.set(make_key(k), stamped_value(k, gen, kValueBytes),
                      static_cast<std::uint32_t>(k), 0);
          break;
      }
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + static_cast<std::uint64_t>(r));
      std::vector<char> out;
      std::uint32_t flags = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = rng.next_below(kKeys);
        const StatusCode code = m.get(make_key(k), out, flags);
        if (code != StatusCode::kOk) continue;  // deleted / dropped: fine
        bool ok_read = out.size() == kValueBytes &&
                       flags == static_cast<std::uint32_t>(k) &&
                       value_is_some_generation(k, out, kMaxGen);
        if (!ok_read) {
          violations.fetch_add(1, std::memory_order_relaxed);
        } else {
          good_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  while (good_reads.load() < 20000 && violations.load() == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u)
      << "optimistic GET returned bytes no writer ever stored";
  EXPECT_GE(good_reads.load(), 20000u);
  const auto stats = m.stats();
  EXPECT_GT(stats.optimistic_hits, 0u) << "lock-free path never engaged";
}

TEST_F(ReadPathTest, AgreementUnderChurnInMemory) {
  churn_agreement(StorageMode::kInMemory, nullptr);
}

TEST_F(ReadPathTest, AgreementUnderChurnHybridWithFlush) {
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  churn_agreement(StorageMode::kHybrid, &storage);
}

TEST_F(ReadPathTest, TornReadRegression) {
  // One hot key rewritten in place between two uniform byte patterns. The
  // seqlock version bracket is the ONLY thing preventing a reader from
  // returning half-'A'/half-'B' bytes: remove the v1==v2 validation in
  // try_optimistic_get and this test fails.
  HybridSlabManager m(small_config(StorageMode::kInMemory, true), nullptr);
  constexpr std::size_t kValueBytes = 4096;  // long copy: wide tear window
  const std::vector<char> a(kValueBytes, 'A');
  const std::vector<char> b(kValueBytes, 'B');
  ASSERT_EQ(m.set("hot", a, 0, 0), StatusCode::kOk);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> reads{0};

  std::thread writer([&] {
    bool flip = false;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)m.set("hot", flip ? a : b, 0, 0);
      flip = !flip;
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::vector<char> out;
      std::uint32_t flags = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (m.get("hot", out, flags) != StatusCode::kOk) continue;
        reads.fetch_add(1, std::memory_order_relaxed);
        if (out.size() != kValueBytes) {
          torn.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const char first = out[0];
        if (first != 'A' && first != 'B') {
          torn.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (const char c : out) {
          if (c != first) {
            torn.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }

  while (reads.load() < 20000 && torn.load() == 0) std::this_thread::yield();
  stop.store(true);
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u) << "seqlock validation let a torn value through";
  EXPECT_GE(reads.load(), 20000u);
}

TEST_F(ReadPathTest, CounterBalanceEveryGetIsHitOrFallback) {
  HybridSlabManager m(small_config(StorageMode::kInMemory, true), nullptr);
  constexpr std::uint64_t kKeys = 32;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(m.set(make_key(k), make_value(k, 128), 0, 0), StatusCode::kOk);
  }
  constexpr std::uint64_t kGets = 5000;
  std::vector<char> out;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
  for (std::uint64_t i = 0; i < kGets; ++i) {
    // Mix hits, misses, and gets(): all must land in exactly one bucket.
    if (i % 3 == 0) {
      (void)m.gets(make_key(i % (kKeys + 8)), out, flags, cas);
    } else {
      (void)m.get(make_key(i % (kKeys + 8)), out, flags);
    }
  }
  const auto stats = m.stats();
  EXPECT_EQ(stats.optimistic_hits + stats.locked_fallbacks, kGets)
      << "hits=" << stats.optimistic_hits
      << " fallbacks=" << stats.locked_fallbacks;
  EXPECT_GT(stats.optimistic_hits, 0u);
  EXPECT_GT(stats.locked_fallbacks, 0u);  // the misses at least
}

TEST_F(ReadPathTest, ByteIdenticalResultsOptimisticOnAndOff) {
  // The same deterministic op sequence against both configurations must
  // produce identical statuses, bytes, flags, and CAS tokens.
  auto run = [&](bool optimistic) {
    HybridSlabManager m(small_config(StorageMode::kInMemory, optimistic),
                        nullptr);
    std::string trace;
    Rng rng(42);
    for (int op = 0; op < 4000; ++op) {
      const std::uint64_t k = rng.next_below(48);
      std::vector<char> out;
      std::uint32_t flags = 0;
      std::uint64_t cas = 0;
      switch (rng.next_below(6)) {
        case 0:
        case 1:
          (void)m.set(make_key(k), make_value(k ^ rng.next_below(4), 200),
                      static_cast<std::uint32_t>(k), 0);
          break;
        case 2:
          (void)m.del(make_key(k));
          break;
        case 3: {
          const StatusCode code = m.gets(make_key(k), out, flags, cas);
          trace += std::to_string(static_cast<int>(code));
          if (ok(code)) {
            trace.append(out.data(), out.size());
            trace += std::to_string(flags) + "/" + std::to_string(cas);
          }
          break;
        }
        default: {
          const StatusCode code = m.get(make_key(k), out, flags);
          trace += std::to_string(static_cast<int>(code));
          if (ok(code)) {
            trace.append(out.data(), out.size());
            trace += std::to_string(flags);
          }
          break;
        }
      }
    }
    return trace;
  };
  const std::string with = run(true);
  const std::string without = run(false);
  EXPECT_EQ(with, without);
}

TEST_F(ReadPathTest, TouchedFlagGrantsSecondChanceOverLru) {
  // A key read only via the lock-free path (which cannot move it in the LRU
  // list) must survive an eviction wave that claims untouched tail items.
  ManagerConfig cfg = small_config(StorageMode::kInMemory, true);
  HybridSlabManager m(cfg, nullptr);
  constexpr std::size_t kValueBytes = 1 << 10;
  // Fill RAM exactly: more sets will evict from the tail.
  std::uint64_t count = 0;
  while (m.set(make_key(count), make_value(count, kValueBytes), 0, 0) ==
             StatusCode::kOk &&
         m.stats().dropped_evictions == 0) {
    ++count;
  }
  ASSERT_GT(count, 8u);
  // The fill loop exited after the first eviction, which claimed the coldest
  // key(s); find the coldest survivor -- the current LRU tail -- and read it
  // optimistically, which sets only its touched flag (no LRU move).
  std::uint64_t canary = 0;
  while (!m.exists(make_key(canary))) ++canary;
  std::vector<char> out;
  std::uint32_t flags = 0;
  const std::uint64_t hits_before = m.stats().optimistic_hits;
  ASSERT_EQ(m.get(make_key(canary), out, flags), StatusCode::kOk);
  ASSERT_GT(m.stats().optimistic_hits, hits_before)
      << "canary read did not take the lock-free path";
  ASSERT_EQ(m.set(make_key(count + 1), make_value(count + 1, kValueBytes), 0, 0),
            StatusCode::kOk);
  // The second chance rescued the canary; some other cold key was dropped.
  EXPECT_TRUE(m.exists(make_key(canary)))
      << "touched tail item was evicted despite its second chance";
}

TEST_F(ReadPathTest, ShardedFacadeAggregatesReadPathCounters) {
  ManagerConfig cfg = small_config(StorageMode::kInMemory, true);
  cfg.shards = 4;
  ShardedManager m(cfg, nullptr);
  for (std::uint64_t k = 0; k < 64; ++k) {
    ASSERT_EQ(m.set(make_key(k), make_value(k, 128), 0, 0), StatusCode::kOk);
  }
  std::vector<char> out;
  std::uint32_t flags = 0;
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t k = 0; k < 64; ++k) {
      ASSERT_EQ(m.get(make_key(k), out, flags), StatusCode::kOk);
    }
  }
  const auto stats = m.stats();
  EXPECT_EQ(stats.optimistic_hits + stats.locked_fallbacks, 4u * 64u);
  EXPECT_GT(stats.optimistic_hits, 0u);
  // Optimistic hits fold into ram_hits per shard, so the facade's ram_hits
  // stays the all-paths total.
  EXPECT_GE(stats.ram_hits, stats.optimistic_hits);
}

}  // namespace
}  // namespace hykv::store
