// Sharded storage tier: facade semantics (drop-in vs HybridSlabManager),
// shard resolution/sizing, cross-shard aggregation, per-shard degraded mode,
// and a multi-threaded stress test (ctest label `stress`; run under
// -DHYKV_SANITIZE=thread to race-check the per-shard locking).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "ssd/io_engine.hpp"
#include "store/sharded_manager.hpp"

namespace hykv::store {
namespace {

ManagerConfig base_config(StorageMode mode, unsigned shards) {
  ManagerConfig cfg;
  cfg.mode = mode;
  cfg.shards = shards;
  cfg.slab.slab_bytes = 64 << 10;
  cfg.slab.memory_limit = 8 << 20;
  cfg.slab.min_chunk = 64;
  cfg.flush_batch_bytes = 64 << 10;
  return cfg;
}

TEST(ShardedManagerTest, ResolvesExplicitCountsToPowersOfTwo) {
  ManagerConfig cfg = base_config(StorageMode::kInMemory, 16);
  EXPECT_EQ(ShardedManager::resolve_shards(cfg), 16u);
  cfg.shards = 5;  // not a power of two: floor to 4
  EXPECT_EQ(ShardedManager::resolve_shards(cfg), 4u);
  cfg.shards = 1;
  EXPECT_EQ(ShardedManager::resolve_shards(cfg), 1u);
  cfg.shards = 100000;
  EXPECT_EQ(ShardedManager::resolve_shards(cfg), ShardedManager::kMaxShards);
}

TEST(ShardedManagerTest, AutoCountKeepsTinyArenasSingleShard) {
  // 2 pages of arena < kMinPagesPerShard: auto must not shard at all, so
  // tiny-memory configs behave byte-for-byte like the unsharded manager.
  ManagerConfig cfg = base_config(StorageMode::kInMemory, 0);
  cfg.slab.memory_limit = 2 * cfg.slab.slab_bytes;
  EXPECT_EQ(ShardedManager::resolve_shards(cfg), 1u);

  // A big arena resolves to >= 1 power-of-two bounded by hardware threads.
  ManagerConfig big = base_config(StorageMode::kInMemory, 0);
  big.slab.memory_limit = 256 << 20;
  const unsigned n = ShardedManager::resolve_shards(big);
  EXPECT_GE(n, 1u);
  EXPECT_EQ(n & (n - 1), 0u);
}

TEST(ShardedManagerTest, KeysSpreadOverShardsAndStayFindable) {
  ShardedManager m(base_config(StorageMode::kInMemory, 8), nullptr);
  ASSERT_EQ(m.num_shards(), 8u);

  const std::size_t kKeys = 512;
  std::vector<std::size_t> per_shard(8, 0);
  for (std::size_t i = 0; i < kKeys; ++i) {
    const std::string key = make_key(i);
    ASSERT_EQ(m.set(key, make_value(i, 128), 0, 0), StatusCode::kOk);
    ++per_shard[m.shard_index(key)];
  }
  EXPECT_EQ(m.item_count(), kKeys);
  // Every shard holds a non-trivial share (jenkins top bits spread well).
  for (unsigned s = 0; s < 8; ++s) {
    EXPECT_GT(per_shard[s], kKeys / 32) << "shard " << s;
    EXPECT_EQ(m.shard(s).item_count(), per_shard[s]);
  }

  std::vector<char> out;
  std::uint32_t flags = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    ASSERT_EQ(m.get(make_key(i), out, flags), StatusCode::kOk) << i;
    EXPECT_EQ(out, make_value(i, 128));
  }
  const auto stats = m.stats();
  EXPECT_EQ(stats.sets, kKeys);
  EXPECT_EQ(stats.ram_hits, kKeys);
  EXPECT_EQ(stats.misses, 0u);

  m.clear();
  EXPECT_EQ(m.item_count(), 0u);
  EXPECT_FALSE(m.exists(make_key(1)));
}

TEST(ShardedManagerTest, OpsMatchSingleManagerSemantics) {
  ShardedManager m(base_config(StorageMode::kInMemory, 4), nullptr);
  const std::string key = "op-key";

  EXPECT_EQ(m.replace(key, make_value(1, 64), 0, 0), StatusCode::kNotStored);
  EXPECT_EQ(m.add(key, make_value(1, 64), 0, 0), StatusCode::kOk);
  EXPECT_EQ(m.add(key, make_value(2, 64), 0, 0), StatusCode::kNotStored);
  EXPECT_EQ(m.replace(key, make_value(2, 64), 7, 0), StatusCode::kOk);

  std::vector<char> out;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
  ASSERT_EQ(m.gets(key, out, flags, cas, nullptr), StatusCode::kOk);
  EXPECT_EQ(flags, 7u);
  EXPECT_NE(cas, 0u);
  EXPECT_EQ(m.cas(key, make_value(3, 64), 0, 0, cas), StatusCode::kOk);
  EXPECT_EQ(m.cas(key, make_value(4, 64), 0, 0, cas), StatusCode::kNotStored);

  const std::string counter = "counter";
  ASSERT_EQ(m.set(counter, std::vector<char>{'4', '1'}, 0, 0), StatusCode::kOk);
  const auto up = m.incr(counter, 1);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up.value(), 42u);
  const auto down = m.decr(counter, 100);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down.value(), 0u);  // saturates

  ASSERT_EQ(m.append(key, std::vector<char>{'!'}), StatusCode::kOk);
  ASSERT_EQ(m.prepend(key, std::vector<char>{'>'}), StatusCode::kOk);
  ASSERT_EQ(m.get(key, out, flags), StatusCode::kOk);
  EXPECT_EQ(out.front(), '>');
  EXPECT_EQ(out.back(), '!');

  EXPECT_EQ(m.touch(key, 60), StatusCode::kOk);
  EXPECT_EQ(m.del(key), StatusCode::kOk);
  EXPECT_EQ(m.del(key), StatusCode::kNotFound);
}

TEST(ShardedManagerTest, HybridShardsFlushAndServeFromSsd) {
  sim::ScopedTimeScale scale(0.02);
  ssd::StorageStack stack(SsdProfile::sata(), ssd::PageCacheConfig{});
  ManagerConfig cfg = base_config(StorageMode::kHybrid, 4);
  cfg.slab.memory_limit = 512 << 10;  // tiny RAM: overflow to flash
  cfg.promote_on_hit = false;
  ShardedManager m(cfg, &stack);

  const std::size_t kKeys = 256;
  for (std::size_t i = 0; i < kKeys; ++i) {
    ASSERT_EQ(m.set(make_key(i), make_value(i, 4 << 10), 0, 0), StatusCode::kOk);
  }
  const auto stats = m.stats();
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.ssd_live_bytes, 0u);
  EXPECT_EQ(m.item_count(), kKeys);  // hybrid mode loses nothing

  std::vector<char> out;
  std::uint32_t flags = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    ASSERT_EQ(m.get(make_key(i), out, flags), StatusCode::kOk) << i;
    ASSERT_EQ(out, make_value(i, 4 << 10)) << i;
  }
  EXPECT_GT(m.stats().ssd_hits, 0u);
  EXPECT_EQ(m.stats().checksum_failures, 0u);
}

TEST(ShardedManagerTest, DegradedModeIsPerShardAndHeals) {
  sim::ScopedTimeScale scale(0.02);
  ssd::StorageStack stack(SsdProfile::sata(), ssd::PageCacheConfig{});
  ManagerConfig cfg = base_config(StorageMode::kHybrid, 4);
  cfg.slab.memory_limit = 512 << 10;
  cfg.degrade_after_io_errors = 2;
  cfg.heal_probe_after = sim::ms(10);
  ShardedManager m(cfg, &stack);

  stack.device().set_failed(true);
  for (std::size_t i = 0; i < 512; ++i) {
    ASSERT_EQ(m.set(make_key(i), make_value(i, 4 << 10), 0, 0), StatusCode::kOk)
        << i;
  }
  auto stats = m.stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_GT(stats.degraded_shards, 0u);
  EXPECT_LE(stats.degraded_shards, 4u);
  EXPECT_GT(stats.dropped_evictions, 0u);

  // Device heals; every degraded shard leaves RAM-only mode on its own
  // probe as traffic returns.
  stack.device().set_failed(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (std::size_t i = 512; i < 1024; ++i) {
    ASSERT_EQ(m.set(make_key(i), make_value(i, 4 << 10), 0, 0), StatusCode::kOk)
        << i;
  }
  stats = m.stats();
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.degraded_shards, 0u);
  EXPECT_GT(stats.flushes, 0u);
}

// ---------------------------------------------------------------------------
// Multi-threaded stress (ctest label `stress`): concurrent set/get/del/cas
// across keys that collide and don't collide on shards. Asserts per-key
// last-write-wins, aggregate stats consistency and no lost items.
TEST(ShardedManagerStress, ConcurrentMixedOpsKeepInvariants) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 8000;
  constexpr std::uint64_t kPrivateKeys = 64;   // per thread, disjoint
  constexpr std::uint64_t kSharedKeys = 16;    // contended across threads
  constexpr std::size_t kValueBytes = 256;

  ShardedManager m(base_config(StorageMode::kInMemory, 8), nullptr);

  // Shared keys carry a value derived only from the key, so whichever
  // writer wins, a reader must observe exactly that value (or a miss after
  // a delete) -- any torn/mixed value is a race.
  auto shared_key = [](std::uint64_t i) {
    return "shared-" + std::to_string(i);
  };
  std::atomic<std::uint64_t> total_gets{0};
  std::atomic<std::uint64_t> torn_reads{0};
  std::atomic<std::uint64_t> cas_wins{0};

  auto worker = [&](unsigned tid) {
    std::uint64_t gets = 0;
    std::vector<char> out;
    std::uint32_t flags = 0;
    // Per-thread last written value index for each private key.
    std::vector<std::uint64_t> last(kPrivateKeys, ~0ull);
    std::uint64_t x = 0x9e3779b97f4a7c15ull * (tid + 1);
    for (std::uint64_t op = 0; op < kOpsPerThread; ++op) {
      x = mix64(x + op);
      const auto dice = x % 10;
      if (dice < 3) {  // private set
        const std::uint64_t k = x % kPrivateKeys;
        const std::uint64_t version = op;
        ASSERT_EQ(m.set("t" + std::to_string(tid) + "-" + std::to_string(k),
                        make_value(version, kValueBytes), 0, 0),
                  StatusCode::kOk);
        last[k] = version;
      } else if (dice < 5) {  // private get: must see own last write
        const std::uint64_t k = x % kPrivateKeys;
        const auto code = m.get("t" + std::to_string(tid) + "-" + std::to_string(k),
                                out, flags);
        ++gets;
        if (last[k] == ~0ull) {
          ASSERT_EQ(code, StatusCode::kNotFound);
        } else {
          ASSERT_EQ(code, StatusCode::kOk);
          ASSERT_EQ(out, make_value(last[k], kValueBytes));
        }
      } else if (dice < 7) {  // shared set (value is a pure function of key)
        const std::uint64_t k = x % kSharedKeys;
        ASSERT_EQ(m.set(shared_key(k), make_value(k, kValueBytes), 0, 0),
                  StatusCode::kOk);
      } else if (dice < 9) {  // shared get: hit must match the canonical value
        const std::uint64_t k = x % kSharedKeys;
        const auto code = m.get(shared_key(k), out, flags);
        ++gets;
        if (code == StatusCode::kOk && out != make_value(k, kValueBytes)) {
          torn_reads.fetch_add(1);
        }
      } else if (dice == 9 && (x >> 8) % 4 == 0) {  // occasional shared delete
        (void)m.del(shared_key(x % kSharedKeys));
      } else {  // cas on a shared key: version races are allowed, tears not
        const std::uint64_t k = x % kSharedKeys;
        std::uint64_t cas = 0;
        const auto code = m.gets(shared_key(k), out, flags, cas, nullptr);
        ++gets;  // gets() counts one lookup either way
        if (code == StatusCode::kOk) {
          const auto stored =
              m.cas(shared_key(k), make_value(k, kValueBytes), 0, 0, cas);
          if (stored == StatusCode::kOk) cas_wins.fetch_add(1);
        }
      }
    }
    total_gets.fetch_add(gets);
  };

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(torn_reads.load(), 0u);
  EXPECT_GT(cas_wins.load(), 0u);

  // Aggregate stats consistency: every get accounted as exactly one of
  // hit/miss (in-memory mode: no SSD hits, no expiry in play).
  const auto stats = m.stats();
  EXPECT_EQ(stats.ram_hits + stats.ssd_hits + stats.misses, total_gets.load());
  EXPECT_EQ(stats.expired, 0u);

  // No lost items: every private key a thread last wrote is present with
  // that exact value; item_count agrees with a full enumeration.
  std::vector<char> out;
  std::uint32_t flags = 0;
  std::size_t live = 0;
  for (unsigned t = 0; t < kThreads; ++t) {
    for (std::uint64_t k = 0; k < kPrivateKeys; ++k) {
      if (m.get("t" + std::to_string(t) + "-" + std::to_string(k), out, flags) ==
          StatusCode::kOk) {
        ++live;
      }
    }
  }
  for (std::uint64_t k = 0; k < kSharedKeys; ++k) {
    if (m.exists(shared_key(k))) ++live;
  }
  EXPECT_EQ(m.item_count(), live);
}

}  // namespace
}  // namespace hykv::store
