#include "store/slab.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

namespace hykv::store {
namespace {

SlabAllocator::Config small_config() {
  SlabAllocator::Config cfg;
  cfg.slab_bytes = 64 << 10;   // 64KB pages keep tests compact
  cfg.memory_limit = 256 << 10;
  cfg.min_chunk = 128;
  return cfg;
}

TEST(SlabAllocatorTest, ClassSizesGrowGeometrically) {
  SlabAllocator alloc(small_config());
  ASSERT_GT(alloc.num_classes(), 5u);
  for (unsigned c = 1; c < alloc.num_classes(); ++c) {
    EXPECT_GT(alloc.chunk_size(c), alloc.chunk_size(c - 1));
    EXPECT_EQ(alloc.chunk_size(c) % 8, 0u) << "alignment";
  }
  EXPECT_EQ(alloc.chunk_size(0), 128u);
  EXPECT_EQ(alloc.chunk_size(alloc.num_classes() - 1), 64u << 10);
}

TEST(SlabAllocatorTest, ClassForPicksSmallestFit) {
  SlabAllocator alloc(small_config());
  for (const std::size_t size : {1u, 128u, 129u, 1000u, 60000u}) {
    const unsigned cls = alloc.class_for(size);
    ASSERT_NE(cls, kInvalidClass) << size;
    EXPECT_GE(alloc.chunk_size(cls), size);
    if (cls > 0) {
      EXPECT_LT(alloc.chunk_size(cls - 1), size);
    }
  }
  EXPECT_EQ(alloc.class_for((64u << 10) + 1), kInvalidClass);
}

TEST(SlabAllocatorTest, AllocateReturnsDistinctAlignedChunks) {
  SlabAllocator alloc(small_config());
  const unsigned cls = alloc.class_for(1000);
  std::set<char*> seen;
  for (int i = 0; i < 50; ++i) {
    char* chunk = alloc.allocate(cls);
    ASSERT_NE(chunk, nullptr);
    EXPECT_TRUE(seen.insert(chunk).second) << "duplicate chunk";
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(chunk) % 8, 0u);
  }
}

TEST(SlabAllocatorTest, MemoryLimitEnforced) {
  SlabAllocator alloc(small_config());  // 4 pages max
  const unsigned cls = alloc.num_classes() - 1;  // 1 chunk per page
  std::vector<char*> chunks;
  for (int i = 0; i < 4; ++i) {
    char* chunk = alloc.allocate(cls);
    ASSERT_NE(chunk, nullptr) << i;
    chunks.push_back(chunk);
  }
  EXPECT_EQ(alloc.allocate(cls), nullptr);
  EXPECT_FALSE(alloc.can_allocate(cls));
  alloc.deallocate(chunks.back(), cls);
  EXPECT_TRUE(alloc.can_allocate(cls));
  EXPECT_NE(alloc.allocate(cls), nullptr);
}

TEST(SlabAllocatorTest, FreeListIsReused) {
  SlabAllocator alloc(small_config());
  const unsigned cls = alloc.class_for(200);
  char* a = alloc.allocate(cls);
  alloc.deallocate(a, cls);
  char* b = alloc.allocate(cls);
  EXPECT_EQ(a, b);  // LIFO free list
}

TEST(SlabAllocatorTest, StatsTrackUsage) {
  SlabAllocator alloc(small_config());
  const unsigned cls = alloc.class_for(1000);
  EXPECT_EQ(alloc.stats().slab_pages, 0u);
  char* chunk = alloc.allocate(cls);
  auto stats = alloc.stats();
  EXPECT_EQ(stats.slab_pages, 1u);
  EXPECT_EQ(stats.reserved_bytes, 64u << 10);
  EXPECT_EQ(stats.used_chunks, 1u);
  EXPECT_GT(stats.free_chunks, 0u);
  alloc.deallocate(chunk, cls);
  EXPECT_EQ(alloc.stats().used_chunks, 0u);
}

TEST(SlabAllocatorTest, DifferentClassesDoNotShareChunks) {
  SlabAllocator alloc(small_config());
  const unsigned small = alloc.class_for(128);
  const unsigned big = alloc.class_for(4096);
  ASSERT_NE(small, big);
  char* a = alloc.allocate(small);
  char* b = alloc.allocate(big);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Chunks come from different pages; writing one must not affect the other.
  std::memset(a, 0xAA, alloc.chunk_size(small));
  std::memset(b, 0xBB, alloc.chunk_size(big));
  EXPECT_EQ(static_cast<unsigned char>(a[0]), 0xAAu);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0xBBu);
}

class SlabClassSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SlabClassSweep, FullPageChurnIsStable) {
  // Property: allocate everything a class can hold, free all, re-allocate --
  // capacity must be identical (no leaks, no fragmentation drift).
  SlabAllocator alloc(small_config());
  const unsigned cls = alloc.class_for(GetParam());
  ASSERT_NE(cls, kInvalidClass);
  auto drain = [&] {
    std::vector<char*> out;
    while (char* c = alloc.allocate(cls)) out.push_back(c);
    return out;
  };
  auto first = drain();
  ASSERT_FALSE(first.empty());
  for (char* c : first) alloc.deallocate(c, cls);
  auto second = drain();
  EXPECT_EQ(first.size(), second.size());
  for (char* c : second) alloc.deallocate(c, cls);
  EXPECT_EQ(alloc.stats().used_chunks, 0u);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, SlabClassSweep,
                         ::testing::Values(100, 500, 2048, 8000, 32768, 65536));

}  // namespace
}  // namespace hykv::store
