#include "store/hybrid_manager.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.hpp"
#include "common/sim_time.hpp"

namespace hykv::store {
namespace {

ssd::PageCacheConfig test_cache() {
  ssd::PageCacheConfig cfg;
  cfg.dirty_high_watermark = 4 << 20;
  cfg.dirty_low_watermark = 2 << 20;
  cfg.memory_limit = 16 << 20;
  return cfg;
}

ManagerConfig base_config(StorageMode mode) {
  ManagerConfig cfg;
  cfg.mode = mode;
  cfg.slab.slab_bytes = 256 << 10;
  cfg.slab.memory_limit = 2 << 20;  // 2 MB RAM
  cfg.flush_batch_bytes = 256 << 10;
  return cfg;
}

class HybridManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.0);
  }
  void TearDown() override { sim::set_time_scale(1.0); }

  StatusCode set(HybridSlabManager& m, std::uint64_t i, std::size_t size,
                 std::int64_t expiration = 0) {
    return m.set(make_key(i), make_value(i, size), static_cast<std::uint32_t>(i),
                 expiration);
  }

  ::testing::AssertionResult get_matches(HybridSlabManager& m, std::uint64_t i,
                                         std::size_t size) {
    std::vector<char> out;
    std::uint32_t flags = 0;
    const StatusCode code = m.get(make_key(i), out, flags);
    if (!ok(code)) {
      return ::testing::AssertionFailure()
             << "get(" << i << ") -> " << status_name(code);
    }
    if (out != make_value(i, size)) {
      return ::testing::AssertionFailure() << "value mismatch for " << i;
    }
    if (flags != static_cast<std::uint32_t>(i)) {
      return ::testing::AssertionFailure() << "flags mismatch for " << i;
    }
    return ::testing::AssertionSuccess();
  }
};

TEST_F(HybridManagerTest, SetGetDeleteInMemory) {
  HybridSlabManager m(base_config(StorageMode::kInMemory), nullptr);
  EXPECT_EQ(set(m, 1, 1000), StatusCode::kOk);
  EXPECT_TRUE(get_matches(m, 1, 1000));
  EXPECT_TRUE(m.exists(make_key(1)));
  EXPECT_EQ(m.item_count(), 1u);

  EXPECT_EQ(m.del(make_key(1)), StatusCode::kOk);
  EXPECT_FALSE(m.exists(make_key(1)));
  EXPECT_EQ(m.del(make_key(1)), StatusCode::kNotFound);

  std::vector<char> out;
  std::uint32_t flags;
  EXPECT_EQ(m.get(make_key(1), out, flags), StatusCode::kNotFound);
  EXPECT_EQ(m.stats().misses, 1u);
}

TEST_F(HybridManagerTest, OverwriteReplacesValueAndFlags) {
  HybridSlabManager m(base_config(StorageMode::kInMemory), nullptr);
  ASSERT_EQ(m.set("k", make_value(1, 100), 1, 0), StatusCode::kOk);
  ASSERT_EQ(m.set("k", make_value(2, 5000), 2, 0), StatusCode::kOk);  // class change
  std::vector<char> out;
  std::uint32_t flags = 0;
  ASSERT_EQ(m.get("k", out, flags), StatusCode::kOk);
  EXPECT_EQ(out, make_value(2, 5000));
  EXPECT_EQ(flags, 2u);
  EXPECT_EQ(m.item_count(), 1u);
}

TEST_F(HybridManagerTest, InvalidArguments) {
  HybridSlabManager m(base_config(StorageMode::kInMemory), nullptr);
  EXPECT_EQ(m.set("", make_value(1, 10), 0, 0), StatusCode::kInvalidArgument);
  // Item larger than a slab page cannot be stored.
  EXPECT_EQ(m.set("big", make_value(1, 512 << 10), 0, 0),
            StatusCode::kInvalidArgument);
}

TEST_F(HybridManagerTest, NegativeExpirationIsImmediatelyExpired) {
  HybridSlabManager m(base_config(StorageMode::kInMemory), nullptr);
  ASSERT_EQ(set(m, 1, 100, -5), StatusCode::kOk);
  std::vector<char> out;
  std::uint32_t flags;
  EXPECT_EQ(m.get(make_key(1), out, flags), StatusCode::kNotFound);
  EXPECT_EQ(m.stats().expired, 1u);
  EXPECT_FALSE(m.exists(make_key(1)));
}

TEST_F(HybridManagerTest, InMemoryEvictsLruUnderPressure) {
  HybridSlabManager m(base_config(StorageMode::kInMemory), nullptr);
  constexpr std::size_t kSize = 30 << 10;  // ~8 items per 256KB page, 64 fit in 2MB
  constexpr std::uint64_t kCount = 120;    // well beyond capacity
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(set(m, i, kSize), StatusCode::kOk) << i;
  }
  const auto stats = m.stats();
  EXPECT_GT(stats.dropped_evictions, 0u);
  EXPECT_EQ(stats.flushes, 0u);
  // Most recently written keys survive; the very first were dropped.
  EXPECT_TRUE(get_matches(m, kCount - 1, kSize));
  EXPECT_FALSE(m.exists(make_key(0)));
}

TEST_F(HybridManagerTest, HybridRetainsEverythingOnSsd) {
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  HybridSlabManager m(base_config(StorageMode::kHybrid), &storage);
  constexpr std::size_t kSize = 30 << 10;
  constexpr std::uint64_t kCount = 120;  // ~3.6MB of values into 2MB RAM
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(set(m, i, kSize), StatusCode::kOk) << i;
  }
  auto stats = m.stats();
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.flushed_items, 0u);
  EXPECT_EQ(stats.dropped_evictions, 0u);
  // Every single key must be retrievable with intact bytes.
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(get_matches(m, i, kSize)) << i;
  }
  stats = m.stats();
  EXPECT_GT(stats.ssd_hits, 0u);
  EXPECT_GT(stats.ram_hits, 0u);
  EXPECT_EQ(stats.checksum_failures, 0u);
  EXPECT_EQ(m.item_count(), kCount);
}

TEST_F(HybridManagerTest, SsdHitPromotesWhenRoomAvailable) {
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  ManagerConfig cfg = base_config(StorageMode::kHybrid);
  cfg.promote_on_hit = true;
  HybridSlabManager m(cfg, &storage);
  constexpr std::size_t kSize = 30 << 10;
  // Fill past RAM so early keys land on SSD.
  for (std::uint64_t i = 0; i < 120; ++i) ASSERT_EQ(set(m, i, kSize), StatusCode::kOk);
  // Free plenty of RAM.
  for (std::uint64_t i = 100; i < 120; ++i) ASSERT_EQ(m.del(make_key(i)), StatusCode::kOk);
  ASSERT_TRUE(get_matches(m, 0, kSize));  // SSD hit -> promotion
  const auto stats = m.stats();
  EXPECT_GE(stats.promotions, 1u);
  ASSERT_TRUE(get_matches(m, 0, kSize));  // now served from RAM
  EXPECT_EQ(m.stats().ssd_hits, stats.ssd_hits);
  EXPECT_EQ(m.stats().ram_hits, stats.ram_hits + 1);
}

TEST_F(HybridManagerTest, PromotionDisabledKeepsItemsOnSsd) {
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  ManagerConfig cfg = base_config(StorageMode::kHybrid);
  cfg.promote_on_hit = false;
  HybridSlabManager m(cfg, &storage);
  constexpr std::size_t kSize = 30 << 10;
  for (std::uint64_t i = 0; i < 120; ++i) ASSERT_EQ(set(m, i, kSize), StatusCode::kOk);
  for (std::uint64_t i = 100; i < 120; ++i) ASSERT_EQ(m.del(make_key(i)), StatusCode::kOk);
  ASSERT_TRUE(get_matches(m, 0, kSize));
  ASSERT_TRUE(get_matches(m, 0, kSize));
  EXPECT_EQ(m.stats().promotions, 0u);
  EXPECT_GE(m.stats().ssd_hits, 2u);
}

TEST_F(HybridManagerTest, DirectPolicyWritesDeviceSynchronously) {
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  ManagerConfig cfg = base_config(StorageMode::kHybrid);
  cfg.io_policy = IoPolicy::kDirectAll;
  HybridSlabManager m(cfg, &storage);
  for (std::uint64_t i = 0; i < 120; ++i) ASSERT_EQ(set(m, i, 30 << 10), StatusCode::kOk);
  EXPECT_GT(m.stats().flushes, 0u);
  // Direct I/O: device writes happen inline with the flush.
  EXPECT_GE(storage.device().stats().writes, m.stats().flushes);
  EXPECT_EQ(storage.cache().dirty_bytes(), 0u);
}

TEST_F(HybridManagerTest, AdaptivePolicyUsesPageCacheForSmallClasses) {
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  ManagerConfig cfg = base_config(StorageMode::kHybrid);
  cfg.io_policy = IoPolicy::kAdaptive;
  cfg.adaptive_threshold = 64 << 10;  // 30KB items -> mmap scheme
  HybridSlabManager m(cfg, &storage);
  for (std::uint64_t i = 0; i < 120; ++i) ASSERT_EQ(set(m, i, 30 << 10), StatusCode::kOk);
  ASSERT_GT(m.stats().flushes, 0u);
  // mmap/cached writes land in the page cache; write-back is asynchronous.
  // All data must still be readable and intact.
  for (std::uint64_t i = 0; i < 120; ++i) ASSERT_TRUE(get_matches(m, i, 30 << 10));
  m.sync_storage();
  EXPECT_EQ(storage.cache().dirty_bytes(), 0u);
}

TEST_F(HybridManagerTest, SsdLimitFallsBackToDropping) {
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  ManagerConfig cfg = base_config(StorageMode::kHybrid);
  cfg.ssd_limit = 512 << 10;  // half a MB of SSD only
  HybridSlabManager m(cfg, &storage);
  for (std::uint64_t i = 0; i < 200; ++i) ASSERT_EQ(set(m, i, 30 << 10), StatusCode::kOk);
  const auto stats = m.stats();
  EXPECT_GT(stats.dropped_evictions, 0u);
  EXPECT_LE(stats.ssd_live_bytes, 512u << 10);
}

TEST_F(HybridManagerTest, DeleteReclaimsSsdSpaceEventually) {
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  HybridSlabManager m(base_config(StorageMode::kHybrid), &storage);
  for (std::uint64_t i = 0; i < 120; ++i) ASSERT_EQ(set(m, i, 30 << 10), StatusCode::kOk);
  const std::size_t used_before = storage.device().used_bytes();
  ASSERT_GT(used_before, 0u);
  for (std::uint64_t i = 0; i < 120; ++i) m.del(make_key(i));
  // All records dead -> all extents freed (TRIM).
  EXPECT_EQ(storage.device().used_bytes(), 0u);
  EXPECT_EQ(m.item_count(), 0u);
}

TEST_F(HybridManagerTest, ClearEmptiesBothTiers) {
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  HybridSlabManager m(base_config(StorageMode::kHybrid), &storage);
  for (std::uint64_t i = 0; i < 120; ++i) ASSERT_EQ(set(m, i, 30 << 10), StatusCode::kOk);
  m.clear();
  EXPECT_EQ(m.item_count(), 0u);
  EXPECT_FALSE(m.exists(make_key(0)));
  EXPECT_EQ(storage.device().used_bytes(), 0u);
  // Still usable after clear (same slab class: pages stay carved).
  ASSERT_EQ(set(m, 7, 30 << 10), StatusCode::kOk);
  EXPECT_TRUE(get_matches(m, 7, 30 << 10));
}

TEST_F(HybridManagerTest, StageBreakdownAttributesFlushToSlabAllocation) {
  sim::set_time_scale(0.05);
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  ManagerConfig cfg = base_config(StorageMode::kHybrid);
  cfg.io_policy = IoPolicy::kDirectAll;
  HybridSlabManager m(cfg, &storage);
  StageBreakdown stages;
  for (std::uint64_t i = 0; i < 120; ++i) {
    ASSERT_EQ(m.set(make_key(i), make_value(i, 30 << 10),
                    static_cast<std::uint32_t>(i), 0, &stages),
              StatusCode::kOk);
    stages.add_ops();
  }
  // Flush I/O dominates: slab-allocation stage must dwarf cache-update.
  EXPECT_GT(stages.total_ns(Stage::kSlabAllocation),
            stages.total_ns(Stage::kCacheUpdate) * 5);

  StageBreakdown get_stages;
  std::vector<char> out;
  std::uint32_t flags;
  // Coldest keys are on SSD: the load lands in CacheCheck+Load.
  ASSERT_EQ(m.get(make_key(0), out, flags, &get_stages), StatusCode::kOk);
  get_stages.add_ops();
  // SATA read of ~30KB is ~168us modelled, ~8.4us at scale 0.05; well above
  // the sub-microsecond cost of a RAM lookup.
  EXPECT_GT(get_stages.total_ns(Stage::kCacheCheckLoad), 5000u);
}

TEST_F(HybridManagerTest, RandomOpsMatchModelHybrid) {
  // Property test: with ample SSD, the hybrid tier is lossless -- any random
  // op sequence must match a std::unordered_map model exactly.
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  HybridSlabManager m(base_config(StorageMode::kHybrid), &storage);
  std::unordered_map<std::string, std::uint64_t> model;  // key -> value seed
  Rng rng(77);
  for (int op = 0; op < 4000; ++op) {
    const std::uint64_t id = rng.next_below(200);
    const std::string key = make_key(id);
    // Sizes confined to one slab class: the hybrid tier is lossless only
    // while its class can keep flushing (multi-class calcification is
    // covered by MultiClassCalcificationFailsGracefully).
    const std::size_t size = 23000 + rng.next_below(5000);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {  // set (50%)
        const std::uint64_t seed = rng.next();
        ASSERT_EQ(m.set(key, make_value(seed, size), 0, 0), StatusCode::kOk);
        model[key] = seed;
        model[key + "#s"] = size;  // remember size under a shadow key
        break;
      }
      case 2: {  // del
        const StatusCode code = m.del(key);
        EXPECT_EQ(ok(code), model.erase(key) > 0);
        model.erase(key + "#s");
        break;
      }
      default: {  // get
        std::vector<char> out;
        std::uint32_t flags;
        const StatusCode code = m.get(key, out, flags);
        const auto it = model.find(key);
        ASSERT_EQ(ok(code), it != model.end()) << key;
        if (it != model.end()) {
          const std::size_t expect_size =
              static_cast<std::size_t>(model.at(key + "#s"));
          ASSERT_EQ(out, make_value(it->second, expect_size));
        }
        break;
      }
    }
  }
  EXPECT_EQ(m.stats().checksum_failures, 0u);
  EXPECT_EQ(m.stats().dropped_evictions, 0u);
}

TEST_F(HybridManagerTest, MultiClassCalcificationFailsGracefully) {
  // All slab pages get carved for one class; a second class then cannot
  // allocate and must fail cleanly (memcached's slab calcification), leaving
  // existing data intact.
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  HybridSlabManager m(base_config(StorageMode::kHybrid), &storage);
  for (std::uint64_t i = 0; i < 120; ++i) {
    ASSERT_EQ(set(m, i, 30 << 10), StatusCode::kOk);
  }
  // A tiny item needs a fresh page for its class; none is left.
  EXPECT_EQ(m.set("tiny", make_value(1, 64), 0, 0), StatusCode::kOutOfMemory);
  // The store remains fully functional for the established class.
  EXPECT_TRUE(get_matches(m, 0, 30 << 10));
  ASSERT_EQ(set(m, 500, 30 << 10), StatusCode::kOk);
}

TEST_F(HybridManagerTest, ConcurrentDisjointWorkloadsStayConsistent) {
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  HybridSlabManager m(base_config(StorageMode::kHybrid), &storage);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 60;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::uint64_t base = static_cast<std::uint64_t>(t) * 1000;
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        if (!ok(m.set(make_key(base + i), make_value(base + i, 20 << 10),
                      0, 0))) {
          ++failures;
        }
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        std::vector<char> out;
        std::uint32_t flags;
        if (!ok(m.get(make_key(base + i), out, flags)) ||
            out != make_value(base + i, 20 << 10)) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(m.item_count(), kThreads * kPerThread);
  EXPECT_EQ(m.stats().checksum_failures, 0u);
}

TEST_F(HybridManagerTest, FailedFlushRollsBackCountersExactly) {
  // Regression: the write-failure rollback in flush_batch used to subtract
  // with std::min clamps, which would silently absorb (instead of surface)
  // any imbalance. Force every flush to fail mid-batch -- allocation
  // succeeds, the SSD write does not -- and assert the flush counters are
  // restored to exactly zero: each failed flush must subtract precisely what
  // it added, across many repetitions.
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  ManagerConfig cfg = base_config(StorageMode::kHybrid);
  cfg.degrade_after_io_errors = 1000;  // keep re-attempting failed flushes
  HybridSlabManager m(cfg, &storage);
  storage.device().set_failed(true);

  // 2 MB RAM arena, 8 KB values: ~400 sets overflow RAM several times over,
  // so multiple flush batches run (and every one of them fails).
  for (std::uint64_t i = 0; i < 400; ++i) {
    ASSERT_EQ(set(m, i, 8 << 10), StatusCode::kOk) << i;
  }

  const ManagerStats stats = m.stats();
  EXPECT_GT(stats.io_errors, 1u);          // multiple flushes failed
  EXPECT_GT(stats.dropped_evictions, 0u);  // victims lost -- counted
  // Exact rollback: no flush ever became durable, so the cumulative flush
  // accounting must be precisely zero -- not "zero after clamping".
  EXPECT_EQ(stats.flushes, 0u);
  EXPECT_EQ(stats.flushed_items, 0u);
  EXPECT_EQ(stats.flushed_bytes, 0u);
  EXPECT_EQ(stats.ssd_live_bytes, 0u);
  EXPECT_FALSE(stats.degraded);

  // The device heals: the next overflow flushes durably and the counters
  // move forward from their exact-zero baseline.
  storage.device().set_failed(false);
  for (std::uint64_t i = 400; i < 600; ++i) {
    ASSERT_EQ(set(m, i, 8 << 10), StatusCode::kOk) << i;
  }
  const ManagerStats healed = m.stats();
  EXPECT_GT(healed.flushes, 0u);
  EXPECT_EQ(healed.flushed_items * (8u << 10) <= healed.flushed_bytes, true);
  EXPECT_GT(healed.ssd_live_bytes, 0u);
}

}  // namespace
}  // namespace hykv::store
