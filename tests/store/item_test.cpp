#include "store/item.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"

namespace hykv::store {
namespace {

TEST(ItemTest, FormatAndReadBack) {
  std::vector<char> chunk(item_total_size(5, 100));
  const auto value = make_value(1, 100);
  ItemHeader* item = format_item(chunk.data(), "hello", value, 7, 99, 3);
  EXPECT_EQ(item->key(), "hello");
  EXPECT_EQ(item->value_len, 100u);
  EXPECT_TRUE(std::equal(value.begin(), value.end(), item->value_data()));
  EXPECT_EQ(item->flags, 7u);
  EXPECT_EQ(item->expiry, 99);
  EXPECT_EQ(item->slab_class, 3u);
  EXPECT_EQ(item->lru_prev, nullptr);
  EXPECT_EQ(item->lru_next, nullptr);
}

TEST(ItemTest, EmptyValueSupported) {
  std::vector<char> chunk(item_total_size(3, 0));
  ItemHeader* item = format_item(chunk.data(), "abc", {}, 0, 0, 0);
  EXPECT_EQ(item->key(), "abc");
  EXPECT_EQ(item->value().size(), 0u);
}

TEST(ItemTest, TotalSizeIncludesHeader) {
  EXPECT_EQ(item_total_size(10, 20), sizeof(ItemHeader) + 30);
  EXPECT_EQ(SsdItemFraming::record_size(10, 20),
            SsdItemFraming::kHeaderBytes + 30);
}

class LruListTest : public ::testing::Test {
 protected:
  ItemHeader* make(int i) {
    chunks_.push_back(std::vector<char>(item_total_size(1, 0)));
    const char key = static_cast<char>('a' + i);
    return format_item(chunks_.back().data(), std::string_view(&key, 1), {}, 0,
                       0, 0);
  }
  std::vector<std::vector<char>> chunks_;
};

TEST_F(LruListTest, PushFrontOrders) {
  LruList lru;
  EXPECT_TRUE(lru.empty());
  auto* a = make(0);
  auto* b = make(1);
  auto* c = make(2);
  lru.push_front(a);
  lru.push_front(b);
  lru.push_front(c);
  EXPECT_EQ(lru.front(), c);
  EXPECT_EQ(lru.tail(), a);
  EXPECT_EQ(lru.size(), 3u);
}

TEST_F(LruListTest, MoveToFrontPromotes) {
  LruList lru;
  auto* a = make(0);
  auto* b = make(1);
  auto* c = make(2);
  lru.push_front(a);
  lru.push_front(b);
  lru.push_front(c);  // order: c b a
  lru.move_to_front(a);
  EXPECT_EQ(lru.front(), a);
  EXPECT_EQ(lru.tail(), b);
  lru.move_to_front(a);  // already front: no-op
  EXPECT_EQ(lru.front(), a);
  EXPECT_EQ(lru.size(), 3u);
}

TEST_F(LruListTest, RemoveMiddleHeadTail) {
  LruList lru;
  auto* a = make(0);
  auto* b = make(1);
  auto* c = make(2);
  lru.push_front(a);
  lru.push_front(b);
  lru.push_front(c);  // c b a
  lru.remove(b);      // middle
  EXPECT_EQ(lru.front(), c);
  EXPECT_EQ(lru.tail(), a);
  lru.remove(c);  // head
  EXPECT_EQ(lru.front(), a);
  EXPECT_EQ(lru.tail(), a);
  lru.remove(a);  // tail == head
  EXPECT_TRUE(lru.empty());
  EXPECT_EQ(lru.front(), nullptr);
  EXPECT_EQ(lru.tail(), nullptr);
}

TEST_F(LruListTest, EvictionOrderIsLeastRecentFirst) {
  LruList lru;
  std::vector<ItemHeader*> items;
  for (int i = 0; i < 10; ++i) {
    items.push_back(make(i));
    lru.push_front(items.back());
  }
  // Touch items 0..4 (in insertion order they are the oldest).
  for (int i = 0; i < 5; ++i) lru.move_to_front(items[static_cast<std::size_t>(i)]);
  // Tail must now be item 5 (oldest untouched).
  EXPECT_EQ(lru.tail(), items[5]);
}

TEST_F(LruListTest, ClearResets) {
  LruList lru;
  lru.push_front(make(0));
  lru.clear();
  EXPECT_TRUE(lru.empty());
  EXPECT_EQ(lru.size(), 0u);
}

}  // namespace
}  // namespace hykv::store
