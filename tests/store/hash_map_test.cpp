#include "store/hash_map.hpp"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "common/random.hpp"

namespace hykv::store {
namespace {

TEST(HashMapTest, UpsertFindErase) {
  HashMap<int> map;
  EXPECT_EQ(map.find("a"), nullptr);
  map.upsert("a", 1);
  map.upsert("b", 2);
  ASSERT_NE(map.find("a"), nullptr);
  EXPECT_EQ(*map.find("a"), 1);
  EXPECT_EQ(*map.find("b"), 2);
  EXPECT_EQ(map.size(), 2u);

  map.upsert("a", 10);  // overwrite, not duplicate
  EXPECT_EQ(*map.find("a"), 10);
  EXPECT_EQ(map.size(), 2u);

  const auto erased = map.erase("a");
  ASSERT_TRUE(erased.has_value());
  EXPECT_EQ(*erased, 10);
  EXPECT_EQ(map.find("a"), nullptr);
  EXPECT_FALSE(map.erase("a").has_value());
  EXPECT_EQ(map.size(), 1u);
}

TEST(HashMapTest, GrowsPastInitialBuckets) {
  HashMap<int> map(16);
  const std::size_t initial = map.bucket_count();
  for (int i = 0; i < 1000; ++i) {
    map.upsert(make_key(static_cast<std::uint64_t>(i)), i);
  }
  EXPECT_GT(map.bucket_count(), initial);
  for (int i = 0; i < 1000; ++i) {
    const int* v = map.find(make_key(static_cast<std::uint64_t>(i)));
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
}

TEST(HashMapTest, ForEachVisitsEverything) {
  HashMap<int> map;
  // (std::string{"k"} rather than "k" + ...: GCC 12's -Wrestrict false
  // positive, bug 105329, fires on the const char* + rvalue overload.)
  for (int i = 0; i < 100; ++i) {
    map.upsert(std::string("k").append(std::to_string(i)), i);
  }
  int visits = 0;
  long sum = 0;
  map.for_each([&](std::string_view, int& v) {
    ++visits;
    sum += v;
  });
  EXPECT_EQ(visits, 100);
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(HashMapTest, OverwriteNeverGrows) {
  // Regression: upsert used to call maybe_grow() before checking whether the
  // key already existed, so a steady stream of overwrites at high load
  // factor kept rehashing the table for nothing. Growth must happen only
  // when an insert actually raises the load factor.
  HashMap<int> map(16);
  const std::size_t initial = map.bucket_count();
  // 24 keys on 16 buckets = load factor 1.5, exactly the grow threshold.
  for (int i = 0; i < 24; ++i) {
    map.upsert(make_key(static_cast<std::uint64_t>(i)), i);
  }
  ASSERT_EQ(map.bucket_count(), initial);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 24; ++i) {
      map.upsert(make_key(static_cast<std::uint64_t>(i)), i + round);
    }
  }
  EXPECT_EQ(map.bucket_count(), initial) << "overwrites must not rehash";
  map.upsert(make_key(999), 999);  // a real insert crosses the threshold
  EXPECT_GT(map.bucket_count(), initial);
}

TEST(HashMapTest, FindOptimisticSeesPublishedEntries) {
  // Single-threaded smoke for the lock-free lookup: it must agree with the
  // locked find() across inserts, overwrites, growth, and erases. (The
  // concurrent torture lives in readpath_test.cpp.)
  HashMap<int> map(16);
  for (int i = 0; i < 200; ++i) {
    map.upsert(make_key(static_cast<std::uint64_t>(i)), i);
  }
  for (int i = 0; i < 200; ++i) {
    const int* v = map.find_optimistic(make_key(static_cast<std::uint64_t>(i)));
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(map.find_optimistic(make_key(100000)), nullptr);
  map.erase(make_key(7));
  EXPECT_EQ(map.find_optimistic(make_key(7)), nullptr);
}

TEST(HashMapTest, ClearEmpties) {
  HashMap<int> map;
  map.upsert("x", 1);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find("x"), nullptr);
  map.upsert("x", 2);  // usable after clear
  EXPECT_EQ(*map.find("x"), 2);
}

TEST(HashMapTest, EmptyKeySupported) {
  HashMap<int> map;
  map.upsert("", 42);
  ASSERT_NE(map.find(""), nullptr);
  EXPECT_EQ(*map.find(""), 42);
}

TEST(HashMapTest, RandomOpsMatchStdUnorderedMap) {
  // Property test: a random op sequence must behave identically to the
  // standard container.
  HashMap<std::uint64_t> map;
  std::unordered_map<std::string, std::uint64_t> model;
  Rng rng(2024);
  for (int op = 0; op < 20000; ++op) {
    const std::string key = make_key(rng.next_below(500));
    switch (rng.next_below(3)) {
      case 0: {
        const std::uint64_t v = rng.next();
        map.upsert(key, v);
        model[key] = v;
        break;
      }
      case 1: {
        const auto a = map.erase(key);
        const auto it = model.find(key);
        EXPECT_EQ(a.has_value(), it != model.end());
        if (it != model.end()) {
          EXPECT_EQ(*a, it->second);
          model.erase(it);
        }
        break;
      }
      default: {
        const auto* v = map.find(key);
        const auto it = model.find(key);
        ASSERT_EQ(v != nullptr, it != model.end()) << key;
        if (it != model.end()) {
          EXPECT_EQ(*v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), model.size());
  }
}

}  // namespace
}  // namespace hykv::store
