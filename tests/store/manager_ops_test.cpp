// Semantics of the extended memcached op set at the storage-engine level:
// add/replace/append/prepend/incr/decr/touch, against both tiers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "store/hybrid_manager.hpp"

namespace hykv::store {
namespace {

ssd::PageCacheConfig test_cache() {
  ssd::PageCacheConfig cfg;
  cfg.dirty_high_watermark = 4 << 20;
  cfg.dirty_low_watermark = 2 << 20;
  cfg.memory_limit = 16 << 20;
  return cfg;
}

ManagerConfig config(StorageMode mode) {
  ManagerConfig cfg;
  cfg.mode = mode;
  cfg.slab.slab_bytes = 256 << 10;
  cfg.slab.memory_limit = 2 << 20;
  cfg.flush_batch_bytes = 256 << 10;
  return cfg;
}

class ManagerOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.0);
  }
  void TearDown() override { sim::set_time_scale(1.0); }

  static std::span<const char> bytes(const std::string& s) {
    return {s.data(), s.size()};
  }
  static std::string str(const std::vector<char>& v) {
    return {v.begin(), v.end()};
  }
};

TEST_F(ManagerOpsTest, AddOnlyWhenAbsent) {
  HybridSlabManager m(config(StorageMode::kInMemory), nullptr);
  EXPECT_EQ(m.add("k", bytes("one"), 0, 0), StatusCode::kOk);
  EXPECT_EQ(m.add("k", bytes("two"), 0, 0), StatusCode::kNotStored);
  std::vector<char> out;
  std::uint32_t flags;
  ASSERT_EQ(m.get("k", out, flags), StatusCode::kOk);
  EXPECT_EQ(str(out), "one");
}

TEST_F(ManagerOpsTest, AddSucceedsAfterExpiry) {
  HybridSlabManager m(config(StorageMode::kInMemory), nullptr);
  ASSERT_EQ(m.set("k", bytes("old"), 0, -1), StatusCode::kOk);  // expired
  EXPECT_EQ(m.add("k", bytes("new"), 0, 0), StatusCode::kOk);
  std::vector<char> out;
  std::uint32_t flags;
  ASSERT_EQ(m.get("k", out, flags), StatusCode::kOk);
  EXPECT_EQ(str(out), "new");
}

TEST_F(ManagerOpsTest, ReplaceOnlyWhenPresent) {
  HybridSlabManager m(config(StorageMode::kInMemory), nullptr);
  EXPECT_EQ(m.replace("k", bytes("x"), 0, 0), StatusCode::kNotStored);
  ASSERT_EQ(m.set("k", bytes("one"), 0, 0), StatusCode::kOk);
  EXPECT_EQ(m.replace("k", bytes("two"), 7, 0), StatusCode::kOk);
  std::vector<char> out;
  std::uint32_t flags = 0;
  ASSERT_EQ(m.get("k", out, flags), StatusCode::kOk);
  EXPECT_EQ(str(out), "two");
  EXPECT_EQ(flags, 7u);
}

TEST_F(ManagerOpsTest, AppendPrependExtendValue) {
  HybridSlabManager m(config(StorageMode::kInMemory), nullptr);
  EXPECT_EQ(m.append("k", bytes("tail")), StatusCode::kNotStored);
  ASSERT_EQ(m.set("k", bytes("mid"), 3, 0), StatusCode::kOk);
  EXPECT_EQ(m.append("k", bytes("-end")), StatusCode::kOk);
  EXPECT_EQ(m.prepend("k", bytes("start-")), StatusCode::kOk);
  std::vector<char> out;
  std::uint32_t flags = 0;
  ASSERT_EQ(m.get("k", out, flags), StatusCode::kOk);
  EXPECT_EQ(str(out), "start-mid-end");
  EXPECT_EQ(flags, 3u) << "append/prepend preserve flags";
}

TEST_F(ManagerOpsTest, AppendWorksOnSsdResidentItem) {
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  HybridSlabManager m(config(StorageMode::kHybrid), &storage);
  ASSERT_EQ(m.set("cold", bytes("base"), 0, 0), StatusCode::kOk);
  // Push "cold" out to SSD.
  for (std::uint64_t i = 0; i < 120; ++i) {
    ASSERT_EQ(m.set(make_key(i), make_value(i, 30 << 10), 0, 0), StatusCode::kOk);
  }
  EXPECT_EQ(m.append("cold", bytes("+hot")), StatusCode::kOk);
  std::vector<char> out;
  std::uint32_t flags;
  ASSERT_EQ(m.get("cold", out, flags), StatusCode::kOk);
  EXPECT_EQ(str(out), "base+hot");
}

TEST_F(ManagerOpsTest, IncrDecrSemantics) {
  HybridSlabManager m(config(StorageMode::kInMemory), nullptr);
  EXPECT_EQ(m.incr("n", 1).status(), StatusCode::kNotFound);
  ASSERT_EQ(m.set("n", bytes("10"), 0, 0), StatusCode::kOk);

  auto up = m.incr("n", 5);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up.value(), 15u);

  auto down = m.decr("n", 3);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down.value(), 12u);

  // memcached semantics: decr saturates at zero.
  auto floor = m.decr("n", 100);
  ASSERT_TRUE(floor.ok());
  EXPECT_EQ(floor.value(), 0u);

  std::vector<char> out;
  std::uint32_t flags;
  ASSERT_EQ(m.get("n", out, flags), StatusCode::kOk);
  EXPECT_EQ(str(out), "0");
}

TEST_F(ManagerOpsTest, IncrRejectsNonNumeric) {
  HybridSlabManager m(config(StorageMode::kInMemory), nullptr);
  ASSERT_EQ(m.set("s", bytes("abc"), 0, 0), StatusCode::kOk);
  EXPECT_EQ(m.incr("s", 1).status(), StatusCode::kInvalidArgument);
  ASSERT_EQ(m.set("e", bytes(""), 0, 0), StatusCode::kOk);
  EXPECT_EQ(m.incr("e", 1).status(), StatusCode::kInvalidArgument);
}

TEST_F(ManagerOpsTest, TouchRefreshesExpiry) {
  HybridSlabManager m(config(StorageMode::kInMemory), nullptr);
  EXPECT_EQ(m.touch("missing", 100), StatusCode::kNotFound);
  ASSERT_EQ(m.set("k", bytes("v"), 0, 3600), StatusCode::kOk);
  EXPECT_EQ(m.touch("k", -1), StatusCode::kOk);  // expire immediately
  std::vector<char> out;
  std::uint32_t flags;
  EXPECT_EQ(m.get("k", out, flags), StatusCode::kNotFound);
  EXPECT_EQ(m.touch("k", 100), StatusCode::kNotFound);
}

TEST_F(ManagerOpsTest, TouchWorksOnSsdResidentItem) {
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  ManagerConfig cfg = config(StorageMode::kHybrid);
  cfg.promote_on_hit = false;  // keep the item on flash
  HybridSlabManager m(cfg, &storage);
  ASSERT_EQ(m.set("cold", bytes("v"), 0, 3600), StatusCode::kOk);
  for (std::uint64_t i = 0; i < 120; ++i) {
    ASSERT_EQ(m.set(make_key(i), make_value(i, 30 << 10), 0, 0), StatusCode::kOk);
  }
  EXPECT_EQ(m.touch("cold", -1), StatusCode::kOk);
  std::vector<char> out;
  std::uint32_t flags;
  EXPECT_EQ(m.get("cold", out, flags), StatusCode::kNotFound);
}

TEST_F(ManagerOpsTest, InPlaceOverwriteDoesNotChurnAllocator) {
  HybridSlabManager m(config(StorageMode::kInMemory), nullptr);
  ASSERT_EQ(m.set("k", make_value(1, 900), 0, 0), StatusCode::kOk);  // same class as overwrites
  const auto pages_before = m.slab_stats().slab_pages;
  const auto used_before = m.slab_stats().used_chunks;
  // Sizes stay within one slab class so every overwrite is in place.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(m.set("k",
                    make_value(static_cast<std::uint64_t>(i),
                               850 + static_cast<std::size_t>(i % 50)),
                    0, 0),
              StatusCode::kOk);
  }
  EXPECT_EQ(m.slab_stats().slab_pages, pages_before);
  EXPECT_EQ(m.slab_stats().used_chunks, used_before);
  std::vector<char> out;
  std::uint32_t flags;
  ASSERT_EQ(m.get("k", out, flags), StatusCode::kOk);
  EXPECT_EQ(out, make_value(99, 899));
}

TEST_F(ManagerOpsTest, CasBasicSemantics) {
  HybridSlabManager m(config(StorageMode::kInMemory), nullptr);
  std::vector<char> out;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;

  EXPECT_EQ(m.gets("k", out, flags, cas), StatusCode::kNotFound);
  EXPECT_EQ(m.cas("k", bytes("v"), 0, 0, 1), StatusCode::kNotFound);

  ASSERT_EQ(m.set("k", bytes("v1"), 5, 0), StatusCode::kOk);
  ASSERT_EQ(m.gets("k", out, flags, cas), StatusCode::kOk);
  EXPECT_EQ(str(out), "v1");
  EXPECT_EQ(flags, 5u);
  ASSERT_NE(cas, 0u);

  // Correct token wins.
  EXPECT_EQ(m.cas("k", bytes("v2"), 6, 0, cas), StatusCode::kOk);
  // Old token now loses (EXISTS).
  EXPECT_EQ(m.cas("k", bytes("v3"), 7, 0, cas), StatusCode::kNotStored);
  std::uint64_t cas2 = 0;
  ASSERT_EQ(m.gets("k", out, flags, cas2), StatusCode::kOk);
  EXPECT_EQ(str(out), "v2");
  EXPECT_EQ(flags, 6u);
  EXPECT_NE(cas2, cas);
}

TEST_F(ManagerOpsTest, EveryMutationBumpsCas) {
  HybridSlabManager m(config(StorageMode::kInMemory), nullptr);
  std::vector<char> out;
  std::uint32_t flags;
  std::uint64_t cas_a = 0, cas_b = 0;
  ASSERT_EQ(m.set("k", bytes("a"), 0, 0), StatusCode::kOk);
  ASSERT_EQ(m.gets("k", out, flags, cas_a), StatusCode::kOk);
  ASSERT_EQ(m.set("k", bytes("b"), 0, 0), StatusCode::kOk);  // in place
  ASSERT_EQ(m.gets("k", out, flags, cas_b), StatusCode::kOk);
  EXPECT_NE(cas_a, cas_b);
  const auto bumped = m.incr("n", 0).status();  // absent: no effect
  (void)bumped;
}

TEST_F(ManagerOpsTest, CasSurvivesSsdRoundTrip) {
  // The token captured while the item was in RAM must still validate after
  // the item is flushed to flash and promoted back.
  ssd::StorageStack storage(SsdProfile::sata(), test_cache());
  HybridSlabManager m(config(StorageMode::kHybrid), &storage);
  ASSERT_EQ(m.set("cold", bytes("frozen"), 0, 0), StatusCode::kOk);
  std::vector<char> out;
  std::uint32_t flags;
  std::uint64_t cas = 0;
  ASSERT_EQ(m.gets("cold", out, flags, cas), StatusCode::kOk);
  for (std::uint64_t i = 0; i < 120; ++i) {
    ASSERT_EQ(m.set(make_key(i), make_value(i, 30 << 10), 0, 0), StatusCode::kOk);
  }
  // Item now on SSD; token must still match (relocation is not mutation).
  std::uint64_t cas_after = 0;
  ASSERT_EQ(m.gets("cold", out, flags, cas_after), StatusCode::kOk);
  EXPECT_EQ(cas_after, cas);
  EXPECT_EQ(m.cas("cold", bytes("thawed"), 0, 0, cas), StatusCode::kOk);
  ASSERT_EQ(m.gets("cold", out, flags, cas_after), StatusCode::kOk);
  EXPECT_EQ(str(out), "thawed");
  EXPECT_NE(cas_after, cas);
}

}  // namespace
}  // namespace hykv::store
