// FaultInjector unit tests: schedule determinism (the chaos suite's
// reproducibility hinges on it), per-class independence, link-down windows,
// per-endpoint fault counters, and the zero-overhead contract of
// FaultProfile::none().
#include "net/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "net/fabric.hpp"

namespace hykv::net {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(1.0);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

std::vector<MessageFault> schedule(FaultInjector& injector, EndpointId src,
                                   EndpointId dst, int n) {
  std::vector<MessageFault> verdicts;
  verdicts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) verdicts.push_back(injector.on_message(src, dst));
  return verdicts;
}

TEST_F(FaultTest, SameSeedSameSchedule) {
  FaultProfile profile;
  profile.drop_rate = 0.1;
  profile.duplicate_rate = 0.05;
  profile.delay_rate = 0.2;
  profile.extra_delay = sim::us(10);
  profile.seed = 1234;

  FaultInjector a(profile);
  FaultInjector b(profile);
  const auto sa = schedule(a, 1, 2, 500);
  const auto sb = schedule(b, 1, 2, 500);
  int faults = 0;
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(sa[static_cast<std::size_t>(i)].drop,
              sb[static_cast<std::size_t>(i)].drop) << i;
    EXPECT_EQ(sa[static_cast<std::size_t>(i)].duplicate,
              sb[static_cast<std::size_t>(i)].duplicate) << i;
    EXPECT_EQ(sa[static_cast<std::size_t>(i)].extra_delay,
              sb[static_cast<std::size_t>(i)].extra_delay) << i;
    if (sa[static_cast<std::size_t>(i)].drop) ++faults;
  }
  // ~10% of 500 messages drop; the exact count is seed-determined.
  EXPECT_GT(faults, 20);
  EXPECT_LT(faults, 120);
}

TEST_F(FaultTest, DifferentSeedsDifferentSchedules) {
  FaultProfile profile;
  profile.drop_rate = 0.5;
  profile.seed = 1;
  FaultInjector a(profile);
  profile.seed = 2;
  FaultInjector b(profile);
  const auto sa = schedule(a, 1, 2, 128);
  const auto sb = schedule(b, 1, 2, 128);
  int differing = 0;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].drop != sb[i].drop) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST_F(FaultTest, PairStreamsAreIndependent) {
  // Interleaving traffic on an unrelated pair must not perturb a pair's
  // schedule -- per-pair ordinals make the schedule a property of the pair's
  // own traffic, not of global interleaving.
  FaultProfile profile;
  profile.drop_rate = 0.3;
  profile.seed = 99;
  FaultInjector quiet(profile);
  FaultInjector noisy(profile);
  const auto expected = schedule(quiet, 1, 2, 100);
  std::vector<MessageFault> interleaved;
  for (int i = 0; i < 100; ++i) {
    (void)noisy.on_message(3, 4);  // unrelated pair chatter
    interleaved.push_back(noisy.on_message(1, 2));
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].drop, interleaved[i].drop) << i;
  }
}

TEST_F(FaultTest, LinkDownDropsEverythingUntilRestored) {
  FaultProfile profile;
  profile.arm = true;  // no random faults, windows only
  FaultInjector injector(profile);
  EXPECT_FALSE(injector.on_message(1, 2).drop);
  injector.set_link_down(2, true);
  EXPECT_TRUE(injector.link_down(1, 2));
  EXPECT_TRUE(injector.link_down(2, 1));  // both directions
  injector.set_link_down(2, false);
  EXPECT_FALSE(injector.link_down(1, 2));
  EXPECT_FALSE(injector.on_message(1, 2).drop);
}

TEST_F(FaultTest, DroppedMessagesNeverArriveAndAreCounted) {
  FaultProfile profile;
  profile.drop_rate = 1.0;  // every message lost
  Fabric fabric(FabricProfile::fdr_rdma(), profile);
  auto a = fabric.create_endpoint("a");
  auto b = fabric.create_endpoint("b");
  const auto payload = make_value(1, 512);
  for (int i = 0; i < 5; ++i) {
    a->send(b->id(), 1, static_cast<std::uint64_t>(i), payload);
  }
  EXPECT_FALSE(b->recv_for(sim::ms(20)).ok());
  EXPECT_EQ(a->stats().faults_dropped, 5u);
  EXPECT_EQ(b->stats().recvs, 0u);
}

TEST_F(FaultTest, DuplicatedMessagesArriveTwice) {
  FaultProfile profile;
  profile.duplicate_rate = 1.0;  // every message doubled
  Fabric fabric(FabricProfile::fdr_rdma(), profile);
  auto a = fabric.create_endpoint("a");
  auto b = fabric.create_endpoint("b");
  a->send(b->id(), 1, 7, make_value(2, 64));
  ASSERT_TRUE(b->recv().ok());
  const auto ghost = b->recv_for(sim::ms(200));
  ASSERT_TRUE(ghost.ok());
  EXPECT_EQ(ghost.value().wr_id, 7u);
  EXPECT_EQ(a->stats().faults_duplicated, 1u);
}

TEST_F(FaultTest, LinkDownWindowBlocksTrafficEndToEnd) {
  FaultProfile profile;
  profile.arm = true;
  Fabric fabric(FabricProfile::fdr_rdma(), profile);
  auto a = fabric.create_endpoint("a");
  auto b = fabric.create_endpoint("b");
  fabric.set_link_down(b->id(), true);
  a->send(b->id(), 1, 1, make_value(3, 64));
  EXPECT_FALSE(b->recv_for(sim::ms(20)).ok());
  EXPECT_EQ(a->stats().faults_link_down, 1u);
  fabric.set_link_down(b->id(), false);
  a->send(b->id(), 1, 2, make_value(3, 64));
  const auto msg = b->recv_for(sim::ms(500));
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().wr_id, 2u);
}

TEST_F(FaultTest, NoneProfileConstructsNoInjector) {
  // The zero-overhead contract: a perfect fabric never builds the injector,
  // so the data path pays exactly one null-pointer check.
  Fabric perfect(FabricProfile::fdr_rdma());
  EXPECT_EQ(perfect.faults(), nullptr);
  Fabric armed(FabricProfile::fdr_rdma(), FaultProfile{.arm = true});
  EXPECT_NE(armed.faults(), nullptr);
  EXPECT_FALSE(FaultProfile::none().enabled());

  // And a faultless run through it behaves like the plain fabric.
  auto a = perfect.create_endpoint("a");
  auto b = perfect.create_endpoint("b");
  a->send(b->id(), 1, 1, make_value(4, 128));
  ASSERT_TRUE(b->recv().ok());
  const auto stats = a->stats();
  EXPECT_EQ(stats.faults_dropped + stats.faults_duplicated +
                stats.faults_delayed + stats.faults_link_down +
                stats.faults_one_sided,
            0u);
}

TEST_F(FaultTest, OneSidedOpsFailAgainstDownEndpoint) {
  FaultProfile profile;
  profile.arm = true;
  Fabric fabric(FabricProfile::fdr_rdma(), profile);
  auto a = fabric.create_endpoint("a");
  auto b = fabric.create_endpoint("b");
  std::vector<char> remote(4096);
  const auto region = b->register_memory(remote.data(), remote.size());
  const RemoteKey key{.endpoint = b->id(), .rkey = region.rkey};
  std::vector<char> local(4096);
  EXPECT_EQ(a->rdma_read(key, 0, local), StatusCode::kOk);
  fabric.set_link_down(b->id(), true);
  EXPECT_EQ(a->rdma_read(key, 0, local), StatusCode::kNetworkError);
  EXPECT_EQ(a->rdma_write(key, 0, local), StatusCode::kNetworkError);
  EXPECT_EQ(a->stats().faults_link_down, 2u);
  fabric.set_link_down(b->id(), false);
  EXPECT_EQ(a->rdma_read(key, 0, local), StatusCode::kOk);
}

}  // namespace
}  // namespace hykv::net
