#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/random.hpp"
#include "common/sim_time.hpp"

namespace hykv::net {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(1.0);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

TEST_F(FabricTest, SendRecvRoundTripPreservesBytes) {
  Fabric fabric(FabricProfile::fdr_rdma());
  auto client = fabric.create_endpoint("client");
  auto server = fabric.create_endpoint("server");
  const auto payload = make_value(1, 4096);
  client->send(server->id(), 7, 42, payload);
  auto msg = server->recv();
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg.value().opcode, 7);
  EXPECT_EQ(msg.value().wr_id, 42u);
  EXPECT_EQ(msg.value().src, client->id());
  EXPECT_EQ(msg.value().payload, payload);
}

TEST_F(FabricTest, DeliveryHonoursModelledLatency) {
  Fabric fabric(FabricProfile::fdr_rdma());
  auto a = fabric.create_endpoint("a");
  auto b = fabric.create_endpoint("b");
  const auto payload = make_value(2, 32 << 10);
  const auto start = sim::now();
  a->send(b->id(), 1, 1, payload);
  (void)b->recv();
  const auto elapsed = sim::now() - start;
  // 32KB over FDR: >= 1.2us base + ~5.5us wire.
  EXPECT_GE(elapsed, sim::us(6));
  EXPECT_LT(elapsed, sim::ms(3));
}

TEST_F(FabricTest, IpoibIsSlowerThanRdma) {
  const auto payload = make_value(3, 32 << 10);
  auto measure = [&](FabricProfile profile) {
    Fabric fabric(std::move(profile));
    auto a = fabric.create_endpoint("a");
    auto b = fabric.create_endpoint("b");
    const auto start = sim::now();
    for (int i = 0; i < 5; ++i) {
      a->send(b->id(), 1, static_cast<std::uint64_t>(i), payload);
      (void)b->recv();
    }
    return sim::now() - start;
  };
  const auto rdma = measure(FabricProfile::fdr_rdma());
  const auto ipoib = measure(FabricProfile::ipoib());
  EXPECT_GT(ipoib, rdma * 2);
}

TEST_F(FabricTest, SendTicketMarksInjectionCompletion) {
  Fabric fabric(FabricProfile::fdr_rdma());
  auto a = fabric.create_endpoint("a");
  auto b = fabric.create_endpoint("b");
  const auto payload = make_value(4, 1 << 20);  // ~175us injection on FDR
  const auto start = sim::now();
  auto ticket = a->send(b->id(), 1, 1, payload);
  ticket.wait();
  EXPECT_TRUE(ticket.done());
  // Injection of 1MB on FDR is ~175us; wait() must not return before it.
  EXPECT_GE(sim::now() - start, sim::us(150));
  (void)b->recv();
}

TEST_F(FabricTest, ConcurrentSendersShareLinkBandwidth) {
  Fabric fabric(FabricProfile::fdr_rdma());
  auto server = fabric.create_endpoint("server");
  auto c1 = fabric.create_endpoint("c1");
  auto c2 = fabric.create_endpoint("c2");
  const auto payload = make_value(5, 1 << 20);
  const auto start = sim::now();
  std::thread t1([&] { c1->send(server->id(), 1, 1, payload).wait(); });
  std::thread t2([&] { c2->send(server->id(), 1, 2, payload).wait(); });
  t1.join();
  t2.join();
  (void)server->recv();
  (void)server->recv();
  // Two 1MB messages into one NIC serialise: >= ~350us total occupancy.
  EXPECT_GE(sim::now() - start, sim::us(330));
}

TEST_F(FabricTest, RecvForTimesOutWithoutTraffic) {
  Fabric fabric(FabricProfile::fdr_rdma());
  auto a = fabric.create_endpoint("a");
  const auto result = a->recv_for(sim::ms(10));
  EXPECT_EQ(result.status(), StatusCode::kTimedOut);
}

TEST_F(FabricTest, CloseUnblocksReceivers) {
  Fabric fabric(FabricProfile::fdr_rdma());
  auto a = fabric.create_endpoint("a");
  std::thread receiver([&] {
    const auto result = a->recv();
    EXPECT_EQ(result.status(), StatusCode::kShutdown);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  a->close();
  receiver.join();
}

TEST_F(FabricTest, SendToClosedOrUnknownEndpointIsLostNotFatal) {
  Fabric fabric(FabricProfile::fdr_rdma());
  auto a = fabric.create_endpoint("a");
  auto b = fabric.create_endpoint("b");
  b->close();
  const auto payload = make_value(6, 64);
  auto t1 = a->send(b->id(), 1, 1, payload);
  t1.wait();
  auto t2 = a->send(9999, 1, 2, payload);
  t2.wait();
  EXPECT_EQ(a->stats().sends, 0u);  // nothing actually injected
}

TEST_F(FabricTest, RegistrationCacheMakesRepeatsCheap) {
  Fabric fabric(FabricProfile::fdr_rdma());
  auto a = fabric.create_endpoint("a");
  std::vector<char> buffer(1 << 20);

  const auto t0 = sim::now();
  const auto region = a->register_memory(buffer.data(), buffer.size());
  const auto cold = sim::now() - t0;
  ASSERT_TRUE(region.valid());

  const auto t1 = sim::now();
  const auto again = a->register_memory(buffer.data(), buffer.size());
  const auto warm = sim::now() - t1;
  EXPECT_EQ(again.rkey, region.rkey);
  // Cold: 25us + 40us/MB = ~65us. Warm: ~0.2us.
  EXPECT_GE(cold, sim::us(50));
  EXPECT_LT(warm * 10, cold);
  const auto stats = a->stats();
  EXPECT_EQ(stats.registrations, 1u);
  EXPECT_EQ(stats.registration_hits, 1u);
}

TEST_F(FabricTest, DeregisterForgetsRegion) {
  Fabric fabric(FabricProfile::fdr_rdma());
  auto a = fabric.create_endpoint("a");
  std::vector<char> buffer(4096);
  const auto region = a->register_memory(buffer.data(), buffer.size());
  a->deregister_memory(region);
  const auto again = a->register_memory(buffer.data(), buffer.size());
  EXPECT_NE(again.rkey, region.rkey);  // re-registered cold
  EXPECT_EQ(a->stats().registrations, 2u);
}

TEST_F(FabricTest, OneSidedWriteReadRoundTrip) {
  Fabric fabric(FabricProfile::fdr_rdma());
  auto client = fabric.create_endpoint("client");
  auto server = fabric.create_endpoint("server");
  std::vector<char> server_buf(8192, 0);
  const auto region = server->register_memory(server_buf.data(), server_buf.size());
  const RemoteKey key{server->id(), region.rkey};

  const auto payload = make_value(7, 4096);
  ASSERT_EQ(client->rdma_write(key, 1024, payload), StatusCode::kOk);
  // The server CPU never ran: bytes are simply present in its memory.
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), server_buf.begin() + 1024));

  std::vector<char> readback(4096);
  ASSERT_EQ(client->rdma_read(key, 1024, readback), StatusCode::kOk);
  EXPECT_EQ(readback, payload);
  EXPECT_EQ(client->stats().one_sided_ops, 2u);
  EXPECT_EQ(server->stats().recvs, 0u);
}

TEST_F(FabricTest, OneSidedRejectedOnIpoib) {
  Fabric fabric(FabricProfile::ipoib());
  auto a = fabric.create_endpoint("a");
  auto b = fabric.create_endpoint("b");
  std::vector<char> buf(128);
  const auto region = b->register_memory(buf.data(), buf.size());
  std::vector<char> data(64);
  EXPECT_EQ(a->rdma_write({b->id(), region.rkey}, 0, data),
            StatusCode::kNetworkError);
  EXPECT_EQ(a->rdma_read({b->id(), region.rkey}, 0, data),
            StatusCode::kNetworkError);
}

TEST_F(FabricTest, OneSidedBoundsChecked) {
  Fabric fabric(FabricProfile::fdr_rdma());
  auto a = fabric.create_endpoint("a");
  auto b = fabric.create_endpoint("b");
  std::vector<char> buf(128);
  const auto region = b->register_memory(buf.data(), buf.size());
  std::vector<char> data(64);
  EXPECT_EQ(a->rdma_write({b->id(), region.rkey}, 100, data),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(a->rdma_write({b->id(), 999}, 0, data), StatusCode::kInvalidArgument);
  EXPECT_EQ(a->rdma_write({9999, region.rkey}, 0, data), StatusCode::kNetworkError);
}

TEST_F(FabricTest, ManyMessagesArriveInOrderPerPair) {
  sim::set_time_scale(0.05);
  Fabric fabric(FabricProfile::fdr_rdma());
  auto a = fabric.create_endpoint("a");
  auto b = fabric.create_endpoint("b");
  for (std::uint64_t i = 0; i < 200; ++i) {
    a->send(b->id(), 1, i, make_value(i, 128));
  }
  for (std::uint64_t i = 0; i < 200; ++i) {
    auto msg = b->recv();
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg.value().wr_id, i);
    EXPECT_EQ(msg.value().payload, make_value(i, 128));
  }
}

}  // namespace
}  // namespace hykv::net
