#include "core/testbed.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "common/sim_time.hpp"

#include <chrono>
#include <thread>
#include "core/design.hpp"

namespace hykv::core {
namespace {

TEST(DesignTest, PredicatesMatchTableI) {
  // Table I, row by row.
  EXPECT_FALSE(uses_rdma(Design::kIpoibMem));
  EXPECT_FALSE(is_hybrid(Design::kIpoibMem));
  EXPECT_TRUE(uses_rdma(Design::kRdmaMem));
  EXPECT_FALSE(is_hybrid(Design::kRdmaMem));
  EXPECT_TRUE(uses_rdma(Design::kHRdmaDef));
  EXPECT_TRUE(is_hybrid(Design::kHRdmaDef));
  EXPECT_EQ(io_policy(Design::kHRdmaDef), store::IoPolicy::kDirectAll);
  EXPECT_EQ(io_policy(Design::kHRdmaOptBlock), store::IoPolicy::kAdaptive);
  EXPECT_FALSE(async_server(Design::kHRdmaOptBlock));
  EXPECT_TRUE(async_server(Design::kHRdmaOptNonbB));
  EXPECT_TRUE(async_server(Design::kHRdmaOptNonbI));
  EXPECT_EQ(api_mode(Design::kHRdmaOptNonbB), ApiMode::kNonBlockingB);
  EXPECT_EQ(api_mode(Design::kHRdmaOptNonbI), ApiMode::kNonBlockingI);
  EXPECT_EQ(api_mode(Design::kHRdmaDef), ApiMode::kBlocking);
}

TEST(DesignTest, NamesMatchPaper) {
  EXPECT_EQ(to_string(Design::kIpoibMem), "IPoIB-Mem");
  EXPECT_EQ(to_string(Design::kRdmaMem), "RDMA-Mem");
  EXPECT_EQ(to_string(Design::kHRdmaDef), "H-RDMA-Def");
  EXPECT_EQ(to_string(Design::kHRdmaOptBlock), "H-RDMA-Opt-Block");
  EXPECT_EQ(to_string(Design::kHRdmaOptNonbB), "H-RDMA-Opt-NonB-b");
  EXPECT_EQ(to_string(Design::kHRdmaOptNonbI), "H-RDMA-Opt-NonB-i");
}

TEST(DesignTest, FabricProfileFollowsTransport) {
  EXPECT_TRUE(fabric_profile(Design::kRdmaMem).one_sided);
  EXPECT_FALSE(fabric_profile(Design::kIpoibMem).one_sided);
}

class TestBedAllDesigns : public ::testing::TestWithParam<Design> {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.02);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

TEST_P(TestBedAllDesigns, SmokeSetGet) {
  TestBedConfig cfg;
  cfg.design = GetParam();
  cfg.total_server_memory = 8 << 20;
  cfg.slab_bytes = 256 << 10;
  TestBed bed(cfg);
  EXPECT_EQ(bed.design(), GetParam());
  EXPECT_EQ(bed.num_servers(), 1u);

  auto client = bed.make_client("smoke");
  const auto value = make_value(1, 4096);
  ASSERT_EQ(client->set("smoke-key", value), StatusCode::kOk);
  std::vector<char> out;
  ASSERT_EQ(client->get("smoke-key", out), StatusCode::kOk);
  EXPECT_EQ(out, value);

  // The server merges an op's stage times *after* sending the response, so
  // give the last merge a moment to land.
  for (int i = 0; i < 200 && bed.server_breakdown().ops() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(bed.server_breakdown().ops(), 2u);  // one set + one get handled
  EXPECT_EQ(bed.store_stats().sets, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllSix, TestBedAllDesigns,
                         ::testing::ValuesIn(kAllDesigns),
                         [](const auto& param_info) {
                           std::string name(to_string(param_info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(TestBedTest, MultiServerSplitsMemoryAndSsd) {
  sim::ScopedTimeScale scale(0.02);
  TestBedConfig cfg;
  cfg.design = Design::kHRdmaDef;
  cfg.num_servers = 4;
  cfg.total_server_memory = 16 << 20;
  cfg.total_ssd_limit = 64 << 20;
  cfg.slab_bytes = 256 << 10;
  TestBed bed(cfg);
  EXPECT_EQ(bed.num_servers(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& manager_cfg = bed.server(i).manager().config();
    EXPECT_EQ(manager_cfg.slab.memory_limit, 4u << 20);
    EXPECT_EQ(manager_cfg.ssd_limit, 16u << 20);
  }
}

TEST(TestBedTest, ResetMetricsClearsServerSide) {
  sim::ScopedTimeScale scale(0.02);
  TestBedConfig cfg;
  cfg.design = Design::kRdmaMem;
  cfg.total_server_memory = 8 << 20;
  TestBed bed(cfg);
  auto client = bed.make_client("c");
  ASSERT_EQ(client->set("k", make_value(1, 128)), StatusCode::kOk);
  // The worker records its stage counters *after* sending the response (the
  // kServerResponse stage must cover the send), so the client can observe
  // completion a beat before the counters land -- poll briefly.
  for (int i = 0; i < 1000 && bed.server_breakdown().ops() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_GT(bed.server_breakdown().ops(), 0u);
  bed.reset_metrics();
  EXPECT_EQ(bed.server_breakdown().ops(), 0u);
  EXPECT_EQ(bed.server(0).counters().requests, 0u);
}

}  // namespace
}  // namespace hykv::core
