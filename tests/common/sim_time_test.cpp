#include "common/sim_time.hpp"

#include <gtest/gtest.h>

namespace hykv::sim {
namespace {

class SimTimeTest : public ::testing::Test {
 protected:
  void SetUp() override { init_precise_timing(); }
  void TearDown() override { set_time_scale(1.0); }
};

TEST_F(SimTimeTest, ScaledAppliesGlobalScale) {
  set_time_scale(0.5);
  EXPECT_EQ(scaled(us(100)), us(50));
  set_time_scale(2.0);
  EXPECT_EQ(scaled(us(100)), us(200));
  set_time_scale(0.0);
  EXPECT_EQ(scaled(us(100)), Nanos{0});
}

TEST_F(SimTimeTest, ScopedScaleRestores) {
  set_time_scale(1.0);
  {
    ScopedTimeScale guard(0.25);
    EXPECT_DOUBLE_EQ(time_scale(), 0.25);
  }
  EXPECT_DOUBLE_EQ(time_scale(), 1.0);
}

TEST_F(SimTimeTest, NegativeScaleClampsToZero) {
  set_time_scale(-1.0);
  EXPECT_DOUBLE_EQ(time_scale(), 0.0);
}

TEST_F(SimTimeTest, AdvanceZeroReturnsImmediately) {
  const auto start = now();
  advance(Nanos{0});
  advance(Nanos{-100});
  EXPECT_LT(now() - start, us(50));
}

TEST_F(SimTimeTest, AdvanceTakesApproximatelyModelledTime) {
  set_time_scale(1.0);
  const auto start = now();
  advance(us(500));
  const auto elapsed = now() - start;
  EXPECT_GE(elapsed, us(500));
  // Generous overshoot budget: scheduler noise on shared machines.
  EXPECT_LT(elapsed, us(500) + ms(5));
}

TEST_F(SimTimeTest, TimeScaleShortensRealWait) {
  set_time_scale(0.01);
  const auto start = now();
  advance(ms(50));  // modelled 50ms -> ~500us real
  const auto elapsed = now() - start;
  EXPECT_GE(elapsed, us(500));
  EXPECT_LT(elapsed, ms(20));
}

TEST_F(SimTimeTest, WaitUntilPastDeadlineIsImmediate) {
  const auto start = now();
  wait_until(start - ms(1));
  EXPECT_LT(now() - start, us(100));
}

TEST_F(SimTimeTest, SleepOvershootIsBounded) {
  // With timer slack lowered, a 100us sleep should not overshoot by more
  // than a couple of milliseconds even on a loaded box. This guards the
  // fidelity of every modelled latency in the repo.
  const auto overshoot = measure_sleep_overshoot();
  EXPECT_LT(overshoot, ms(5)) << "sleep overshoot too large for simulation";
}

}  // namespace
}  // namespace hykv::sim
