#include "common/status.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "common/stage.hpp"

namespace hykv {
namespace {

TEST(StatusTest, StatusNameCoversAllCodes) {
  for (const auto code :
       {StatusCode::kOk, StatusCode::kNotFound, StatusCode::kNotStored,
        StatusCode::kBufferTooSmall, StatusCode::kOutOfMemory,
        StatusCode::kServerError, StatusCode::kNetworkError,
        StatusCode::kTimedOut, StatusCode::kInvalidArgument,
        StatusCode::kInProgress, StatusCode::kShutdown, StatusCode::kServerDown,
        StatusCode::kIoError, StatusCode::kBusy}) {
    EXPECT_NE(status_name(code), "UNKNOWN");
    EXPECT_FALSE(status_name(code).empty());
    // to_string is the compatibility alias: always the same spelling.
    EXPECT_EQ(to_string(code), status_name(code));
  }
}

TEST(StatusTest, OkHelper) {
  EXPECT_TRUE(ok(StatusCode::kOk));
  EXPECT_FALSE(ok(StatusCode::kNotFound));
}

TEST(ResultTest, ValueRoundTrip) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.status(), StatusCode::kOk);
  EXPECT_EQ(r.value(), "payload");
}

TEST(ResultTest, ErrorCarriesCode) {
  Result<int> r(StatusCode::kNotFound);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 1000u);
}

TEST(StageTest, NamesAndBreakdown) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    EXPECT_NE(to_string(static_cast<Stage>(i)), "?");
  }
  StageBreakdown b;
  b.add(Stage::kClientWait, std::chrono::microseconds(10));
  b.add(Stage::kClientWait, std::chrono::microseconds(20));
  b.add_ops(2);
  EXPECT_EQ(b.total_ns(Stage::kClientWait), 30000u);
  EXPECT_DOUBLE_EQ(b.per_op_us(Stage::kClientWait), 15.0);
  EXPECT_DOUBLE_EQ(b.per_op_us(Stage::kMissPenalty), 0.0);

  StageBreakdown other;
  other.add(Stage::kMissPenalty, std::chrono::milliseconds(2));
  other.add_ops(2);
  b.merge(other);
  EXPECT_EQ(b.ops(), 4u);
  EXPECT_DOUBLE_EQ(b.per_op_us(Stage::kMissPenalty), 500.0);

  b.reset();
  EXPECT_EQ(b.ops(), 0u);
  EXPECT_EQ(b.total_ns(Stage::kClientWait), 0u);
}

TEST(StageTest, StageTimerAttributesElapsed) {
  StageBreakdown b;
  {
    StageTimer timer(b, Stage::kServerResponse);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  b.add_ops();
  EXPECT_GE(b.total_ns(Stage::kServerResponse), 1000000u);
}

TEST(StageTest, NegativeDurationClamped) {
  StageBreakdown b;
  b.add(Stage::kCacheUpdate, std::chrono::nanoseconds(-5));
  EXPECT_EQ(b.total_ns(Stage::kCacheUpdate), 0u);
}

}  // namespace
}  // namespace hykv
