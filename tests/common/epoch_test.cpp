// Epoch-based reclamation: pin/advance semantics, limbo free timing, guard
// nesting, slot exhaustion, and the multi-threaded pin/retire race.
#include "common/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hykv::epoch {
namespace {

TEST(EpochDomainTest, AdvanceBlockedExactlyWhileReaderPinsPriorEpoch) {
  Domain domain;
  const std::uint64_t start = domain.current();
  {
    Domain::Guard guard(domain);
    ASSERT_TRUE(guard.engaged());
    EXPECT_EQ(domain.active_readers(), 1u);
    // The reader pinned `start`, so one advance (to start+1) succeeds --
    // every active reader has observed `start` -- but the next one must
    // fail: the reader is still pinned to start < start+1.
    EXPECT_TRUE(domain.try_advance());
    EXPECT_EQ(domain.current(), start + 1);
    EXPECT_FALSE(domain.try_advance());
    EXPECT_EQ(domain.current(), start + 1);
  }
  EXPECT_EQ(domain.active_readers(), 0u);
  EXPECT_TRUE(domain.try_advance());
  EXPECT_EQ(domain.current(), start + 2);
}

TEST(EpochDomainTest, GuardsNestWithinAThread) {
  Domain domain;
  Domain::Guard outer(domain);
  ASSERT_TRUE(outer.engaged());
  {
    Domain::Guard inner(domain);
    ASSERT_TRUE(inner.engaged());
    EXPECT_EQ(domain.active_readers(), 1u);  // one slot, depth 2
  }
  EXPECT_EQ(domain.active_readers(), 1u);  // outer still pinned
}

TEST(EpochDomainTest, ExhaustedSlotsDisengageInsteadOfBlocking) {
  Domain tiny(2);
  std::atomic<int> engaged{0};
  std::atomic<int> disengaged{0};
  std::atomic<bool> hold{true};
  std::vector<std::thread> threads;
  std::atomic<int> pinned{0};
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      Domain::Guard guard(tiny);
      if (guard.engaged()) {
        ++engaged;
        ++pinned;
        while (hold.load()) std::this_thread::yield();
      } else {
        ++disengaged;
      }
    });
  }
  while (pinned.load() < 2 && disengaged.load() < 1) std::this_thread::yield();
  // Give the third thread time to resolve whichever way it lands.
  while (engaged.load() + disengaged.load() < 3) std::this_thread::yield();
  hold.store(false);
  for (auto& t : threads) t.join();
  EXPECT_EQ(engaged.load(), 2);
  EXPECT_EQ(disengaged.load(), 1);
}

TEST(EpochLimboTest, RetiredObjectSurvivesPinnedReaderAndFreesAfter) {
  Domain domain;
  Limbo limbo(domain);
  bool freed = false;
  {
    Domain::Guard guard(domain);
    ASSERT_TRUE(guard.engaged());
    limbo.retire(
        &freed, 0,
        [](void*, void* obj, std::uint64_t) { *static_cast<bool*>(obj) = true; },
        nullptr);
    // However often the owner flushes, a pinned reader from the retire epoch
    // keeps the object alive.
    for (int i = 0; i < 5; ++i) limbo.flush();
    EXPECT_FALSE(freed);
    EXPECT_EQ(limbo.size(), 1u);
  }
  // Reader gone: one flush (advancing twice) reclaims it.
  EXPECT_EQ(limbo.flush(), 1u);
  EXPECT_TRUE(freed);
  EXPECT_TRUE(limbo.empty());
}

TEST(EpochLimboTest, FlushAllFreesUnconditionally) {
  Domain domain;
  Limbo limbo(domain);
  int freed = 0;
  for (int i = 0; i < 4; ++i) {
    limbo.retire(
        &freed, 0,
        [](void*, void* obj, std::uint64_t) { ++*static_cast<int*>(obj); },
        nullptr);
  }
  EXPECT_EQ(limbo.flush_all(), 4u);
  EXPECT_EQ(freed, 4);
}

TEST(EpochLimboTest, RetireDeleteReclaimsHeapObjects) {
  Domain domain;
  Limbo limbo(domain);
  struct Tracked {
    explicit Tracked(int* c) : counter(c) {}
    ~Tracked() { ++*counter; }
    int* counter;
  };
  int destroyed = 0;
  limbo.retire_delete(new Tracked(&destroyed));
  limbo.retire_delete(new Tracked(&destroyed));
  EXPECT_EQ(limbo.flush(), 2u);  // quiescent domain reclaims in one call
  EXPECT_EQ(destroyed, 2);
}

TEST(EpochStressTest, ConcurrentReadersNeverSeeFreedMemory) {
  // Writers publish heap objects, unlink them, retire them through limbo;
  // readers chase the published pointer under a guard and validate a
  // self-consistency invariant. Run under ASan/TSan this is the actual
  // correctness proof; the EXPECT below is a liveness sanity check.
  struct Boxed {
    std::uint64_t a;
    std::uint64_t b;  // always == ~a
  };
  Domain domain;
  std::atomic<Boxed*> published{nullptr};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> validated{0};

  std::thread writer([&] {
    Limbo limbo(domain);
    for (std::uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      auto* fresh = new Boxed{i, ~i};
      Boxed* old = published.exchange(fresh, std::memory_order_acq_rel);
      if (old != nullptr) limbo.retire_delete(old);
      limbo.flush();
    }
    if (Boxed* last = published.exchange(nullptr)) limbo.retire_delete(last);
    // Readers may still be draining their final guarded access; flush_all
    // would free under them. Drain epoch-safely instead.
    while (!limbo.empty()) {
      limbo.flush();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Domain::Guard guard(domain);
        if (!guard.engaged()) continue;
        const Boxed* box = published.load(std::memory_order_acquire);
        if (box == nullptr) continue;
        // The guard (entered before the load) keeps `box` alive even if the
        // writer retires it right now.
        ASSERT_EQ(box->b, ~box->a);
        validated.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  while (validated.load() < 5000) std::this_thread::yield();
  stop.store(true);
  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_GE(validated.load(), 5000u);
}

}  // namespace
}  // namespace hykv::epoch
