#include "common/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

namespace hykv {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(1);
  for (const std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowRoughlyUniform) {
  Rng rng(7);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, FillIsPrintableAndDeterministic) {
  Rng a(5), b(5);
  std::vector<char> ba(257), bb(257);
  a.fill(ba.data(), ba.size());
  b.fill(bb.data(), bb.size());
  EXPECT_EQ(ba, bb);
  for (const char c : ba) {
    EXPECT_GE(c, '!');
    EXPECT_LE(c, '!' + 63);
  }
}

TEST(ZipfTest, BoundsRespected) {
  ZipfGenerator zipf(1000, 0.99, 11);
  for (int i = 0; i < 100000; ++i) EXPECT_LT(zipf.next(), 1000u);
}

TEST(ZipfTest, RankZeroIsHottest) {
  ZipfGenerator zipf(10000, 0.99, 13);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[zipf.next()];
  const auto hottest =
      std::max_element(counts.begin(), counts.end(),
                       [](auto& a, auto& b) { return a.second < b.second; });
  EXPECT_EQ(hottest->first, 0u);
  // Zipf(0.99): rank 0 should take several percent of all accesses.
  EXPECT_GT(hottest->second, 200000 / 50);
}

TEST(ZipfTest, FrequencyDecreasesOverTopRanks) {
  ZipfGenerator zipf(1000, 0.99, 17);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 500000; ++i) ++counts[zipf.next()];
  // Aggregate over rank bands to smooth noise: band i must dominate band i+1.
  auto band = [&](std::size_t lo, std::size_t hi) {
    return std::accumulate(counts.begin() + static_cast<long>(lo),
                           counts.begin() + static_cast<long>(hi), 0);
  };
  EXPECT_GT(band(0, 10), band(10, 100));
  EXPECT_GT(band(10, 100), band(500, 590));
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  auto head_mass = [](double theta) {
    ZipfGenerator zipf(10000, theta, 23);
    int head = 0;
    constexpr int kSamples = 100000;
    for (int i = 0; i < kSamples; ++i) {
      if (zipf.next() < 10) ++head;
    }
    return head;
  };
  EXPECT_GT(head_mass(0.99), head_mass(0.5));
}

TEST(ScrambledZipfTest, BoundsAndSkewPreserved) {
  ScrambledZipfGenerator gen(5000, 0.99, 29);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) {
    const auto v = gen.next();
    ASSERT_LT(v, 5000u);
    ++counts[v];
  }
  // Still skewed: some key far above uniform share.
  const auto hottest =
      std::max_element(counts.begin(), counts.end(),
                       [](auto& a, auto& b) { return a.second < b.second; });
  EXPECT_GT(hottest->second, 200000 / 5000 * 10);
}

TEST(KeyValueHelpersTest, StableAndSized) {
  EXPECT_EQ(make_key(0), "key-0000000000000000");
  EXPECT_EQ(make_key(255), "key-00000000000000ff");
  EXPECT_EQ(make_key(7).size(), 20u);

  const auto v1 = make_value(42, 1024);
  const auto v2 = make_value(42, 1024);
  const auto v3 = make_value(43, 1024);
  EXPECT_EQ(v1.size(), 1024u);
  EXPECT_EQ(v1, v2);
  EXPECT_NE(v1, v3);
}

}  // namespace
}  // namespace hykv
