// The common/metrics observability subsystem: histogram merge/percentile
// correctness (known distributions, bucket-boundary values, zero-sample
// behaviour), recorder reset, tracer sampling math and ring wraparound, and
// a concurrent record-while-merge race that is the TSan proof for the
// lock-free recording path (stress-labelled; the sanitizer CI jobs run it).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.hpp"
#include "common/metrics.hpp"

namespace hykv {
namespace {

using metrics::LatencyRecorder;
using metrics::Op;
using metrics::OpTracer;
using metrics::Span;
using metrics::Trace;

// Log-linear bucketing guarantees <= 1/kSubBuckets relative error (3.2% for
// 5 sub-bucket bits) on any reported percentile above the linear range.
constexpr double kMaxRelativeError = 1.0 / LatencyHistogram::kSubBuckets;

TEST(LatencyRecorderTest, UniformDistributionPercentilesWithinBucketError) {
  LatencyRecorder recorder(4);
  // 1..100000 ns uniformly: p50 ~ 50000, p99 ~ 99000, p999 ~ 99900.
  for (std::uint64_t ns = 1; ns <= 100000; ++ns) recorder.record_op(Op::kGet, ns);

  const LatencyHistogram hist = recorder.op_histogram(Op::kGet);
  EXPECT_EQ(hist.count(), 100000u);
  EXPECT_EQ(hist.min_ns(), 1u);
  EXPECT_EQ(hist.max_ns(), 100000u);
  EXPECT_NEAR(hist.mean_ns(), 50000.5, 1.0);

  const struct {
    double p;
    double expected;
  } cases[] = {{50, 50000}, {95, 95000}, {99, 99000}, {99.9, 99900}};
  for (const auto& c : cases) {
    const auto v = static_cast<double>(hist.percentile_ns(c.p));
    // percentile_ns returns a bucket upper bound, so it can only overshoot,
    // and by at most the bucket width.
    EXPECT_GE(v, c.expected * (1.0 - 1e-9)) << "p" << c.p;
    EXPECT_LE(v, c.expected * (1.0 + kMaxRelativeError) + 1.0) << "p" << c.p;
  }
}

TEST(LatencyRecorderTest, MergeAcrossSlotsMatchesSingleHistogram) {
  // The same samples recorded (a) thread-per-slot through the recorder and
  // (b) into one plain histogram must agree exactly on every statistic:
  // merging is count-preserving, not approximate.
  LatencyRecorder recorder(4);
  LatencyHistogram expected;
  for (std::uint64_t ns = 1; ns <= 4096; ++ns) expected.record_ns(ns * 17);

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder, t] {
      for (std::uint64_t ns = t + 1; ns <= 4096; ns += 4) {
        recorder.record_op(Op::kSet, ns * 17);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const LatencyHistogram merged = recorder.op_histogram(Op::kSet);
  EXPECT_EQ(merged.count(), expected.count());
  EXPECT_EQ(merged.min_ns(), expected.min_ns());
  EXPECT_EQ(merged.max_ns(), expected.max_ns());
  EXPECT_DOUBLE_EQ(merged.mean_ns(), expected.mean_ns());
  for (const double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(merged.percentile_ns(p), expected.percentile_ns(p)) << p;
  }
}

TEST(LatencyRecorderTest, BucketBoundaryValuesRoundTripWithinError) {
  // Exact powers of two sit on major-bucket boundaries -- the place an
  // off-by-one in bucket_index/bucket_upper_bound would show.
  for (const std::uint64_t ns :
       {std::uint64_t{1}, std::uint64_t{31}, std::uint64_t{32},
        std::uint64_t{33}, std::uint64_t{1} << 10, (std::uint64_t{1} << 10) - 1,
        (std::uint64_t{1} << 10) + 1, std::uint64_t{1} << 20,
        std::uint64_t{1} << 40}) {
    LatencyRecorder recorder(1);
    recorder.record_op(Op::kOther, ns);
    const LatencyHistogram hist = recorder.op_histogram(Op::kOther);
    EXPECT_EQ(hist.count(), 1u);
    const std::uint64_t reported = hist.percentile_ns(50);
    EXPECT_GE(reported, ns);  // bucket upper bound never under-reports...
    EXPECT_LE(static_cast<double>(reported),
              static_cast<double>(ns) * (1.0 + kMaxRelativeError) + 1.0)
        << ns;  // ...and overshoots by at most one sub-bucket width
  }
}

TEST(LatencyRecorderTest, ZeroSamplesReportZeroes) {
  const LatencyRecorder recorder(2);
  const LatencyHistogram hist = recorder.op_histogram(Op::kDelete);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.min_ns(), 0u);
  EXPECT_EQ(hist.max_ns(), 0u);
  EXPECT_EQ(hist.mean_ns(), 0.0);
  for (const double p : {0.0, 50.0, 99.9, 100.0}) {
    EXPECT_EQ(hist.percentile_ns(p), 0u) << p;
  }
}

TEST(LatencyRecorderTest, OpsAndSpansAreIndependent) {
  LatencyRecorder recorder(2);
  recorder.record_op(Op::kGet, 100);
  recorder.record_span(Span::kOptimisticRead, 7);
  EXPECT_EQ(recorder.op_histogram(Op::kGet).count(), 1u);
  EXPECT_EQ(recorder.op_histogram(Op::kSet).count(), 0u);
  EXPECT_EQ(recorder.span_histogram(Span::kOptimisticRead).count(), 1u);
  EXPECT_EQ(recorder.span_histogram(Span::kLockedRead).count(), 0u);
}

TEST(LatencyRecorderTest, ResetClearsEverySlot) {
  LatencyRecorder recorder(3);
  for (int i = 0; i < 100; ++i) {
    recorder.record_op(Op::kTouch, 50);
    recorder.record_span(Span::kSsdFlush, 50);
  }
  recorder.reset();
  EXPECT_EQ(recorder.op_histogram(Op::kTouch).count(), 0u);
  EXPECT_EQ(recorder.span_histogram(Span::kSsdFlush).count(), 0u);
}

// Concurrent record + merge: readers may snapshot mid-record (approximate),
// but nothing tears, and once writers quiesce the counts are exact. This is
// the TSan proof for the relaxed-atomic recording path.
TEST(LatencyRecorderTest, ConcurrentRecordAndMergeIsRaceFreeAndExact) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  LatencyRecorder recorder(kThreads);
  std::atomic<bool> stop{false};

  std::thread merger([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const LatencyHistogram snapshot = recorder.op_histogram(Op::kGet);
      // Snapshot invariants that hold even mid-record.
      EXPECT_LE(snapshot.count(), kThreads * kPerThread);
      if (snapshot.count() > 0) {
        EXPECT_GE(snapshot.max_ns(), snapshot.min_ns());
      }
    }
  });

  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        recorder.record_op(Op::kGet, (i % 1000) + t + 1);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  merger.join();

  const LatencyHistogram final_hist = recorder.op_histogram(Op::kGet);
  EXPECT_EQ(final_hist.count(), kThreads * kPerThread);
  EXPECT_EQ(final_hist.min_ns(), 1u);
}

// ---------------------------------------------------------------------------
// OpTracer

TEST(OpTracerTest, ShiftZeroDisablesSampling) {
  OpTracer tracer(0);
  EXPECT_FALSE(tracer.enabled());
  std::uint64_t seq = 0;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(tracer.sample(seq));
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(OpTracerTest, SamplesEveryTwoToTheShift) {
  OpTracer tracer(/*sample_shift=*/2, /*slots=*/1, /*ring_capacity=*/64);
  EXPECT_TRUE(tracer.enabled());
  unsigned sampled = 0;
  std::uint64_t seq = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (tracer.sample(seq)) {
      EXPECT_EQ(seq, i);
      EXPECT_EQ(seq % 4, 0u);  // every 2^2-th request, starting at 0
      ++sampled;
    }
  }
  EXPECT_EQ(sampled, 16u);
}

TEST(OpTracerTest, RingWrapsKeepingNewestTraces) {
  constexpr std::size_t kCapacity = 4;
  OpTracer tracer(1, /*slots=*/1, kCapacity);
  for (std::uint64_t i = 0; i < 10; ++i) {
    Trace trace;
    trace.seq = i;
    trace.op = Op::kGet;
    trace.total_ns = i * 100;
    tracer.publish(trace);
  }
  const std::vector<Trace> kept = tracer.snapshot();
  ASSERT_EQ(kept.size(), kCapacity);
  // Oldest entries were overwritten; the newest kCapacity survive, sorted.
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(kept[i].seq, 10 - kCapacity + i);
  }
}

TEST(OpTracerTest, JsonCarriesSpansAndResetsClean) {
  OpTracer tracer(1, 1, 8);
  Trace trace;
  trace.seq = 42;
  trace.op = Op::kSet;
  trace.status = 0;
  trace.start_ns = 1000;
  trace.total_ns = 500;
  trace.add_span(Span::kStorePhase, 10, 400);
  trace.add_span(Span::kResponse, 410, 90);
  tracer.publish(trace);

  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"sample_shift\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seq\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"op\":\"set\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"span\":\"store_phase\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"duration_ns\":400"), std::string::npos) << json;
  EXPECT_NE(json.find("\"span\":\"response\""), std::string::npos) << json;

  tracer.reset();
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_NE(tracer.to_json().find("\"traces\":[]"), std::string::npos);
}

TEST(OpTracerTest, TraceSpanCapacityIsBounded) {
  Trace trace;
  for (std::uint32_t i = 0; i < Trace::kMaxSpans + 5; ++i) {
    trace.add_span(Span::kResponse, i, i);
  }
  EXPECT_EQ(trace.span_count, Trace::kMaxSpans);  // extras silently dropped
}

// Concurrent publish + snapshot from many threads (slot sharing included):
// the per-ring mutex keeps it race-free; TSan-checked via the stress label.
TEST(OpTracerTest, ConcurrentPublishAndSnapshot) {
  OpTracer tracer(1, /*slots=*/2, /*ring_capacity=*/16);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto traces = tracer.snapshot();
      EXPECT_LE(traces.size(), 2u * 16u);
    }
  });
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < 4; ++t) {
    writers.emplace_back([&tracer, t] {
      for (std::uint64_t i = 0; i < 20000; ++i) {
        std::uint64_t seq = 0;
        if (tracer.sample(seq)) {
          Trace trace;
          trace.seq = seq;
          trace.op = static_cast<Op>(t % metrics::kOpCount);
          tracer.publish(trace);
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(tracer.snapshot().empty());
}

}  // namespace
}  // namespace hykv
