#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace hykv {
namespace {

TEST(Crc32cTest, KnownVector) {
  // Canonical CRC32-C check value for the ASCII digits "123456789".
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, EmptyIsZero) { EXPECT_EQ(crc32c(""), 0u); }

TEST(Crc32cTest, SeedChaining) {
  // Chaining two halves through the seed must differ from plain concat only
  // via the documented pre/post-inversion; we simply require determinism and
  // sensitivity to the seed.
  const std::string data = "hello world";
  EXPECT_EQ(crc32c(data, 1), crc32c(data, 1));
  EXPECT_NE(crc32c(data, 1), crc32c(data, 2));
}

TEST(JenkinsTest, DeterministicAndSpread) {
  EXPECT_EQ(jenkins_oaat("key-1"), jenkins_oaat("key-1"));
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(jenkins_oaat("key-" + std::to_string(i)));
  }
  // No catastrophic collisions over a small key set.
  EXPECT_GE(seen.size(), 999u);
}

TEST(Xxh64Test, SeedAndLengthSensitivity) {
  const std::string data(100, 'x');
  EXPECT_NE(xxh64(data, 0), xxh64(data, 1));
  EXPECT_NE(xxh64(data.substr(0, 99), 0), xxh64(data, 0));
  EXPECT_EQ(xxh64(data, 7), xxh64(data.data(), data.size(), 7));
}

TEST(Xxh64Test, AllInputPathsCovered) {
  // Exercise <4, <8, <32 and >=32 byte paths.
  for (const std::size_t len : {0u, 3u, 7u, 15u, 31u, 32u, 33u, 100u, 1000u}) {
    const std::string a(len, 'a');
    std::string b = a;
    if (len > 0) b[len / 2] = 'b';
    EXPECT_EQ(xxh64(a), xxh64(a)) << len;
    if (len > 0) {
      EXPECT_NE(xxh64(a), xxh64(b)) << len;
    }
  }
}

TEST(Mix64Test, InjectiveOnSample) {
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 10000; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 10000u);
}

TEST(Fnv1aTest, MatchesReferenceBehaviour) {
  // FNV-1a of empty input with the standard offset basis is the basis.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

}  // namespace
}  // namespace hykv
