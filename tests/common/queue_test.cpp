#include "common/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace hykv {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BlockingQueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(got.load());
  q.push(7);
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(BlockingQueueTest, CloseDrainsThenReturnsNull) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueueTest, CloseWakesBlockedPoppers) {
  BlockingQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();
  consumer.join();
}

TEST(BlockingQueueTest, BoundedTryPushFailsWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BlockingQueueTest, BoundedPushBlocksUntilSpace) {
  BlockingQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BlockingQueueTest, PopForTimesOut) {
  BlockingQueue<int> q;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_for(std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(15));
}

TEST(BlockingQueueTest, TryPopNonBlocking) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(5);
  EXPECT_EQ(q.try_pop().value(), 5);
}

TEST(BlockingQueueTest, MpmcIntegrity) {
  BlockingQueue<int> q(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  hykv::Mutex mu;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  consumers.reserve(2);
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        const hykv::MutexLock lock(mu);
        EXPECT_TRUE(seen.insert(*v).second) << "duplicate " << *v;
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
}

TEST(BlockingQueueTest, SizeAndEmpty) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.empty());
  q.push(1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
}

}  // namespace
}  // namespace hykv
