#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace hykv {
namespace {

TEST(HistogramTest, EmptyIsZeroed) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.percentile_ns(99), 0u);
}

TEST(HistogramTest, BasicStatistics) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record_ns(v * 1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min_ns(), 1000u);
  EXPECT_EQ(h.max_ns(), 100000u);
  EXPECT_NEAR(h.mean_ns(), 50500.0, 1.0);
}

TEST(HistogramTest, PercentilesOrderedAndAccurate) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record_ns(v);
  const auto p50 = h.percentile_ns(50);
  const auto p90 = h.percentile_ns(90);
  const auto p99 = h.percentile_ns(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Log-linear buckets with 5 sub-bucket bits: <= ~3.2% relative error.
  EXPECT_NEAR(static_cast<double>(p50), 5000.0, 5000.0 * 0.04);
  EXPECT_NEAR(static_cast<double>(p99), 9900.0, 9900.0 * 0.04);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  LatencyHistogram h;
  h.record_ns(UINT64_MAX);
  h.record_ns(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max_ns(), UINT64_MAX);
  EXPECT_GE(h.percentile_ns(100), h.percentile_ns(0));
}

TEST(HistogramTest, MergeCombines) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.record_ns(100);
  for (int i = 0; i < 100; ++i) b.record_ns(10000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min_ns(), 100u);
  EXPECT_EQ(a.max_ns(), 10000u);
  EXPECT_NEAR(a.mean_ns(), 5050.0, 1.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.record_ns(123);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_ns(50), 0u);
}

TEST(HistogramTest, RecordChronoAndNegativeClamps) {
  LatencyHistogram h;
  h.record(std::chrono::microseconds(5));
  h.record(std::chrono::nanoseconds(-10));  // clamped to 0
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 5000u);
}

TEST(HistogramTest, SummaryMentionsCount) {
  LatencyHistogram h;
  for (int i = 0; i < 42; ++i) h.record_ns(1000);
  EXPECT_NE(h.summary().find("n=42"), std::string::npos);
}

}  // namespace
}  // namespace hykv
