#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include "common/sim_time.hpp"

namespace hykv::workload {
namespace {

using core::ApiMode;
using core::Design;
using core::TestBed;
using core::TestBedConfig;

TestBedConfig bed_config(Design design, std::size_t memory = 8 << 20) {
  TestBedConfig cfg;
  cfg.design = design;
  cfg.total_server_memory = memory;
  cfg.slab_bytes = 256 << 10;
  return cfg;
}

WorkloadConfig small_workload(ApiMode api) {
  WorkloadConfig cfg;
  cfg.key_count = 150;
  cfg.value_bytes = 16 << 10;
  cfg.operations = 300;
  cfg.read_fraction = 0.5;
  cfg.api = api;
  cfg.verify_values = true;
  return cfg;
}

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.02);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

TEST_F(WorkloadTest, DatasetHelpersAreConsistent) {
  const auto v1 = dataset_value(42, 1000);
  const auto v2 = dataset_value(42, 1000);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(v1.size(), 1000u);

  auto resolver = dataset_resolver(100, 1000);
  const auto hit = resolver(make_key(42));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, v1);
  EXPECT_FALSE(resolver(make_key(100)).has_value());  // out of range
  EXPECT_FALSE(resolver("garbage").has_value());
  EXPECT_FALSE(resolver("key-notahexnumber!!").has_value());
}

TEST_F(WorkloadTest, PreloadMakesDataResident) {
  TestBed bed(bed_config(Design::kRdmaMem));
  auto client = bed.make_client("c");
  WorkloadConfig cfg = small_workload(ApiMode::kBlocking);
  preload(*client, cfg);
  EXPECT_EQ(bed.store_stats().sets, cfg.key_count);
}

class WorkloadApiSweep : public WorkloadTest,
                         public ::testing::WithParamInterface<ApiMode> {};

TEST_P(WorkloadApiSweep, MixedWorkloadCompletesCleanly) {
  const Design design = GetParam() == ApiMode::kBlocking
                            ? Design::kHRdmaOptBlock
                            : (GetParam() == ApiMode::kNonBlockingB
                                   ? Design::kHRdmaOptNonbB
                                   : Design::kHRdmaOptNonbI);
  TestBed bed(bed_config(design, 2 << 20));  // small RAM: force SSD traffic
  auto client = bed.make_client("c");
  WorkloadConfig cfg = small_workload(GetParam());
  {
    sim::ScopedTimeScale preload_scale(0.0);
    preload(*client, cfg);
  }
  const auto result = run(*client, cfg);
  EXPECT_EQ(result.operations, cfg.operations);
  EXPECT_EQ(result.reads + result.writes, cfg.operations);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.verify_failures, 0u);
  EXPECT_EQ(result.misses, 0u);  // hybrid retains everything
  EXPECT_GT(result.hits, 0u);
  EXPECT_GT(result.total_time.count(), 0);
}

INSTANTIATE_TEST_SUITE_P(Apis, WorkloadApiSweep,
                         ::testing::Values(ApiMode::kBlocking,
                                           ApiMode::kNonBlockingB,
                                           ApiMode::kNonBlockingI),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ApiMode::kBlocking: return "Blocking";
                             case ApiMode::kNonBlockingB: return "NonBlockingB";
                             default: return "NonBlockingI";
                           }
                         });

TEST_F(WorkloadTest, InMemoryDesignServesMissesFromBackend) {
  TestBedConfig bcfg = bed_config(Design::kRdmaMem, 2 << 20);  // tiny RAM
  WorkloadConfig cfg = small_workload(ApiMode::kBlocking);
  bcfg.backend_resolver = dataset_resolver(cfg.key_count, cfg.value_bytes);
  TestBed bed(bcfg);
  auto client = bed.make_client("c");
  {
    sim::ScopedTimeScale preload_scale(0.0);
    preload(*client, cfg);  // overflows 2MB: LRU drops occur
  }
  ASSERT_GT(bed.store_stats().dropped_evictions, 0u);
  const auto result = run(*client, cfg);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.verify_failures, 0u);
  // Misses were served by the backend, transparently, so read results are
  // all hits from the workload's point of view.
  EXPECT_GT(bed.backend().fetches(), 0u);
  EXPECT_EQ(result.misses, 0u);
}

TEST_F(WorkloadTest, NonBlockingOverlapExceedsBlocking) {
  // The core claim of Fig. 7(a), at test scale.
  auto overlap_for = [&](Design design, ApiMode api, double read_fraction) {
    TestBed bed(bed_config(design, 2 << 20));
    auto client = bed.make_client("c");
    WorkloadConfig cfg = small_workload(api);
    cfg.read_fraction = read_fraction;
    cfg.operations = 200;
    {
      sim::ScopedTimeScale preload_scale(0.0);
      preload(*client, cfg);
    }
    return run(*client, cfg).overlap_fraction();
  };
  const double blocking = overlap_for(Design::kHRdmaOptBlock, ApiMode::kBlocking, 1.0);
  const double nonb_i = overlap_for(Design::kHRdmaOptNonbI, ApiMode::kNonBlockingI, 1.0);
  EXPECT_LT(blocking, 0.2);
  EXPECT_GT(nonb_i, 0.5);
  EXPECT_GT(nonb_i, blocking);
}

TEST_F(WorkloadTest, MultiClientThroughputAggregates) {
  TestBedConfig bcfg = bed_config(Design::kHRdmaOptNonbI, 8 << 20);
  bcfg.num_servers = 2;
  TestBed bed(bcfg);
  WorkloadConfig cfg = small_workload(ApiMode::kNonBlockingI);
  cfg.operations = 100;
  {
    auto loader = bed.make_client("loader");
    sim::ScopedTimeScale preload_scale(0.0);
    preload(*loader, cfg);
  }
  const auto result = run_multi(bed, 3, cfg);
  EXPECT_EQ(result.operations, 300u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.verify_failures, 0u);
  EXPECT_GT(result.throughput_kops(), 0.0);
}

TEST_F(WorkloadTest, BlockIoRoundTripsAllApis) {
  for (const ApiMode api :
       {ApiMode::kBlocking, ApiMode::kNonBlockingB, ApiMode::kNonBlockingI}) {
    TestBed bed(bed_config(api == ApiMode::kBlocking ? Design::kHRdmaOptBlock
                                                     : Design::kHRdmaOptNonbI,
                           2 << 20));
    auto client = bed.make_client("c");
    BlockIoConfig cfg;
    cfg.block_bytes = 512 << 10;
    cfg.chunk_bytes = 64 << 10;
    cfg.total_bytes = 4 << 20;  // 8 blocks
    cfg.api = api;
    const auto result = run_block_io(*client, cfg);
    EXPECT_EQ(result.blocks, 8u);
    EXPECT_EQ(result.errors, 0u) << static_cast<int>(api);
    EXPECT_EQ(result.verify_failures, 0u) << static_cast<int>(api);
    EXPECT_EQ(result.write_block_latency.count(), 8u);
    EXPECT_EQ(result.read_block_latency.count(), 8u);
  }
}

TEST_F(WorkloadTest, YcsbPresetsMatchDefinitions) {
  const auto a = ycsb_preset('A', 100, 1024, 500);
  EXPECT_DOUBLE_EQ(a.read_fraction, 0.5);
  EXPECT_EQ(a.pattern, Pattern::kZipf);
  EXPECT_EQ(a.key_count, 100u);
  EXPECT_EQ(a.value_bytes, 1024u);
  EXPECT_EQ(a.operations, 500u);
  EXPECT_DOUBLE_EQ(ycsb_preset('B', 1, 1, 1).read_fraction, 0.95);
  EXPECT_DOUBLE_EQ(ycsb_preset('C', 1, 1, 1).read_fraction, 1.0);
  const auto r = ycsb_preset('R', 1, 1, 1);
  EXPECT_DOUBLE_EQ(r.read_fraction, 0.99);
  EXPECT_EQ(r.pattern, Pattern::kZipf);
  const auto u = ycsb_preset('U', 1, 1, 1);
  EXPECT_EQ(u.pattern, Pattern::kUniform);
  EXPECT_DOUBLE_EQ(u.read_fraction, 0.5);
}

TEST_F(WorkloadTest, UniformPatternCoversKeySpaceEvenly) {
  TestBed bed(bed_config(Design::kRdmaMem));
  auto client = bed.make_client("c");
  WorkloadConfig cfg = small_workload(ApiMode::kBlocking);
  cfg.pattern = Pattern::kUniform;
  cfg.operations = 400;
  {
    sim::ScopedTimeScale preload_scale(0.0);
    preload(*client, cfg);
  }
  const auto result = run(*client, cfg);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.verify_failures, 0u);
}

TEST_F(WorkloadTest, ResultMergeAggregates) {
  WorkloadResult a, b;
  a.operations = 10;
  a.hits = 5;
  a.total_time = sim::ms(10);
  a.blocked_time = sim::ms(1);
  b.operations = 20;
  b.misses = 3;
  b.total_time = sim::ms(20);
  b.blocked_time = sim::ms(2);
  a.merge(b);
  EXPECT_EQ(a.operations, 30u);
  EXPECT_EQ(a.hits, 5u);
  EXPECT_EQ(a.misses, 3u);
  EXPECT_EQ(a.total_time, sim::ms(20));  // max
  EXPECT_EQ(a.blocked_time, sim::ms(3));
}

}  // namespace
}  // namespace hykv::workload
