// Chaos suite: YCSB-style traffic under seeded fault profiles across all
// three tiers of the failure model --
//   net    : message drop/duplication/delay + explicit link-down windows,
//   client : per-op deadlines, bounded retries, ring ejection/readmission,
//   server : transient SSD I/O errors and RAM-only degraded mode.
// The invariants checked here are the PR's contract: every request reaches a
// terminal status (nothing hangs), no bounce slot is ever leaked, the
// pending map drains, and counters balance. Fault schedules are pure
// functions of the profile seed, so failures reproduce under a fixed seed.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "core/testbed.hpp"
#include "store/hybrid_manager.hpp"
#include "ssd/io_engine.hpp"

namespace hykv {
namespace {

using core::Design;
using core::TestBed;
using core::TestBedConfig;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.02);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

/// Terminal statuses a faulted run may legitimately produce. Anything else
/// (or a hang, which the ctest timeout converts into a failure) is a bug.
bool terminal_under_chaos(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kNotFound:
    case StatusCode::kTimedOut:
    case StatusCode::kServerDown:
    case StatusCode::kIoError:
    case StatusCode::kOutOfMemory:
    case StatusCode::kBusy:  // shed by overload control: terminal, retryable
      return true;
    default:
      return false;
  }
}

/// Server-side balance invariant: every request a server accepted bumped
/// exactly one op-class counter, faults or not (duplicated/replayed messages
/// are requests too, so this holds on a lossy fabric).
void expect_server_counters_balance(TestBed& bed) {
  for (std::size_t s = 0; s < bed.num_servers(); ++s) {
    const auto counters = bed.server(s).counters();
    EXPECT_EQ(counters.requests, counters.ops_sum()) << "server " << s;
  }
}

/// Runs a mixed 40% set / 50% get / 10% del workload and returns the status
/// histogram. Every op is blocking, so merely returning proves termination.
std::map<StatusCode, int> run_mixed_ops(client::Client& client,
                                        int operations, std::uint64_t keys,
                                        std::size_t value_bytes,
                                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::map<StatusCode, int> statuses;
  std::vector<char> out;
  for (int i = 0; i < operations; ++i) {
    const std::string key = make_key(rng() % keys);
    const auto dice = rng() % 10;
    StatusCode code;
    if (dice < 4) {
      code = client.set(key, make_value(rng() % keys, value_bytes));
    } else if (dice < 9) {
      code = client.get(key, out);
    } else {
      code = client.del(key);
    }
    ++statuses[code];
  }
  return statuses;
}

// ---------------------------------------------------------------------------
// Tier 1: lossy fabric. Messages are dropped, duplicated and delayed, yet
// every blocking op terminates inside its deadline and the client leaks
// nothing.
TEST_F(ChaosTest, LossyFabricAllRequestsTerminate) {
  TestBedConfig cfg;
  cfg.design = Design::kRdmaMem;
  cfg.num_servers = 3;
  cfg.total_server_memory = 24 << 20;
  cfg.fabric_faults.drop_rate = 0.02;
  cfg.fabric_faults.duplicate_rate = 0.01;
  cfg.fabric_faults.delay_rate = 0.05;
  cfg.fabric_faults.extra_delay = sim::us(50);
  cfg.fabric_faults.seed = 0xC0FFEE;
  cfg.client_op_deadline = sim::ms(150);
  cfg.client_max_retries = 2;
  TestBed bed(cfg);
  auto client = bed.make_client("chaos");

  const int kOps = 400;
  const auto statuses = run_mixed_ops(*client, kOps, 64, 512, 1);

  int total = 0;
  for (const auto& [code, count] : statuses) {
    EXPECT_TRUE(terminal_under_chaos(code))
        << "unexpected status " << status_name(code);
    total += count;
  }
  EXPECT_EQ(total, kOps);  // every single op produced a verdict

  // Retries mean most ops still succeed despite 2% loss per message.
  EXPECT_GT(statuses.count(StatusCode::kOk) ? statuses.at(StatusCode::kOk) : 0,
            kOps / 2);

  // Nothing leaked: the bounce pool is whole and no request is in flight.
  EXPECT_EQ(client->pending_requests(), 0u);
  EXPECT_EQ(client->free_bounce_slots(), cfg.client_bounce_slots);

  // The injector actually did something (the profile is not a no-op), and
  // the counters see it: drops recorded on the sending endpoints.
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  const auto client_stats = bed.fabric().endpoint(client->endpoint_id())->stats();
  dropped += client_stats.faults_dropped;
  duplicated += client_stats.faults_duplicated;
  for (std::size_t s = 0; s < bed.num_servers(); ++s) {
    const auto stats = bed.fabric().endpoint(bed.server(s).endpoint_id())->stats();
    dropped += stats.faults_dropped;
    duplicated += stats.faults_duplicated;
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(duplicated, 0u);

  // Counters balance: each blocking op bumped exactly one op counter.
  const auto counters = client->counters();
  EXPECT_EQ(counters.sets + counters.gets + counters.deletes,
            static_cast<std::uint64_t>(kOps));
  // Each drop of a request or response costs one cancelled attempt.
  EXPECT_GT(counters.timeouts + counters.retries, 0u);
  expect_server_counters_balance(bed);
}

// ---------------------------------------------------------------------------
// Tier 2: server-down window. The victim's keys fail over to the surviving
// server after ejection, requests never hang, and the dead server is
// readmitted by a half-open probe once the link heals.
TEST_F(ChaosTest, ServerDownWindowEjectsAndReadmits) {
  TestBedConfig cfg;
  cfg.design = Design::kRdmaMem;
  cfg.num_servers = 2;
  cfg.total_server_memory = 16 << 20;
  cfg.fabric_faults.arm = true;  // link-down windows only, no random faults
  cfg.client_op_deadline = sim::ms(40);
  cfg.client_max_retries = 1;
  cfg.client_failover.eject_after = 2;
  cfg.client_failover.reprobe_after = sim::ms(60);
  TestBed bed(cfg);
  auto client = bed.make_client("chaos");

  // Find a key owned by server 0 so the window provably hits its owner.
  const net::EndpointId victim = bed.server(0).endpoint_id();
  std::string victim_key;
  for (std::uint64_t i = 0; i < 256; ++i) {
    if (client->ring().select(make_key(i)) == victim) {
      victim_key = make_key(i);
      break;
    }
  }
  ASSERT_FALSE(victim_key.empty());
  const auto value = make_value(7, 256);
  ASSERT_EQ(client->set(victim_key, value), StatusCode::kOk);

  bed.fabric().set_link_down(victim, true);

  // Every op terminates; after eject_after consecutive timeouts the ring
  // remaps the key to the live server and ops succeed again (failover).
  int successes_during_window = 0;
  for (int i = 0; i < 6; ++i) {
    const StatusCode code = client->set(victim_key, value);
    EXPECT_TRUE(terminal_under_chaos(code)) << status_name(code);
    if (ok(code)) ++successes_during_window;
  }
  EXPECT_EQ(client->ring().dead_count(), 1u);
  EXPECT_TRUE(client->ring().is_dead(victim));
  EXPECT_GT(successes_during_window, 0);  // failed over, not stuck
  const auto mid = client->counters();
  EXPECT_GT(mid.timeouts, 0u);

  // Heal the link, wait out the probe timer, and keep issuing: the
  // half-open probe readmits the server.
  bed.fabric().set_link_down(victim, false);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  bool readmitted = false;
  for (int i = 0; i < 50 && !readmitted; ++i) {
    (void)client->set(victim_key, value);
    readmitted = !client->ring().is_dead(victim);
    if (!readmitted) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(readmitted);
  EXPECT_EQ(client->ring().dead_count(), 0u);
  EXPECT_EQ(client->set(victim_key, value), StatusCode::kOk);
  EXPECT_EQ(client->pending_requests(), 0u);
  EXPECT_EQ(client->free_bounce_slots(), cfg.client_bounce_slots);
  expect_server_counters_balance(bed);
}

// ---------------------------------------------------------------------------
// Tier 3: failing SSD. The hybrid manager enters RAM-only degraded mode
// after repeated I/O errors (dropping evictions instead of wedging stores)
// and leaves it via a successful half-open flush once the device heals.
TEST_F(ChaosTest, SsdOutageDegradesToRamOnlyAndHeals) {
  ssd::StorageStack stack(SsdProfile::sata(), ssd::PageCacheConfig{});
  store::ManagerConfig cfg;
  cfg.mode = store::StorageMode::kHybrid;
  cfg.slab.slab_bytes = 64 << 10;
  cfg.slab.memory_limit = 256 << 10;  // tiny RAM: flushes start immediately
  cfg.flush_batch_bytes = 64 << 10;
  cfg.degrade_after_io_errors = 2;
  cfg.heal_probe_after = sim::ms(20);
  store::HybridSlabManager manager(cfg, &stack);

  stack.device().set_failed(true);  // hard outage from the start

  const auto value = make_value(1, 4 << 10);
  StageBreakdown stages;
  for (std::uint64_t i = 0; i < 200; ++i) {
    // Every set must succeed: the manager degrades instead of failing or
    // blocking behind the dead device.
    ASSERT_EQ(manager.set(make_key(i), value, 0, 0, &stages), StatusCode::kOk)
        << i;
  }
  auto stats = manager.stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_GE(stats.io_errors, 2u);
  EXPECT_GT(stats.dropped_evictions, 0u);  // data loss is counted, not silent
  EXPECT_EQ(stats.ssd_live_bytes, 0u);     // nothing ever became durable
  EXPECT_GT(stack.device().stats().io_errors, 0u);

  // Recently stored items are still served from RAM while degraded.
  std::vector<char> out;
  std::uint32_t flags = 0;
  EXPECT_EQ(manager.get(make_key(199), out, flags), StatusCode::kOk);
  EXPECT_EQ(out, value);

  // Device heals; after the probe timer the next flush succeeds and the
  // manager leaves degraded mode.
  stack.device().set_failed(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  for (std::uint64_t i = 200; i < 400; ++i) {
    ASSERT_EQ(manager.set(make_key(i), value, 0, 0, &stages), StatusCode::kOk)
        << i;
  }
  stats = manager.stats();
  EXPECT_FALSE(stats.degraded);
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.ssd_live_bytes, 0u);
}

// ---------------------------------------------------------------------------
// All three tiers at once -- the acceptance profile: >= 1% message loss, a
// server-down window in the middle, and a 0.5% SSD error rate, on a hybrid
// design whose working set overflows to flash.
TEST_F(ChaosTest, FullStackChaosEveryRequestCompletes) {
  TestBedConfig cfg;
  cfg.design = Design::kHRdmaOptBlock;
  cfg.num_servers = 2;
  cfg.total_server_memory = 512 << 10;  // 256 KiB/server: force SSD overflow
  cfg.slab_bytes = 64 << 10;
  cfg.fabric_faults.drop_rate = 0.01;
  cfg.fabric_faults.duplicate_rate = 0.005;
  cfg.fabric_faults.seed = 42;
  cfg.ssd_faults.error_rate = 0.005;
  cfg.ssd_faults.seed = 42;
  cfg.degrade_after_io_errors = 3;
  cfg.heal_probe_after = sim::ms(20);
  cfg.client_op_deadline = sim::ms(150);
  cfg.client_max_retries = 2;
  cfg.client_failover.eject_after = 3;
  cfg.client_failover.reprobe_after = sim::ms(50);
  TestBed bed(cfg);
  auto client = bed.make_client("chaos");

  const std::uint64_t kKeys = 512;
  const std::size_t kValueBytes = 4 << 10;
  const int kPhaseOps = 150;

  // Phase 1: chaos without the window.
  auto statuses = run_mixed_ops(*client, kPhaseOps, kKeys, kValueBytes, 11);

  // Phase 2: one server goes dark mid-run.
  const net::EndpointId victim = bed.server(1).endpoint_id();
  bed.fabric().set_link_down(victim, true);
  for (const auto& [code, count] :
       run_mixed_ops(*client, kPhaseOps, kKeys, kValueBytes, 12)) {
    statuses[code] += count;
  }

  // Phase 3: it comes back; the ring readmits it on a successful probe.
  bed.fabric().set_link_down(victim, false);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  for (const auto& [code, count] :
       run_mixed_ops(*client, kPhaseOps, kKeys, kValueBytes, 13)) {
    statuses[code] += count;
  }

  int total = 0;
  int successes = 0;
  for (const auto& [code, count] : statuses) {
    EXPECT_TRUE(terminal_under_chaos(code))
        << "unexpected status " << status_name(code);
    total += count;
    if (ok(code) || code == StatusCode::kNotFound) successes += count;
  }
  EXPECT_EQ(total, 3 * kPhaseOps);
  EXPECT_GT(successes, total / 2);  // the cluster stayed useful throughout

  // Leak invariants hold after the full ordeal.
  EXPECT_EQ(client->pending_requests(), 0u);
  EXPECT_EQ(client->free_bounce_slots(), cfg.client_bounce_slots);

  // Counters balance and the hybrid tier did real work under fire.
  const auto counters = client->counters();
  EXPECT_EQ(counters.sets + counters.gets + counters.deletes,
            static_cast<std::uint64_t>(total));
  const auto store = bed.store_stats();
  EXPECT_GT(store.flushes, 0u);  // the working set really overflowed
  expect_server_counters_balance(bed);
}

// ---------------------------------------------------------------------------
// Sharded store under fire: the same full-stack chaos profile on servers
// running 4 store shards each. Shards degrade and heal independently, so the
// invariants are the aggregate ones: every request terminates, counters
// balance, and no shard wedges the others.
TEST_F(ChaosTest, ShardedStoreSurvivesFullStackChaos) {
  TestBedConfig cfg;
  cfg.design = Design::kHRdmaOptNonbI;
  cfg.num_servers = 2;
  cfg.shards = 4;
  cfg.processing_threads = 2;
  cfg.total_server_memory = 4 << 20;  // 2 MiB/server over 4 shards
  cfg.slab_bytes = 64 << 10;
  cfg.fabric_faults.drop_rate = 0.01;
  cfg.fabric_faults.seed = 7;
  cfg.ssd_faults.error_rate = 0.01;
  cfg.ssd_faults.seed = 7;
  cfg.degrade_after_io_errors = 2;
  cfg.heal_probe_after = sim::ms(20);
  cfg.client_op_deadline = sim::ms(150);
  cfg.client_max_retries = 2;
  TestBed bed(cfg);
  for (std::size_t s = 0; s < bed.num_servers(); ++s) {
    ASSERT_EQ(bed.server(s).manager().num_shards(), 4u);
  }
  auto client = bed.make_client("chaos");

  const int kOps = 400;
  const auto statuses = run_mixed_ops(*client, kOps, 256, 4 << 10, 21);

  int total = 0;
  for (const auto& [code, count] : statuses) {
    EXPECT_TRUE(terminal_under_chaos(code))
        << "unexpected status " << status_name(code);
    total += count;
  }
  EXPECT_EQ(total, kOps);
  EXPECT_EQ(client->pending_requests(), 0u);
  EXPECT_EQ(client->free_bounce_slots(), cfg.client_bounce_slots);
  expect_server_counters_balance(bed);

  // The sharded hybrid tier did real work, and any degradation stayed
  // partial or healed -- never more degraded shards than exist.
  const auto store = bed.store_stats();
  EXPECT_GT(store.sets, 0u);
  EXPECT_LE(store.degraded_shards, 2u * 4u);
  if (store.degraded) {
    EXPECT_GT(store.degraded_shards, 0u);
  }
}

// ---------------------------------------------------------------------------
// Metastable retry storm (overload control, DESIGN.md §8). A link-down
// window turns every op into a full retry fan-out: with an unlimited retry
// budget the client amplifies the outage (every op burns all its retries
// against the dead link -- the classic storm that keeps a recovering system
// saturated). With a retry budget the bucket drains once, the storm damps,
// and after the window the client reaches a majority-success steady state.
// Every request terminates with a terminal status in both modes -- the
// storm is a throughput pathology, never a hang.
TEST_F(ChaosTest, RetryBudgetDampsRetryStorm) {
  struct StormResult {
    std::uint64_t window_retries = 0;
    std::uint64_t budget_exhausted = 0;
    int recovery_ok = 0;
    int recovery_total = 0;
  };

  const auto run_storm = [&](std::uint64_t retry_budget) -> StormResult {
    TestBedConfig cfg;
    cfg.design = Design::kRdmaMem;
    cfg.num_servers = 1;
    cfg.total_server_memory = 8 << 20;
    cfg.fabric_faults.arm = true;  // link-down windows only, no random faults
    // Generous deadline so every attempt's slice survives sanitizer
    // slowdown -- the storm/damping contrast, not timing, is under test.
    cfg.client_op_deadline = sim::ms(60);
    cfg.client_max_retries = 4;
    // No ejection: ring failover would damp the storm by failing fast, and
    // this test isolates the *budget* as the damping mechanism.
    cfg.client_failover.eject_after = 1u << 30;
    cfg.client_retry_budget = retry_budget;
    TestBed bed(cfg);
    auto client = bed.make_client("storm");
    const net::EndpointId server = bed.server(0).endpoint_id();
    const auto value = make_value(3, 256);

    // Warm phase: healthy traffic (also fills the refund ledger).
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(client->set(make_key(static_cast<std::uint64_t>(i)), value),
                StatusCode::kOk);
    }
    const auto warm = client->counters();

    // Fault window: the only server goes dark; every op must still
    // terminate (kTimedOut here -- nothing hangs).
    bed.fabric().set_link_down(server, true);
    constexpr int kWindowOps = 12;
    for (int i = 0; i < kWindowOps; ++i) {
      const StatusCode code =
          client->set(make_key(static_cast<std::uint64_t>(i)), value);
      EXPECT_TRUE(terminal_under_chaos(code)) << status_name(code);
      EXPECT_FALSE(ok(code));
    }
    const auto mid = client->counters();

    // Recovery phase: the link heals; a damped client converges to
    // majority success immediately.
    bed.fabric().set_link_down(server, false);
    StormResult result;
    constexpr int kRecoveryOps = 30;
    for (int i = 0; i < kRecoveryOps; ++i) {
      const StatusCode code =
          client->set(make_key(static_cast<std::uint64_t>(i)), value);
      EXPECT_TRUE(terminal_under_chaos(code)) << status_name(code);
      if (ok(code)) ++result.recovery_ok;
      ++result.recovery_total;
    }

    EXPECT_EQ(client->pending_requests(), 0u);
    EXPECT_EQ(client->free_bounce_slots(), cfg.client_bounce_slots);
    expect_server_counters_balance(bed);

    result.window_retries = mid.retries - warm.retries;
    result.budget_exhausted = client->counters().retry_budget_exhausted;
    return result;
  };

  const StormResult storm = run_storm(/*retry_budget=*/0);   // unlimited
  const StormResult damped = run_storm(/*retry_budget=*/5);

  // Unlimited budget: the window really was a storm -- retry attempts at
  // least matched the primary ops (each op wants max_retries of them; the
  // floor is loose so sanitizer slowdown cannot flake it).
  EXPECT_GE(storm.window_retries, 10u);
  EXPECT_EQ(storm.budget_exhausted, 0u);

  // Budgeted: the bucket (5 tokens, no refunds while the link is dark)
  // bounds the whole window's retry amplification to the budget.
  EXPECT_LE(damped.window_retries, 5u);
  EXPECT_GT(damped.budget_exhausted, 0u);
  EXPECT_LT(damped.window_retries, storm.window_retries);

  // Both reach majority success after the window; the damped client lost
  // none of its steady-state health to the budget.
  EXPECT_GT(storm.recovery_ok, storm.recovery_total / 2);
  EXPECT_GT(damped.recovery_ok, damped.recovery_total / 2);
}

// ---------------------------------------------------------------------------
// Doorbell batching under a lossy fabric (DESIGN.md §12). A dropped kOpBatch
// frame (or its batched response) takes several ops down with one message --
// the contract is that each affected op STILL terminates individually at its
// own deadline, later rounds keep working, and nothing leaks. Batching
// changes the blast radius of a drop, never the per-op semantics.
TEST_F(ChaosTest, BatchedFramesUnderDropFaultsTimeOutPerOp) {
  // Slightly slower clock so the TX engine's per-op costs let the queue
  // build up and coalescing actually happens under test.
  sim::set_time_scale(0.2);
  TestBedConfig cfg;
  cfg.design = Design::kRdmaMem;
  cfg.num_servers = 2;
  cfg.total_server_memory = 16 << 20;
  cfg.fabric_faults.drop_rate = 0.05;
  cfg.fabric_faults.seed = 0xBA7C4;
  cfg.client_op_deadline = sim::ms(150);
  cfg.client_max_retries = 2;
  cfg.client_batch_max_ops = 8;
  cfg.client_bounce_slot_bytes = 4096;
  TestBed bed(cfg);
  auto client = bed.make_client("chaos-batch");

  const std::uint64_t kKeys = 64;
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    keys.push_back(make_key(i));
    // Blocking seed sets ride the retry loop through the drops; any terminal
    // status is acceptable (a dropped set just leaves a future miss).
    const StatusCode code = client->set(keys.back(), make_value(i, 512));
    EXPECT_TRUE(terminal_under_chaos(code)) << status_name(code);
  }

  // Several mget rounds: every key must reach a terminal per-op verdict each
  // round, whatever frames the injector ate.
  int values_seen = 0;
  for (int round = 0; round < 4; ++round) {
    const auto results = client->mget_status(keys);
    ASSERT_EQ(results.size(), keys.size());
    for (const auto& result : results) {
      EXPECT_TRUE(terminal_under_chaos(result.status()))
          << status_name(result.status());
      if (result.ok()) ++values_seen;
    }
  }
  EXPECT_GT(values_seen, 0);  // the cluster stayed useful

  // Coalescing really happened, and the loss of whole frames leaked nothing:
  // the pending map drained and the bounce pool is whole.
  const auto cc = client->counters();
  EXPECT_GE(cc.batches_sent, 1u);
  EXPECT_GE(cc.batched_ops, 2u * cc.batches_sent);
  EXPECT_EQ(client->pending_requests(), 0u);
  EXPECT_EQ(client->free_bounce_slots(), cfg.client_bounce_slots);

  // Server-side accounting stayed exact per sub-op on whatever arrived.
  expect_server_counters_balance(bed);
  std::uint64_t server_batches = 0;
  for (std::size_t s = 0; s < bed.num_servers(); ++s) {
    server_batches += bed.server(s).counters().batches;
  }
  // Frames can be dropped in flight but never invented.
  EXPECT_LE(server_batches, cc.batches_sent);
}

}  // namespace
}  // namespace hykv
