// Overload control end to end (DESIGN.md §8): server-side admission
// shedding with kBusy, expired-on-arrival drops from propagated deadlines,
// the client's shared retry-token budget, the non-blocking fail-fast window,
// and -- critically -- the zero-overhead guarantee that with every knob at
// its default the wire bytes and counters are exactly the pre-overload
// behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "core/testbed.hpp"
#include "net/fabric.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace hykv {
namespace {

using core::Design;
using core::TestBed;
using core::TestBedConfig;

class OverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.02);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

// ---------------------------------------------------------------------------
// Expired-on-arrival: a raw endpoint lets the test forge a request whose
// propagated deadline is already in the past -- fully deterministic.

TEST_F(OverloadTest, ExpiredOnArrivalDroppedBeforeStorePhase) {
  TestBedConfig cfg;
  cfg.design = Design::kRdmaMem;
  cfg.total_server_memory = 8 << 20;
  TestBed bed(cfg);
  auto raw = bed.fabric().create_endpoint("forger");
  const net::EndpointId server = bed.server(0).endpoint_id();

  const std::string value = "must-not-be-stored";
  const auto inner = server::encode_set(
      {.key = "doomed", .value = {value.data(), value.size()}});

  // deadline_ns = 1 is epoch+1ns: expired for any running steady clock.
  raw->send(server, server::kOpSet, 1,
            server::with_deadline(1, inner));
  auto resp = raw->recv();
  ASSERT_TRUE(resp.ok());
  const auto decoded = server::decode_response(resp.value().payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, StatusCode::kBusy);

  // A far-future deadline passes through and the op executes normally.
  const auto forever = server::with_deadline(
      std::numeric_limits<std::int64_t>::max() / 2, inner);
  raw->send(server, server::kOpSet, 2, forever);
  resp = raw->recv();
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(server::decode_response(resp.value().payload).has_value());
  EXPECT_EQ(server::decode_response(resp.value().payload)->status,
            StatusCode::kOk);

  const auto counters = bed.server(0).counters();
  EXPECT_EQ(counters.expired_on_arrival, 1u);
  EXPECT_EQ(counters.sets, 1u);  // only the live-deadline set executed
  EXPECT_EQ(counters.requests, 2u);
  EXPECT_EQ(counters.requests, counters.ops_sum());

  // The expired set had no side effects.
  auto client = bed.make_client("checker");
  std::vector<char> out;
  EXPECT_EQ(client->get("doomed", out), StatusCode::kOk);  // from request 2
  raw->close();
}

// ---------------------------------------------------------------------------
// Zero overhead at defaults: a fake server captures the exact wire bytes.
// With every overload knob off the frames must be byte-for-byte the
// pre-overload encodings -- no deadline header, no behaviour change.

TEST_F(OverloadTest, DefaultsAreByteForBytePreOverload) {
  net::Fabric fabric(FabricProfile::fdr_rdma());
  auto fake_server = fabric.create_endpoint("fake-server");

  std::atomic<bool> saw_deadline{false};
  std::vector<char> captured;
  std::thread echo([&] {
    while (true) {
      auto msg = fake_server->recv();
      if (!msg.ok()) break;
      if (server::split_deadline(msg.value().payload).deadline_ns != 0) {
        saw_deadline.store(true);
      }
      if (captured.empty()) captured = msg.value().payload;
      fake_server->send(msg.value().src, server::kOpResponse,
                        msg.value().wr_id,
                        server::encode_response(StatusCode::kOk, 0));
    }
  });

  {
    client::ClientConfig ccfg;
    ccfg.servers = {fake_server->id()};
    // Deadlines on, every overload knob at its default: the wire must not
    // change. (propagate_deadline defaults to false.)
    ccfg.op_deadline = sim::ms(500);
    auto client = std::make_unique<client::Client>(fabric, ccfg);

    const std::string value = "payload-bytes";
    ASSERT_EQ(client->set("a-key", {value.data(), value.size()}, 7, 60),
              StatusCode::kOk);
    EXPECT_FALSE(saw_deadline.load());
    const auto expected = server::encode_set(
        {.key = "a-key",
         .value = {value.data(), value.size()},
         .flags = 7,
         .expiration = 60});
    ASSERT_EQ(captured.size(), expected.size());
    EXPECT_EQ(std::memcmp(captured.data(), expected.data(), expected.size()), 0);

    const auto counters = client->counters();
    EXPECT_EQ(counters.busy, 0u);
    EXPECT_EQ(counters.busy_fail_fast, 0u);
    EXPECT_EQ(counters.retry_budget_exhausted, 0u);
  }
  fake_server->close();
  echo.join();
}

TEST_F(OverloadTest, PropagateDeadlineWrapsTheFrame) {
  net::Fabric fabric(FabricProfile::fdr_rdma());
  auto fake_server = fabric.create_endpoint("fake-server");

  std::atomic<std::int64_t> seen_deadline{0};
  std::thread echo([&] {
    while (true) {
      auto msg = fake_server->recv();
      if (!msg.ok()) break;
      const auto env = server::split_deadline(msg.value().payload);
      if (env.deadline_ns != 0) seen_deadline.store(env.deadline_ns);
      // Reply against the *inner* frame like the real server does.
      fake_server->send(msg.value().src, server::kOpResponse,
                        msg.value().wr_id,
                        server::encode_response(StatusCode::kOk, 0));
    }
  });

  {
    client::ClientConfig ccfg;
    ccfg.servers = {fake_server->id()};
    ccfg.op_deadline = sim::ms(500);
    ccfg.propagate_deadline = true;
    auto client = std::make_unique<client::Client>(fabric, ccfg);

    const auto before = std::chrono::steady_clock::now().time_since_epoch();
    const std::string value = "v";
    ASSERT_EQ(client->set("k", {value.data(), value.size()}), StatusCode::kOk);
    const std::int64_t deadline = seen_deadline.load();
    ASSERT_NE(deadline, 0);  // the header arrived
    // Absolute steady-clock deadline: after issue time, within op_deadline+.
    EXPECT_GT(deadline, before.count());
    EXPECT_LT(deadline, (std::chrono::steady_clock::now().time_since_epoch() +
                         sim::ms(500)).count());
  }
  fake_server->close();
  echo.join();
}

// ---------------------------------------------------------------------------
// Retry budget: a black-hole server forces timeouts; the token bucket must
// bound retries and refill on success.

TEST_F(OverloadTest, RetryBudgetBoundsRetriesAndRefillsOnSuccess) {
  net::Fabric fabric(FabricProfile::fdr_rdma());
  auto fake_server = fabric.create_endpoint("fake-server");

  std::atomic<bool> respond{false};
  std::thread echo([&] {
    while (true) {
      auto msg = fake_server->recv();
      if (!msg.ok()) break;
      if (!respond.load()) continue;  // black hole: swallow the request
      fake_server->send(msg.value().src, server::kOpResponse,
                        msg.value().wr_id,
                        server::encode_response(StatusCode::kOk, 0));
    }
  });

  {
    client::ClientConfig ccfg;
    ccfg.servers = {fake_server->id()};
    ccfg.op_deadline = sim::ms(60);
    ccfg.max_retries = 5;
    ccfg.retry_backoff = sim::ms(1);
    ccfg.retry_budget = 1;  // one retry in the bucket
    ccfg.failover.eject_after = 1000000;  // keep ejection out of this test
    auto client = std::make_unique<client::Client>(fabric, ccfg);
    const std::string value = "v";

    // Silent server: attempt 0 times out, retry 1 spends the only token,
    // retries 2..5 are skipped (budget dry) -- the op ends kTimedOut.
    EXPECT_EQ(client->set("k", {value.data(), value.size()}),
              StatusCode::kTimedOut);
    auto counters = client->counters();
    EXPECT_EQ(counters.retries, 1u);
    EXPECT_GE(counters.retry_budget_exhausted, 1u);

    // A healthy round trip refunds the token...
    respond.store(true);
    EXPECT_EQ(client->set("k", {value.data(), value.size()}), StatusCode::kOk);

    // ...so the next black-hole op can afford exactly one retry again.
    respond.store(false);
    EXPECT_EQ(client->set("k", {value.data(), value.size()}),
              StatusCode::kTimedOut);
    counters = client->counters();
    EXPECT_EQ(counters.retries, 2u);
  }
  fake_server->close();
  echo.join();
}

// ---------------------------------------------------------------------------
// Fail-fast window: with max_pending_per_server in force, the non-blocking
// issue path refuses (kBusy) instead of queueing unbounded work.

TEST_F(OverloadTest, FailFastWindowBoundsNonBlockingIssues) {
  net::Fabric fabric(FabricProfile::fdr_rdma());
  auto fake_server = fabric.create_endpoint("fake-server");

  std::atomic<bool> respond{false};
  std::thread echo([&] {
    while (true) {
      auto msg = fake_server->recv();
      if (!msg.ok()) break;
      while (!respond.load() && !fake_server->closed()) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      fake_server->send(msg.value().src, server::kOpResponse,
                        msg.value().wr_id,
                        server::encode_response(StatusCode::kOk, 0));
    }
  });

  {
    client::ClientConfig ccfg;
    ccfg.servers = {fake_server->id()};
    ccfg.max_pending_per_server = 2;
    auto client = std::make_unique<client::Client>(fabric, ccfg);

    const std::string value = "v";
    client::Request r1, r2, r3;
    ASSERT_EQ(client->iset("k1", {value.data(), value.size()}, 0, 0, r1),
              StatusCode::kOk);
    ASSERT_EQ(client->iset("k2", {value.data(), value.size()}, 0, 0, r2),
              StatusCode::kOk);
    // Window of 2 is full: the third issue is refused locally -- kBusy
    // before any queueing, and the Request was never registered.
    EXPECT_EQ(client->iset("k3", {value.data(), value.size()}, 0, 0, r3),
              StatusCode::kBusy);
    EXPECT_EQ(client->counters().busy_fail_fast, 1u);
    EXPECT_EQ(client->pending_requests(), 2u);

    // Draining the window re-opens it.
    respond.store(true);
    client->wait(r1);
    client->wait(r2);
    EXPECT_EQ(r1.status(), StatusCode::kOk);
    EXPECT_EQ(r2.status(), StatusCode::kOk);
    ASSERT_EQ(client->iset("k3", {value.data(), value.size()}, 0, 0, r3),
              StatusCode::kOk);
    client->wait(r3);
    EXPECT_EQ(r3.status(), StatusCode::kOk);
    EXPECT_EQ(client->pending_requests(), 0u);
  }
  fake_server->close();
  echo.join();
}

// ---------------------------------------------------------------------------
// Server admission: an async server with a tiny admission bound sheds part
// of a burst with kBusy instead of stalling the receive loop, and the
// requests == ops_sum() invariant holds with shed in the sum.

TEST_F(OverloadTest, AsyncAdmissionShedsBurstWithBusy) {
  TestBedConfig cfg;
  cfg.design = Design::kHRdmaOptNonbI;
  cfg.total_server_memory = 32 << 20;
  cfg.processing_threads = 1;
  cfg.server_admission_queue_limit = 1;  // shed whenever one request waits
  TestBed bed(cfg);
  auto client = bed.make_client("burster");

  constexpr std::size_t kBurst = 512;
  constexpr std::size_t kValueBytes = 4 << 10;
  std::vector<std::vector<char>> values(kBurst);
  std::vector<std::unique_ptr<client::Request>> requests;
  requests.reserve(kBurst);
  for (std::size_t i = 0; i < kBurst; ++i) {
    values[i] = make_value(i, kValueBytes);
    requests.push_back(std::make_unique<client::Request>());
    ASSERT_EQ(client->iset(make_key(i), values[i], 0, 0, *requests[i]),
              StatusCode::kOk);
  }
  std::size_t ok_count = 0;
  std::size_t busy_count = 0;
  for (auto& req : requests) {
    client->wait(*req);  // every request terminates -- kOk or kBusy
    if (req->status() == StatusCode::kOk) {
      ++ok_count;
    } else if (req->status() == StatusCode::kBusy) {
      ++busy_count;
    } else {
      ADD_FAILURE() << "unexpected status " << to_string(req->status());
    }
  }
  EXPECT_EQ(ok_count + busy_count, kBurst);
  EXPECT_GT(busy_count, 0u) << "a 512-burst against a 1-deep admission queue "
                               "must shed";
  EXPECT_GT(ok_count, 0u);

  const auto counters = bed.server(0).counters();
  EXPECT_EQ(counters.shed, busy_count);
  EXPECT_EQ(counters.sets, ok_count);
  EXPECT_EQ(counters.requests, counters.ops_sum());
  EXPECT_EQ(client->pending_requests(), 0u);
  EXPECT_EQ(client->counters().busy, busy_count);

  // A shed server is alive, never ejected: the ring took no strikes.
  EXPECT_EQ(client->ring().dead_count(), 0u);

  // The stats wire exposes the shed count.
  const auto stats = client->stats_text(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("shed "), std::string::npos);
}

// With the knobs at defaults the same burst never sheds: blocking-push
// backpressure stalls the receive loop instead (pre-overload behaviour).
TEST_F(OverloadTest, DefaultAsyncServerNeverSheds) {
  TestBedConfig cfg;
  cfg.design = Design::kHRdmaOptNonbI;
  cfg.total_server_memory = 32 << 20;
  cfg.processing_threads = 1;
  TestBed bed(cfg);
  auto client = bed.make_client("burster");

  constexpr std::size_t kBurst = 128;
  std::vector<std::vector<char>> values(kBurst);
  std::vector<std::unique_ptr<client::Request>> requests;
  for (std::size_t i = 0; i < kBurst; ++i) {
    values[i] = make_value(i, 4 << 10);
    requests.push_back(std::make_unique<client::Request>());
    ASSERT_EQ(client->iset(make_key(i), values[i], 0, 0, *requests[i]),
              StatusCode::kOk);
  }
  for (auto& req : requests) {
    client->wait(*req);
    EXPECT_EQ(req->status(), StatusCode::kOk);
  }
  const auto counters = bed.server(0).counters();
  EXPECT_EQ(counters.shed, 0u);
  EXPECT_EQ(counters.expired_on_arrival, 0u);
  EXPECT_EQ(counters.sets, kBurst);
  EXPECT_EQ(counters.requests, counters.ops_sum());
}

}  // namespace
}  // namespace hykv
