#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"

namespace hykv::server {
namespace {

TEST(ProtocolTest, SetRoundTrip) {
  const auto value = make_value(1, 1000);
  const auto wire = encode_set(SetRequest{
      .key = "my-key", .value = value, .flags = 42, .expiration = 3600});
  const auto decoded = decode_set(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, "my-key");
  EXPECT_TRUE(std::equal(value.begin(), value.end(), decoded->value.begin(),
                         decoded->value.end()));
  EXPECT_EQ(decoded->flags, 42u);
  EXPECT_EQ(decoded->expiration, 3600);
}

TEST(ProtocolTest, SetEmptyValue) {
  const auto wire = encode_set(SetRequest{.key = "k", .value = {}, .flags = 0});
  const auto decoded = decode_set(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, "k");
  EXPECT_TRUE(decoded->value.empty());
}

TEST(ProtocolTest, KeyRequestRoundTrip) {
  const auto wire = encode_key_request("some-key");
  const auto decoded = decode_key_request(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, "some-key");
}

TEST(ProtocolTest, ResponseRoundTripWithValue) {
  const auto value = make_value(2, 512);
  const auto wire = encode_response(StatusCode::kOk, 9, value);
  const auto decoded = decode_response(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, StatusCode::kOk);
  EXPECT_EQ(decoded->flags, 9u);
  EXPECT_TRUE(std::equal(value.begin(), value.end(), decoded->value.begin(),
                         decoded->value.end()));
}

TEST(ProtocolTest, ResponseWithoutValue) {
  const auto wire = encode_response(StatusCode::kNotFound, 0);
  const auto decoded = decode_response(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, StatusCode::kNotFound);
  EXPECT_TRUE(decoded->value.empty());
}

TEST(ProtocolTest, MalformedInputsRejected) {
  EXPECT_FALSE(decode_set(std::span<const char>{}).has_value());
  const char short_buf[] = {1, 2, 3};
  EXPECT_FALSE(decode_set(std::span<const char>(short_buf, 3)).has_value());
  EXPECT_FALSE(decode_key_request(std::span<const char>(short_buf, 3)).has_value());
  EXPECT_FALSE(decode_response(std::span<const char>(short_buf, 3)).has_value());

  // key_len larger than remaining payload.
  std::vector<char> lying(8, 0);
  const std::uint32_t huge = 1000;
  std::memcpy(lying.data(), &huge, 4);
  EXPECT_FALSE(decode_key_request(lying).has_value());
  EXPECT_FALSE(decode_set(lying).has_value());
}

TEST(ProtocolTest, KeyRequestTrailingGarbageRejected) {
  auto wire = encode_key_request("abc");
  wire.push_back('x');
  EXPECT_FALSE(decode_key_request(wire).has_value());
}

}  // namespace
}  // namespace hykv::server
