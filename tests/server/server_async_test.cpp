// Async-server semantics: the bounded request-buffer pool, backpressure
// under floods, and correctness with multiple processing workers -- the
// "enhanced server" of Section V-B1.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "client/client.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "core/testbed.hpp"

namespace hykv {
namespace {

using core::Design;
using core::TestBed;
using core::TestBedConfig;

class ServerAsyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.02);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

TEST_F(ServerAsyncTest, TinyBufferPoolStillCompletesFloods) {
  TestBedConfig cfg;
  cfg.design = Design::kHRdmaOptNonbI;
  cfg.total_server_memory = 8 << 20;
  cfg.slab_bytes = 256 << 10;
  cfg.server_buffer_slots = 2;  // aggressive backpressure
  TestBed bed(cfg);
  auto client = bed.make_client("flood");

  constexpr int kOps = 300;
  std::vector<std::vector<char>> values;
  std::vector<std::unique_ptr<client::Request>> reqs;
  for (int i = 0; i < kOps; ++i) {
    values.push_back(make_value(static_cast<std::uint64_t>(i), 4096));
    reqs.push_back(std::make_unique<client::Request>());
    ASSERT_EQ(client->iset(make_key(static_cast<std::uint64_t>(i)), values.back(),
                           0, 0, *reqs.back()),
              StatusCode::kOk);
  }
  for (auto& req : reqs) {
    client->wait(*req);
    ASSERT_EQ(req->status(), StatusCode::kOk);
  }
  EXPECT_EQ(bed.store_stats().sets, static_cast<std::uint64_t>(kOps));
  // Nothing dropped under backpressure.
  std::vector<char> out;
  for (int i = 0; i < kOps; i += 17) {
    ASSERT_EQ(client->get(make_key(static_cast<std::uint64_t>(i)), out),
              StatusCode::kOk);
    EXPECT_EQ(out, values[static_cast<std::size_t>(i)]);
  }
}

TEST_F(ServerAsyncTest, MultipleWorkersPreserveCorrectness) {
  TestBedConfig cfg;
  cfg.design = Design::kHRdmaOptNonbB;
  cfg.total_server_memory = 4 << 20;  // forces SSD traffic too
  cfg.slab_bytes = 256 << 10;
  cfg.processing_threads = 3;
  TestBed bed(cfg);
  auto client = bed.make_client("c");

  constexpr std::uint64_t kKeys = 150;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    client::Request req;
    ASSERT_EQ(client->bset(make_key(i), make_value(i, 20 << 10), 0, 0, req),
              StatusCode::kOk);
    client->wait(req);
    ASSERT_EQ(req.status(), StatusCode::kOk);
  }
  std::vector<char> out;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_EQ(client->get(make_key(i), out), StatusCode::kOk) << i;
    ASSERT_EQ(out, make_value(i, 20 << 10)) << i;
  }
  EXPECT_EQ(bed.store_stats().checksum_failures, 0u);
}

TEST_F(ServerAsyncTest, StopWhileFloodedShutsDownCleanly) {
  TestBedConfig cfg;
  cfg.design = Design::kHRdmaOptNonbI;
  cfg.total_server_memory = 8 << 20;
  cfg.slab_bytes = 256 << 10;
  cfg.server_buffer_slots = 4;
  TestBed bed(cfg);
  auto client = bed.make_client("c");
  std::vector<std::vector<char>> values;
  std::vector<std::unique_ptr<client::Request>> reqs;
  for (int i = 0; i < 100; ++i) {
    values.push_back(make_value(static_cast<std::uint64_t>(i), 8192));
    reqs.push_back(std::make_unique<client::Request>());
    ASSERT_EQ(client->iset(make_key(static_cast<std::uint64_t>(i)), values.back(),
                           0, 0, *reqs.back()),
              StatusCode::kOk);
  }
  bed.server(0).stop();  // mid-flood shutdown must not hang or crash
  // Outstanding requests either completed before the stop or are cancelled
  // by us; nothing may deadlock.
  for (auto& req : reqs) {
    (void)client->wait_for(*req, sim::ms(100));
    EXPECT_TRUE(req->done());
  }
}

}  // namespace
}  // namespace hykv
