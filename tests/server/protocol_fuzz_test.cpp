// Robustness: the wire decoders must never crash, over-read, or accept
// structurally impossible frames, no matter what bytes arrive. Exercised
// with (a) pure random payloads and (b) truncations/mutations of every valid
// encoding -- the classic protocol-fuzz corpus.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include <cstring>

#include "server/protocol.hpp"

namespace hykv::server {
namespace {

// Sink that stops the optimiser from deleting the touch loops.
volatile long g_elision_sink = 0;

void decode_everything(std::span<const char> payload) {
  // Each decoder either returns nullopt or an object whose views stay inside
  // `payload`. Touch every byte of every returned view to let ASan/valgrind
  // catch over-reads.
  auto touch = [&](std::span<const char> view) {
    long sum = 0;
    for (const char c : view) sum += c;
    g_elision_sink = g_elision_sink + sum;
  };
  if (const auto set = decode_set(payload)) {
    touch(std::span<const char>(set->key.data(), set->key.size()));
    touch(set->value);
  }
  if (const auto key = decode_key_request(payload)) {
    touch(std::span<const char>(key->key.data(), key->key.size()));
  }
  if (const auto resp = decode_response(payload)) touch(resp->value);
  if (const auto counter = decode_counter(payload)) {
    touch(std::span<const char>(counter->key.data(), counter->key.size()));
  }
  if (const auto tr = decode_touch(payload)) {
    touch(std::span<const char>(tr->key.data(), tr->key.size()));
  }
  if (const auto cr = decode_cas(payload)) {
    touch(std::span<const char>(cr->key.data(), cr->key.size()));
    touch(cr->value);
  }
  (void)decode_counter_value(payload);
  // Batch frames: every sub-view must stay inside `payload`, and the nested
  // bodies are run back through the single-op decoders like the server does.
  if (const auto batch = decode_batch(payload)) {
    for (const auto& item : *batch) touch(item.payload);
  }
  if (const auto bresp = decode_batch_response(payload)) {
    for (const auto& item : *bresp) touch(item.payload);
  }
  // The deadline splitter is lenient by design (no header -> no deadline,
  // inner == payload) but its inner view must still stay inside `payload`.
  const auto env = split_deadline(payload);
  touch(env.inner);
}

// A representative well-formed kOpBatch frame for the corpus loops.
std::vector<char> sample_batch_frame(std::span<const char> value) {
  const auto set_body = encode_set({.key = "bk", .value = value, .flags = 1});
  const auto get_body = encode_key_request("bk");
  const BatchItem items[] = {
      {.opcode = kOpSet, .wr_id = 11, .payload = set_body},
      {.opcode = kOpGet, .wr_id = 12, .payload = get_body},
  };
  return encode_batch(items);
}

// A representative well-formed kOpBatchResponse frame.
std::vector<char> sample_batch_response_frame(std::span<const char> value) {
  const auto ok_body = encode_response(StatusCode::kOk, 0);
  const auto val_body = encode_response(StatusCode::kOk, 3, value);
  const BatchResponseItem items[] = {
      {.wr_id = 11, .payload = ok_body},
      {.wr_id = 12, .payload = val_body},
  };
  return encode_batch_response(items);
}

TEST(ProtocolFuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xF022);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t len = rng.next_below(200);
    std::vector<char> payload(len);
    for (auto& b : payload) b = static_cast<char>(rng.next() & 0xFF);
    decode_everything(payload);
  }
}

TEST(ProtocolFuzzTest, TruncationsOfValidFramesAreRejectedOrSafe) {
  const auto value = make_value(1, 100);
  const std::vector<std::vector<char>> corpus = {
      encode_set({.key = "some-key", .value = value, .flags = 3, .expiration = 60}),
      encode_key_request("another-key"),
      encode_response(StatusCode::kOk, 7, value),
      encode_counter("counter-key", 42),
      encode_touch("touch-key", 1234),
      encode_cas({.key = "cas-key", .value = value, .flags = 1,
                  .expiration = 2, .cas = 99}),
      encode_counter_value(123456789),
      // Overload-control frames: deadline-wrapped requests and the kBusy
      // status byte on the response path.
      with_deadline(123456789, encode_key_request("deadline-key")),
      with_deadline(1, encode_set({.key = "dl", .value = value})),
      encode_response(StatusCode::kBusy, 0),
      // Doorbell-batching frames: a coalesced request frame (bare and
      // deadline-wrapped) and a batched response.
      sample_batch_frame(value),
      with_deadline(777, sample_batch_frame(value)),
      sample_batch_response_frame(value),
  };
  for (const auto& frame : corpus) {
    for (std::size_t cut = 0; cut <= frame.size(); ++cut) {
      decode_everything(std::span<const char>(frame.data(), cut));
    }
  }
}

TEST(ProtocolFuzzTest, SingleByteMutationsAreSafe) {
  Rng rng(0xB17F117);
  const auto value = make_value(2, 64);
  auto frame = encode_set({.key = "mutate-me", .value = value, .flags = 1});
  for (int round = 0; round < 3000; ++round) {
    auto mutated = frame;
    mutated[rng.next_below(mutated.size())] = static_cast<char>(rng.next() & 0xFF);
    decode_everything(mutated);
  }
}

TEST(ProtocolFuzzTest, DeadlineHeaderLenientDecode) {
  const auto inner = encode_key_request("k");

  // Well-formed: the deadline comes back and inner is exactly the payload.
  const auto wrapped = with_deadline(42, inner);
  const auto env = split_deadline(wrapped);
  EXPECT_EQ(env.deadline_ns, 42);
  ASSERT_EQ(env.inner.size(), inner.size());
  EXPECT_EQ(std::memcmp(env.inner.data(), inner.data(), inner.size()), 0);

  // No header: no deadline, payload untouched.
  const auto bare = split_deadline(inner);
  EXPECT_EQ(bare.deadline_ns, 0);
  EXPECT_EQ(bare.inner.data(), inner.data());
  EXPECT_EQ(bare.inner.size(), inner.size());

  // Truncated after the magic: "no deadline", payload untouched -- the inner
  // decoder then rejects the frame as malformed; never a crash.
  for (std::size_t cut = 0; cut < 12; ++cut) {
    const auto trunc = split_deadline(std::span<const char>(wrapped.data(), cut));
    EXPECT_EQ(trunc.deadline_ns, 0) << cut;
    EXPECT_EQ(trunc.inner.size(), cut) << cut;
  }

  // Nonsense (non-positive) deadline values decode as "no deadline".
  for (const std::int64_t bogus : {std::int64_t{0}, std::int64_t{-1}}) {
    const auto evil = with_deadline(bogus, inner);
    EXPECT_EQ(split_deadline(evil).deadline_ns, 0) << bogus;
  }
}

TEST(ProtocolFuzzTest, BusyStatusByteRoundTrips) {
  const auto frame = encode_response(StatusCode::kBusy, 0);
  const auto resp = decode_response(frame);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kBusy);
  EXPECT_TRUE(resp->value.empty());
}

TEST(ProtocolFuzzTest, BatchFrameRoundTrips) {
  const auto value = make_value(3, 80);
  const auto frame = sample_batch_frame(value);
  const auto items = decode_batch(frame);
  ASSERT_TRUE(items.has_value());
  ASSERT_EQ(items->size(), 2u);
  EXPECT_EQ((*items)[0].opcode, kOpSet);
  EXPECT_EQ((*items)[0].wr_id, 11u);
  EXPECT_EQ((*items)[1].opcode, kOpGet);
  EXPECT_EQ((*items)[1].wr_id, 12u);
  // The nested bodies decode with the single-op decoders, unchanged.
  const auto set = decode_set((*items)[0].payload);
  ASSERT_TRUE(set.has_value());
  EXPECT_EQ(set->key, "bk");
  const auto get = decode_key_request((*items)[1].payload);
  ASSERT_TRUE(get.has_value());
  EXPECT_EQ(get->key, "bk");

  const auto resp_frame = sample_batch_response_frame(value);
  const auto resps = decode_batch_response(resp_frame);
  ASSERT_TRUE(resps.has_value());
  ASSERT_EQ(resps->size(), 2u);
  EXPECT_EQ((*resps)[0].wr_id, 11u);
  EXPECT_EQ((*resps)[1].wr_id, 12u);
  const auto second = decode_response((*resps)[1].payload);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, StatusCode::kOk);
  EXPECT_EQ(second->flags, 3u);
  EXPECT_EQ(second->value.size(), value.size());
}

TEST(ProtocolFuzzTest, ZeroOpBatchFramesRejected) {
  // A frame claiming zero sub-ops is structurally impossible (the TX engine
  // never wraps an empty run) -- malformed, not an empty success.
  const std::vector<char> zero(4, 0);
  EXPECT_FALSE(decode_batch(zero).has_value());
  EXPECT_FALSE(decode_batch_response(zero).has_value());
}

TEST(ProtocolFuzzTest, OversizedBatchCountRejectedWithoutAllocating) {
  // A hostile count larger than the remaining bytes could possibly hold must
  // be rejected before any reserve() -- 0xFFFFFFFF items must not allocate.
  std::vector<char> evil(12, 0);
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(evil.data(), &huge, 4);
  EXPECT_FALSE(decode_batch(evil).has_value());
  EXPECT_FALSE(decode_batch_response(evil).has_value());
}

TEST(ProtocolFuzzTest, TruncatedAndPaddedBatchFramesRejected) {
  const auto value = make_value(4, 48);
  const auto frame = sample_batch_frame(value);
  // Every proper prefix is malformed (the count promises more than arrives).
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_FALSE(
        decode_batch(std::span<const char>(frame.data(), cut)).has_value())
        << cut;
  }
  // Trailing garbage is malformed too: item lengths must consume the frame.
  auto padded = frame;
  padded.push_back('x');
  EXPECT_FALSE(decode_batch(padded).has_value());

  const auto resp = sample_batch_response_frame(value);
  for (std::size_t cut = 0; cut < resp.size(); ++cut) {
    EXPECT_FALSE(
        decode_batch_response(std::span<const char>(resp.data(), cut))
            .has_value())
        << cut;
  }
}

TEST(ProtocolFuzzTest, BatchFrameSingleByteMutationsAreSafe) {
  Rng rng(0xBA7C4);
  const auto value = make_value(5, 64);
  const auto frame = sample_batch_frame(value);
  for (int round = 0; round < 3000; ++round) {
    auto mutated = frame;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next() & 0xFF);
    decode_everything(mutated);
  }
}

TEST(ProtocolFuzzTest, LengthFieldOverflowRejected) {
  // A key_len of ~4GB with a short payload must not wrap any arithmetic.
  std::vector<char> evil(16, 0);
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(evil.data(), &huge, 4);
  EXPECT_FALSE(decode_set(evil).has_value());
  EXPECT_FALSE(decode_key_request(evil).has_value());
  EXPECT_FALSE(decode_counter(evil).has_value());
  EXPECT_FALSE(decode_touch(evil).has_value());
  EXPECT_FALSE(decode_cas(evil).has_value());
}

}  // namespace
}  // namespace hykv::server
