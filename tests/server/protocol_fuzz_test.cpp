// Robustness: the wire decoders must never crash, over-read, or accept
// structurally impossible frames, no matter what bytes arrive. Exercised
// with (a) pure random payloads and (b) truncations/mutations of every valid
// encoding -- the classic protocol-fuzz corpus.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include <cstring>

#include "server/protocol.hpp"

namespace hykv::server {
namespace {

// Sink that stops the optimiser from deleting the touch loops.
volatile long g_elision_sink = 0;

void decode_everything(std::span<const char> payload) {
  // Each decoder either returns nullopt or an object whose views stay inside
  // `payload`. Touch every byte of every returned view to let ASan/valgrind
  // catch over-reads.
  auto touch = [&](std::span<const char> view) {
    long sum = 0;
    for (const char c : view) sum += c;
    g_elision_sink = g_elision_sink + sum;
  };
  if (const auto set = decode_set(payload)) {
    touch(std::span<const char>(set->key.data(), set->key.size()));
    touch(set->value);
  }
  if (const auto key = decode_key_request(payload)) {
    touch(std::span<const char>(key->key.data(), key->key.size()));
  }
  if (const auto resp = decode_response(payload)) touch(resp->value);
  if (const auto counter = decode_counter(payload)) {
    touch(std::span<const char>(counter->key.data(), counter->key.size()));
  }
  if (const auto tr = decode_touch(payload)) {
    touch(std::span<const char>(tr->key.data(), tr->key.size()));
  }
  if (const auto cr = decode_cas(payload)) {
    touch(std::span<const char>(cr->key.data(), cr->key.size()));
    touch(cr->value);
  }
  (void)decode_counter_value(payload);
  // The deadline splitter is lenient by design (no header -> no deadline,
  // inner == payload) but its inner view must still stay inside `payload`.
  const auto env = split_deadline(payload);
  touch(env.inner);
}

TEST(ProtocolFuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xF022);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t len = rng.next_below(200);
    std::vector<char> payload(len);
    for (auto& b : payload) b = static_cast<char>(rng.next() & 0xFF);
    decode_everything(payload);
  }
}

TEST(ProtocolFuzzTest, TruncationsOfValidFramesAreRejectedOrSafe) {
  const auto value = make_value(1, 100);
  const std::vector<std::vector<char>> corpus = {
      encode_set({.key = "some-key", .value = value, .flags = 3, .expiration = 60}),
      encode_key_request("another-key"),
      encode_response(StatusCode::kOk, 7, value),
      encode_counter("counter-key", 42),
      encode_touch("touch-key", 1234),
      encode_cas({.key = "cas-key", .value = value, .flags = 1,
                  .expiration = 2, .cas = 99}),
      encode_counter_value(123456789),
      // Overload-control frames: deadline-wrapped requests and the kBusy
      // status byte on the response path.
      with_deadline(123456789, encode_key_request("deadline-key")),
      with_deadline(1, encode_set({.key = "dl", .value = value})),
      encode_response(StatusCode::kBusy, 0),
  };
  for (const auto& frame : corpus) {
    for (std::size_t cut = 0; cut <= frame.size(); ++cut) {
      decode_everything(std::span<const char>(frame.data(), cut));
    }
  }
}

TEST(ProtocolFuzzTest, SingleByteMutationsAreSafe) {
  Rng rng(0xB17F117);
  const auto value = make_value(2, 64);
  auto frame = encode_set({.key = "mutate-me", .value = value, .flags = 1});
  for (int round = 0; round < 3000; ++round) {
    auto mutated = frame;
    mutated[rng.next_below(mutated.size())] = static_cast<char>(rng.next() & 0xFF);
    decode_everything(mutated);
  }
}

TEST(ProtocolFuzzTest, DeadlineHeaderLenientDecode) {
  const auto inner = encode_key_request("k");

  // Well-formed: the deadline comes back and inner is exactly the payload.
  const auto wrapped = with_deadline(42, inner);
  const auto env = split_deadline(wrapped);
  EXPECT_EQ(env.deadline_ns, 42);
  ASSERT_EQ(env.inner.size(), inner.size());
  EXPECT_EQ(std::memcmp(env.inner.data(), inner.data(), inner.size()), 0);

  // No header: no deadline, payload untouched.
  const auto bare = split_deadline(inner);
  EXPECT_EQ(bare.deadline_ns, 0);
  EXPECT_EQ(bare.inner.data(), inner.data());
  EXPECT_EQ(bare.inner.size(), inner.size());

  // Truncated after the magic: "no deadline", payload untouched -- the inner
  // decoder then rejects the frame as malformed; never a crash.
  for (std::size_t cut = 0; cut < 12; ++cut) {
    const auto trunc = split_deadline(std::span<const char>(wrapped.data(), cut));
    EXPECT_EQ(trunc.deadline_ns, 0) << cut;
    EXPECT_EQ(trunc.inner.size(), cut) << cut;
  }

  // Nonsense (non-positive) deadline values decode as "no deadline".
  for (const std::int64_t bogus : {std::int64_t{0}, std::int64_t{-1}}) {
    const auto evil = with_deadline(bogus, inner);
    EXPECT_EQ(split_deadline(evil).deadline_ns, 0) << bogus;
  }
}

TEST(ProtocolFuzzTest, BusyStatusByteRoundTrips) {
  const auto frame = encode_response(StatusCode::kBusy, 0);
  const auto resp = decode_response(frame);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, StatusCode::kBusy);
  EXPECT_TRUE(resp->value.empty());
}

TEST(ProtocolFuzzTest, LengthFieldOverflowRejected) {
  // A key_len of ~4GB with a short payload must not wrap any arithmetic.
  std::vector<char> evil(16, 0);
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(evil.data(), &huge, 4);
  EXPECT_FALSE(decode_set(evil).has_value());
  EXPECT_FALSE(decode_key_request(evil).has_value());
  EXPECT_FALSE(decode_counter(evil).has_value());
  EXPECT_FALSE(decode_touch(evil).has_value());
  EXPECT_FALSE(decode_cas(evil).has_value());
}

}  // namespace
}  // namespace hykv::server
