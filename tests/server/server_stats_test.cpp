// Server metrics: the stats-text renderer (regression for the old fixed
// snprintf buffer, which could truncate/overread once counters grew wide),
// the touch op counter, and the requests == ops_sum() balance invariant of
// the de-serialized per-worker counter slots.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "core/testbed.hpp"
#include "server/server.hpp"

namespace hykv {
namespace {

using core::Design;
using core::TestBed;
using core::TestBedConfig;

// ---------------------------------------------------------------------------
// Renderer unit tests (no server needed: render_stats_text is a free
// function precisely so it can be fed adversarial counter values).

server::ServerCounters maximal_counters() {
  constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
  server::ServerCounters c;
  c.requests = kMax;
  c.sets = kMax;
  c.gets = kMax;
  c.deletes = kMax;
  c.touches = kMax;
  c.admin = kMax;
  c.malformed = kMax;
  c.shed = kMax;
  c.expired_on_arrival = kMax;
  return c;
}

store::ManagerStats maximal_store_stats() {
  constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
  store::ManagerStats s;
  s.sets = kMax;
  s.ram_hits = kMax;
  s.ssd_hits = kMax;
  s.misses = kMax;
  s.expired = kMax;
  s.optimistic_hits = kMax;
  s.optimistic_retries = kMax;
  s.locked_fallbacks = kMax;
  s.flushes = kMax;
  s.flushed_bytes = kMax;
  s.promotions = kMax;
  s.dropped_evictions = kMax;
  s.ssd_live_bytes = kMax;
  s.io_errors = kMax;
  s.degraded = true;
  s.degraded_shards = std::numeric_limits<std::uint32_t>::max();
  return s;
}

TEST(RenderStatsTest, MaximalCountersRenderCompletelyAndWellFormed) {
  store::SlabStats slab;
  slab.slab_pages = std::numeric_limits<std::size_t>::max();
  slab.reserved_bytes = std::numeric_limits<std::size_t>::max();
  slab.used_chunks = std::numeric_limits<std::size_t>::max();

  const std::string text = server::render_stats_text(
      maximal_counters(), maximal_store_stats(), slab,
      std::numeric_limits<std::size_t>::max(), 256);

  // The old fixed-size buffer truncated exactly this case; the renderer
  // must now emit every line in full, terminated, with no embedded NULs.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(text.find('\0'), std::string::npos);

  const std::string max64 = std::to_string(std::numeric_limits<std::uint64_t>::max());
  for (const char* name :
       {"requests", "sets", "gets", "deletes", "touches", "admin", "malformed",
        "shed", "expired_on_arrival",
        "items", "ram_hits", "ssd_hits", "misses", "expired",
        "optimistic_hits", "optimistic_retries", "locked_fallbacks", "flushes",
        "flushed_bytes", "promotions", "dropped_evictions", "ssd_live_bytes",
        "io_errors", "degraded", "degraded_shards", "shards", "slab_pages",
        "slab_reserved_bytes", "slab_used_chunks"}) {
    EXPECT_NE(text.find(std::string(name) + " "), std::string::npos) << name;
  }
  EXPECT_NE(text.find("requests " + max64 + "\n"), std::string::npos);
  EXPECT_NE(text.find("slab_used_chunks " + max64 + "\n"), std::string::npos);
  EXPECT_NE(text.find("degraded 1\n"), std::string::npos);
  EXPECT_NE(text.find("shards 256\n"), std::string::npos);

  // Every line parses as "<name> <uint>\n" -- nothing truncated mid-line.
  std::istringstream lines(text);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const auto space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    EXPECT_EQ(value.find_first_not_of("0123456789"), std::string::npos) << line;
    ++count;
  }
  EXPECT_EQ(count, 29u);
}

TEST(RenderStatsTest, ZeroCountersRenderAllLines) {
  const std::string text = server::render_stats_text(
      server::ServerCounters{}, store::ManagerStats{}, store::SlabStats{}, 0, 1);
  EXPECT_NE(text.find("requests 0\n"), std::string::npos);
  EXPECT_NE(text.find("degraded 0\n"), std::string::npos);
  EXPECT_NE(text.find("shards 1\n"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(ServerCountersTest, OpsSumBalancesAcrossAllClasses) {
  server::ServerCounters c;
  c.sets = 3;
  c.gets = 5;
  c.deletes = 2;
  c.touches = 7;
  c.admin = 1;
  c.malformed = 4;
  c.shed = 6;
  c.expired_on_arrival = 8;
  EXPECT_EQ(c.ops_sum(), 36u);
}

// ---------------------------------------------------------------------------
// End-to-end: the touch opcode lands in its own counter (it used to be
// dropped entirely, unbalancing requests vs per-op sums) and every op class
// keeps requests == ops_sum().

class ServerStatsE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.02);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

TEST_F(ServerStatsE2eTest, TouchIsCountedAndCountersBalance) {
  TestBedConfig cfg;
  cfg.design = Design::kRdmaMem;
  cfg.total_server_memory = 8 << 20;
  TestBed bed(cfg);
  auto client = bed.make_client("c");

  const std::string value = "v";
  ASSERT_EQ(client->set("k", {value.data(), value.size()}, 0, 3600),
            StatusCode::kOk);
  ASSERT_EQ(client->touch("k", 60), StatusCode::kOk);
  ASSERT_EQ(client->touch("gone", 60), StatusCode::kNotFound);
  std::vector<char> out;
  ASSERT_EQ(client->get("k", out), StatusCode::kOk);
  ASSERT_EQ(client->del("k"), StatusCode::kOk);
  ASSERT_EQ(client->flush_all(), StatusCode::kOk);

  const auto counters = bed.server(0).counters();
  EXPECT_EQ(counters.touches, 2u);  // hit and miss both count as a touch
  EXPECT_EQ(counters.sets, 1u);
  EXPECT_EQ(counters.gets, 1u);
  EXPECT_EQ(counters.deletes, 1u);
  EXPECT_EQ(counters.admin, 1u);
  EXPECT_EQ(counters.malformed, 0u);
  EXPECT_EQ(counters.requests, 6u);
  EXPECT_EQ(counters.requests, counters.ops_sum());

  // The stats text the wire serves reflects the same counters.
  const auto stats = client->stats_text(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("touches 2"), std::string::npos) << stats.value();

  // reset_metrics zeroes every slot.
  bed.reset_metrics();
  const auto zeroed = bed.server(0).counters();
  EXPECT_EQ(zeroed.requests, 0u);
  EXPECT_EQ(zeroed.ops_sum(), 0u);
}

TEST_F(ServerStatsE2eTest, AsyncWorkersBalanceAcrossMetricSlots) {
  // Async design: the per-op counters live in per-worker slots; the merged
  // view must still balance after traffic fanned out over the workers.
  TestBedConfig cfg;
  cfg.design = Design::kHRdmaOptNonbI;
  cfg.total_server_memory = 8 << 20;
  cfg.processing_threads = 2;
  TestBed bed(cfg);
  auto client = bed.make_client("c");

  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_EQ(client->set(make_key(i), make_value(i, 512)), StatusCode::kOk);
  }
  std::vector<char> out;
  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_EQ(client->get(make_key(i), out), StatusCode::kOk);
  }
  ASSERT_EQ(client->touch(make_key(0), 60), StatusCode::kOk);

  const auto counters = bed.server(0).counters();
  EXPECT_EQ(counters.sets, 64u);
  EXPECT_EQ(counters.gets, 64u);
  EXPECT_EQ(counters.touches, 1u);
  EXPECT_EQ(counters.requests, 129u);
  EXPECT_EQ(counters.requests, counters.ops_sum());
}

}  // namespace
}  // namespace hykv
