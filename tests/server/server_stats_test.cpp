// Server metrics: the stats-text renderer (regression for the old fixed
// snprintf buffer, which could truncate/overread once counters grew wide),
// the touch op counter, the requests == ops_sum() balance invariant of the
// de-serialized per-worker counter slots, and the `stats latency` / `stats
// trace` observability surface (schema round-trips, legacy byte-identity).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "common/metrics.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "core/testbed.hpp"
#include "server/server.hpp"

namespace hykv {
namespace {

using core::Design;
using core::TestBed;
using core::TestBedConfig;

// ---------------------------------------------------------------------------
// Renderer unit tests (no server needed: render_stats_text is a free
// function precisely so it can be fed adversarial counter values).

server::ServerCounters maximal_counters() {
  constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
  server::ServerCounters c;
  c.requests = kMax;
  c.sets = kMax;
  c.gets = kMax;
  c.deletes = kMax;
  c.touches = kMax;
  c.admin = kMax;
  c.malformed = kMax;
  c.shed = kMax;
  c.expired_on_arrival = kMax;
  return c;
}

store::ManagerStats maximal_store_stats() {
  constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
  store::ManagerStats s;
  s.sets = kMax;
  s.ram_hits = kMax;
  s.ssd_hits = kMax;
  s.misses = kMax;
  s.expired = kMax;
  s.optimistic_hits = kMax;
  s.optimistic_retries = kMax;
  s.locked_fallbacks = kMax;
  s.flushes = kMax;
  s.flushed_bytes = kMax;
  s.promotions = kMax;
  s.dropped_evictions = kMax;
  s.ssd_live_bytes = kMax;
  s.io_errors = kMax;
  s.degraded = true;
  s.degraded_shards = std::numeric_limits<std::uint32_t>::max();
  return s;
}

TEST(RenderStatsTest, MaximalCountersRenderCompletelyAndWellFormed) {
  store::SlabStats slab;
  slab.slab_pages = std::numeric_limits<std::size_t>::max();
  slab.reserved_bytes = std::numeric_limits<std::size_t>::max();
  slab.used_chunks = std::numeric_limits<std::size_t>::max();

  const std::string text = server::render_stats_text(
      maximal_counters(), maximal_store_stats(), slab,
      std::numeric_limits<std::size_t>::max(), 256);

  // The old fixed-size buffer truncated exactly this case; the renderer
  // must now emit every line in full, terminated, with no embedded NULs.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(text.find('\0'), std::string::npos);

  const std::string max64 = std::to_string(std::numeric_limits<std::uint64_t>::max());
  for (const char* name :
       {"requests", "sets", "gets", "deletes", "touches", "admin", "malformed",
        "shed", "expired_on_arrival",
        "items", "ram_hits", "ssd_hits", "misses", "expired",
        "optimistic_hits", "optimistic_retries", "locked_fallbacks", "flushes",
        "flushed_bytes", "promotions", "dropped_evictions", "ssd_live_bytes",
        "io_errors", "degraded", "degraded_shards", "shards", "slab_pages",
        "slab_reserved_bytes", "slab_used_chunks"}) {
    EXPECT_NE(text.find(std::string(name) + " "), std::string::npos) << name;
  }
  EXPECT_NE(text.find("requests " + max64 + "\n"), std::string::npos);
  EXPECT_NE(text.find("slab_used_chunks " + max64 + "\n"), std::string::npos);
  EXPECT_NE(text.find("degraded 1\n"), std::string::npos);
  EXPECT_NE(text.find("shards 256\n"), std::string::npos);

  // Every line parses as "<name> <uint>\n" -- nothing truncated mid-line --
  // and the emitted rows are exactly the schema table, in table order
  // (stats_field_names() and the renderer iterate the same array, so this
  // is the compatibility contract, not a magic line count).
  const std::vector<std::string_view> schema = server::stats_field_names();
  std::istringstream lines(text);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const auto space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    ASSERT_LT(count, schema.size()) << "extra line: " << line;
    EXPECT_EQ(line.substr(0, space), schema[count]) << "row " << count;
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    EXPECT_EQ(value.find_first_not_of("0123456789"), std::string::npos) << line;
    ++count;
  }
  EXPECT_EQ(count, schema.size());
}

TEST(RenderStatsTest, SchemaKeepsFrozenPrefixOrder) {
  // Compatibility guarantee (server.hpp): existing rows and their relative
  // order are frozen; new rows may only be appended. This pins the prefix
  // that existed when the guarantee was made.
  const std::vector<std::string_view> schema = server::stats_field_names();
  const std::vector<std::string_view> frozen = {
      "requests", "sets", "gets", "deletes", "touches", "admin", "malformed",
      "shed", "expired_on_arrival",
      "items", "ram_hits", "ssd_hits", "misses", "expired",
      "optimistic_hits", "optimistic_retries", "locked_fallbacks", "flushes",
      "flushed_bytes", "promotions", "dropped_evictions", "ssd_live_bytes",
      "io_errors", "degraded", "degraded_shards", "shards", "slab_pages",
      "slab_reserved_bytes", "slab_used_chunks"};
  ASSERT_GE(schema.size(), frozen.size());
  for (std::size_t i = 0; i < frozen.size(); ++i) {
    EXPECT_EQ(schema[i], frozen[i]) << "row " << i;
  }
}

TEST(RenderLatencyTest, EmitsEveryFieldInSchemaOrder) {
  metrics::LatencyRecorder recorder(2);
  recorder.record_op(metrics::Op::kGet, 1000);
  recorder.record_op(metrics::Op::kSet, 2000);
  recorder.record_span(metrics::Span::kStorePhase, 500);

  const std::string text = server::render_latency_text(recorder);
  const std::vector<std::string> schema = server::latency_field_names();

  std::istringstream lines(text);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const auto space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_LT(count, schema.size()) << "extra line: " << line;
    EXPECT_EQ(line.substr(0, space), schema[count]) << "row " << count;
    const std::string value = line.substr(space + 1);
    EXPECT_EQ(value.find_first_not_of("0123456789"), std::string::npos) << line;
    ++count;
  }
  EXPECT_EQ(count, schema.size());
  EXPECT_NE(text.find("latency_recording 1\n"), std::string::npos);
  EXPECT_NE(text.find("latency_get_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("latency_set_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("span_store_phase_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("latency_delete_count 0\n"), std::string::npos);
}

TEST(RenderStatsTest, ZeroCountersRenderAllLines) {
  const std::string text = server::render_stats_text(
      server::ServerCounters{}, store::ManagerStats{}, store::SlabStats{}, 0, 1);
  EXPECT_NE(text.find("requests 0\n"), std::string::npos);
  EXPECT_NE(text.find("degraded 0\n"), std::string::npos);
  EXPECT_NE(text.find("shards 1\n"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(ServerCountersTest, OpsSumBalancesAcrossAllClasses) {
  server::ServerCounters c;
  c.sets = 3;
  c.gets = 5;
  c.deletes = 2;
  c.touches = 7;
  c.admin = 1;
  c.malformed = 4;
  c.shed = 6;
  c.expired_on_arrival = 8;
  EXPECT_EQ(c.ops_sum(), 36u);
}

// ---------------------------------------------------------------------------
// End-to-end: the touch opcode lands in its own counter (it used to be
// dropped entirely, unbalancing requests vs per-op sums) and every op class
// keeps requests == ops_sum().

class ServerStatsE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.02);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

TEST_F(ServerStatsE2eTest, TouchIsCountedAndCountersBalance) {
  TestBedConfig cfg;
  cfg.design = Design::kRdmaMem;
  cfg.total_server_memory = 8 << 20;
  TestBed bed(cfg);
  auto client = bed.make_client("c");

  const std::string value = "v";
  ASSERT_EQ(client->set("k", {value.data(), value.size()}, 0, 3600),
            StatusCode::kOk);
  ASSERT_EQ(client->touch("k", 60), StatusCode::kOk);
  ASSERT_EQ(client->touch("gone", 60), StatusCode::kNotFound);
  std::vector<char> out;
  ASSERT_EQ(client->get("k", out), StatusCode::kOk);
  ASSERT_EQ(client->del("k"), StatusCode::kOk);
  ASSERT_EQ(client->flush_all(), StatusCode::kOk);

  const auto counters = bed.server(0).counters();
  EXPECT_EQ(counters.touches, 2u);  // hit and miss both count as a touch
  EXPECT_EQ(counters.sets, 1u);
  EXPECT_EQ(counters.gets, 1u);
  EXPECT_EQ(counters.deletes, 1u);
  EXPECT_EQ(counters.admin, 1u);
  EXPECT_EQ(counters.malformed, 0u);
  EXPECT_EQ(counters.requests, 6u);
  EXPECT_EQ(counters.requests, counters.ops_sum());

  // The stats text the wire serves reflects the same counters.
  const auto stats = client->stats_text(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("touches 2"), std::string::npos) << stats.value();

  // reset_metrics zeroes every slot.
  bed.reset_metrics();
  const auto zeroed = bed.server(0).counters();
  EXPECT_EQ(zeroed.requests, 0u);
  EXPECT_EQ(zeroed.ops_sum(), 0u);
}

TEST_F(ServerStatsE2eTest, AsyncWorkersBalanceAcrossMetricSlots) {
  // Async design: the per-op counters live in per-worker slots; the merged
  // view must still balance after traffic fanned out over the workers.
  TestBedConfig cfg;
  cfg.design = Design::kHRdmaOptNonbI;
  cfg.total_server_memory = 8 << 20;
  cfg.processing_threads = 2;
  TestBed bed(cfg);
  auto client = bed.make_client("c");

  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_EQ(client->set(make_key(i), make_value(i, 512)), StatusCode::kOk);
  }
  std::vector<char> out;
  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_EQ(client->get(make_key(i), out), StatusCode::kOk);
  }
  ASSERT_EQ(client->touch(make_key(0), 60), StatusCode::kOk);

  const auto counters = bed.server(0).counters();
  EXPECT_EQ(counters.sets, 64u);
  EXPECT_EQ(counters.gets, 64u);
  EXPECT_EQ(counters.touches, 1u);
  EXPECT_EQ(counters.requests, 129u);
  EXPECT_EQ(counters.requests, counters.ops_sum());
}

// ---------------------------------------------------------------------------
// `stats latency` / `stats trace`: the wire observability surface.

std::map<std::string, std::uint64_t> parse_stats(const std::string& text) {
  std::map<std::string, std::uint64_t> out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const auto space = line.find(' ');
    if (space == std::string::npos) continue;
    out[line.substr(0, space)] = std::stoull(line.substr(space + 1));
  }
  return out;
}

TEST_F(ServerStatsE2eTest, StatsLatencyRoundTripsAndBalancesAgainstCounters) {
  TestBedConfig cfg;
  cfg.design = Design::kRdmaMem;
  cfg.total_server_memory = 8 << 20;
  TestBed bed(cfg);
  auto client = bed.make_client("c");

  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_EQ(client->set(make_key(i), make_value(i, 256)), StatusCode::kOk);
  }
  std::vector<char> out;
  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_EQ(client->get(make_key(i), out), StatusCode::kOk);
  }
  ASSERT_EQ(client->del(make_key(0)), StatusCode::kOk);
  ASSERT_EQ(client->touch(make_key(1), 60), StatusCode::kOk);

  const auto text = client->stats_text(0, "latency");
  ASSERT_TRUE(text.ok()) << to_string(text.status());
  const auto stats = parse_stats(text.value());

  // Every schema field arrives, in schema order, integer-valued.
  const std::vector<std::string> schema = server::latency_field_names();
  {
    std::istringstream lines(text.value());
    std::string line;
    std::size_t row = 0;
    while (std::getline(lines, line)) {
      ASSERT_LT(row, schema.size()) << "extra line: " << line;
      EXPECT_EQ(line.substr(0, line.find(' ')), schema[row]) << "row " << row;
      ++row;
    }
    EXPECT_EQ(row, schema.size());
  }

  EXPECT_EQ(stats.at("latency_recording"), 1u);
  EXPECT_EQ(stats.at("latency_set_count"), 16u);
  EXPECT_EQ(stats.at("latency_get_count"), 16u);
  EXPECT_EQ(stats.at("latency_delete_count"), 1u);
  EXPECT_EQ(stats.at("latency_touch_count"), 1u);

  // Percentiles are monotone and bounded by sane values for a served GET.
  const std::uint64_t p50 = stats.at("latency_get_p50_ns");
  const std::uint64_t p95 = stats.at("latency_get_p95_ns");
  const std::uint64_t p99 = stats.at("latency_get_p99_ns");
  const std::uint64_t p999 = stats.at("latency_get_p999_ns");
  EXPECT_GT(p50, 0u);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, p999);
  EXPECT_GT(stats.at("latency_get_mean_ns"), 0u);

  // The documented invariant (docs/METRICS.md): recorded op latencies cover
  // every executed request -- requests minus the ones dropped before
  // execution (shed, expired on arrival). The `stats latency` request itself
  // was still in flight when its own histogram snapshot was taken, so allow
  // exactly that one-request skew on the admin row.
  const auto counters = bed.server(0).counters();
  const std::uint64_t recorded =
      stats.at("latency_set_count") + stats.at("latency_get_count") +
      stats.at("latency_delete_count") + stats.at("latency_touch_count") +
      stats.at("latency_admin_count") + stats.at("latency_other_count");
  const std::uint64_t executed =
      counters.requests - counters.shed - counters.expired_on_arrival;
  EXPECT_GE(recorded + 1, executed);
  EXPECT_LE(recorded, executed);

  // Store-phase and response spans saw every executed request's dispatch;
  // the optimistic/locked read spans partition the GETs.
  EXPECT_GT(stats.at("span_store_phase_count"), 0u);
  EXPECT_GT(stats.at("span_response_count"), 0u);
  EXPECT_EQ(stats.at("span_optimistic_read_count") +
                stats.at("span_locked_read_count"),
            16u);
  EXPECT_GT(stats.at("span_fabric_transfer_count"), 0u);
}

TEST_F(ServerStatsE2eTest, LegacyStatsBytesIdenticalWithRecordingOnAndOff) {
  // The frozen `stats` format must not change when latency recording is
  // enabled (the default) vs disabled: same ops -> byte-identical text.
  auto run = [](bool record_latency) {
    TestBedConfig cfg;
    cfg.design = Design::kRdmaMem;
    cfg.total_server_memory = 8 << 20;
    cfg.server_record_latency = record_latency;
    TestBed bed(cfg);
    auto client = bed.make_client("c");
    const std::string value = "v";
    EXPECT_EQ(client->set("k", {value.data(), value.size()}, 0, 3600),
              StatusCode::kOk);
    std::vector<char> out;
    EXPECT_EQ(client->get("k", out), StatusCode::kOk);
    EXPECT_EQ(client->touch("k", 60), StatusCode::kOk);
    EXPECT_EQ(client->del("k"), StatusCode::kOk);
    auto text = client->stats_text(0);
    EXPECT_TRUE(text.ok());
    return text.ok() ? text.value() : std::string{};
  };
  const std::string with_recording = run(true);
  const std::string without_recording = run(false);
  ASSERT_FALSE(with_recording.empty());
  EXPECT_EQ(with_recording, without_recording);
}

TEST_F(ServerStatsE2eTest, LatencyQueryReportsRecordingOffWhenDisabled) {
  TestBedConfig cfg;
  cfg.design = Design::kRdmaMem;
  cfg.total_server_memory = 8 << 20;
  cfg.server_record_latency = false;
  TestBed bed(cfg);
  auto client = bed.make_client("c");
  const auto text = client->stats_text(0, "latency");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "latency_recording 0\n");
}

TEST_F(ServerStatsE2eTest, TraceSubcommandReturnsSampledTimelines) {
  TestBedConfig cfg;
  cfg.design = Design::kRdmaMem;
  cfg.total_server_memory = 8 << 20;
  cfg.server_trace_sample_shift = 1;  // trace every 2nd request
  TestBed bed(cfg);
  auto client = bed.make_client("c");

  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_EQ(client->set(make_key(i), make_value(i, 128)), StatusCode::kOk);
  }
  std::vector<char> out;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_EQ(client->get(make_key(i), out), StatusCode::kOk);
  }

  const auto text = client->stats_text(0, "trace");
  ASSERT_TRUE(text.ok());
  const std::string& json = text.value();
  EXPECT_NE(json.find("\"sample_shift\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"traces\":["), std::string::npos) << json;
  // 16 requests at shift 1 -> ~8 sampled; at least one is a set or get with
  // a store-phase span in its timeline.
  EXPECT_NE(json.find("\"seq\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_ns\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"span\":\"store_phase\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"span\":\"response\""), std::string::npos) << json;
}

TEST_F(ServerStatsE2eTest, TraceSubcommandReportsEmptyWhenDisabled) {
  TestBedConfig cfg;
  cfg.design = Design::kRdmaMem;
  cfg.total_server_memory = 8 << 20;
  TestBed bed(cfg);  // trace_sample_shift defaults to 0 (off)
  auto client = bed.make_client("c");
  const auto text = client->stats_text(0, "trace");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "{\"sample_shift\":0,\"traces\":[]}\n");
}

TEST_F(ServerStatsE2eTest, UnknownStatsSubcommandIsRejectedButCounted) {
  TestBedConfig cfg;
  cfg.design = Design::kRdmaMem;
  cfg.total_server_memory = 8 << 20;
  TestBed bed(cfg);
  auto client = bed.make_client("c");
  const auto text = client->stats_text(0, "nonsense");
  EXPECT_EQ(text.status(), StatusCode::kInvalidArgument);
  // Still an admin op: requests == ops_sum() must keep holding.
  const auto counters = bed.server(0).counters();
  EXPECT_EQ(counters.admin, 1u);
  EXPECT_EQ(counters.requests, counters.ops_sum());
}

TEST_F(ServerStatsE2eTest, ClientRecordsIssueToCompleteLatency) {
  TestBedConfig cfg;
  cfg.design = Design::kRdmaMem;
  cfg.total_server_memory = 8 << 20;
  TestBed bed(cfg);
  auto client = bed.make_client("c");

  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_EQ(client->set(make_key(i), make_value(i, 128)), StatusCode::kOk);
  }
  std::vector<char> out;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_EQ(client->get(make_key(i), out), StatusCode::kOk);
  }

  const LatencyHistogram sets = client->op_latency(metrics::Op::kSet);
  const LatencyHistogram gets = client->op_latency(metrics::Op::kGet);
  EXPECT_EQ(sets.count(), 8u);
  EXPECT_EQ(gets.count(), 8u);
  // Client-observed latency includes the wire both ways, so it can't be
  // below the server-observed end-to-end latency of the same op.
  EXPECT_GT(gets.min_ns(), 0u);
  EXPECT_LE(gets.percentile_ns(50), gets.percentile_ns(99.9));

  client->reset_metrics();
  EXPECT_EQ(client->op_latency(metrics::Op::kGet).count(), 0u);
}

}  // namespace
}  // namespace hykv
