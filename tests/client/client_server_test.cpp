// End-to-end tests: real client library against a real server over the
// simulated fabric, covering the paper's full API surface.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "client/client.hpp"
#include "client/compat.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "core/testbed.hpp"
#include "server/server.hpp"

namespace hykv {
namespace {

using core::Design;
using core::TestBed;
using core::TestBedConfig;

class ClientServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.02);
  }
  void TearDown() override { sim::set_time_scale(1.0); }

  static TestBedConfig small_bed(Design design) {
    TestBedConfig cfg;
    cfg.design = design;
    cfg.total_server_memory = 8 << 20;
    cfg.slab_bytes = 256 << 10;
    return cfg;
  }
};

TEST_F(ClientServerTest, BlockingSetGetDelete) {
  TestBed bed(small_bed(Design::kRdmaMem));
  auto client = bed.make_client("c0");
  const auto value = make_value(1, 32 << 10);
  ASSERT_EQ(client->set("alpha", value, 5), StatusCode::kOk);

  std::vector<char> out;
  std::uint32_t flags = 0;
  ASSERT_EQ(client->get("alpha", out, &flags), StatusCode::kOk);
  EXPECT_EQ(out, value);
  EXPECT_EQ(flags, 5u);

  ASSERT_EQ(client->del("alpha"), StatusCode::kOk);
  EXPECT_EQ(client->del("alpha"), StatusCode::kNotFound);
}

TEST_F(ClientServerTest, GetMissWithoutBackendReturnsNotFound) {
  TestBedConfig cfg = small_bed(Design::kHRdmaDef);  // hybrid: no backend
  TestBed bed(cfg);
  auto client = bed.make_client("c0");
  std::vector<char> out;
  EXPECT_EQ(client->get("missing", out), StatusCode::kNotFound);
}

TEST_F(ClientServerTest, GetMissHitsBackendAndRepopulates) {
  TestBedConfig cfg = small_bed(Design::kRdmaMem);
  TestBed bed(cfg);
  bed.backend().put("db-key", make_value(9, 4096));
  auto client = bed.make_client("c0");

  std::vector<char> out;
  ASSERT_EQ(client->get("db-key", out), StatusCode::kOk);  // miss -> backend
  EXPECT_EQ(out, make_value(9, 4096));
  EXPECT_EQ(bed.backend().fetches(), 1u);

  out.clear();
  ASSERT_EQ(client->get("db-key", out), StatusCode::kOk);  // now cached
  EXPECT_EQ(out, make_value(9, 4096));
  EXPECT_EQ(bed.backend().fetches(), 1u);  // no second backend trip
  EXPECT_GT(client->breakdown().total_ns(Stage::kMissPenalty), 0u);
}

TEST_F(ClientServerTest, NonBlockingIsetIgetRoundTrip) {
  TestBed bed(small_bed(Design::kHRdmaOptNonbI));
  auto client = bed.make_client("c0");

  const auto value = make_value(3, 16 << 10);
  client::Request set_req;
  ASSERT_EQ(client->iset("nb-key", value, 7, 0, set_req), StatusCode::kOk);
  client->wait(set_req);
  EXPECT_TRUE(set_req.done());
  EXPECT_EQ(set_req.status(), StatusCode::kOk);

  std::vector<char> dest(32 << 10);
  client::Request get_req;
  ASSERT_EQ(client->iget("nb-key", dest, get_req), StatusCode::kOk);
  client->wait(get_req);
  ASSERT_EQ(get_req.status(), StatusCode::kOk);
  EXPECT_EQ(get_req.value_length(), value.size());
  EXPECT_EQ(get_req.flags(), 7u);
  EXPECT_TRUE(std::equal(value.begin(), value.end(), dest.begin()));
}

TEST_F(ClientServerTest, TestEventuallyReportsCompletion) {
  TestBed bed(small_bed(Design::kHRdmaOptNonbI));
  auto client = bed.make_client("c0");
  const auto value = make_value(4, 64 << 10);
  client::Request req;
  ASSERT_EQ(client->iset("t-key", value, 0, 0, req), StatusCode::kOk);
  // Poll (memcached_test semantics) until completion.
  int polls = 0;
  while (!client->test(req)) {
    sim::advance(sim::us(50));
    ASSERT_LT(++polls, 100000) << "request never completed";
  }
  EXPECT_EQ(req.status(), StatusCode::kOk);
}

TEST_F(ClientServerTest, BsetAllowsImmediateBufferReuse) {
  TestBed bed(small_bed(Design::kHRdmaOptNonbB));
  auto client = bed.make_client("c0");

  std::vector<char> buffer = make_value(5, 8 << 10);
  const std::vector<char> original = buffer;
  client::Request req;
  ASSERT_EQ(client->bset("reuse-key", buffer, 0, 0, req), StatusCode::kOk);
  // Clobber the user buffer immediately -- bset guarantees this is safe.
  std::memset(buffer.data(), 'X', buffer.size());
  client->wait(req);
  ASSERT_EQ(req.status(), StatusCode::kOk);

  std::vector<char> out;
  ASSERT_EQ(client->get("reuse-key", out), StatusCode::kOk);
  EXPECT_EQ(out, original) << "server must have the pre-clobber bytes";
}

TEST_F(ClientServerTest, BgetFetchesIntoUserBuffer) {
  TestBed bed(small_bed(Design::kHRdmaOptNonbB));
  auto client = bed.make_client("c0");
  const auto value = make_value(6, 10 << 10);
  ASSERT_EQ(client->set("bg-key", value), StatusCode::kOk);

  std::vector<char> dest(16 << 10);
  client::Request req;
  ASSERT_EQ(client->bget("bg-key", dest, req), StatusCode::kOk);
  client->wait(req);
  ASSERT_EQ(req.status(), StatusCode::kOk);
  EXPECT_TRUE(std::equal(value.begin(), value.end(), dest.begin()));
}

TEST_F(ClientServerTest, IgetBufferTooSmallReportsNeededLength) {
  TestBed bed(small_bed(Design::kHRdmaOptNonbI));
  auto client = bed.make_client("c0");
  const auto value = make_value(7, 8192);
  ASSERT_EQ(client->set("big-key", value), StatusCode::kOk);

  std::vector<char> tiny(100);
  client::Request req;
  ASSERT_EQ(client->iget("big-key", tiny, req), StatusCode::kOk);
  client->wait(req);
  EXPECT_EQ(req.status(), StatusCode::kBufferTooSmall);
  EXPECT_EQ(req.value_length(), 8192u);
}

TEST_F(ClientServerTest, EmptyKeyRejectedOnAllApis) {
  TestBed bed(small_bed(Design::kRdmaMem));
  auto client = bed.make_client("c0");
  const auto value = make_value(1, 10);
  std::vector<char> dest(10);
  client::Request req;
  EXPECT_EQ(client->set("", value), StatusCode::kInvalidArgument);
  EXPECT_EQ(client->iset("", value, 0, 0, req), StatusCode::kInvalidArgument);
  EXPECT_EQ(client->bset("", value, 0, 0, req), StatusCode::kInvalidArgument);
  EXPECT_EQ(client->iget("", dest, req), StatusCode::kInvalidArgument);
  EXPECT_EQ(client->del(""), StatusCode::kInvalidArgument);
}

TEST_F(ClientServerTest, ManyOutstandingIsetsAllComplete) {
  TestBed bed(small_bed(Design::kHRdmaOptNonbI));
  auto client = bed.make_client("c0");
  constexpr int kN = 200;
  // Stable buffers: iset reads them asynchronously.
  std::vector<std::vector<char>> values;
  values.reserve(kN);
  std::vector<std::unique_ptr<client::Request>> reqs;
  reqs.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    values.push_back(make_value(static_cast<std::uint64_t>(i), 4096));
    reqs.push_back(std::make_unique<client::Request>());
    ASSERT_EQ(client->iset(make_key(static_cast<std::uint64_t>(i)), values.back(),
                           0, 0, *reqs.back()),
              StatusCode::kOk);
  }
  for (auto& req : reqs) {
    client->wait(*req);
    EXPECT_EQ(req->status(), StatusCode::kOk);
  }
  // All stored and correct.
  std::vector<char> out;
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(client->get(make_key(static_cast<std::uint64_t>(i)), out),
              StatusCode::kOk);
    EXPECT_EQ(out, values[static_cast<std::size_t>(i)]);
  }
}

TEST_F(ClientServerTest, KeysSpreadAcrossMultiServerCluster) {
  TestBedConfig cfg = small_bed(Design::kRdmaMem);
  cfg.num_servers = 4;
  cfg.total_server_memory = 32 << 20;
  TestBed bed(cfg);
  auto client = bed.make_client("c0");
  for (std::uint64_t i = 0; i < 200; ++i) {
    ASSERT_EQ(client->set(make_key(i), make_value(i, 1024)), StatusCode::kOk);
  }
  // Every server should have received a share of the keys.
  for (std::size_t s = 0; s < bed.num_servers(); ++s) {
    EXPECT_GT(bed.server(s).counters().sets, 10u) << "server " << s;
  }
  // And everything reads back correctly through the ring.
  std::vector<char> out;
  for (std::uint64_t i = 0; i < 200; ++i) {
    ASSERT_EQ(client->get(make_key(i), out), StatusCode::kOk);
    EXPECT_EQ(out, make_value(i, 1024));
  }
}

TEST_F(ClientServerTest, WorksOverIpoibFabric) {
  TestBed bed(small_bed(Design::kIpoibMem));
  auto client = bed.make_client("c0");
  const auto value = make_value(11, 32 << 10);
  ASSERT_EQ(client->set("ip-key", value), StatusCode::kOk);
  std::vector<char> out;
  ASSERT_EQ(client->get("ip-key", out), StatusCode::kOk);
  EXPECT_EQ(out, value);
}

TEST_F(ClientServerTest, CompatShimMatchesListing1) {
  TestBed bed(small_bed(Design::kHRdmaOptNonbI));
  auto client = bed.make_client("c0");
  auto st = compat::memcached_wrap(*client);

  const auto value = make_value(12, 2048);
  // Blocking set/get through the shim.
  ASSERT_EQ(compat::memcached_set(&st, "ck", 2, value.data(), value.size(), 0, 3),
            StatusCode::kOk);
  std::size_t len = 0;
  std::uint32_t flags = 0;
  compat::memcached_return error = StatusCode::kServerError;
  char* got = compat::memcached_get(&st, "ck", 2, &len, &flags, &error);
  ASSERT_EQ(error, StatusCode::kOk);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(len, value.size());
  EXPECT_EQ(flags, 3u);
  EXPECT_EQ(std::memcmp(got, value.data(), len), 0);

  // Non-blocking iset + wait.
  compat::memcached_req req;
  ASSERT_EQ(compat::memcached_iset(&st, "ck2", 3, value.data(), value.size(), 0,
                                   1, &req),
            StatusCode::kOk);
  compat::memcached_wait(&st, &req);
  EXPECT_EQ(compat::memcached_req_status(&req), StatusCode::kOk);

  // Non-blocking bget + test-poll.
  compat::memcached_req get_req;
  std::size_t glen = 0;
  std::uint32_t gflags = 0;
  char* dest = compat::memcached_bget(&st, "ck2", 3, &glen, &gflags, &get_req,
                                      &error);
  ASSERT_EQ(error, StatusCode::kOk);
  ASSERT_NE(dest, nullptr);
  int polls = 0;
  while (compat::memcached_req_status(&get_req) == StatusCode::kInProgress) {
    compat::memcached_test(&st, &get_req);
    sim::advance(sim::us(50));
    ASSERT_LT(++polls, 100000);
  }
  // The status can flip between a test call and the loop condition; one
  // final test publishes the out-parameters.
  compat::memcached_test(&st, &get_req);
  EXPECT_EQ(compat::memcached_req_status(&get_req), StatusCode::kOk);
  EXPECT_EQ(glen, value.size());
  EXPECT_EQ(gflags, 1u);
  EXPECT_EQ(std::memcmp(dest, value.data(), glen), 0);

  // memcached_delete.
  EXPECT_EQ(compat::memcached_delete(&st, "ck2", 3, 0), StatusCode::kOk);
}

TEST_F(ClientServerTest, HybridDesignSurvivesOverflowEndToEnd) {
  TestBedConfig cfg = small_bed(Design::kHRdmaDef);
  cfg.total_server_memory = 4 << 20;
  TestBed bed(cfg);
  auto client = bed.make_client("c0");
  constexpr std::uint64_t kCount = 300;  // ~9MB of 30KB values into 4MB RAM
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(client->set(make_key(i), make_value(i, 30 << 10)), StatusCode::kOk);
  }
  EXPECT_GT(bed.store_stats().flushes, 0u);
  std::vector<char> out;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(client->get(make_key(i), out), StatusCode::kOk) << i;
    ASSERT_EQ(out, make_value(i, 30 << 10)) << i;
  }
  EXPECT_EQ(bed.store_stats().checksum_failures, 0u);
}

}  // namespace
}  // namespace hykv
