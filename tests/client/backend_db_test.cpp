#include "client/backend_db.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "common/sim_time.hpp"

namespace hykv::client {
namespace {

class BackendDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.0);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

TEST_F(BackendDbTest, PutFetchRoundTrip) {
  BackendDb db;
  db.put("k", make_value(1, 100));
  const auto got = db.fetch("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, make_value(1, 100));
  EXPECT_EQ(db.fetches(), 1u);
}

TEST_F(BackendDbTest, MissingKeyWithoutResolver) {
  BackendDb db;
  EXPECT_FALSE(db.fetch("nope").has_value());
  EXPECT_EQ(db.fetches(), 1u);  // the attempt still counts (and costs)
}

TEST_F(BackendDbTest, ResolverServesSyntheticData) {
  BackendDb db({}, [](std::string_view key) -> std::optional<std::vector<char>> {
    if (key == "gen") return make_value(7, 64);
    return std::nullopt;
  });
  const auto got = db.fetch("gen");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, make_value(7, 64));
  EXPECT_FALSE(db.fetch("other").has_value());
}

TEST_F(BackendDbTest, ExplicitPutWinsOverResolver) {
  BackendDb db({}, [](std::string_view) { return std::optional(make_value(1, 8)); });
  db.put("k", make_value(2, 8));
  EXPECT_EQ(*db.fetch("k"), make_value(2, 8));
}

TEST_F(BackendDbTest, FetchPaysMissPenalty) {
  sim::set_time_scale(1.0);
  BackendDbProfile profile;  // ~1.8ms
  BackendDb db(profile);
  db.put("k", make_value(1, 1000));
  const auto start = sim::now();
  (void)db.fetch("k");
  EXPECT_GE(sim::now() - start, sim::ms(1));
}

}  // namespace
}  // namespace hykv::client
