#include "client/ring.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <thread>

#include "common/random.hpp"
#include "common/sim_time.hpp"

namespace hykv::client {
namespace {

TEST(ServerRingTest, SingleServerGetsEverything) {
  ServerRing ring({7});
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.select(make_key(i)), 7u);
  }
}

TEST(ServerRingTest, SelectionIsDeterministic) {
  ServerRing a({1, 2, 3, 4});
  ServerRing b({1, 2, 3, 4});
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(a.select(make_key(i)), b.select(make_key(i)));
  }
}

TEST(ServerRingTest, LoadSpreadIsReasonable) {
  ServerRing ring({1, 2, 3, 4});
  std::map<net::EndpointId, int> counts;
  constexpr int kKeys = 8000;
  for (std::uint64_t i = 0; i < kKeys; ++i) ++counts[ring.select(make_key(i))];
  ASSERT_EQ(counts.size(), 4u) << "every server must own some keys";
  for (const auto& [server, count] : counts) {
    // Within 2x of fair share in either direction (ketama-style tolerance).
    EXPECT_GT(count, kKeys / 4 / 2) << server;
    EXPECT_LT(count, kKeys / 4 * 2) << server;
  }
}

TEST(ServerRingTest, RemovingServerOnlyRemapsItsKeys) {
  // Consistent hashing property: keys owned by surviving servers keep their
  // placement when one server leaves.
  ServerRing full({1, 2, 3, 4});
  ServerRing reduced({1, 2, 3});
  int moved_but_should_not = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const auto key = make_key(i);
    const auto before = full.select(key);
    if (before == 4) continue;  // these must remap somewhere
    if (reduced.select(key) != before) ++moved_but_should_not;
  }
  EXPECT_EQ(moved_but_should_not, 0);
}

TEST(ServerRingTest, EmptyServerListThrows) {
  EXPECT_THROW(ServerRing(std::vector<net::EndpointId>{}), std::invalid_argument);
}

TEST(ServerRingTest, EjectsAfterConsecutiveFailuresAndRemapsKeys) {
  sim::init_precise_timing();
  FailoverPolicy policy;
  policy.eject_after = 3;
  policy.reprobe_after = sim::ms(10'000);  // far away: no half-open here
  ServerRing ring({1, 2, 3}, 160, policy);

  // Two failures are below the threshold; the streak resets on success.
  ring.record_failure(2);
  ring.record_failure(2);
  EXPECT_FALSE(ring.is_dead(2));
  ring.record_success(2);
  ring.record_failure(2);
  ring.record_failure(2);
  EXPECT_FALSE(ring.is_dead(2));
  ring.record_failure(2);
  EXPECT_TRUE(ring.is_dead(2));
  EXPECT_EQ(ring.dead_count(), 1u);
  EXPECT_FALSE(ring.accepting(2));

  // Every key now maps to a survivor, and keys the survivors already owned
  // keep their placement (ketama failover, not a reshuffle).
  ServerRing healthy({1, 2, 3}, 160, policy);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto key = make_key(i);
    const auto owner = ring.select(key);
    EXPECT_NE(owner, 2u) << key;
    if (healthy.select(key) != 2) {
      EXPECT_EQ(owner, healthy.select(key)) << key;
    }
  }

  // Readmission restores the original placement exactly.
  ring.record_success(2);
  EXPECT_FALSE(ring.is_dead(2));
  EXPECT_EQ(ring.dead_count(), 0u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(ring.select(make_key(i)), healthy.select(make_key(i)));
  }
}

TEST(ServerRingTest, HalfOpenProbeOffersDeadServerAfterTimer) {
  sim::init_precise_timing();
  FailoverPolicy policy;
  policy.eject_after = 1;
  policy.reprobe_after = sim::ms(30);  // real time
  ServerRing ring({1, 2}, 160, policy);
  ring.record_failure(1);
  ASSERT_TRUE(ring.is_dead(1));
  EXPECT_FALSE(ring.accepting(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // Probe due: selection may offer server 1 again even though it is still
  // marked dead -- the half-open state.
  EXPECT_TRUE(ring.accepting(1));
  EXPECT_TRUE(ring.is_dead(1));
  // A failed probe re-arms the timer...
  ring.record_failure(1);
  EXPECT_FALSE(ring.accepting(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(ring.accepting(1));
  // ...and a successful one readmits for good.
  ring.record_success(1);
  EXPECT_FALSE(ring.is_dead(1));
  EXPECT_TRUE(ring.accepting(1));
}

TEST(ServerRingTest, AllServersDeadFailsFastOnPrimaryOwner) {
  sim::init_precise_timing();
  FailoverPolicy policy;
  policy.eject_after = 1;
  policy.reprobe_after = sim::ms(10'000);
  ServerRing ring({1, 2}, 160, policy);
  ServerRing healthy({1, 2}, 160, policy);
  ring.record_failure(1);
  ring.record_failure(2);
  ASSERT_EQ(ring.dead_count(), 2u);
  // Selection still terminates and names the primary owner, so the caller
  // can fail fast with kServerDown instead of spinning.
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(ring.select(make_key(i)), healthy.select(make_key(i))) << i;
  }
}

TEST(ServerRingTest, FailuresAgainstUnknownServerAreIgnored) {
  ServerRing ring({1});
  ring.record_failure(99);
  ring.record_success(99);
  EXPECT_FALSE(ring.is_dead(99));
  EXPECT_EQ(ring.dead_count(), 0u);
  EXPECT_TRUE(ring.accepting(99));  // not tracked: caller may try
}

}  // namespace
}  // namespace hykv::client
