#include "client/ring.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/random.hpp"

namespace hykv::client {
namespace {

TEST(ServerRingTest, SingleServerGetsEverything) {
  ServerRing ring({7});
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.select(make_key(i)), 7u);
  }
}

TEST(ServerRingTest, SelectionIsDeterministic) {
  ServerRing a({1, 2, 3, 4});
  ServerRing b({1, 2, 3, 4});
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(a.select(make_key(i)), b.select(make_key(i)));
  }
}

TEST(ServerRingTest, LoadSpreadIsReasonable) {
  ServerRing ring({1, 2, 3, 4});
  std::map<net::EndpointId, int> counts;
  constexpr int kKeys = 8000;
  for (std::uint64_t i = 0; i < kKeys; ++i) ++counts[ring.select(make_key(i))];
  ASSERT_EQ(counts.size(), 4u) << "every server must own some keys";
  for (const auto& [server, count] : counts) {
    // Within 2x of fair share in either direction (ketama-style tolerance).
    EXPECT_GT(count, kKeys / 4 / 2) << server;
    EXPECT_LT(count, kKeys / 4 * 2) << server;
  }
}

TEST(ServerRingTest, RemovingServerOnlyRemapsItsKeys) {
  // Consistent hashing property: keys owned by surviving servers keep their
  // placement when one server leaves.
  ServerRing full({1, 2, 3, 4});
  ServerRing reduced({1, 2, 3});
  int moved_but_should_not = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const auto key = make_key(i);
    const auto before = full.select(key);
    if (before == 4) continue;  // these must remap somewhere
    if (reduced.select(key) != before) ++moved_but_should_not;
  }
  EXPECT_EQ(moved_but_should_not, 0);
}

}  // namespace
}  // namespace hykv::client
