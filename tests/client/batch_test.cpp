// Doorbell batching (DESIGN.md §12): TX coalescing, server-side vectorized
// execution, RX demultiplexing, the batch_max_ops=1 byte-for-byte guarantee,
// and the typed stats / mget_status API additions that ride on the same PR.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "common/profiles.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "core/testbed.hpp"
#include "net/fabric.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace hykv {
namespace {

using core::Design;
using core::TestBed;
using core::TestBedConfig;

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.02);
  }
  void TearDown() override { sim::set_time_scale(1.0); }

  static TestBedConfig small_bed(Design design) {
    TestBedConfig cfg;
    cfg.design = design;
    cfg.total_server_memory = 8 << 20;
    cfg.slab_bytes = 256 << 10;
    return cfg;
  }
};

// ---------------------------------------------------------------------------
// The acceptance guarantee: batch_max_ops = 1 (the default) is byte-for-byte
// the pre-batching wire protocol. A fake server captures the exact frames.

TEST_F(BatchTest, BatchingOffIsByteForBytePreBatchingWire) {
  net::Fabric fabric(FabricProfile::fdr_rdma());
  auto fake_server = fabric.create_endpoint("fake-server");

  std::atomic<bool> saw_batch_opcode{false};
  std::vector<std::pair<std::uint16_t, std::vector<char>>> captured;
  std::mutex captured_mu;
  std::thread echo([&] {
    while (true) {
      auto msg = fake_server->recv();
      if (!msg.ok()) break;
      if (msg.value().opcode == server::kOpBatch) saw_batch_opcode.store(true);
      {
        const std::lock_guard<std::mutex> lock(captured_mu);
        captured.emplace_back(msg.value().opcode, msg.value().payload);
      }
      fake_server->send(msg.value().src, server::kOpResponse,
                        msg.value().wr_id,
                        server::encode_response(StatusCode::kOk, 0));
    }
  });

  {
    client::ClientConfig ccfg;
    ccfg.servers = {fake_server->id()};
    ASSERT_EQ(ccfg.batch_max_ops, 1u) << "batching must default off";
    auto client = std::make_unique<client::Client>(fabric, ccfg);

    const std::string value = "payload-bytes";
    ASSERT_EQ(client->set("a-key", {value.data(), value.size()}, 7, 60),
              StatusCode::kOk);
    std::vector<char> out;
    (void)client->get("a-key", out);  // fake server replies valueless kOk

    EXPECT_FALSE(saw_batch_opcode.load());
    const std::lock_guard<std::mutex> lock(captured_mu);
    ASSERT_EQ(captured.size(), 2u);
    const auto expected_set = server::encode_set(
        {.key = "a-key",
         .value = {value.data(), value.size()},
         .flags = 7,
         .expiration = 60});
    EXPECT_EQ(captured[0].first, server::kOpSet);
    ASSERT_EQ(captured[0].second.size(), expected_set.size());
    EXPECT_EQ(std::memcmp(captured[0].second.data(), expected_set.data(),
                          expected_set.size()),
              0);
    const auto expected_get = server::encode_key_request("a-key");
    EXPECT_EQ(captured[1].first, server::kOpGet);
    ASSERT_EQ(captured[1].second.size(), expected_get.size());
    EXPECT_EQ(std::memcmp(captured[1].second.data(), expected_get.data(),
                          expected_get.size()),
              0);

    const auto counters = client->counters();
    EXPECT_EQ(counters.batches_sent, 0u);
    EXPECT_EQ(counters.batched_ops, 0u);
    EXPECT_EQ(counters.batch_fill(), 0.0);
  }
  fake_server->close();
  echo.join();
}

// ---------------------------------------------------------------------------
// Server-side vectorized execution, driven deterministically by a hand-built
// kOpBatch frame against a real TestBed server.

TEST_F(BatchTest, ServerExecutesBatchFrameAndRepliesBatched) {
  TestBed bed(small_bed(Design::kRdmaMem));
  auto raw = bed.fabric().create_endpoint("raw-client");

  const auto value = make_value(1, 512);
  const auto set_body = server::encode_set(
      {.key = "batched-key", .value = value, .flags = 9, .expiration = 0});
  const auto get_body = server::encode_key_request("batched-key");
  const auto miss_body = server::encode_key_request("no-such-key");
  const server::BatchItem items[] = {
      {.opcode = server::kOpSet, .wr_id = 101, .payload = set_body},
      {.opcode = server::kOpGet, .wr_id = 102, .payload = get_body},
      {.opcode = server::kOpGet, .wr_id = 103, .payload = miss_body},
  };
  raw->send(bed.server(0).endpoint_id(), server::kOpBatch, 101,
            server::encode_batch(items));

  auto reply = raw->recv();
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value().opcode, server::kOpBatchResponse);
  EXPECT_EQ(reply.value().wr_id, 101u);  // correlates to the first sub-op
  const auto resps = server::decode_batch_response(reply.value().payload);
  ASSERT_TRUE(resps.has_value());
  ASSERT_EQ(resps->size(), 3u);

  EXPECT_EQ((*resps)[0].wr_id, 101u);
  const auto set_resp = server::decode_response((*resps)[0].payload);
  ASSERT_TRUE(set_resp.has_value());
  EXPECT_EQ(set_resp->status, StatusCode::kOk);

  EXPECT_EQ((*resps)[1].wr_id, 102u);
  const auto get_resp = server::decode_response((*resps)[1].payload);
  ASSERT_TRUE(get_resp.has_value());
  EXPECT_EQ(get_resp->status, StatusCode::kOk);
  EXPECT_EQ(get_resp->flags, 9u);
  ASSERT_EQ(get_resp->value.size(), value.size());
  EXPECT_EQ(std::memcmp(get_resp->value.data(), value.data(), value.size()), 0);

  EXPECT_EQ((*resps)[2].wr_id, 103u);
  const auto miss_resp = server::decode_response((*resps)[2].payload);
  ASSERT_TRUE(miss_resp.has_value());
  EXPECT_EQ(miss_resp->status, StatusCode::kNotFound);

  // Admission-exact accounting: 3 sub-ops = 3 requests, invariant holds,
  // frame counters describe how they arrived.
  const auto counters = bed.server(0).counters();
  EXPECT_EQ(counters.requests, 3u);
  EXPECT_EQ(counters.requests, counters.ops_sum());
  EXPECT_EQ(counters.sets, 1u);
  EXPECT_EQ(counters.gets, 2u);
  EXPECT_EQ(counters.batches, 1u);
  EXPECT_EQ(counters.batched_ops, 3u);
  raw->close();
}

TEST_F(BatchTest, MalformedBatchFramesAnswerInvalidArgumentNotCrash) {
  TestBed bed(small_bed(Design::kRdmaMem));
  auto raw = bed.fabric().create_endpoint("raw-client");
  const auto server_id = bed.server(0).endpoint_id();

  // Zero-op frame, truncated frame, and pure garbage: each must come back as
  // a single plain kInvalidArgument correlated to the frame wr_id.
  const std::vector<char> zero_ops(4, 0);
  const server::BatchItem one_get[] = {
      {.opcode = server::kOpGet, .wr_id = 7, .payload = {}}};
  std::vector<char> truncated = server::encode_batch(one_get);
  truncated.resize(truncated.size() - 1);
  const std::vector<char> garbage = {'\x41', '\x42', '\x43'};

  std::uint64_t wr = 900;
  for (const auto& frame : {zero_ops, truncated, garbage}) {
    raw->send(server_id, server::kOpBatch, ++wr, frame);
    auto reply = raw->recv();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().opcode, server::kOpResponse);
    EXPECT_EQ(reply.value().wr_id, wr);
    const auto resp = server::decode_response(reply.value().payload);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, StatusCode::kInvalidArgument);
  }

  const auto counters = bed.server(0).counters();
  EXPECT_EQ(counters.requests, 3u);  // one malformed request per bad frame
  EXPECT_EQ(counters.malformed, 3u);
  EXPECT_EQ(counters.requests, counters.ops_sum());
  EXPECT_EQ(counters.batches, 0u);  // only well-formed frames count
  raw->close();
}

// ---------------------------------------------------------------------------
// End-to-end coalescing: a client with batching on, driven through mget.

TEST_F(BatchTest, MgetCoalescesIntoBatchFramesEndToEnd) {
  // Slow the clock down a little so the TX engine's per-op costs (cold
  // registration of each destination buffer) let the queue build up --
  // that's what opportunistic draining feeds on.
  sim::set_time_scale(0.2);
  TestBedConfig cfg = small_bed(Design::kRdmaMem);
  cfg.client_batch_max_ops = 8;
  // Deliberately keep the default 1 MiB bounce_slot_bytes: mget's dest
  // buffers are that large, and a Get's dest must NOT count against
  // batch_max_bytes (only the key travels in the request frame) -- a
  // regression there silently disables coalescing for every default-config
  // mget.
  TestBed bed(cfg);
  auto client = bed.make_client("c0");

  constexpr std::uint64_t kCount = 64;
  std::vector<std::string> keys;
  keys.reserve(kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    keys.push_back(make_key(i));
    ASSERT_EQ(client->set(keys.back(), make_value(i, 256)), StatusCode::kOk);
  }

  const auto results = client->mget(keys);
  ASSERT_EQ(results.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(results[i].has_value()) << keys[i];
    EXPECT_EQ(*results[i], make_value(i, 256)) << keys[i];
  }

  // The engine must have coalesced at least one run, and every frame it sent
  // must have arrived as a frame server-side with matching op totals.
  const auto cc = client->counters();
  EXPECT_GE(cc.batches_sent, 1u);
  EXPECT_GE(cc.batched_ops, 2u);
  EXPECT_GE(cc.batch_fill(), 2.0);
  const auto sc = bed.server(0).counters();
  EXPECT_EQ(sc.requests, sc.ops_sum());
  EXPECT_EQ(sc.batches, cc.batches_sent);
  EXPECT_EQ(sc.batched_ops, cc.batched_ops);
}

// ---------------------------------------------------------------------------
// mget_status: miss vs failure vs value, and the mget compatibility shape.

TEST_F(BatchTest, MgetStatusDistinguishesMissFromInvalidKey) {
  TestBed bed(small_bed(Design::kHRdmaDef));  // hybrid: no backend fallback
  auto client = bed.make_client("c0");
  ASSERT_EQ(client->set("present", make_value(5, 1024)), StatusCode::kOk);

  const std::vector<std::string> keys = {"present", "absent", ""};
  auto detailed = client->mget_status(keys);
  ASSERT_EQ(detailed.size(), 3u);
  ASSERT_TRUE(detailed[0].ok());
  EXPECT_EQ(detailed[0].value(), make_value(5, 1024));
  EXPECT_EQ(detailed[1].status(), StatusCode::kNotFound);
  EXPECT_EQ(detailed[2].status(), StatusCode::kInvalidArgument);

  // mget flattens every non-kOk outcome to nullopt.
  const auto flat = client->mget(keys);
  ASSERT_EQ(flat.size(), 3u);
  EXPECT_TRUE(flat[0].has_value());
  EXPECT_FALSE(flat[1].has_value());
  EXPECT_FALSE(flat[2].has_value());
}

// ---------------------------------------------------------------------------
// Typed stats API: the StatsKind overload selects the same three surfaces the
// deprecated stringly overload reaches, and bad indices fail typed.

TEST_F(BatchTest, TypedStatsKindsSelectTheThreeSurfaces) {
  TestBedConfig cfg = small_bed(Design::kRdmaMem);
  cfg.server_trace_sample_shift = 1;
  TestBed bed(cfg);
  auto client = bed.make_client("c0");
  ASSERT_EQ(client->set("sk", make_value(1, 64)), StatusCode::kOk);

  auto counters_text = client->stats_text(0, client::StatsKind::kCounters);
  ASSERT_TRUE(counters_text.ok());
  EXPECT_NE(counters_text.value().find("requests "), std::string::npos);
  EXPECT_NE(counters_text.value().find("batches "), std::string::npos);

  auto latency_text = client->stats_text(0, client::StatsKind::kLatency);
  ASSERT_TRUE(latency_text.ok());
  EXPECT_EQ(latency_text.value().rfind("latency_recording 1", 0), 0u);

  auto trace_text = client->stats_text(0, client::StatsKind::kTrace);
  ASSERT_TRUE(trace_text.ok());
  EXPECT_NE(trace_text.value().find("\"sample_shift\""), std::string::npos);

  // The deprecated string shim reaches the same surface.
  auto legacy = client->stats_text(0, "latency");
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy.value().rfind("latency_recording 1", 0), 0u);

  EXPECT_EQ(client->stats_text(9, client::StatsKind::kCounters).status(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hykv
