// Race: Client::wait_for cancels a request at its deadline while the server's
// (late) kBusy response is simultaneously in flight. Whichever side wins,
// the request must end in exactly one terminal status, the bounce-slot pool
// must not leak, and the pending map must drain to empty -- the same
// invariants the chaos suite holds for timeouts, now specifically against
// the new kBusy path. Labelled `stress` for the TSan/ASan CI jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "net/fabric.hpp"
#include "server/protocol.hpp"

namespace hykv {
namespace {

class CancelRaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.02);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

TEST_F(CancelRaceTest, WaitForVsLateBusyResponseNeverLeaks) {
  net::Fabric fabric(FabricProfile::fdr_rdma());
  auto busy_server = fabric.create_endpoint("busy-server");

  // The server answers every request kBusy after a randomized delay that
  // straddles the client's wait_for timeout -- some responses land before
  // the cancel, some after (the "late response" the pending map must absorb
  // as stale without touching a freed slot or a dead Request).
  std::thread responder([&] {
    Rng rng(0xACE1);
    while (true) {
      auto msg = busy_server->recv();
      if (!msg.ok()) break;
      const auto delay = std::chrono::microseconds(rng.next_below(900));
      std::this_thread::sleep_for(delay);
      busy_server->send(msg.value().src, server::kOpResponse,
                        msg.value().wr_id,
                        server::encode_response(StatusCode::kBusy, 0));
    }
  });

  constexpr std::size_t kBounceSlots = 4;
  std::size_t busy_seen = 0;
  std::size_t timed_out_seen = 0;
  {
    client::ClientConfig ccfg;
    ccfg.servers = {busy_server->id()};
    ccfg.bounce_slots = kBounceSlots;
    // kBusy responses reset the failure streak (busy != dead), but the
    // cancel-side strikes alone must also never eject during this test.
    ccfg.failover.eject_after = 1u << 30;
    auto client = std::make_unique<client::Client>(fabric, ccfg);

    Rng rng(0x5ACE);
    const std::string value = "race-payload";
    for (int round = 0; round < 400; ++round) {
      client::Request req;
      // bset so every round holds (and must release) a bounce slot.
      ASSERT_EQ(client->bset(make_key(static_cast<std::uint64_t>(round)),
                             {value.data(), value.size()}, 0, 0, req),
                StatusCode::kOk);
      const auto timeout =
          std::chrono::microseconds(200 + rng.next_below(700));
      const StatusCode status = client->wait_for(
          req, std::chrono::duration_cast<sim::Nanos>(timeout));
      // Exactly one terminal verdict, and req agrees with the return value.
      ASSERT_TRUE(req.done());
      ASSERT_EQ(status, req.status());
      if (status == StatusCode::kBusy) {
        ++busy_seen;
      } else if (status == StatusCode::kTimedOut) {
        ++timed_out_seen;
      } else {
        FAIL() << "unexpected status " << status_name(status);
      }
    }

    // The race ran both ways (delay and timeout distributions straddle).
    EXPECT_GT(busy_seen, 0u);
    EXPECT_GT(timed_out_seen, 0u);

    // Give the last late responses a moment to drain as stale.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    // No leaks: every bounce slot came home, the pending map is empty, and
    // kBusy never fed the ejection streak.
    EXPECT_EQ(client->free_bounce_slots(), kBounceSlots);
    EXPECT_EQ(client->pending_requests(), 0u);
    EXPECT_EQ(client->ring().dead_count(), 0u);
  }
  busy_server->close();
  responder.join();
}

TEST_F(CancelRaceTest, CancelAfterCompletionReturnsRealStatus) {
  net::Fabric fabric(FabricProfile::fdr_rdma());
  auto busy_server = fabric.create_endpoint("busy-server");
  std::thread responder([&] {
    while (true) {
      auto msg = busy_server->recv();
      if (!msg.ok()) break;
      busy_server->send(msg.value().src, server::kOpResponse,
                        msg.value().wr_id,
                        server::encode_response(StatusCode::kBusy, 0));
    }
  });

  {
    client::ClientConfig ccfg;
    ccfg.servers = {busy_server->id()};
    auto client = std::make_unique<client::Client>(fabric, ccfg);
    const std::string value = "v";
    for (int round = 0; round < 50; ++round) {
      client::Request req;
      ASSERT_EQ(client->iset("k", {value.data(), value.size()}, 0, 0, req),
                StatusCode::kOk);
      client->wait(req);
      ASSERT_EQ(req.status(), StatusCode::kBusy);
      // cancel() on an already-completed request must report the real
      // verdict, not overwrite it with kTimedOut.
      EXPECT_EQ(client->cancel(req), StatusCode::kBusy);
    }
    EXPECT_EQ(client->pending_requests(), 0u);
  }
  busy_server->close();
  responder.join();
}

}  // namespace
}  // namespace hykv
