// End-to-end tests for the extended op set (add/replace/append/prepend,
// incr/decr, touch, flush_all, stats) and the client-side timeout/cancel
// machinery, through the full client -> fabric -> server stack.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "client/compat.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "core/testbed.hpp"
#include "server/protocol.hpp"

namespace hykv {
namespace {

using core::Design;
using core::TestBed;
using core::TestBedConfig;

class ClientOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.02);
  }
  void TearDown() override { sim::set_time_scale(1.0); }

  static TestBedConfig small_bed(Design design) {
    TestBedConfig cfg;
    cfg.design = design;
    cfg.total_server_memory = 8 << 20;
    cfg.slab_bytes = 256 << 10;
    return cfg;
  }

  static std::span<const char> bytes(const std::string& s) {
    return {s.data(), s.size()};
  }
};

TEST_F(ClientOpsTest, AddReplaceEndToEnd) {
  TestBed bed(small_bed(Design::kRdmaMem));
  auto client = bed.make_client("c");
  EXPECT_EQ(client->replace("k", bytes("x")), StatusCode::kNotStored);
  EXPECT_EQ(client->add("k", bytes("one")), StatusCode::kOk);
  EXPECT_EQ(client->add("k", bytes("two")), StatusCode::kNotStored);
  EXPECT_EQ(client->replace("k", bytes("three"), 9), StatusCode::kOk);
  std::vector<char> out;
  std::uint32_t flags = 0;
  ASSERT_EQ(client->get("k", out, &flags), StatusCode::kOk);
  EXPECT_EQ(std::string(out.begin(), out.end()), "three");
  EXPECT_EQ(flags, 9u);
}

TEST_F(ClientOpsTest, AppendPrependEndToEnd) {
  TestBed bed(small_bed(Design::kHRdmaOptBlock));
  auto client = bed.make_client("c");
  ASSERT_EQ(client->set("k", bytes("core")), StatusCode::kOk);
  EXPECT_EQ(client->append("k", bytes(">")), StatusCode::kOk);
  EXPECT_EQ(client->prepend("k", bytes("<")), StatusCode::kOk);
  std::vector<char> out;
  ASSERT_EQ(client->get("k", out), StatusCode::kOk);
  EXPECT_EQ(std::string(out.begin(), out.end()), "<core>");
  EXPECT_EQ(client->append("missing", bytes("x")), StatusCode::kNotStored);
}

TEST_F(ClientOpsTest, CountersEndToEnd) {
  TestBed bed(small_bed(Design::kRdmaMem));
  auto client = bed.make_client("c");
  ASSERT_EQ(client->set("hits", bytes("41")), StatusCode::kOk);
  const auto up = client->incr("hits", 1);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up.value(), 42u);
  const auto down = client->decr("hits", 2);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down.value(), 40u);
  EXPECT_EQ(client->incr("absent", 1).status(), StatusCode::kNotFound);
  ASSERT_EQ(client->set("word", bytes("abc")), StatusCode::kOk);
  EXPECT_EQ(client->incr("word", 1).status(), StatusCode::kInvalidArgument);
}

TEST_F(ClientOpsTest, TouchEndToEnd) {
  TestBed bed(small_bed(Design::kRdmaMem));
  auto client = bed.make_client("c");
  ASSERT_EQ(client->set("k", bytes("v"), 0, 3600), StatusCode::kOk);
  EXPECT_EQ(client->touch("k", -1), StatusCode::kOk);
  std::vector<char> out;
  EXPECT_EQ(client->get("k", out), StatusCode::kNotFound);
  EXPECT_EQ(client->touch("gone", 5), StatusCode::kNotFound);
}

TEST_F(ClientOpsTest, FlushAllClearsEveryServer) {
  TestBedConfig cfg = small_bed(Design::kRdmaMem);
  cfg.num_servers = 3;
  cfg.total_server_memory = 24 << 20;
  TestBed bed(cfg);
  auto client = bed.make_client("c");
  for (std::uint64_t i = 0; i < 60; ++i) {
    ASSERT_EQ(client->set(make_key(i), make_value(i, 256)), StatusCode::kOk);
  }
  ASSERT_EQ(client->flush_all(), StatusCode::kOk);
  std::vector<char> out;
  for (std::uint64_t i = 0; i < 60; ++i) {
    EXPECT_EQ(client->get(make_key(i), out), StatusCode::kNotFound) << i;
  }
}

TEST_F(ClientOpsTest, StatsTextReportsCounters) {
  TestBed bed(small_bed(Design::kHRdmaDef));
  auto client = bed.make_client("c");
  ASSERT_EQ(client->set("k", bytes("v")), StatusCode::kOk);
  std::vector<char> out;
  ASSERT_EQ(client->get("k", out), StatusCode::kOk);
  const auto stats = client->stats_text(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("sets 1"), std::string::npos) << stats.value();
  EXPECT_NE(stats.value().find("gets 1"), std::string::npos);
  EXPECT_NE(stats.value().find("items 1"), std::string::npos);
  EXPECT_EQ(client->stats_text(99).status(), StatusCode::kInvalidArgument);
}

TEST_F(ClientOpsTest, WaitForCompletesNormallyWithinDeadline) {
  TestBed bed(small_bed(Design::kHRdmaOptNonbI));
  auto client = bed.make_client("c");
  const auto value = make_value(1, 4096);
  client::Request req;
  ASSERT_EQ(client->iset("k", value, 0, 0, req), StatusCode::kOk);
  EXPECT_EQ(client->wait_for(req, sim::ms(2000)), StatusCode::kOk);
}

TEST_F(ClientOpsTest, WaitForTimesOutAndCancels) {
  // A request to a stopped server never completes; wait_for must cancel it
  // cleanly rather than hang (the request is unregistered afterwards).
  TestBed bed(small_bed(Design::kRdmaMem));
  auto client = bed.make_client("c");
  bed.server(0).stop();
  const auto value = make_value(2, 1024);
  client::Request req;
  ASSERT_EQ(client->iset("k", value, 0, 0, req), StatusCode::kOk);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(client->wait_for(req, sim::ms(50)), StatusCode::kTimedOut);
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(5));
  EXPECT_TRUE(req.done());
  EXPECT_EQ(req.status(), StatusCode::kTimedOut);
}

TEST_F(ClientOpsTest, CancelOnCompletedRequestReturnsRealStatus) {
  TestBed bed(small_bed(Design::kRdmaMem));
  auto client = bed.make_client("c");
  const auto value = make_value(3, 512);
  client::Request req;
  ASSERT_EQ(client->iset("k", value, 0, 0, req), StatusCode::kOk);
  client->wait(req);
  EXPECT_EQ(client->cancel(req), StatusCode::kOk);  // already done
}

TEST_F(ClientOpsTest, CancelledBsetReleasesItsBounceSlot) {
  TestBedConfig cfg = small_bed(Design::kHRdmaOptNonbB);
  cfg.client_bounce_slots = 2;  // tiny pool to expose slot leaks
  // Keep the dead server selectable: this test is about slot recycling, not
  // failover (each cancelled attempt would otherwise eject it and turn the
  // later bsets into kServerDown fail-fasts).
  cfg.client_failover.eject_after = 1000;
  TestBed bed(cfg);
  auto client = bed.make_client("c");
  bed.server(0).stop();
  const auto value = make_value(4, 1024);
  // Each bset consumes a slot; cancel must return it or the third bset
  // would block forever.
  for (int i = 0; i < 6; ++i) {
    client::Request req;
    ASSERT_EQ(client->bset(make_key(static_cast<std::uint64_t>(i)), value, 0, 0, req),
              StatusCode::kOk);
    EXPECT_EQ(client->wait_for(req, sim::ms(20)), StatusCode::kTimedOut) << i;
  }
}

TEST_F(ClientOpsTest, CancelRacesLateResponseHarmlessly) {
  // Cancel from the application thread while the server's response is in
  // flight. Whatever side wins, the request must end terminal, the late
  // response must be swallowed as stale (the wr_id was unregistered), and
  // the client must stay fully usable -- no corrupted slots, no leaked
  // pending entries.
  TestBedConfig cfg = small_bed(Design::kRdmaMem);
  cfg.client_bounce_slots = 2;  // tiny pool: a leaked slot deadlocks fast
  // Cancel-wins iterations record ring failures against a healthy server;
  // disable ejection so every iteration exercises the race, not fail-fast.
  cfg.client_failover.eject_after = 1000;
  TestBed bed(cfg);
  auto client = bed.make_client("c");
  const auto value = make_value(5, 2048);
  int raced_completions = 0;
  for (int i = 0; i < 50; ++i) {
    client::Request req;
    ASSERT_EQ(client->bset(make_key(static_cast<std::uint64_t>(i)), value, 0,
                           0, req),
              StatusCode::kOk);
    const StatusCode code = client->cancel(req);
    // Either our cancel won (kTimedOut) or the completion raced in first.
    ASSERT_TRUE(code == StatusCode::kTimedOut || code == StatusCode::kOk) << i;
    EXPECT_TRUE(req.done()) << i;
    EXPECT_EQ(req.status(), code) << i;
    if (code == StatusCode::kOk) ++raced_completions;
  }
  // The client survived every outcome: a fresh round-trip still works and
  // nothing leaked.
  ASSERT_EQ(client->set("alive", bytes("yes")), StatusCode::kOk);
  std::vector<char> out;
  ASSERT_EQ(client->get("alive", out), StatusCode::kOk);
  EXPECT_EQ(std::string(out.begin(), out.end()), "yes");
  EXPECT_EQ(client->pending_requests(), 0u);
  EXPECT_EQ(client->free_bounce_slots(), cfg.client_bounce_slots);
  (void)raced_completions;  // either interleaving is legal
}

TEST_F(ClientOpsTest, WaitForRacingCompletionNeverMisreports) {
  // Drive wait_for's timeout edge against live completions: with a timeout
  // in the same ballpark as the round-trip, both branches of the race get
  // exercised. The contract: the returned status equals the request's final
  // status, is terminal, and a timed-out request is really cancelled (its
  // late response is dropped as stale, not delivered to a reused wr_id).
  TestBedConfig cfg = small_bed(Design::kRdmaMem);
  // A run of timeout-wins iterations must not eject the healthy server.
  cfg.client_failover.eject_after = 1000;
  TestBed bed(cfg);
  auto client = bed.make_client("c");
  const auto value = make_value(6, 1024);
  int timed_out = 0;
  for (int i = 0; i < 50; ++i) {
    client::Request req;
    ASSERT_EQ(client->iset(make_key(static_cast<std::uint64_t>(i)), value, 0,
                           0, req),
              StatusCode::kOk);
    // Alternate between an instant deadline (completion must race to win)
    // and a tiny-but-plausible one.
    const auto timeout = (i % 2 == 0) ? sim::Nanos{0} : sim::us(200);
    const StatusCode code = client->wait_for(req, timeout);
    ASSERT_TRUE(code == StatusCode::kOk || code == StatusCode::kTimedOut) << i;
    EXPECT_TRUE(req.done()) << i;
    EXPECT_EQ(req.status(), code) << i;
    if (code == StatusCode::kTimedOut) ++timed_out;
  }
  EXPECT_EQ(client->pending_requests(), 0u);
  // Keys whose set timed out may or may not have landed; the store must
  // simply remain coherent -- reads return kOk or kNotFound, never garbage.
  std::vector<char> out;
  for (int i = 0; i < 50; ++i) {
    const StatusCode code = client->get(make_key(static_cast<std::uint64_t>(i)), out);
    ASSERT_TRUE(code == StatusCode::kOk || code == StatusCode::kNotFound) << i;
    if (ok(code)) {
      EXPECT_EQ(out, value) << i;
    }
  }
  (void)timed_out;
}

TEST_F(ClientOpsTest, CompatShimCoversExtendedOps) {
  TestBed bed(small_bed(Design::kRdmaMem));
  auto client = bed.make_client("c");
  auto st = compat::memcached_wrap(*client);

  EXPECT_EQ(compat::memcached_add(&st, "n", 1, "5", 1, 0, 0), StatusCode::kOk);
  EXPECT_EQ(compat::memcached_add(&st, "n", 1, "9", 1, 0, 0),
            StatusCode::kNotStored);
  EXPECT_EQ(compat::memcached_replace(&st, "n", 1, "7", 1, 0, 0), StatusCode::kOk);
  std::uint64_t counter = 0;
  EXPECT_EQ(compat::memcached_increment(&st, "n", 1, 3, &counter), StatusCode::kOk);
  EXPECT_EQ(counter, 10u);
  EXPECT_EQ(compat::memcached_decrement(&st, "n", 1, 4, &counter), StatusCode::kOk);
  EXPECT_EQ(counter, 6u);
  EXPECT_EQ(compat::memcached_append(&st, "n", 1, "!", 1), StatusCode::kOk);
  EXPECT_EQ(compat::memcached_prepend(&st, "n", 1, "#", 1), StatusCode::kOk);
  std::size_t len = 0;
  compat::memcached_return error = StatusCode::kServerError;
  char* got = compat::memcached_get(&st, "n", 1, &len, nullptr, &error);
  ASSERT_EQ(error, StatusCode::kOk);
  EXPECT_EQ(std::string(got, len), "#6!");
  EXPECT_EQ(compat::memcached_touch(&st, "n", 1, -1), StatusCode::kOk);
  EXPECT_EQ(compat::memcached_flush(&st, 0), StatusCode::kOk);
  got = compat::memcached_get(&st, "n", 1, &len, nullptr, &error);
  EXPECT_EQ(got, nullptr);
}

TEST_F(ClientOpsTest, MgetFetchesManyKeysInOneBurst) {
  TestBedConfig cfg = small_bed(Design::kHRdmaOptNonbI);
  cfg.num_servers = 2;
  cfg.total_server_memory = 16 << 20;
  TestBed bed(cfg);
  auto client = bed.make_client("c");
  std::vector<std::string> keys;
  for (std::uint64_t i = 0; i < 40; ++i) {
    keys.push_back(make_key(i));
    if (i % 4 != 3) {  // leave every 4th key absent
      ASSERT_EQ(client->set(keys.back(), make_value(i, 2048)), StatusCode::kOk);
    }
  }
  const auto results = client->mget(keys);
  ASSERT_EQ(results.size(), keys.size());
  for (std::uint64_t i = 0; i < 40; ++i) {
    if (i % 4 == 3) {
      EXPECT_FALSE(results[i].has_value()) << i;
    } else {
      ASSERT_TRUE(results[i].has_value()) << i;
      EXPECT_EQ(*results[i], make_value(i, 2048)) << i;
    }
  }
  // Empty input and empty-key entries are handled gracefully.
  EXPECT_TRUE(client->mget({}).empty());
  const std::vector<std::string> with_bad = {"", make_key(0)};
  const auto mixed = client->mget(with_bad);
  EXPECT_FALSE(mixed[0].has_value());
  EXPECT_TRUE(mixed[1].has_value());
}

TEST_F(ClientOpsTest, GetsCasEndToEnd) {
  TestBed bed(small_bed(Design::kRdmaMem));
  auto client = bed.make_client("c");
  ASSERT_EQ(client->set("k", bytes("original"), 4), StatusCode::kOk);

  std::vector<char> out;
  std::uint32_t flags = 0;
  std::uint64_t token = 0;
  ASSERT_EQ(client->gets("k", out, &flags, &token), StatusCode::kOk);
  EXPECT_EQ(std::string(out.begin(), out.end()), "original");
  EXPECT_EQ(flags, 4u);
  ASSERT_NE(token, 0u);

  // Lost-update protection: a racing writer bumps the version, the stale
  // CAS is rejected, a refreshed one succeeds.
  ASSERT_EQ(client->set("k", bytes("racer")), StatusCode::kOk);
  EXPECT_EQ(client->cas("k", bytes("mine"), token), StatusCode::kNotStored);
  ASSERT_EQ(client->gets("k", out, &flags, &token), StatusCode::kOk);
  EXPECT_EQ(client->cas("k", bytes("mine"), token), StatusCode::kOk);
  ASSERT_EQ(client->get("k", out), StatusCode::kOk);
  EXPECT_EQ(std::string(out.begin(), out.end()), "mine");

  EXPECT_EQ(client->cas("ghost", bytes("x"), 1), StatusCode::kNotFound);
  EXPECT_EQ(client->gets("ghost", out, nullptr, nullptr), StatusCode::kNotFound);
}

TEST_F(ClientOpsTest, ConcurrentCasLoopsLoseNoUpdates) {
  // Classic CAS correctness property: N clients each add K to a shared
  // counter via gets+cas retry loops; the final value must be exactly N*K.
  TestBed bed(small_bed(Design::kRdmaMem));
  {
    auto seed_client = bed.make_client("seed");
    ASSERT_EQ(seed_client->set("shared", bytes("0")), StatusCode::kOk);
  }
  constexpr int kThreads = 4;
  constexpr int kAddsEach = 25;
  std::vector<std::thread> threads;
  std::atomic<int> cas_conflicts{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = bed.make_client("cas-" + std::to_string(t));
      for (int i = 0; i < kAddsEach; ++i) {
        while (true) {
          std::vector<char> raw;
          std::uint64_t token = 0;
          ASSERT_EQ(client->gets("shared", raw, nullptr, &token), StatusCode::kOk);
          const auto current = std::stoull(std::string(raw.begin(), raw.end()));
          const std::string next = std::to_string(current + 1);
          const StatusCode code =
              client->cas("shared", {next.data(), next.size()}, token);
          if (ok(code)) break;
          ASSERT_EQ(code, StatusCode::kNotStored);  // EXISTS: retry
          ++cas_conflicts;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  auto reader = bed.make_client("reader");
  std::vector<char> out;
  ASSERT_EQ(reader->get("shared", out), StatusCode::kOk);
  EXPECT_EQ(std::string(out.begin(), out.end()),
            std::to_string(kThreads * kAddsEach));
  // With 4 contending writers some conflicts are expected (not required).
  (void)cas_conflicts;
}

TEST_F(ClientOpsTest, ProtocolCodecsForNewOps) {
  const auto counter_wire = server::encode_counter("ctr", 42);
  const auto counter = server::decode_counter(counter_wire);
  ASSERT_TRUE(counter.has_value());
  EXPECT_EQ(counter->key, "ctr");
  EXPECT_EQ(counter->delta, 42u);

  const auto touch_wire = server::encode_touch("t", -7);
  const auto touch = server::decode_touch(touch_wire);
  ASSERT_TRUE(touch.has_value());
  EXPECT_EQ(touch->key, "t");
  EXPECT_EQ(touch->expiration, -7);

  const auto value_wire = server::encode_counter_value(123456789ULL);
  EXPECT_EQ(server::decode_counter_value(value_wire).value(), 123456789ULL);
  const char junk[3] = {1, 2, 3};
  EXPECT_FALSE(server::decode_counter(std::span<const char>(junk, 3)).has_value());
  EXPECT_FALSE(server::decode_touch(std::span<const char>(junk, 3)).has_value());
  EXPECT_FALSE(server::decode_counter_value(std::span<const char>(junk, 3)).has_value());

  const auto cas_wire = server::encode_cas(
      {.key = "ck", .value = std::span<const char>(junk, 3), .flags = 2,
       .expiration = 9, .cas = 777});
  const auto cas_req = server::decode_cas(cas_wire);
  ASSERT_TRUE(cas_req.has_value());
  EXPECT_EQ(cas_req->key, "ck");
  EXPECT_EQ(cas_req->flags, 2u);
  EXPECT_EQ(cas_req->expiration, 9);
  EXPECT_EQ(cas_req->cas, 777u);
  EXPECT_EQ(cas_req->value.size(), 3u);
  EXPECT_FALSE(server::decode_cas(std::span<const char>(junk, 3)).has_value());
}

}  // namespace
}  // namespace hykv
