#include "ssd/async_io.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/random.hpp"
#include "common/sim_time.hpp"

namespace hykv::ssd {
namespace {

class AsyncIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.02);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

TEST_F(AsyncIoTest, WriteReadRoundTripThroughQueue) {
  SsdDevice dev(SsdProfile::nvme());
  AsyncSsdQueue queue(dev, 2);
  const auto id = dev.allocate(8192).value();
  const auto payload = make_value(1, 8192);

  std::atomic<int> completions{0};
  ASSERT_EQ(queue.submit_write(id, 0, payload,
                               [&](StatusCode code) {
                                 EXPECT_EQ(code, StatusCode::kOk);
                                 ++completions;
                               }),
            StatusCode::kOk);
  queue.drain();
  EXPECT_EQ(completions.load(), 1);

  std::vector<char> out(8192);
  ASSERT_EQ(queue.submit_read(id, 0, out,
                              [&](StatusCode code) {
                                EXPECT_EQ(code, StatusCode::kOk);
                                ++completions;
                              }),
            StatusCode::kOk);
  queue.drain();
  EXPECT_EQ(completions.load(), 2);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(queue.stats().submitted, 2u);
  EXPECT_EQ(queue.stats().completed, 2u);
  EXPECT_EQ(queue.stats().errors, 0u);
}

TEST_F(AsyncIoTest, BufferReusableImmediatelyAfterSubmitWrite) {
  SsdDevice dev(SsdProfile::sata());
  AsyncSsdQueue queue(dev, 1);
  const auto id = dev.allocate(4096).value();
  std::vector<char> buffer = make_value(2, 4096);
  const std::vector<char> original = buffer;
  ASSERT_EQ(queue.submit_write(id, 0, buffer), StatusCode::kOk);
  std::fill(buffer.begin(), buffer.end(), 'X');  // snapshot semantics
  queue.drain();
  std::vector<char> out(4096);
  ASSERT_EQ(dev.read_raw(id, 0, out), StatusCode::kOk);
  EXPECT_EQ(out, original);
}

TEST_F(AsyncIoTest, ErrorsReportedThroughCompletion) {
  SsdDevice dev(SsdProfile::nvme());
  AsyncSsdQueue queue(dev, 1);
  std::atomic<int> failures{0};
  std::vector<char> out(64);
  ASSERT_EQ(queue.submit_read(99999, 0, out,
                              [&](StatusCode code) {
                                if (!ok(code)) ++failures;
                              }),
            StatusCode::kOk);
  queue.drain();
  EXPECT_EQ(failures.load(), 1);
  EXPECT_EQ(queue.stats().errors, 1u);
}

TEST_F(AsyncIoTest, ShutdownDrainsBacklogAndRejectsNewWork) {
  SsdDevice dev(SsdProfile::nvme());
  const auto id = dev.allocate(1 << 20).value();
  const auto payload = make_value(3, 64 << 10);
  std::atomic<int> completions{0};
  {
    AsyncSsdQueue queue(dev, 2);
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(queue.submit_write(id, static_cast<std::size_t>(i) * (64 << 10),
                                   payload,
                                   [&](StatusCode) { ++completions; }),
                StatusCode::kOk);
    }
    // Destructor must complete the backlog, not drop it.
  }
  EXPECT_EQ(completions.load(), 8);

  AsyncSsdQueue dead(dev, 1);
  // After close() (simulated by destroying with pending work above) new
  // submissions to a *live* queue still work:
  EXPECT_EQ(dead.submit_write(id, 0, payload), StatusCode::kOk);
  dead.drain();
}

TEST_F(AsyncIoTest, QueueDepthExploitsNvmeChannels) {
  // The paper's future-work hypothesis: async I/O should expose device
  // parallelism. NVMe (4 channels) must complete a batch of writes
  // substantially faster at queue depth 4 than serially.
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "timing assertion is meaningless under TSAN's slowdown";
#endif
  sim::set_time_scale(1.0);
  constexpr int kOps = 16;
  const auto payload = make_value(4, 1 << 20);

  auto batch_time = [&](unsigned depth) {
    SsdDevice dev(SsdProfile::nvme());
    std::vector<ExtentId> ids;
    for (int i = 0; i < kOps; ++i) ids.push_back(dev.allocate(1 << 20).value());
    AsyncSsdQueue queue(dev, depth);
    // Warm-up op so worker spawn cost is outside the measurement.
    EXPECT_EQ(queue.submit_write(ids[0], 0, payload), StatusCode::kOk);
    queue.drain();
    const auto start = sim::now();
    for (const auto id : ids) {
      EXPECT_EQ(queue.submit_write(id, 0, payload), StatusCode::kOk);
    }
    queue.drain();
    return sim::now() - start;
  };

  // Compare depth-4 against depth-1 (isolates channel parallelism from the
  // sync-barrier effect); 16 x ~545us modelled writes across 4 channels.
  // Generous margin: host CPU copies are serial either way on this box.
  const auto serial = batch_time(1);
  const auto deep = batch_time(4);
  EXPECT_LT(deep * 3, serial * 2) << "depth-4 should beat depth-1 by >= 1.5x";
}

TEST_F(AsyncIoTest, SubmissionSlotsBoundRunahead) {
  SsdDevice dev(SsdProfile::sata());
  const auto id = dev.allocate(1 << 20).value();
  AsyncSsdQueue queue(dev, 1, /*submission_slots=*/2);
  const auto payload = make_value(5, 256 << 10);
  // With 2 slots and a slow device, in_flight never runs away.
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(queue.submit_write(id, 0, payload), StatusCode::kOk);
    EXPECT_LE(queue.in_flight(), 4u);  // <= slots + workers + margin
  }
  queue.drain();
  EXPECT_EQ(queue.stats().completed, 6u);
}

}  // namespace
}  // namespace hykv::ssd
