// Page-cache concurrency properties: many threads writing/reading disjoint
// extents through cached and mmap engines while the flusher drains -- data
// must come back intact and accounting must settle to zero dirty bytes.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "ssd/io_engine.hpp"

namespace hykv::ssd {
namespace {

class PageCacheConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.01);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

TEST_F(PageCacheConcurrencyTest, ParallelWritersDisjointExtentsStayIntact) {
  PageCacheConfig cfg;
  cfg.dirty_high_watermark = 1 << 20;  // force plenty of throttle/flush action
  cfg.dirty_low_watermark = 512 << 10;
  cfg.memory_limit = 2 << 20;          // force clean-entry eviction too
  StorageStack stack(SsdProfile::sata(), cfg);

  constexpr int kThreads = 4;
  constexpr int kExtentsPerThread = 30;
  constexpr std::size_t kBytes = 64 << 10;

  // Pre-allocate all extents (allocation is not the system under test).
  std::vector<std::vector<ExtentId>> ids(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kExtentsPerThread; ++i) {
      ids[static_cast<std::size_t>(t)].push_back(
          stack.device().allocate(kBytes).value());
    }
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Alternate engines per thread: cached and mmap share the cache.
      IoEngine& engine = stack.engine(t % 2 == 0 ? IoScheme::kCached
                                                 : IoScheme::kMmap);
      const auto& mine = ids[static_cast<std::size_t>(t)];
      for (int i = 0; i < kExtentsPerThread; ++i) {
        const auto seed = static_cast<std::uint64_t>(t * 1000 + i);
        if (!ok(engine.write(mine[static_cast<std::size_t>(i)], 0,
                             make_value(seed, kBytes)))) {
          ++failures;
        }
      }
      // Read everything back through the same engine.
      std::vector<char> out(kBytes);
      for (int i = 0; i < kExtentsPerThread; ++i) {
        const auto seed = static_cast<std::uint64_t>(t * 1000 + i);
        if (!ok(engine.read(mine[static_cast<std::size_t>(i)], 0, out)) ||
            out != make_value(seed, kBytes)) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  stack.cache().sync();
  EXPECT_EQ(stack.cache().dirty_bytes(), 0u);

  // After sync, the raw device holds every byte (durability across the
  // whole concurrent episode).
  std::vector<char> out(kBytes);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kExtentsPerThread; ++i) {
      const auto seed = static_cast<std::uint64_t>(t * 1000 + i);
      ASSERT_EQ(stack.device().read_raw(ids[static_cast<std::size_t>(t)]
                                            [static_cast<std::size_t>(i)],
                                        0, out),
                StatusCode::kOk);
      EXPECT_EQ(out, make_value(seed, kBytes)) << t << "/" << i;
    }
  }
}

TEST_F(PageCacheConcurrencyTest, InvalidateRacingWriteback) {
  PageCacheConfig cfg;
  cfg.dirty_high_watermark = 8 << 20;
  cfg.dirty_low_watermark = 4 << 20;
  cfg.memory_limit = 32 << 20;
  StorageStack stack(SsdProfile::nvme(), cfg);

  // Repeatedly write an extent and invalidate it while the flusher works;
  // accounting must never underflow and sync must always terminate.
  for (int round = 0; round < 50; ++round) {
    const auto id = stack.device().allocate(128 << 10).value();
    ASSERT_EQ(stack.cache().write(id, 0,
                                  make_value(static_cast<std::uint64_t>(round),
                                             128 << 10)),
              StatusCode::kOk);
    if (round % 2 == 0) {
      stack.cache().invalidate(id);
      stack.device().free(id);
    }
  }
  stack.cache().sync();
  EXPECT_EQ(stack.cache().dirty_bytes(), 0u);
}

}  // namespace
}  // namespace hykv::ssd
