#include "ssd/io_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "common/sim_time.hpp"

namespace hykv::ssd {
namespace {

PageCacheConfig roomy_cache() {
  PageCacheConfig cfg;
  cfg.dirty_high_watermark = 16 << 20;
  cfg.dirty_low_watermark = 8 << 20;
  cfg.memory_limit = 64 << 20;
  return cfg;
}

class IoEngineRoundTrip : public ::testing::TestWithParam<IoScheme> {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.0);
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

TEST_P(IoEngineRoundTrip, PreservesBytesAcrossSizes) {
  StorageStack stack(SsdProfile::sata(), roomy_cache());
  IoEngine& engine = stack.engine(GetParam());
  EXPECT_EQ(engine.scheme(), GetParam());
  for (const std::size_t size : {1u, 512u, 4096u, 32768u, 1048576u}) {
    const auto id = stack.device().allocate(size).value();
    const auto payload = make_value(size, size);
    ASSERT_EQ(engine.write(id, 0, payload), StatusCode::kOk) << size;
    std::vector<char> out(size);
    ASSERT_EQ(engine.read(id, 0, out), StatusCode::kOk) << size;
    EXPECT_EQ(out, payload) << "scheme=" << to_string(GetParam()) << " size=" << size;
  }
}

TEST_P(IoEngineRoundTrip, SyncMakesDataDurable) {
  StorageStack stack(SsdProfile::nvme(), roomy_cache());
  IoEngine& engine = stack.engine(GetParam());
  const auto id = stack.device().allocate(4096).value();
  const auto payload = make_value(77, 4096);
  ASSERT_EQ(engine.write(id, 0, payload), StatusCode::kOk);
  engine.sync();
  // After sync the raw device (no cache involvement) must hold the bytes.
  std::vector<char> out(4096);
  ASSERT_EQ(stack.device().read_raw(id, 0, out), StatusCode::kOk);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(stack.cache().dirty_bytes(), 0u);
}

TEST_P(IoEngineRoundTrip, InvalidExtentRejected) {
  StorageStack stack(SsdProfile::sata(), roomy_cache());
  IoEngine& engine = stack.engine(GetParam());
  std::vector<char> out(16);
  EXPECT_NE(engine.read(999999, 0, out), StatusCode::kOk);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, IoEngineRoundTrip,
                         ::testing::Values(IoScheme::kDirect, IoScheme::kCached,
                                           IoScheme::kMmap),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

class IoSchemeCostShape : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(1.0);
  }
  void TearDown() override { sim::set_time_scale(1.0); }

  // Mean write cost over `iters` fresh extents.
  static sim::Nanos write_cost(StorageStack& stack, IoScheme scheme,
                               std::size_t size, int iters) {
    IoEngine& engine = stack.engine(scheme);
    const auto payload = make_value(size, size);
    sim::Nanos total{0};
    for (int i = 0; i < iters; ++i) {
      const auto id = stack.device().allocate(size).value();
      const auto t0 = sim::now();
      EXPECT_EQ(engine.write(id, 0, payload), StatusCode::kOk);
      total += sim::now() - t0;
    }
    return total / iters;
  }
};

// Fig. 4 of the paper: mmap wins for small evict sizes, cached I/O wins for
// large ones, direct I/O loses everywhere. These orderings are what the
// adaptive slab manager exploits.
TEST_F(IoSchemeCostShape, SmallWritesFavourMmap) {
  // Steady-state small writes (page already mapped): mmap avoids the write()
  // syscall cost. Reuse one extent per scheme so the one-time mmap_setup is
  // excluded, and use enough iterations that scheduler noise (a few us per
  // op on a busy box) cannot flip the ordering of ~1us-apart costs.
  StorageStack stack(SsdProfile::sata(), roomy_cache());
  constexpr std::size_t kSize = 4096;
  constexpr int kIters = 40;
  const auto payload = make_value(kSize, kSize);
  auto steady_cost = [&](IoScheme scheme) {
    IoEngine& engine = stack.engine(scheme);
    const auto id = stack.device().allocate(kSize).value();
    EXPECT_EQ(engine.write(id, 0, payload), StatusCode::kOk);  // warm-up/map
    const auto t0 = sim::now();
    for (int i = 0; i < kIters; ++i) {
      EXPECT_EQ(engine.write(id, 0, payload), StatusCode::kOk);
    }
    return (sim::now() - t0) / kIters;
  };
  const auto direct = steady_cost(IoScheme::kDirect);
  const auto cached = steady_cost(IoScheme::kCached);
  const auto mmap = steady_cost(IoScheme::kMmap);
  EXPECT_LT(mmap, cached);
  EXPECT_LT(cached, direct);
  stack.cache().sync();
}

TEST_F(IoSchemeCostShape, LargeWritesFavourCached) {
  StorageStack stack(SsdProfile::sata(), roomy_cache());
  const auto direct = write_cost(stack, IoScheme::kDirect, 1 << 20, 3);
  const auto cached = write_cost(stack, IoScheme::kCached, 1 << 20, 3);
  const auto mmap = write_cost(stack, IoScheme::kMmap, 1 << 20, 3);
  EXPECT_LT(cached, mmap);
  EXPECT_LT(mmap, direct);
  stack.cache().sync();
}

TEST_F(IoSchemeCostShape, DirectCostTracksDeviceModel) {
  StorageStack stack(SsdProfile::sata(), roomy_cache());
  const auto modelled =
      SsdProfile::sata().write_time(64 << 10) + SsdProfile::sata().sync_barrier;
  const auto measured = write_cost(stack, IoScheme::kDirect, 64 << 10, 3);
  EXPECT_GE(measured, modelled);
  EXPECT_LT(measured, modelled + sim::ms(3));
}

}  // namespace
}  // namespace hykv::ssd
