#include "ssd/device.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/random.hpp"
#include "common/sim_time.hpp"

namespace hykv::ssd {
namespace {

SsdProfile tiny_profile() {
  SsdProfile p = SsdProfile::sata();
  p.capacity_bytes = 1 << 20;  // 1 MB for capacity tests
  return p;
}

class SsdDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.0);  // data-path tests don't need modelled latency
  }
  void TearDown() override { sim::set_time_scale(1.0); }
};

TEST_F(SsdDeviceTest, WriteReadRoundTrip) {
  SsdDevice dev(SsdProfile::sata());
  const auto id = dev.allocate(4096);
  ASSERT_TRUE(id.ok());
  const auto payload = make_value(1, 4096);
  ASSERT_EQ(dev.write(id.value(), 0, payload), StatusCode::kOk);
  std::vector<char> out(4096);
  ASSERT_EQ(dev.read(id.value(), 0, out), StatusCode::kOk);
  EXPECT_EQ(out, payload);
}

TEST_F(SsdDeviceTest, OffsetWithinExtent) {
  SsdDevice dev(SsdProfile::nvme());
  const auto id = dev.allocate(8192).value();
  const auto a = make_value(10, 1000);
  const auto b = make_value(11, 1000);
  ASSERT_EQ(dev.write(id, 0, a), StatusCode::kOk);
  ASSERT_EQ(dev.write(id, 4096, b), StatusCode::kOk);
  std::vector<char> out(1000);
  ASSERT_EQ(dev.read(id, 4096, out), StatusCode::kOk);
  EXPECT_EQ(out, b);
  ASSERT_EQ(dev.read(id, 0, out), StatusCode::kOk);
  EXPECT_EQ(out, a);
}

TEST_F(SsdDeviceTest, OutOfRangeRejected) {
  SsdDevice dev(SsdProfile::sata());
  const auto id = dev.allocate(100).value();
  const auto payload = make_value(1, 64);
  EXPECT_EQ(dev.write(id, 64, payload), StatusCode::kInvalidArgument);
  std::vector<char> out(64);
  EXPECT_EQ(dev.read(id, 64, out), StatusCode::kInvalidArgument);
  EXPECT_EQ(dev.write(id + 999, 0, payload), StatusCode::kInvalidArgument);
}

TEST_F(SsdDeviceTest, CapacityEnforcedAndFreedSpaceReusable) {
  SsdDevice dev(tiny_profile());
  const auto a = dev.allocate(600 << 10);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(dev.allocate(600 << 10).ok());  // over 1 MB total
  dev.free(a.value());
  EXPECT_EQ(dev.used_bytes(), 0u);
  EXPECT_TRUE(dev.allocate(600 << 10).ok());
}

TEST_F(SsdDeviceTest, FreeUnknownExtentIsNoop) {
  SsdDevice dev(tiny_profile());
  dev.free(12345);  // must not crash or corrupt accounting
  EXPECT_EQ(dev.used_bytes(), 0u);
}

TEST_F(SsdDeviceTest, StatsAccumulateAndReset) {
  SsdDevice dev(SsdProfile::sata());
  const auto id = dev.allocate(4096).value();
  const auto payload = make_value(2, 4096);
  dev.write(id, 0, payload);
  std::vector<char> out(4096);
  dev.read(id, 0, out);
  const auto stats = dev.stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.written_bytes, 4096u);
  EXPECT_EQ(stats.read_bytes, 4096u);
  dev.reset_stats();
  EXPECT_EQ(dev.stats().writes, 0u);
}

TEST_F(SsdDeviceTest, ExtentSizeQuery) {
  SsdDevice dev(SsdProfile::sata());
  const auto id = dev.allocate(12345).value();
  EXPECT_EQ(dev.extent_size(id), 12345u);
  EXPECT_EQ(dev.extent_size(id + 1), 0u);
}

TEST_F(SsdDeviceTest, ModelledLatencyIsPaid) {
  sim::set_time_scale(1.0);
  SsdDevice dev(SsdProfile::sata());
  const auto id = dev.allocate(64 << 10).value();
  const auto payload = make_value(3, 64 << 10);
  const auto start = sim::now();
  dev.write(id, 0, payload);
  const auto elapsed = sim::now() - start;
  // SATA write of 64KB: >= 90us base + ~139us transfer.
  EXPECT_GE(elapsed, sim::us(200));
}

TEST_F(SsdDeviceTest, SingleChannelSerialisesConcurrentAccess) {
  sim::set_time_scale(1.0);
  SsdProfile p = SsdProfile::sata();
  p.channels = 1;
  SsdDevice dev(p);
  const auto start = sim::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] { dev.occupy_write(64 << 10); });
  }
  for (auto& t : threads) t.join();
  // Three ~229us accesses through one channel must serialise: >= ~680us.
  EXPECT_GE(sim::now() - start, sim::us(600));
}

TEST_F(SsdDeviceTest, MultiChannelAllowsOverlap) {
  sim::set_time_scale(1.0);
  SsdProfile p = SsdProfile::nvme();
  p.channels = 4;
  SsdDevice dev(p);
  const auto start = sim::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] { dev.occupy_write(1 << 20); });
  }
  for (auto& t : threads) t.join();
  // Four ~545us accesses across four channels overlap: well under the
  // ~2.2ms serial total even with thread-spawn overhead.
  EXPECT_LT(sim::now() - start, sim::us(1500));
}

TEST_F(SsdDeviceTest, BusyTimeTracked) {
  sim::set_time_scale(0.0);  // zero real wait, but busy_ns still modelled
  SsdDevice dev(SsdProfile::sata());
  dev.occupy_write(1 << 20);
  EXPECT_GT(dev.stats().busy_ns, 2000000u);  // >2ms modelled for 1MB SATA write
}

}  // namespace
}  // namespace hykv::ssd
