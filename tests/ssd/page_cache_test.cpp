#include "ssd/page_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "common/sim_time.hpp"

namespace hykv::ssd {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::init_precise_timing();
    sim::set_time_scale(0.02);  // keep modelled waits short but non-zero
  }
  void TearDown() override { sim::set_time_scale(1.0); }

  PageCacheConfig small_config() {
    PageCacheConfig cfg;
    cfg.dirty_high_watermark = 256 << 10;
    cfg.dirty_low_watermark = 128 << 10;
    cfg.memory_limit = 1 << 20;
    return cfg;
  }
};

TEST_F(PageCacheTest, WriteThenReadHitsCache) {
  SsdDevice dev(SsdProfile::sata());
  PageCache cache(dev, small_config());
  const auto id = dev.allocate(8192).value();
  const auto payload = make_value(1, 8192);
  ASSERT_EQ(cache.write(id, 0, payload), StatusCode::kOk);
  EXPECT_TRUE(cache.resident(id));
  std::vector<char> out(8192);
  ASSERT_EQ(cache.read(id, 0, out), StatusCode::kOk);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST_F(PageCacheTest, MissReadsDeviceAndPopulates) {
  SsdDevice dev(SsdProfile::sata());
  PageCache cache(dev, small_config());
  const auto id = dev.allocate(4096).value();
  const auto payload = make_value(2, 4096);
  ASSERT_EQ(dev.write_raw(id, 0, payload), StatusCode::kOk);  // bypass cache
  EXPECT_FALSE(cache.resident(id));
  std::vector<char> out(4096);
  ASSERT_EQ(cache.read(id, 0, out), StatusCode::kOk);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_TRUE(cache.resident(id));  // full-extent read populates
  ASSERT_EQ(cache.read(id, 0, out), StatusCode::kOk);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(PageCacheTest, SyncDrainsDirtyBytes) {
  SsdDevice dev(SsdProfile::sata());
  PageCache cache(dev, small_config());
  const auto id = dev.allocate(64 << 10).value();
  ASSERT_EQ(cache.write(id, 0, make_value(3, 64 << 10)), StatusCode::kOk);
  cache.sync();
  EXPECT_EQ(cache.dirty_bytes(), 0u);
  EXPECT_GE(cache.stats().writeback_bytes, std::uint64_t{64 << 10});
  EXPECT_GE(dev.stats().writes, 1u);  // write-back reached the device
}

TEST_F(PageCacheTest, ThrottleEngagesAboveHighWatermark) {
  SsdDevice dev(SsdProfile::sata());
  PageCacheConfig cfg = small_config();
  cfg.dirty_high_watermark = 64 << 10;
  cfg.dirty_low_watermark = 32 << 10;
  PageCache cache(dev, cfg);
  // Push several writes well past the watermark; at least one must block on
  // write-back.
  for (int i = 0; i < 8; ++i) {
    const auto id = dev.allocate(64 << 10).value();
    ASSERT_EQ(cache.write(id, 0, make_value(static_cast<std::uint64_t>(i), 64 << 10)),
              StatusCode::kOk);
  }
  EXPECT_GT(cache.stats().throttled_ns, 0u);
}

TEST_F(PageCacheTest, CachedWriteIsFasterThanDirect) {
  sim::set_time_scale(1.0);
  SsdDevice dev(SsdProfile::sata());
  PageCacheConfig cfg;
  cfg.dirty_high_watermark = 8 << 20;  // no throttling in this test
  cfg.dirty_low_watermark = 4 << 20;
  PageCache cache(dev, cfg);
  const auto payload = make_value(9, 256 << 10);

  const auto id1 = dev.allocate(256 << 10).value();
  const auto t0 = sim::now();
  ASSERT_EQ(cache.write(id1, 0, payload), StatusCode::kOk);
  const auto cached_cost = sim::now() - t0;

  const auto id2 = dev.allocate(256 << 10).value();
  const auto t1 = sim::now();
  ASSERT_EQ(dev.write(id2, 0, payload), StatusCode::kOk);
  const auto direct_cost = sim::now() - t1;

  // 256KB: direct ~ 90us + 558us; cached ~ 4us + 31us copy.
  EXPECT_LT(cached_cost * 3, direct_cost);
  cache.sync();
}

TEST_F(PageCacheTest, InvalidateDiscardsDirtyData) {
  SsdDevice dev(SsdProfile::sata());
  PageCache cache(dev, small_config());
  const auto id = dev.allocate(16 << 10).value();
  ASSERT_EQ(cache.write(id, 0, make_value(4, 16 << 10)), StatusCode::kOk);
  cache.invalidate(id);
  EXPECT_EQ(cache.dirty_bytes(), 0u);
  EXPECT_FALSE(cache.resident(id));
  cache.sync();  // must not hang on discarded dirty data
}

TEST_F(PageCacheTest, CleanEntriesEvictedUnderMemoryPressure) {
  SsdDevice dev(SsdProfile::sata());
  PageCacheConfig cfg = small_config();
  cfg.memory_limit = 128 << 10;
  PageCache cache(dev, cfg);
  std::vector<ExtentId> ids;
  for (int i = 0; i < 8; ++i) {
    const auto id = dev.allocate(64 << 10).value();
    ids.push_back(id);
    ASSERT_EQ(cache.write(id, 0, make_value(static_cast<std::uint64_t>(i), 64 << 10)),
              StatusCode::kOk);
    cache.sync();  // make the entry clean so it is evictable
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  // Earliest extent should have been evicted; data must still be readable
  // (from the device) and correct.
  std::vector<char> out(64 << 10);
  ASSERT_EQ(cache.read(ids.front(), 0, out), StatusCode::kOk);
  EXPECT_EQ(out, make_value(0, 64 << 10));
}

TEST_F(PageCacheTest, MmapWriteReadRoundTrip) {
  SsdDevice dev(SsdProfile::sata());
  PageCache cache(dev, small_config());
  const auto id = dev.allocate(8192).value();
  const auto payload = make_value(5, 8192);
  ASSERT_EQ(cache.mmap_write(id, 0, payload), StatusCode::kOk);
  std::vector<char> out(8192);
  ASSERT_EQ(cache.mmap_read(id, 0, out), StatusCode::kOk);
  EXPECT_EQ(out, payload);
}

TEST_F(PageCacheTest, MmapCheaperThanCachedForSmallWrites) {
  sim::set_time_scale(1.0);
  SsdDevice dev(SsdProfile::sata());
  PageCacheConfig cfg;
  cfg.dirty_high_watermark = 8 << 20;
  cfg.dirty_low_watermark = 4 << 20;
  PageCache cache(dev, cfg);
  const auto payload = make_value(6, 2048);

  const auto id1 = dev.allocate(2048).value();
  ASSERT_EQ(cache.mmap_write(id1, 0, payload), StatusCode::kOk);  // map setup
  sim::Nanos mmap_total{0}, cached_total{0};
  for (int i = 0; i < 50; ++i) {
    const auto t0 = sim::now();
    ASSERT_EQ(cache.mmap_write(id1, 0, payload), StatusCode::kOk);
    mmap_total += sim::now() - t0;
  }
  const auto id2 = dev.allocate(2048).value();
  for (int i = 0; i < 50; ++i) {
    const auto t0 = sim::now();
    ASSERT_EQ(cache.write(id2, 0, payload), StatusCode::kOk);
    cached_total += sim::now() - t0;
  }
  // 2KB: mmap ~ 0.35us page touch + 0.24us copy; cached ~ 4us syscall + copy.
  EXPECT_LT(mmap_total, cached_total);
  cache.sync();
}

TEST_F(PageCacheTest, PartialWriteDoesNotClaimResidency) {
  SsdDevice dev(SsdProfile::sata());
  PageCache cache(dev, small_config());
  const auto id = dev.allocate(8192).value();
  ASSERT_EQ(cache.write(id, 0, make_value(7, 100)), StatusCode::kOk);
  EXPECT_FALSE(cache.resident(id));
}

}  // namespace
}  // namespace hykv::ssd
