// Emits every metric name the server's stats surfaces can produce, one per
// line: the legacy `stats` rows, then the `stats latency` rows. This is the
// machine-readable side of the docs contract -- scripts/check_metrics_docs.sh
// diffs this output against docs/METRICS.md so a counter can't ship
// undocumented (wired into ctest as `docs_metrics_consistency`).
#include <cstdio>

#include "server/server.hpp"

int main() {
  for (const std::string_view name : hykv::server::stats_field_names()) {
    std::printf("%.*s\n", static_cast<int>(name.size()), name.data());
  }
  for (const std::string& name : hykv::server::latency_field_names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}
