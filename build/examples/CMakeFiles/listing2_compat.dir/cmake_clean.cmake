file(REMOVE_RECURSE
  "CMakeFiles/listing2_compat.dir/listing2_compat.cpp.o"
  "CMakeFiles/listing2_compat.dir/listing2_compat.cpp.o.d"
  "listing2_compat"
  "listing2_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listing2_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
