# Empty compiler generated dependencies file for listing2_compat.
# This may be replaced when dependencies are built.
