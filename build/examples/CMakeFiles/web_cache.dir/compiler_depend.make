# Empty compiler generated dependencies file for web_cache.
# This may be replaced when dependencies are built.
