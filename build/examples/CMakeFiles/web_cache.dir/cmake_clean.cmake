file(REMOVE_RECURSE
  "CMakeFiles/web_cache.dir/web_cache.cpp.o"
  "CMakeFiles/web_cache.dir/web_cache.cpp.o.d"
  "web_cache"
  "web_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
