# Empty compiler generated dependencies file for ohb_cli.
# This may be replaced when dependencies are built.
