file(REMOVE_RECURSE
  "CMakeFiles/ohb_cli.dir/ohb_cli.cpp.o"
  "CMakeFiles/ohb_cli.dir/ohb_cli.cpp.o.d"
  "ohb_cli"
  "ohb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ohb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
