file(REMOVE_RECURSE
  "CMakeFiles/burst_buffer.dir/burst_buffer.cpp.o"
  "CMakeFiles/burst_buffer.dir/burst_buffer.cpp.o.d"
  "burst_buffer"
  "burst_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
