file(REMOVE_RECURSE
  "CMakeFiles/hykv_client.dir/backend_db.cpp.o"
  "CMakeFiles/hykv_client.dir/backend_db.cpp.o.d"
  "CMakeFiles/hykv_client.dir/client.cpp.o"
  "CMakeFiles/hykv_client.dir/client.cpp.o.d"
  "CMakeFiles/hykv_client.dir/compat.cpp.o"
  "CMakeFiles/hykv_client.dir/compat.cpp.o.d"
  "libhykv_client.a"
  "libhykv_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hykv_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
