# Empty dependencies file for hykv_client.
# This may be replaced when dependencies are built.
