file(REMOVE_RECURSE
  "libhykv_client.a"
)
