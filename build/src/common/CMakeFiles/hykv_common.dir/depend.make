# Empty dependencies file for hykv_common.
# This may be replaced when dependencies are built.
