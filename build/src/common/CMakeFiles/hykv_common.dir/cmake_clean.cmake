file(REMOVE_RECURSE
  "CMakeFiles/hykv_common.dir/hash.cpp.o"
  "CMakeFiles/hykv_common.dir/hash.cpp.o.d"
  "CMakeFiles/hykv_common.dir/histogram.cpp.o"
  "CMakeFiles/hykv_common.dir/histogram.cpp.o.d"
  "CMakeFiles/hykv_common.dir/logging.cpp.o"
  "CMakeFiles/hykv_common.dir/logging.cpp.o.d"
  "CMakeFiles/hykv_common.dir/profiles.cpp.o"
  "CMakeFiles/hykv_common.dir/profiles.cpp.o.d"
  "CMakeFiles/hykv_common.dir/random.cpp.o"
  "CMakeFiles/hykv_common.dir/random.cpp.o.d"
  "CMakeFiles/hykv_common.dir/sim_time.cpp.o"
  "CMakeFiles/hykv_common.dir/sim_time.cpp.o.d"
  "libhykv_common.a"
  "libhykv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hykv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
