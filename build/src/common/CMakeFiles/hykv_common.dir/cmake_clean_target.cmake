file(REMOVE_RECURSE
  "libhykv_common.a"
)
