# Empty dependencies file for hykv_ssd.
# This may be replaced when dependencies are built.
