file(REMOVE_RECURSE
  "libhykv_ssd.a"
)
