file(REMOVE_RECURSE
  "CMakeFiles/hykv_ssd.dir/async_io.cpp.o"
  "CMakeFiles/hykv_ssd.dir/async_io.cpp.o.d"
  "CMakeFiles/hykv_ssd.dir/device.cpp.o"
  "CMakeFiles/hykv_ssd.dir/device.cpp.o.d"
  "CMakeFiles/hykv_ssd.dir/page_cache.cpp.o"
  "CMakeFiles/hykv_ssd.dir/page_cache.cpp.o.d"
  "libhykv_ssd.a"
  "libhykv_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hykv_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
