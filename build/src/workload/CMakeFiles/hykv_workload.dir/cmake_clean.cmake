file(REMOVE_RECURSE
  "CMakeFiles/hykv_workload.dir/workload.cpp.o"
  "CMakeFiles/hykv_workload.dir/workload.cpp.o.d"
  "libhykv_workload.a"
  "libhykv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hykv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
