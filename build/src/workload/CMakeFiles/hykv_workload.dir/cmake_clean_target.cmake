file(REMOVE_RECURSE
  "libhykv_workload.a"
)
