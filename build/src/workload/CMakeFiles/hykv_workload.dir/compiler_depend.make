# Empty compiler generated dependencies file for hykv_workload.
# This may be replaced when dependencies are built.
