file(REMOVE_RECURSE
  "CMakeFiles/hykv_store.dir/hybrid_manager.cpp.o"
  "CMakeFiles/hykv_store.dir/hybrid_manager.cpp.o.d"
  "CMakeFiles/hykv_store.dir/slab.cpp.o"
  "CMakeFiles/hykv_store.dir/slab.cpp.o.d"
  "libhykv_store.a"
  "libhykv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hykv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
