file(REMOVE_RECURSE
  "libhykv_store.a"
)
