
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/hybrid_manager.cpp" "src/store/CMakeFiles/hykv_store.dir/hybrid_manager.cpp.o" "gcc" "src/store/CMakeFiles/hykv_store.dir/hybrid_manager.cpp.o.d"
  "/root/repo/src/store/slab.cpp" "src/store/CMakeFiles/hykv_store.dir/slab.cpp.o" "gcc" "src/store/CMakeFiles/hykv_store.dir/slab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hykv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/hykv_ssd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
