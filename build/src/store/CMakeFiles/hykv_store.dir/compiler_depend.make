# Empty compiler generated dependencies file for hykv_store.
# This may be replaced when dependencies are built.
