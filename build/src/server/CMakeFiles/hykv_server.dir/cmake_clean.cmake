file(REMOVE_RECURSE
  "CMakeFiles/hykv_server.dir/server.cpp.o"
  "CMakeFiles/hykv_server.dir/server.cpp.o.d"
  "libhykv_server.a"
  "libhykv_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hykv_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
