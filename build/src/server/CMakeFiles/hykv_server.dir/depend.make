# Empty dependencies file for hykv_server.
# This may be replaced when dependencies are built.
