file(REMOVE_RECURSE
  "libhykv_server.a"
)
