file(REMOVE_RECURSE
  "CMakeFiles/hykv_net.dir/fabric.cpp.o"
  "CMakeFiles/hykv_net.dir/fabric.cpp.o.d"
  "libhykv_net.a"
  "libhykv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hykv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
