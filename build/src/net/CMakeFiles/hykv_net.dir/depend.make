# Empty dependencies file for hykv_net.
# This may be replaced when dependencies are built.
