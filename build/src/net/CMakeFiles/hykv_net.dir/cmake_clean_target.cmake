file(REMOVE_RECURSE
  "libhykv_net.a"
)
