file(REMOVE_RECURSE
  "libhykv_core.a"
)
