
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/testbed.cpp" "src/core/CMakeFiles/hykv_core.dir/testbed.cpp.o" "gcc" "src/core/CMakeFiles/hykv_core.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hykv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hykv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/hykv_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/hykv_store.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/hykv_server.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/hykv_client.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
