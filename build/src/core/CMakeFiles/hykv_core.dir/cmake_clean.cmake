file(REMOVE_RECURSE
  "CMakeFiles/hykv_core.dir/testbed.cpp.o"
  "CMakeFiles/hykv_core.dir/testbed.cpp.o.d"
  "libhykv_core.a"
  "libhykv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hykv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
