# Empty dependencies file for hykv_core.
# This may be replaced when dependencies are built.
