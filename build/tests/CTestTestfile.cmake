# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_histogram[1]_include.cmake")
include("/root/repo/build/tests/test_sim_time[1]_include.cmake")
include("/root/repo/build/tests/test_queue[1]_include.cmake")
include("/root/repo/build/tests/test_status[1]_include.cmake")
include("/root/repo/build/tests/test_ssd_device[1]_include.cmake")
include("/root/repo/build/tests/test_page_cache[1]_include.cmake")
include("/root/repo/build/tests/test_io_engine[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_slab[1]_include.cmake")
include("/root/repo/build/tests/test_hash_map[1]_include.cmake")
include("/root/repo/build/tests/test_item[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid_manager[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_client_server[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_ring[1]_include.cmake")
include("/root/repo/build/tests/test_backend_db[1]_include.cmake")
include("/root/repo/build/tests/test_manager_ops[1]_include.cmake")
include("/root/repo/build/tests/test_client_ops[1]_include.cmake")
include("/root/repo/build/tests/test_async_io[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_server_async[1]_include.cmake")
include("/root/repo/build/tests/test_page_cache_concurrency[1]_include.cmake")
