# Empty dependencies file for test_manager_ops.
# This may be replaced when dependencies are built.
