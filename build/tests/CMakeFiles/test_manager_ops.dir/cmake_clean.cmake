file(REMOVE_RECURSE
  "CMakeFiles/test_manager_ops.dir/store/manager_ops_test.cpp.o"
  "CMakeFiles/test_manager_ops.dir/store/manager_ops_test.cpp.o.d"
  "test_manager_ops"
  "test_manager_ops.pdb"
  "test_manager_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manager_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
