file(REMOVE_RECURSE
  "CMakeFiles/test_server_async.dir/server/server_async_test.cpp.o"
  "CMakeFiles/test_server_async.dir/server/server_async_test.cpp.o.d"
  "test_server_async"
  "test_server_async.pdb"
  "test_server_async[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
