# Empty compiler generated dependencies file for test_server_async.
# This may be replaced when dependencies are built.
