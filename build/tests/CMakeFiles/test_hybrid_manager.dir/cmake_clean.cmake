file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_manager.dir/store/hybrid_manager_test.cpp.o"
  "CMakeFiles/test_hybrid_manager.dir/store/hybrid_manager_test.cpp.o.d"
  "test_hybrid_manager"
  "test_hybrid_manager.pdb"
  "test_hybrid_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
