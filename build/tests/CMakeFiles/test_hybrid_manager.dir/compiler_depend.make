# Empty compiler generated dependencies file for test_hybrid_manager.
# This may be replaced when dependencies are built.
