file(REMOVE_RECURSE
  "CMakeFiles/test_ssd_device.dir/ssd/device_test.cpp.o"
  "CMakeFiles/test_ssd_device.dir/ssd/device_test.cpp.o.d"
  "test_ssd_device"
  "test_ssd_device.pdb"
  "test_ssd_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssd_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
