# Empty compiler generated dependencies file for test_ssd_device.
# This may be replaced when dependencies are built.
