file(REMOVE_RECURSE
  "CMakeFiles/test_client_server.dir/client/client_server_test.cpp.o"
  "CMakeFiles/test_client_server.dir/client/client_server_test.cpp.o.d"
  "test_client_server"
  "test_client_server.pdb"
  "test_client_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_client_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
