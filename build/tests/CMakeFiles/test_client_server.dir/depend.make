# Empty dependencies file for test_client_server.
# This may be replaced when dependencies are built.
