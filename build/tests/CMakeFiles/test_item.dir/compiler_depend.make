# Empty compiler generated dependencies file for test_item.
# This may be replaced when dependencies are built.
