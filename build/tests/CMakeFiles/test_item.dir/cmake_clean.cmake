file(REMOVE_RECURSE
  "CMakeFiles/test_item.dir/store/item_test.cpp.o"
  "CMakeFiles/test_item.dir/store/item_test.cpp.o.d"
  "test_item"
  "test_item.pdb"
  "test_item[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_item.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
