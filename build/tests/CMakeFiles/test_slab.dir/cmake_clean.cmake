file(REMOVE_RECURSE
  "CMakeFiles/test_slab.dir/store/slab_test.cpp.o"
  "CMakeFiles/test_slab.dir/store/slab_test.cpp.o.d"
  "test_slab"
  "test_slab.pdb"
  "test_slab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
