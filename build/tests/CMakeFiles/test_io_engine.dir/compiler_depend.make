# Empty compiler generated dependencies file for test_io_engine.
# This may be replaced when dependencies are built.
