file(REMOVE_RECURSE
  "CMakeFiles/test_io_engine.dir/ssd/io_engine_test.cpp.o"
  "CMakeFiles/test_io_engine.dir/ssd/io_engine_test.cpp.o.d"
  "test_io_engine"
  "test_io_engine.pdb"
  "test_io_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
