# Empty compiler generated dependencies file for test_client_ops.
# This may be replaced when dependencies are built.
