file(REMOVE_RECURSE
  "CMakeFiles/test_client_ops.dir/client/client_ops_test.cpp.o"
  "CMakeFiles/test_client_ops.dir/client/client_ops_test.cpp.o.d"
  "test_client_ops"
  "test_client_ops.pdb"
  "test_client_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_client_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
