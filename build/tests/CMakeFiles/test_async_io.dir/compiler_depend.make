# Empty compiler generated dependencies file for test_async_io.
# This may be replaced when dependencies are built.
