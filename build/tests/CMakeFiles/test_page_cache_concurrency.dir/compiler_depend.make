# Empty compiler generated dependencies file for test_page_cache_concurrency.
# This may be replaced when dependencies are built.
