file(REMOVE_RECURSE
  "CMakeFiles/test_page_cache_concurrency.dir/ssd/page_cache_concurrency_test.cpp.o"
  "CMakeFiles/test_page_cache_concurrency.dir/ssd/page_cache_concurrency_test.cpp.o.d"
  "test_page_cache_concurrency"
  "test_page_cache_concurrency.pdb"
  "test_page_cache_concurrency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_cache_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
