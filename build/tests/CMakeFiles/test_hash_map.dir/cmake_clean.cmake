file(REMOVE_RECURSE
  "CMakeFiles/test_hash_map.dir/store/hash_map_test.cpp.o"
  "CMakeFiles/test_hash_map.dir/store/hash_map_test.cpp.o.d"
  "test_hash_map"
  "test_hash_map.pdb"
  "test_hash_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
