file(REMOVE_RECURSE
  "CMakeFiles/test_backend_db.dir/client/backend_db_test.cpp.o"
  "CMakeFiles/test_backend_db.dir/client/backend_db_test.cpp.o.d"
  "test_backend_db"
  "test_backend_db.pdb"
  "test_backend_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
