# Empty compiler generated dependencies file for test_backend_db.
# This may be replaced when dependencies are built.
