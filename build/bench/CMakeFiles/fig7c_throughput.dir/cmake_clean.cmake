file(REMOVE_RECURSE
  "CMakeFiles/fig7c_throughput.dir/fig7c_throughput.cpp.o"
  "CMakeFiles/fig7c_throughput.dir/fig7c_throughput.cpp.o.d"
  "fig7c_throughput"
  "fig7c_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
