# Empty dependencies file for fig7c_throughput.
# This may be replaced when dependencies are built.
