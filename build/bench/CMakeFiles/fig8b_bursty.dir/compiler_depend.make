# Empty compiler generated dependencies file for fig8b_bursty.
# This may be replaced when dependencies are built.
