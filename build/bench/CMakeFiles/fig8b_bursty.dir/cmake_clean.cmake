file(REMOVE_RECURSE
  "CMakeFiles/fig8b_bursty.dir/fig8b_bursty.cpp.o"
  "CMakeFiles/fig8b_bursty.dir/fig8b_bursty.cpp.o.d"
  "fig8b_bursty"
  "fig8b_bursty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_bursty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
