# Empty dependencies file for ablation_async_ssd.
# This may be replaced when dependencies are built.
