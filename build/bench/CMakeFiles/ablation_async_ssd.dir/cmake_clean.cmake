file(REMOVE_RECURSE
  "CMakeFiles/ablation_async_ssd.dir/ablation_async_ssd.cpp.o"
  "CMakeFiles/ablation_async_ssd.dir/ablation_async_ssd.cpp.o.d"
  "ablation_async_ssd"
  "ablation_async_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_async_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
