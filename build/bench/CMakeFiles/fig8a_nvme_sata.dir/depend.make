# Empty dependencies file for fig8a_nvme_sata.
# This may be replaced when dependencies are built.
