file(REMOVE_RECURSE
  "CMakeFiles/fig8a_nvme_sata.dir/fig8a_nvme_sata.cpp.o"
  "CMakeFiles/fig8a_nvme_sata.dir/fig8a_nvme_sata.cpp.o.d"
  "fig8a_nvme_sata"
  "fig8a_nvme_sata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_nvme_sata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
