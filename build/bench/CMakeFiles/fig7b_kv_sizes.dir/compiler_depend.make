# Empty compiler generated dependencies file for fig7b_kv_sizes.
# This may be replaced when dependencies are built.
