file(REMOVE_RECURSE
  "CMakeFiles/fig7b_kv_sizes.dir/fig7b_kv_sizes.cpp.o"
  "CMakeFiles/fig7b_kv_sizes.dir/fig7b_kv_sizes.cpp.o.d"
  "fig7b_kv_sizes"
  "fig7b_kv_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_kv_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
