file(REMOVE_RECURSE
  "CMakeFiles/fig4_io_schemes.dir/fig4_io_schemes.cpp.o"
  "CMakeFiles/fig4_io_schemes.dir/fig4_io_schemes.cpp.o.d"
  "fig4_io_schemes"
  "fig4_io_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_io_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
