# Empty dependencies file for fig4_io_schemes.
# This may be replaced when dependencies are built.
