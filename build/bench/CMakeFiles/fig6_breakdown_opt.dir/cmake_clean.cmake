file(REMOVE_RECURSE
  "CMakeFiles/fig6_breakdown_opt.dir/fig6_breakdown_opt.cpp.o"
  "CMakeFiles/fig6_breakdown_opt.dir/fig6_breakdown_opt.cpp.o.d"
  "fig6_breakdown_opt"
  "fig6_breakdown_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_breakdown_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
