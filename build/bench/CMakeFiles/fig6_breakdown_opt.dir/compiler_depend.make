# Empty compiler generated dependencies file for fig6_breakdown_opt.
# This may be replaced when dependencies are built.
