file(REMOVE_RECURSE
  "CMakeFiles/ablation_regcache.dir/ablation_regcache.cpp.o"
  "CMakeFiles/ablation_regcache.dir/ablation_regcache.cpp.o.d"
  "ablation_regcache"
  "ablation_regcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
