file(REMOVE_RECURSE
  "CMakeFiles/fig1_overall_latency.dir/fig1_overall_latency.cpp.o"
  "CMakeFiles/fig1_overall_latency.dir/fig1_overall_latency.cpp.o.d"
  "fig1_overall_latency"
  "fig1_overall_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_overall_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
