# Empty dependencies file for fig1_overall_latency.
# This may be replaced when dependencies are built.
