file(REMOVE_RECURSE
  "CMakeFiles/fig7a_overlap.dir/fig7a_overlap.cpp.o"
  "CMakeFiles/fig7a_overlap.dir/fig7a_overlap.cpp.o.d"
  "fig7a_overlap"
  "fig7a_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
