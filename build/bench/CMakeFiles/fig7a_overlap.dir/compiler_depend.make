# Empty compiler generated dependencies file for fig7a_overlap.
# This may be replaced when dependencies are built.
