// Ablation: what doorbell batching buys (DESIGN.md §12).
//
// The TX engine coalesces back-to-back same-server requests into one kOpBatch
// frame, so a run of n small ops pays one doorbell, one deadline header and
// one per-message fabric base latency instead of n of each, and the server's
// single network thread handles one message instead of n. This sweep measures
// closed-loop GET throughput (pipelined igets into reused, pre-registered
// destination buffers -- the warm-cache steady state a real client reaches)
// over batch_max_ops x value size x client threads, on both fabric profiles:
//
//  - fdr_rdma (RDMA-Mem): 1.2us base / 300ns doorbell -- per-message overhead
//    dominates small ops, so batching should win big (criterion: >=2x at
//    values <= 512 B with batch_max_ops >= 8 vs the default-off 1).
//  - ipoib (IPoIB-Mem): 15us base / 3us doorbell -- the same relative story
//    at much higher absolute cost.
//
// batch_max_ops = 1 is the byte-for-byte pre-batching wire path (asserted by
// tests/client/batch_test.cpp), so the batch=1 column is the true baseline.
// Warm-up rounds (cold registrations, first-touch) are excluded from the
// timed window. Emits BENCH_batching.json for tooling.
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "client/request.hpp"
#include "common/hash.hpp"
#include "core/testbed.hpp"

using namespace hykv;

namespace {

constexpr std::size_t kKeys = 512;
constexpr std::size_t kWindow = 32;  ///< igets in flight per thread.

struct Cell {
  core::Design design;
  unsigned batch;
  std::size_t value_bytes;
  unsigned threads;
};

struct CellOut {
  double mops = 0.0;       ///< Modelled (dilation-corrected) Mops/s.
  double fill = 0.0;       ///< Achieved client-side batch fill.
  std::uint64_t ops = 0;   ///< Ops in the timed window.
};

CellOut run_cell(const Cell& cell, unsigned warmup_rounds, unsigned rounds) {
  core::TestBedConfig cfg;
  cfg.design = cell.design;
  cfg.total_server_memory = bench::kScaledServerMemory;
  cfg.client_batch_max_ops = cell.batch;
  core::TestBed bed(cfg);

  {
    // Preload outside any timed window.
    sim::ScopedTimeScale preload_scale(0.0);
    auto loader = bed.make_client("preload");
    for (std::size_t i = 0; i < kKeys; ++i) {
      (void)loader->set(make_key(i), make_value(i, cell.value_bytes), 0, 0);
    }
  }

  // One shared client: coalescing happens in its TX queue, fed by every
  // thread -- exactly the deployment the knob targets.
  auto client = bed.make_client("bench");

  const sim::ScopedTimeScale dilation(bench::kTimeDilation);
  std::barrier sync(static_cast<std::ptrdiff_t>(cell.threads) + 1);
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> workers;
  workers.reserve(cell.threads);
  for (unsigned t = 0; t < cell.threads; ++t) {
    workers.emplace_back([&, t] {
      // Fixed destination buffers, reused every round: after the first
      // (warm-up) touch each iget hits the registration cache -- the steady
      // state batching is supposed to amortize further.
      const std::size_t dest_bytes = cell.value_bytes + 64;
      std::vector<std::unique_ptr<char[]>> dests;
      std::vector<client::Request> reqs(kWindow);
      dests.reserve(kWindow);
      for (std::size_t w = 0; w < kWindow; ++w) {
        dests.push_back(std::make_unique<char[]>(dest_bytes));
      }
      std::uint64_t x = 0xBA7C4 + t;
      std::uint64_t done = 0;
      const auto round = [&](bool measured) {
        for (std::size_t w = 0; w < kWindow; ++w) {
          x = mix64(x + w);
          (void)client->iget(make_key(x % kKeys),
                             std::span<char>(dests[w].get(), dest_bytes),
                             reqs[w]);
        }
        for (std::size_t w = 0; w < kWindow; ++w) {
          client->wait(reqs[w]);
          if (measured && reqs[w].status() == StatusCode::kOk) ++done;
        }
      };
      for (unsigned r = 0; r < warmup_rounds; ++r) round(false);
      sync.arrive_and_wait();  // timed window opens
      for (unsigned r = 0; r < rounds; ++r) round(true);
      sync.arrive_and_wait();  // timed window closes
      completed.fetch_add(done, std::memory_order_relaxed);
    });
  }

  sync.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  sync.arrive_and_wait();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  for (auto& worker : workers) worker.join();

  CellOut out;
  out.ops = completed.load();
  const double seconds =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      1e9;
  // Dilation-corrected: modelled sleeps ran kTimeDilation x slower in wall
  // time, so wall throughput scales back up by the same factor.
  out.mops = static_cast<double>(out.ops) / seconds / 1e6 * bench::kTimeDilation;
  out.fill = client->counters().batch_fill();
  return out;
}

}  // namespace

int main() {
  sim::init_precise_timing();
  bench::print_banner("Ablation: doorbell batching (batch_max_ops sweep)");

  const bool smoke = std::getenv("HYKV_BENCH_SMOKE") != nullptr;
  const std::vector<unsigned> batches =
      smoke ? std::vector<unsigned>{1, 8} : std::vector<unsigned>{1, 4, 8, 16};
  const std::vector<std::size_t> values =
      smoke ? std::vector<std::size_t>{512}
            : std::vector<std::size_t>{64, 512, 4096};
  const std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1} : std::vector<unsigned>{1, 4};
  const unsigned warmup_rounds = smoke ? 1 : 4;
  const unsigned rounds = smoke ? 2 : 40;

  std::string json = "{\"bench\":\"batching\",\"smoke\":" +
                     std::string(smoke ? "true" : "false") + ",\"cells\":[";
  bool first_cell = true;
  // headline: best fdr small-value (<=512 B) ratio of batch_max_ops >= 8
  // over batch=1 across thread counts -- the acceptance criterion is >=2x.
  double headline_ratio = 0.0;
  double base_small[2][3][2] = {};  // [design][value idx][threads idx]

  for (const core::Design design :
       {core::Design::kRdmaMem, core::Design::kIpoibMem}) {
    std::printf("%s (%s)\n", core::to_string(design).data(),
                fabric_profile(design).name.c_str());
    std::printf("  %6s %8s %8s %12s %10s %8s\n", "batch", "value", "threads",
                "Mops (mod)", "vs b=1", "fill");
    for (const unsigned batch : batches) {
      for (std::size_t vi = 0; vi < values.size(); ++vi) {
        for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
          const Cell cell{design, batch, values[vi], thread_counts[ti]};
          const CellOut out = run_cell(cell, warmup_rounds, rounds);
          const std::size_t di = design == core::Design::kRdmaMem ? 0 : 1;
          double ratio = 0.0;
          if (batch == 1) {
            base_small[di][vi][ti] = out.mops;
            ratio = 1.0;
          } else if (base_small[di][vi][ti] > 0.0) {
            ratio = out.mops / base_small[di][vi][ti];
          }
          if (design == core::Design::kRdmaMem && batch >= 8 &&
              cell.value_bytes <= 512 && ratio > headline_ratio) {
            headline_ratio = ratio;
          }
          std::printf("  %6u %7zuB %8u %12.3f %9.2fx %8.2f\n", batch,
                      cell.value_bytes, cell.threads, out.mops, ratio,
                      out.fill);
          if (!first_cell) json += ",";
          first_cell = false;
          json += "{\"design\":\"" +
                  std::string(core::to_string(design)) + "\",\"batch\":" +
                  std::to_string(batch) + ",\"value_bytes\":" +
                  std::to_string(cell.value_bytes) + ",\"threads\":" +
                  std::to_string(cell.threads) + ",\"mops\":" +
                  std::to_string(out.mops) + ",\"ratio_vs_batch1\":" +
                  std::to_string(ratio) + ",\"fill\":" +
                  std::to_string(out.fill) + "}";
        }
      }
    }
    std::printf("\n");
  }

  std::printf("headline: fdr_rdma, value <= 512 B, batch_max_ops >= 8 vs 1: "
              "%.2fx (criterion: >=2x)\n\n",
              headline_ratio);
  json += "],\"headline_small_value_speedup\":" +
          std::to_string(headline_ratio) + "}\n";

  const char* out_path = "BENCH_batching.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("could not write %s\n", out_path);
  }
  return 0;
}
