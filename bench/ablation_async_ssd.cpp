// Future-work ablation (paper §VII: "exploring the benefits of employing
// asynchronous SSD I/O"): synchronous direct writes vs an async submission
// queue at increasing queue depth, on SATA (1 channel) and NVMe (4 channels).
//
// Expected shape: async pipelining hides per-op submission latency on both
// devices; on NVMe, depth > 1 additionally unlocks channel parallelism for
// up to ~4x aggregate write throughput. On SATA the single channel caps the
// win at "no sync-barrier + pipelined submission".
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "ssd/async_io.hpp"

using namespace hykv;

namespace {

double sync_batch_ms(const SsdProfile& profile, std::size_t op_bytes, int ops) {
  ssd::SsdDevice dev(profile);
  const auto payload = workload::dataset_value(1, op_bytes);
  std::vector<ssd::ExtentId> ids;
  for (int i = 0; i < ops; ++i) ids.push_back(dev.allocate(op_bytes).value());
  const auto start = sim::now();
  for (const auto id : ids) (void)dev.write(id, 0, payload);
  return static_cast<double>((sim::now() - start).count()) / 1e6;
}

double async_batch_ms(const SsdProfile& profile, std::size_t op_bytes, int ops,
                      unsigned depth) {
  ssd::SsdDevice dev(profile);
  const auto payload = workload::dataset_value(1, op_bytes);
  std::vector<ssd::ExtentId> ids;
  for (int i = 0; i < ops; ++i) ids.push_back(dev.allocate(op_bytes).value());
  ssd::AsyncSsdQueue queue(dev, depth);
  const auto start = sim::now();
  for (const auto id : ids) (void)queue.submit_write(id, 0, payload);
  queue.drain();
  return static_cast<double>((sim::now() - start).count()) / 1e6;
}

}  // namespace

int main() {
  sim::init_precise_timing();
  bench::print_banner("Ablation: asynchronous SSD I/O (paper future work)");

  constexpr std::size_t kOpBytes = 1 << 20;
  constexpr int kOps = 16;
  std::printf("  16 x 1MB writes, total batch time [ms]\n\n");
  std::printf("  %-12s %10s %10s %10s %10s\n", "device", "sync", "async d1",
              "async d2", "async d4");
  for (const auto& profile : {SsdProfile::sata(), SsdProfile::nvme()}) {
    const double sync_ms = sync_batch_ms(profile, kOpBytes, kOps);
    const double d1 = async_batch_ms(profile, kOpBytes, kOps, 1);
    const double d2 = async_batch_ms(profile, kOpBytes, kOps, 2);
    const double d4 = async_batch_ms(profile, kOpBytes, kOps, 4);
    std::printf("  %-12s %10.1f %10.1f %10.1f %10.1f   (d4: %.1fx vs sync)\n",
                profile.name.c_str(), sync_ms, d1, d2, d4, sync_ms / d4);
  }
  std::printf(
      "\n(sync pays the per-write barrier; async amortises it and, on NVMe,\n"
      " exploits the 4 internal channels -- the future-work win the paper\n"
      " anticipated)\n");
  return 0;
}
