// Ablation: shard count x worker threads on the hybrid slab store.
//
// The pre-PR store was one HybridSlabManager behind one mutex: every worker
// thread of the async server serialised on it, so processing_threads > 1
// bought nothing on the storage tier. ShardedManager partitions the store by
// key hash; this sweep measures what that buys as concurrency grows.
//
// Two sweeps, one caveat:
//   modelled   -- each set/get carries ManagerConfig::modelled_op_cost of
//                 under-lock CPU time, realised as modelled time the same way
//                 every fabric/SSD cost in this repo is (sleep on the real
//                 clock, see sim_time.hpp). Lock holders of the *same* shard
//                 serialise their cost; holders of different shards overlap.
//                 This reproduces multi-core lock-contention behaviour on any
//                 host, including single-core CI boxes where raw mutex
//                 contention is invisible (one core serialises everything
//                 anyway). The headline >=2x criterion is read off this sweep.
//   cpu_bound  -- modelled_op_cost = 0: the store's real host-CPU path
//                 (hash, lock, memcpy). On a multi-core host this shows the
//                 same shape; on a single-core host it is flat by physics,
//                 which EXPERIMENTS.md calls out rather than hides.
//
// Also measures the facade tax: raw HybridSlabManager vs ShardedManager with
// shards=1 (must be within noise -- it is one virtual-call-free forward plus
// one hash already computed by the shard selector).
//
// Emits BENCH_shard_scaling.json next to the binary for tooling.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/random.hpp"
#include "store/sharded_manager.hpp"

using namespace hykv;

namespace {

constexpr std::size_t kKeys = 4096;
constexpr std::size_t kValueBytes = 512;

struct Cell {
  unsigned shards = 1;
  unsigned threads = 1;
  double mops = 0.0;
};

store::ManagerConfig store_config(unsigned shards, sim::Nanos op_cost) {
  store::ManagerConfig cfg;
  cfg.mode = store::StorageMode::kInMemory;
  cfg.shards = shards;
  cfg.slab.slab_bytes = std::size_t{1} << 20;
  cfg.slab.memory_limit = std::size_t{64} << 20;  // whole keyspace RAM-resident
  cfg.modelled_op_cost = op_cost;
  return cfg;
}

/// One sweep cell: `threads` workers hammer a 50/50 set/get mix over the
/// pre-populated keyspace; returns Mops/s of the measured phase.
double run_cell(unsigned shards, unsigned threads, sim::Nanos op_cost,
                std::uint64_t ops_per_thread) {
  store::ShardedManager manager(store_config(shards, op_cost), nullptr);
  {
    // Preload outside modelled time (the established preload idiom).
    sim::ScopedTimeScale preload_scale(0.0);
    for (std::size_t i = 0; i < kKeys; ++i) {
      (void)manager.set(make_key(i), make_value(i, kValueBytes), 0, 0);
    }
  }

  std::vector<std::thread> workers;
  workers.reserve(threads);
  const auto start = sim::now();
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&manager, t, ops_per_thread] {
      std::vector<char> out;
      std::uint32_t flags = 0;
      std::uint64_t x = mix64(0xABCD + t);
      for (std::uint64_t op = 0; op < ops_per_thread; ++op) {
        x = mix64(x + op);
        const std::string key = make_key(x % kKeys);
        if (x & 1) {
          (void)manager.set(key, make_value(x % kKeys, kValueBytes), 0, 0);
        } else {
          (void)manager.get(key, out, flags);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double seconds =
      static_cast<double>((sim::now() - start).count()) / 1e9;
  const double total_ops =
      static_cast<double>(ops_per_thread) * static_cast<double>(threads);
  return total_ops / seconds / 1e6;
}

std::vector<Cell> run_sweep(const char* title, sim::Nanos op_cost,
                            std::uint64_t ops_per_thread) {
  std::printf("%s (ops/thread=%llu, modelled op cost=%.0fus)\n", title,
              static_cast<unsigned long long>(ops_per_thread),
              static_cast<double>(op_cost.count()) / 1e3);
  std::printf("  %8s", "threads");
  for (const unsigned shards : {1u, 2u, 4u, 8u, 16u}) {
    std::printf("  shards=%-2u", shards);
  }
  std::printf("   (Mops/s)\n");

  std::vector<Cell> cells;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    std::printf("  %8u", threads);
    for (const unsigned shards : {1u, 2u, 4u, 8u, 16u}) {
      Cell cell;
      cell.shards = shards;
      cell.threads = threads;
      cell.mops = run_cell(shards, threads, op_cost, ops_per_thread);
      cells.push_back(cell);
      std::printf("  %9.3f", cell.mops);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
  return cells;
}

double cell_mops(const std::vector<Cell>& cells, unsigned shards,
                 unsigned threads) {
  for (const Cell& c : cells) {
    if (c.shards == shards && c.threads == threads) return c.mops;
  }
  return 0.0;
}

void append_cells(std::string& json, const std::vector<Cell>& cells) {
  json += "[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) json += ",";
    json += "{\"shards\":" + std::to_string(cells[i].shards) +
            ",\"threads\":" + std::to_string(cells[i].threads) + ",\"mops\":" +
            std::to_string(cells[i].mops) + "}";
  }
  json += "]";
}

}  // namespace

int main() {
  sim::init_precise_timing();
  bench::print_banner("Ablation: store shards x worker threads");

  const bool smoke = std::getenv("HYKV_BENCH_SMOKE") != nullptr;
  const std::uint64_t modelled_ops = smoke ? 24 : 500;
  const std::uint64_t cpu_ops = smoke ? 200 : 50000;
  const sim::Nanos op_cost = sim::us(20);

  const auto modelled =
      run_sweep("sweep: modelled under-lock cost", op_cost, modelled_ops);
  const auto cpu_bound =
      run_sweep("sweep: cpu-bound (cost=0; flat on single-core hosts)",
                sim::Nanos{0}, cpu_ops);

  // Facade tax: the pre-PR manager vs the facade at shards=1, one thread.
  // Alternated best-of-3 so scheduler noise hits both sides equally.
  auto timed_mix = [cpu_ops](auto& manager) {
    {
      sim::ScopedTimeScale preload_scale(0.0);
      for (std::size_t i = 0; i < kKeys; ++i) {
        (void)manager.set(make_key(i), make_value(i, kValueBytes), 0, 0);
      }
    }
    std::vector<char> out;
    std::uint32_t flags = 0;
    std::uint64_t x = mix64(0xABCD);
    const auto start = sim::now();
    for (std::uint64_t op = 0; op < cpu_ops; ++op) {
      x = mix64(x + op);
      const std::string key = make_key(x % kKeys);
      if (x & 1) {
        (void)manager.set(key, make_value(x % kKeys, kValueBytes), 0, 0);
      } else {
        (void)manager.get(key, out, flags);
      }
    }
    const double seconds =
        static_cast<double>((sim::now() - start).count()) / 1e9;
    return static_cast<double>(cpu_ops) / seconds / 1e6;
  };
  double raw_mops = 0.0;
  double facade_mops = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    {
      store::HybridSlabManager manager(store_config(1, sim::Nanos{0}), nullptr);
      raw_mops = std::max(raw_mops, timed_mix(manager));
    }
    {
      store::ShardedManager manager(store_config(1, sim::Nanos{0}), nullptr);
      facade_mops = std::max(facade_mops, timed_mix(manager));
    }
  }
  std::printf("facade tax: raw manager %.3f Mops/s vs ShardedManager(1) %.3f "
              "Mops/s (%+.1f%%)\n",
              raw_mops, facade_mops,
              100.0 * (facade_mops - raw_mops) / raw_mops);

  const double base = cell_mops(modelled, 1, 8);
  const double best = cell_mops(modelled, 16, 8);
  std::printf("headline: 8 threads, 16 shards vs 1 shard (modelled): %.3f vs "
              "%.3f Mops/s = %.2fx\n\n",
              best, base, best / base);

  std::string json = "{\"bench\":\"shard_scaling\",\"modelled_op_cost_us\":" +
                     std::to_string(op_cost.count() / 1000) +
                     ",\"smoke\":" + (smoke ? std::string("true") : "false") +
                     ",\"modelled\":";
  append_cells(json, modelled);
  json += ",\"cpu_bound\":";
  append_cells(json, cpu_bound);
  json += ",\"facade\":{\"raw_mops\":" + std::to_string(raw_mops) +
          ",\"sharded1_mops\":" + std::to_string(facade_mops) + "}";
  json += ",\"headline_speedup\":" + std::to_string(best / base) + "}\n";

  const char* out_path = "BENCH_shard_scaling.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("could not write %s\n", out_path);
  }
  return 0;
}
