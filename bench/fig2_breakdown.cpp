// Figure 2: time-wise breakdown of Memcached Set/Get latency across the six
// profiled stages (Section III-A), for the three baseline designs, with data
// (a) fitting and (b) not fitting in memory.
//
// Paper shape to reproduce:
//   (a) client wait / network dominates for both in-memory designs; all
//       server stages are small.
//   (b) MissPenalty dominates the in-memory designs; SlabAllocation (flush)
//       and CacheCheck+Load (SSD reads) blow up for H-RDMA-Def.
#include <cstdio>

#include "bench_util.hpp"

using namespace hykv;
using namespace hykv::bench;

namespace {

void print_breakdown_row(const char* design, const Outcome& outcome) {
  std::printf("  %-12s %10.1f %12.1f %10.1f %10.1f %10.1f %12.1f\n", design,
              outcome.server_us(Stage::kSlabAllocation),
              outcome.server_us(Stage::kCacheCheckLoad),
              outcome.server_us(Stage::kCacheUpdate),
              outcome.server_us(Stage::kServerResponse),
              client_wait_net_us(outcome),
              outcome.client_us(Stage::kMissPenalty));
}

}  // namespace

int main() {
  sim::init_precise_timing();
  print_banner("Figure 2: six-stage Set/Get latency breakdown, baselines");

  for (const bool fits : {true, false}) {
    std::printf("(%c) data %s in memory   [us per op]\n", fits ? 'a' : 'b',
                fits ? "fits" : "does NOT fit");
    std::printf("  %-12s %10s %12s %10s %10s %10s %12s\n", "design",
                "SlabAlloc", "CheckLoad", "CacheUpd", "SrvResp",
                "ClientWait", "MissPenalty");
    for (const core::Design design : core::kBaselineDesigns) {
      Scenario s;
      s.design = design;
      s.data_ratio = fits ? 1.0 : 1.5;
      const Outcome outcome = run_scenario(s);
      print_breakdown_row(std::string(to_string(design)).c_str(), outcome);
    }
    std::printf("\n");
  }
  std::printf(
      "note: ClientWait is the blocking wait net of server-stage time\n"
      "      (network + queueing); MissPenalty is backend database access.\n");
  return 0;
}
