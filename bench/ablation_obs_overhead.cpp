// Ablation: what does always-on latency observability cost?
//
// The PR's claim is that the LatencyRecorder (per-worker atomic histograms on
// every request) is cheap enough to leave on by default. The measurement has
// to be careful: the per-request instrumentation is ~200ns while closed-loop
// end-to-end numbers (wall or CPU time) swing several percent run to run on
// a shared host -- an A/B throughput diff cannot resolve a <=2% effect here
// (the on+trace mode repeatedly measures *cheaper* than plain on, which is
// the noise floor announcing itself). So the headline is built from parts
// that are individually stable:
//
//  1. micro: the cost of each instrumentation primitive in a tight loop --
//     record_op/record_span (histogram bucket + count/sum/min/max relaxed
//     RMWs) and the steady-clock read.
//  2. per-request site count: a recorded GET on the in-memory design touches
//     the recorder 5x (server: end-to-end op, fabric-transfer, store-phase,
//     response spans; client: issue->complete op) and adds 2 extra clock
//     reads (server store_start, client issued_at). Tracing adds one relaxed
//     fetch_add per request plus a mutexed ring write on sampled requests.
//  3. baseline: measured closed-loop CPU per op (CLOCK_PROCESS_CPUTIME_ID)
//     with recording off, under time scale 0 so modelled device/fabric
//     sleeps vanish -- the least-favourable (all-CPU) denominator; any
//     modelled time would only dilute the ratio.
//
// headline overhead = (5*record + 2*clock_read) / baseline_cpu_per_op.
// The raw end-to-end on/off CPU deltas are printed as a cross-check; they
// bracket the headline within their noise.
//
// Headline criterion: <=2%. Emits BENCH_obs_overhead.json for tooling.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/metrics.hpp"
#include "core/testbed.hpp"

using namespace hykv;

namespace {

constexpr std::size_t kKeys = 512;
constexpr std::size_t kValueBytes = 256;

// Instrumentation sites on a recorded request (see the header comment).
constexpr double kRecordsPerRequest = 5.0;
constexpr double kClockReadsPerRequest = 2.0;

struct Mode {
  const char* name;
  bool record_latency;
  unsigned trace_sample_shift;
};

constexpr Mode kModes[] = {
    {"off", false, 0},
    {"on", true, 0},
    {"on_trace", true, 6},  // trace every 64th request on top of recording
};
constexpr std::size_t kModeCount = sizeof(kModes) / sizeof(kModes[0]);

std::uint64_t process_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

double micro_record_ns(std::uint64_t iterations) {
  metrics::LatencyRecorder recorder(16);
  std::uint64_t x = 0x0B5E;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    x = mix64(x + i);
    recorder.record_op(metrics::Op::kGet, (x % 100000) + 1);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Defeat dead-code elimination: the merged count must be exact.
  if (recorder.op_histogram(metrics::Op::kGet).count() != iterations) {
    std::printf("micro self-check failed\n");
  }
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(iterations);
}

double micro_clock_read_ns(std::uint64_t iterations) {
  std::uint64_t acc = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    acc ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (acc == 1) std::printf("clock self-check\n");  // keep acc live
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(iterations);
}

struct CellResult {
  double cpu_ns_per_op = 0.0;
  double wall_mops = 0.0;
};

/// One closed-loop rep: a fresh bed in the given mode, `ops` blocking ops
/// (90% GET mix), measured over the op loop only.
CellResult run_cell(const Mode& mode, std::uint64_t ops) {
  core::TestBedConfig cfg;
  cfg.design = core::Design::kRdmaMem;
  cfg.total_server_memory = 16 << 20;
  cfg.server_record_latency = mode.record_latency;
  cfg.server_trace_sample_shift = mode.trace_sample_shift;
  cfg.client_record_latency = mode.record_latency;
  core::TestBed bed(cfg);
  auto client = bed.make_client("bench");

  for (std::size_t i = 0; i < kKeys; ++i) {
    (void)client->set(make_key(i), make_value(i, kValueBytes), 0, 0);
  }

  std::vector<char> out;
  std::uint64_t x = 0xFACE;
  const std::uint64_t cpu_start = process_cpu_ns();
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::uint64_t op = 0; op < ops; ++op) {
    x = mix64(x + op);
    const std::string key = make_key(x % kKeys);
    if ((x >> 8) % 100 < 90) {
      (void)client->get(key, out);
    } else {
      (void)client->set(key, make_value(x % kKeys, kValueBytes), 0, 0);
    }
  }
  const auto wall_elapsed = std::chrono::steady_clock::now() - wall_start;
  const std::uint64_t cpu_elapsed = process_cpu_ns() - cpu_start;

  CellResult result;
  result.cpu_ns_per_op =
      static_cast<double>(cpu_elapsed) / static_cast<double>(ops);
  const double wall_seconds =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              wall_elapsed)
                              .count()) /
      1e9;
  result.wall_mops = static_cast<double>(ops) / wall_seconds / 1e6;
  return result;
}

}  // namespace

int main() {
  sim::init_precise_timing();
  bench::print_banner("Ablation: observability overhead (recording off/on/on+trace)");

  const bool smoke = std::getenv("HYKV_BENCH_SMOKE") != nullptr;
  const std::uint64_t micro_iters = smoke ? 20000 : 2000000;
  const std::uint64_t ops_per_rep = smoke ? 300 : 30000;
  const unsigned reps = smoke ? 2 : 5;

  const double record_ns = micro_record_ns(micro_iters);
  const double clock_ns = micro_clock_read_ns(micro_iters);
  const double added_ns =
      kRecordsPerRequest * record_ns + kClockReadsPerRequest * clock_ns;
  std::printf("micro: record_op = %.1f ns, clock read = %.1f ns "
              "-> %.0f ns added per recorded request "
              "(%.0f records + %.0f clock reads)\n\n",
              record_ns, clock_ns, added_ns, kRecordsPerRequest,
              kClockReadsPerRequest);

  // Time scale 0: modelled costs collapse so the measured loop is all-CPU --
  // the least-favourable denominator for the overhead ratio.
  const sim::ScopedTimeScale cpu_bound(0.0);

  std::printf("end-to-end: closed loop, 90%% GET, %llu ops/rep, best of %u "
              "interleaved reps\n",
              static_cast<unsigned long long>(ops_per_rep), reps);
  double best_cpu[kModeCount];
  double best_mops[kModeCount] = {};
  for (std::size_t m = 0; m < kModeCount; ++m) best_cpu[m] = 1e18;
  for (unsigned rep = 0; rep < reps; ++rep) {
    for (std::size_t m = 0; m < kModeCount; ++m) {
      const CellResult r = run_cell(kModes[m], ops_per_rep);
      if (r.cpu_ns_per_op < best_cpu[m]) best_cpu[m] = r.cpu_ns_per_op;
      if (r.wall_mops > best_mops[m]) best_mops[m] = r.wall_mops;
    }
  }
  for (std::size_t m = 0; m < kModeCount; ++m) {
    std::printf("  %-8s %8.0f ns CPU/op  (%.3f Mops/s wall)\n", kModes[m].name,
                best_cpu[m], best_mops[m]);
  }
  const double ab_on_pct =
      (best_cpu[1] - best_cpu[0]) / best_cpu[0] * 100.0;
  const double ab_trace_pct =
      (best_cpu[2] - best_cpu[0]) / best_cpu[0] * 100.0;
  std::printf("  raw A/B deltas: on %+.2f%%, on+trace %+.2f%% "
              "(cross-check only: noise floor is percent-level)\n",
              ab_on_pct, ab_trace_pct);

  const double overhead_pct = added_ns / best_cpu[0] * 100.0;
  std::printf("\nheadline: recording adds %.0f ns to a %.0f ns-CPU request "
              "= %.2f%% (criterion: <=2%%)\n\n",
              added_ns, best_cpu[0], overhead_pct);

  std::string json =
      "{\"bench\":\"obs_overhead\",\"smoke\":" +
      std::string(smoke ? "true" : "false") +
      ",\"record_op_ns\":" + std::to_string(record_ns) +
      ",\"clock_read_ns\":" + std::to_string(clock_ns) +
      ",\"added_ns_per_request\":" + std::to_string(added_ns) + ",\"cells\":[";
  for (std::size_t m = 0; m < kModeCount; ++m) {
    if (m != 0) json += ",";
    json += "{\"mode\":\"" + std::string(kModes[m].name) +
            "\",\"cpu_ns_per_op\":" + std::to_string(best_cpu[m]) +
            ",\"wall_mops\":" + std::to_string(best_mops[m]) + "}";
  }
  json += "],\"ab_on_pct\":" + std::to_string(ab_on_pct) +
          ",\"ab_trace_pct\":" + std::to_string(ab_trace_pct) +
          ",\"overhead_pct\":" + std::to_string(overhead_pct) + "}\n";

  const char* out_path = "BENCH_obs_overhead.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("could not write %s\n", out_path);
  }
  return 0;
}
