// Figure 4: cost of flushing evicted data to the SSD under the three
// synchronous I/O schemes (direct, cached, mmap) across data sizes.
//
// Paper shape to reproduce: mmap wins for small sizes, cached I/O wins for
// large sizes, direct I/O is the most expensive everywhere -- the crossover
// is what the adaptive slab allocator (Fig. 5) exploits.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "ssd/io_engine.hpp"

using namespace hykv;

namespace {

double mean_write_us(ssd::StorageStack& stack, ssd::IoScheme scheme,
                     std::size_t size, int iters) {
  ssd::IoEngine& engine = stack.engine(scheme);
  const auto payload = workload::dataset_value(size, size);
  sim::Nanos total{0};
  for (int i = 0; i < iters; ++i) {
    const auto id = stack.device().allocate(size).value();
    const auto t0 = sim::now();
    (void)engine.write(id, 0, payload);
    total += sim::now() - t0;
  }
  return static_cast<double>(total.count()) / iters / 1e3;
}

}  // namespace

int main() {
  sim::init_precise_timing();
  bench::print_banner("Figure 4: synchronous evict-to-SSD cost by I/O scheme");

  ssd::PageCacheConfig cache;
  cache.dirty_high_watermark = 64 << 20;
  cache.dirty_low_watermark = 32 << 20;
  cache.memory_limit = 256 << 20;

  for (const auto& profile : {SsdProfile::sata(), SsdProfile::nvme()}) {
    ssd::StorageStack stack(profile, cache);
    std::printf("%s   [us per write]\n", profile.name.c_str());
    std::printf("  %10s %12s %12s %12s %10s\n", "size", "direct", "cached",
                "mmap", "winner");
    for (const std::size_t size :
         {std::size_t{1} << 10, std::size_t{4} << 10, std::size_t{16} << 10,
          std::size_t{64} << 10, std::size_t{256} << 10, std::size_t{1} << 20}) {
      const double direct = mean_write_us(stack, ssd::IoScheme::kDirect, size, 5);
      const double cached = mean_write_us(stack, ssd::IoScheme::kCached, size, 5);
      const double mmap = mean_write_us(stack, ssd::IoScheme::kMmap, size, 5);
      const char* winner = mmap <= cached && mmap <= direct ? "mmap"
                           : cached <= direct               ? "cached"
                                                            : "direct";
      std::printf("  %9zuK %12.1f %12.1f %12.1f %10s\n", size >> 10, direct,
                  cached, mmap, winner);
      stack.cache().sync();  // drain write-back between rows
    }
    std::printf("\n");
  }
  std::printf(
      "adaptive policy: slab classes <= 64K flush via mmap, larger via "
      "cached I/O.\n");
  return 0;
}
