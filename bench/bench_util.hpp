// Shared scaffolding for the figure-reproduction benchmarks.
//
// Scaling: the paper ran 1 GB of Memcached RAM against 1 GB ("fits") or
// 1.5 GB ("does not fit") of 32 KB key-value pairs on real hardware. We keep
// every ratio and shrink absolute size 16x so a full figure regenerates in
// seconds: 64 MB of cache RAM vs 64/96 MB datasets. Latency models are NOT
// scaled -- microseconds printed here are modelled microseconds.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/logging.hpp"
#include "common/sim_time.hpp"
#include "core/design.hpp"
#include "store/slab.hpp"
#include "store/item.hpp"
#include "core/testbed.hpp"
#include "workload/workload.hpp"

namespace hykv::bench {

constexpr std::size_t kScaledServerMemory = std::size_t{64} << 20;  // paper: 1 GB
constexpr std::size_t kDefaultValueBytes = std::size_t{32} << 10;   // paper: 32 KB
constexpr std::uint64_t kDefaultOps = 1200;

/// Benches run with every modelled latency dilated by this factor and
/// results divided back at print time. Host-CPU costs (memcpys, context
/// switches -- this box has one core) do not dilate, so dilation shrinks
/// their contamination of the modelled numbers by the same factor.
constexpr double kTimeDilation = 4.0;

/// Keys so the *stored footprint* (slab-class chunk + page waste, not raw
/// value bytes) is `ratio` x the cache RAM. ratio 1.0 genuinely fits; 1.5
/// genuinely overflows by half -- matching the paper's 1 GB / 1.5 GB setup.
inline std::uint64_t keys_for_ratio(double ratio, std::size_t memory,
                                    std::size_t value_bytes) {
  store::SlabAllocator::Config slab_cfg;  // default 1 MB pages / 1.25 growth
  const std::size_t footprint = store::slab_item_footprint(
      slab_cfg, store::item_total_size(20, value_bytes));
  // 2% headroom so "fits" is not knife-edge against per-class carving.
  return static_cast<std::uint64_t>(ratio * 0.98 *
                                    static_cast<double>(memory) /
                                    static_cast<double>(footprint));
}

struct Scenario {
  core::Design design = core::Design::kRdmaMem;
  double data_ratio = 1.0;  ///< dataset bytes / cache RAM bytes.
  std::size_t value_bytes = kDefaultValueBytes;
  double read_fraction = 0.5;
  std::uint64_t operations = kDefaultOps;
  unsigned num_servers = 1;
  unsigned clients = 1;
  SsdProfile ssd = SsdProfile::sata();
  std::size_t total_memory = kScaledServerMemory;
  std::size_t ssd_limit = 0;
  std::size_t adaptive_threshold = std::size_t{64} << 10;
  std::size_t window = 64;               ///< Non-blocking outstanding cap.
  sim::Nanos poll_compute = sim::us(2);  ///< Compute chunk between polls.
  workload::Pattern pattern = workload::Pattern::kZipf;
};

struct Outcome {
  workload::WorkloadResult result;
  StageBreakdown server;        ///< Per-op server stages (merged).
  StageBreakdown client;        ///< Client stages (wait / miss penalty).
  store::ManagerStats store;
  std::uint64_t backend_fetches = 0;

  // Dilation-normalised figures (modelled microseconds / kops).
  [[nodiscard]] double avg_us() const {
    return result.avg_latency_us() / kTimeDilation;
  }
  [[nodiscard]] double set_us() const {
    return result.write_latency.mean_us() / kTimeDilation;
  }
  [[nodiscard]] double get_us() const {
    return result.read_latency.mean_us() / kTimeDilation;
  }
  [[nodiscard]] double kops() const {
    return result.throughput_kops() * kTimeDilation;
  }
  [[nodiscard]] double server_us(Stage stage) const {
    return server.per_op_us(stage) / kTimeDilation;
  }
  [[nodiscard]] double client_us(Stage stage) const {
    return client.per_op_us(stage) / kTimeDilation;
  }
  [[nodiscard]] double overlap_pct() const {
    return 100.0 * result.overlap_fraction();
  }
};

/// Smoke mode (HYKV_BENCH_SMOKE=1, the `bench-smoke` ctest label): clamp op
/// counts so every bench binary exercises its full pipeline in seconds. The
/// printed figures are meaningless in this mode -- it exists to catch
/// bit-rot, not to regenerate figures.
inline std::uint64_t smoke_clamped_ops(std::uint64_t operations) {
  if (std::getenv("HYKV_BENCH_SMOKE") != nullptr) {
    return std::min<std::uint64_t>(operations, 96);
  }
  return operations;
}

inline Outcome run_scenario(const Scenario& s) {
  workload::WorkloadConfig wl;
  wl.key_count = keys_for_ratio(s.data_ratio, s.total_memory, s.value_bytes);
  wl.value_bytes = s.value_bytes;
  wl.read_fraction = s.read_fraction;
  wl.operations = smoke_clamped_ops(s.operations);
  wl.api = core::api_mode(s.design);
  wl.verify_values = true;
  wl.window = s.window;
  wl.poll_compute = s.poll_compute;
  wl.pattern = s.pattern;

  core::TestBedConfig bed_cfg;
  bed_cfg.design = s.design;
  bed_cfg.num_servers = s.num_servers;
  bed_cfg.total_server_memory = s.total_memory;
  bed_cfg.ssd = s.ssd;
  bed_cfg.total_ssd_limit = s.ssd_limit;
  bed_cfg.adaptive_threshold = s.adaptive_threshold;
  bed_cfg.backend_resolver =
      workload::dataset_resolver(wl.key_count, wl.value_bytes);
  core::TestBed bed(bed_cfg);

  {
    // Warm-up is not part of any measured figure.
    sim::ScopedTimeScale preload_scale(0.0);
    auto loader = bed.make_client("preload");
    workload::preload(*loader, wl);
    bed.sync_storage();
  }
  bed.reset_metrics();

  const sim::ScopedTimeScale dilation(kTimeDilation);
  Outcome outcome;
  if (s.clients <= 1) {
    auto client = bed.make_client("bench");
    outcome.result = workload::run(*client, wl);
    outcome.client = client->breakdown();
  } else {
    outcome.result = workload::run_multi(bed, s.clients, wl);
  }
  outcome.server = bed.server_breakdown();
  outcome.store = bed.store_stats();
  outcome.backend_fetches = bed.backend().fetches();
  return outcome;
}

inline void print_banner(const char* title) {
  init_log_level_from_env();
  const auto rdma = FabricProfile::fdr_rdma();
  const auto ipoib = FabricProfile::ipoib();
  const auto sata = SsdProfile::sata();
  const auto nvme = SsdProfile::nvme();
  std::printf("==== %s ====\n", title);
  std::printf(
      "profiles: %s base=%.1fus bw=%.1fGB/s | %s base=%.1fus bw=%.1fGB/s\n",
      rdma.name.c_str(), static_cast<double>(rdma.base_latency.count()) / 1e3,
      rdma.bytes_per_us / 1e3, ipoib.name.c_str(),
      static_cast<double>(ipoib.base_latency.count()) / 1e3,
      ipoib.bytes_per_us / 1e3);
  std::printf(
      "          %s r=%.0fus w=%.0fus | %s r=%.0fus w=%.0fus | backend ~1.8ms\n",
      sata.name.c_str(), static_cast<double>(sata.read_base.count()) / 1e3,
      static_cast<double>(sata.write_base.count()) / 1e3, nvme.name.c_str(),
      static_cast<double>(nvme.read_base.count()) / 1e3,
      static_cast<double>(nvme.write_base.count()) / 1e3);
  std::printf("scaling : 1/16 of the paper's data sizes; latencies unscaled\n\n");
}

/// "Client wait (net)": blocking-wait time not attributable to server-side
/// stages (network + queueing), per op, matching how Fig. 2 stacks stages.
/// Dilation-normalised.
inline double client_wait_net_us(const Outcome& outcome) {
  const double wait = outcome.client_us(Stage::kClientWait);
  double server_stage_sum = 0;
  for (const Stage stage :
       {Stage::kSlabAllocation, Stage::kCacheCheckLoad, Stage::kCacheUpdate,
        Stage::kServerResponse}) {
    server_stage_sum += outcome.server_us(stage);
  }
  return wait > server_stage_sum ? wait - server_stage_sum : 0.0;
}

}  // namespace hykv::bench
