// Figure 7(c): aggregated server throughput (ops/sec) with many concurrent
// clients issuing Zipf-distributed Set/Get requests against a 4-server
// hybrid cluster (paper: 100 clients on 32 nodes, 1 GB aggregated RAM, 4 GB
// SSD cap, 2 GB of 8 KB pairs; here 1/16-scaled with thread clients).
//
// Paper shape to reproduce: NonB-b/i achieve 2-2.5x the blocking designs'
// throughput; adaptive I/O alone (Opt-Block) gives ~1.3x over Def-Block.
#include <cstdio>

#include "bench_util.hpp"

using namespace hykv;
using namespace hykv::bench;

int main() {
  sim::init_precise_timing();
  print_banner("Figure 7(c): aggregated throughput, 4-server hybrid cluster");

  const core::Design designs[] = {
      core::Design::kHRdmaDef,
      core::Design::kHRdmaOptBlock,
      core::Design::kHRdmaOptNonbB,
      core::Design::kHRdmaOptNonbI,
  };

  constexpr unsigned kClients = 8;
  std::printf("  clients=%u, servers=4, 8KB values, 2x data:RAM, Zipf 50:50\n\n",
              kClients);
  std::printf("  %-18s %14s %12s\n", "design", "kops/s", "vs Def");
  double def_kops = 0.0;
  for (const auto design : designs) {
    Scenario s;
    s.design = design;
    s.num_servers = 4;
    s.clients = kClients;
    s.value_bytes = 8 << 10;
    s.data_ratio = 2.0;
    s.total_memory = kScaledServerMemory;        // paper: 1 GB aggregated
    s.ssd_limit = kScaledServerMemory * 4;       // paper: 4 GB SSD cap
    s.operations = 300;                          // per client
    // Shallow windows + coarse polls: with this many client threads on few
    // cores, deep windows turn into scheduler churn, not pipelining.
    s.window = 16;
    s.poll_compute = sim::us(20);
    const Outcome outcome = run_scenario(s);
    const double kops = outcome.kops();
    if (design == core::Design::kHRdmaDef) def_kops = kops;
    std::printf("  %-18s %14.2f %11.2fx\n",
                std::string(to_string(design)).c_str(), kops,
                def_kops > 0 ? kops / def_kops : 0.0);
  }
  std::printf(
      "\n(paper: NonB 2-2.5x over blocking designs; adaptive I/O ~1.3x over "
      "direct I/O)\n");
  return 0;
}
