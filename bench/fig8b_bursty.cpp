// Figure 8(b): bursty block-I/O latency (Listing 2 pattern) -- blocks of
// 2 MB / 16 MB split into 256 KB chunks over a 4-server hybrid cluster,
// blocking vs non-blocking APIs, on SATA and NVMe SSDs.
//
// Paper shape to reproduce: NonB-i cuts block access latency 79-85% vs the
// blocking optimised design; larger blocks benefit more (more operations in
// flight to overlap).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"

using namespace hykv;
using namespace hykv::bench;

namespace {

struct Row {
  double write_us = 0;
  double read_us = 0;
};

Row run_case(const SsdProfile& ssd, core::Design design, core::ApiMode api,
             std::size_t block_bytes) {
  core::TestBedConfig cfg;
  cfg.design = design;
  cfg.num_servers = 4;
  cfg.total_server_memory = kScaledServerMemory;  // paper: 1 GB aggregated
  cfg.ssd = ssd;
  core::TestBed bed(cfg);
  auto client = bed.make_client("bursty");

  workload::BlockIoConfig io;
  io.block_bytes = block_bytes;
  io.chunk_bytes = 256 << 10;
  io.total_bytes = std::size_t{256} << 20;  // paper 4 GB -> 1/16 scale = 256 MB
  io.api = api;
  // Block I/O moves big payloads: host memcpy costs per chunk are large
  // relative to modelled wire/SSD time, so this figure uses double the
  // usual dilation to keep the modelled shape visible on few-core hosts.
  const sim::ScopedTimeScale dilation(kTimeDilation * 2);
  const auto result = workload::run_block_io(*client, io);
  if (result.errors != 0 || result.verify_failures != 0) {
    std::fprintf(stderr, "!! bursty run errors=%llu verify=%llu\n",
                 static_cast<unsigned long long>(result.errors),
                 static_cast<unsigned long long>(result.verify_failures));
  }
  return Row{result.write_block_latency.mean_us() / (kTimeDilation * 2),
             result.read_block_latency.mean_us() / (kTimeDilation * 2)};
}

}  // namespace

int main() {
  sim::init_precise_timing();
  print_banner("Figure 8(b): bursty block I/O, 256KB chunks, 4 servers");

  for (const auto& ssd : {SsdProfile::sata(), SsdProfile::nvme()}) {
    std::printf("%s   [us per block]\n", ssd.name.c_str());
    std::printf("  %10s %-12s %14s %14s\n", "block", "API", "write-block",
                "read-block");
    for (const std::size_t block : {std::size_t{2} << 20, std::size_t{16} << 20}) {
      const Row blocking = run_case(ssd, core::Design::kHRdmaOptBlock,
                                    core::ApiMode::kBlocking, block);
      const Row nonb = run_case(ssd, core::Design::kHRdmaOptNonbI,
                                core::ApiMode::kNonBlockingI, block);
      std::printf("  %9zuM %-12s %14.0f %14.0f\n", block >> 20, "Opt-Block",
                  blocking.write_us, blocking.read_us);
      std::printf("  %9zuM %-12s %14.0f %14.0f   (%.0f%% / %.0f%% better)\n",
                  block >> 20, "Opt-NonB-i", nonb.write_us, nonb.read_us,
                  100.0 * (1.0 - nonb.write_us / blocking.write_us),
                  100.0 * (1.0 - nonb.read_us / blocking.read_us));
    }
    std::printf("\n");
  }
  std::printf("(paper: NonB-i improves block access latency 79-85%%; larger "
              "blocks gain more)\n");
  return 0;
}
