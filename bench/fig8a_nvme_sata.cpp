// Figure 8(a): hybrid-design latency on SATA vs NVMe SSDs for read-only and
// write-heavy workloads (single client, 1 GB RAM : 1.5 GB data, scaled).
//
// Paper shape to reproduce: Opt-Block improves 54-83% over Def-Block;
// NonB-b/i improve a further 48-80%; absolute gains are larger on SATA than
// NVMe because the hidden SSD latency is larger.
#include <cstdio>

#include "bench_util.hpp"

using namespace hykv;
using namespace hykv::bench;

int main() {
  sim::init_precise_timing();
  print_banner("Figure 8(a): SATA vs NVMe, read-only and write-heavy");

  const core::Design designs[] = {
      core::Design::kHRdmaDef,
      core::Design::kHRdmaOptBlock,
      core::Design::kHRdmaOptNonbB,
      core::Design::kHRdmaOptNonbI,
  };

  for (const auto& ssd : {SsdProfile::sata(), SsdProfile::nvme()}) {
    std::printf("%s   [avg us/op]\n", ssd.name.c_str());
    std::printf("  %-18s %14s %18s\n", "design", "read-only", "write-heavy(50:50)");
    double def_latency[2] = {0, 0};
    for (const auto design : designs) {
      double lat[2] = {0, 0};
      int i = 0;
      for (const double read_fraction : {1.0, 0.5}) {
        Scenario s;
        s.design = design;
        s.data_ratio = 1.5;
        s.ssd = ssd;
        s.read_fraction = read_fraction;
        const Outcome outcome = run_scenario(s);
        lat[i++] = outcome.avg_us();
      }
      if (design == core::Design::kHRdmaDef) {
        def_latency[0] = lat[0];
        def_latency[1] = lat[1];
        std::printf("  %-18s %14.1f %18.1f\n",
                    std::string(to_string(design)).c_str(), lat[0], lat[1]);
      } else {
        std::printf("  %-18s %14.1f %18.1f   (%.0f%% / %.0f%% vs Def)\n",
                    std::string(to_string(design)).c_str(), lat[0], lat[1],
                    100.0 * (1.0 - lat[0] / def_latency[0]),
                    100.0 * (1.0 - lat[1] / def_latency[1]));
      }
    }
    std::printf("\n");
  }
  std::printf(
      "(paper: Opt-Block 54-83%% over Def; NonB 48-80%% further; bigger wins "
      "on SATA)\n");
  return 0;
}
