// Ablation: the adaptive slab manager's mmap/cached switch-over threshold
// (DESIGN.md Section 5). Sweeps the threshold on a mixed-size hybrid
// workload and reports how latency moves -- validating the 64 KB default
// implied by Fig. 4's crossover.
#include <cstdio>

#include "bench_util.hpp"

using namespace hykv;
using namespace hykv::bench;

int main() {
  sim::init_precise_timing();
  print_banner("Ablation: adaptive I/O threshold sweep");

  std::printf("  value=8K and value=256K workloads, hybrid Opt-Block, 1.5x data\n\n");
  std::printf("  %12s %16s %16s\n", "threshold", "8K avg us/op", "256K avg us/op");
  for (const std::size_t threshold :
       {std::size_t{0}, std::size_t{4} << 10, std::size_t{16} << 10,
        std::size_t{64} << 10, std::size_t{256} << 10, std::size_t{1} << 20}) {
    double lat[2] = {0, 0};
    int i = 0;
    for (const std::size_t value_bytes :
         {std::size_t{8} << 10, std::size_t{256} << 10}) {
      Scenario s;
      s.design = core::Design::kHRdmaOptBlock;
      s.data_ratio = 1.5;
      s.value_bytes = value_bytes;
      s.adaptive_threshold = threshold;
      s.operations = 800;
      const Outcome outcome = run_scenario(s);
      lat[i++] = outcome.result.avg_latency_us();
    }
    std::printf("  %11zuK %16.1f %16.1f\n", threshold >> 10, lat[0], lat[1]);
  }
  std::printf(
      "\n(threshold 0 = always cached; 1M = always mmap; the default 64K "
      "should be at or near the best of both columns)\n");
  return 0;
}
