// Ablation: optimistic (lock-free seqlock) GETs vs the strictly-locked read
// path on ONE contended shard.
//
// After the sharding PR, GETs on a shard still serialise against every other
// op of that shard -- readers included. The non-blocking read path lets
// RAM-resident GETs run without the shard lock (seqlock validation + EBR
// reclamation), so on a GET-dominant mix only the writes still queue on the
// mutex. This sweep measures exactly that: reader threads x read fraction x
// optimistic on/off, on a single shard so the contention is maximal.
//
// Methodology mirrors ablation_shards.cpp: each op carries
// ManagerConfig::modelled_op_cost of per-op CPU time realised as modelled
// time (sleep on the real clock, like every fabric/SSD cost here). The
// locked design pays it while *holding* the shard mutex; the optimistic
// design pays it before touching any lock -- which is precisely the
// difference being measured, reproducible on any host including single-core
// CI boxes where raw mutex contention is invisible. The headline >=2x GET
// criterion (8 readers, 100% GET, on vs off) is read off this sweep.
//
// Emits BENCH_readpath.json next to the binary for tooling.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/hash.hpp"
#include "common/random.hpp"
#include "store/sharded_manager.hpp"

using namespace hykv;

namespace {

constexpr std::size_t kKeys = 2048;
constexpr std::size_t kValueBytes = 256;

struct Cell {
  unsigned threads = 1;
  unsigned read_pct = 100;
  bool optimistic = false;
  double mops = 0.0;
  std::uint64_t optimistic_hits = 0;
  std::uint64_t optimistic_retries = 0;
  std::uint64_t locked_fallbacks = 0;
};

store::ManagerConfig store_config(bool optimistic, sim::Nanos op_cost) {
  store::ManagerConfig cfg;
  cfg.mode = store::StorageMode::kInMemory;
  cfg.shards = 1;  // one shard: worst-case lock contention
  cfg.slab.slab_bytes = std::size_t{1} << 20;
  cfg.slab.memory_limit = std::size_t{16} << 20;  // keyspace RAM-resident
  cfg.modelled_op_cost = op_cost;
  cfg.optimistic_reads = optimistic;
  return cfg;
}

double run_cell(Cell& cell, sim::Nanos op_cost, std::uint64_t ops_per_thread) {
  store::ShardedManager manager(store_config(cell.optimistic, op_cost),
                                nullptr);
  {
    // Preload outside modelled time (the established preload idiom).
    sim::ScopedTimeScale preload_scale(0.0);
    for (std::size_t i = 0; i < kKeys; ++i) {
      (void)manager.set(make_key(i), make_value(i, kValueBytes), 0, 0);
    }
  }

  std::vector<std::thread> workers;
  workers.reserve(cell.threads);
  const auto start = sim::now();
  for (unsigned t = 0; t < cell.threads; ++t) {
    workers.emplace_back([&manager, &cell, t, ops_per_thread] {
      std::vector<char> out;
      std::uint32_t flags = 0;
      std::uint64_t x = mix64(0xBEEF + t);
      for (std::uint64_t op = 0; op < ops_per_thread; ++op) {
        x = mix64(x + op);
        const std::string key = make_key(x % kKeys);
        if ((x >> 8) % 100 < cell.read_pct) {
          (void)manager.get(key, out, flags);
        } else {
          (void)manager.set(key, make_value(x % kKeys, kValueBytes), 0, 0);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double seconds =
      static_cast<double>((sim::now() - start).count()) / 1e9;
  const auto stats = manager.stats();
  cell.optimistic_hits = stats.optimistic_hits;
  cell.optimistic_retries = stats.optimistic_retries;
  cell.locked_fallbacks = stats.locked_fallbacks;
  const double total_ops =
      static_cast<double>(ops_per_thread) * static_cast<double>(cell.threads);
  return total_ops / seconds / 1e6;
}

void append_cells(std::string& json, const std::vector<Cell>& cells) {
  json += "[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    if (i != 0) json += ",";
    json += "{\"threads\":" + std::to_string(c.threads) +
            ",\"read_pct\":" + std::to_string(c.read_pct) +
            ",\"optimistic\":" + (c.optimistic ? "true" : "false") +
            ",\"mops\":" + std::to_string(c.mops) +
            ",\"optimistic_hits\":" + std::to_string(c.optimistic_hits) +
            ",\"optimistic_retries\":" + std::to_string(c.optimistic_retries) +
            ",\"locked_fallbacks\":" + std::to_string(c.locked_fallbacks) + "}";
  }
  json += "]";
}

double cell_mops(const std::vector<Cell>& cells, unsigned threads,
                 unsigned read_pct, bool optimistic) {
  for (const Cell& c : cells) {
    if (c.threads == threads && c.read_pct == read_pct &&
        c.optimistic == optimistic) {
      return c.mops;
    }
  }
  return 0.0;
}

}  // namespace

int main() {
  sim::init_precise_timing();
  bench::print_banner(
      "Ablation: optimistic vs locked read path (1 contended shard)");

  const bool smoke = std::getenv("HYKV_BENCH_SMOKE") != nullptr;
  const std::uint64_t ops_per_thread = smoke ? 24 : 400;
  const sim::Nanos op_cost = sim::us(20);

  std::printf("sweep: reader threads x read%% x optimistic on/off "
              "(ops/thread=%llu, modelled op cost=%.0fus)\n",
              static_cast<unsigned long long>(ops_per_thread),
              static_cast<double>(op_cost.count()) / 1e3);
  std::printf("  %8s %6s  %-12s %-12s %8s\n", "threads", "read%", "locked",
              "optimistic", "speedup");

  std::vector<Cell> cells;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    for (const unsigned read_pct : {100u, 99u, 95u}) {
      double mops_by_mode[2] = {0.0, 0.0};
      for (const bool optimistic : {false, true}) {
        Cell cell;
        cell.threads = threads;
        cell.read_pct = read_pct;
        cell.optimistic = optimistic;
        cell.mops = run_cell(cell, op_cost, ops_per_thread);
        mops_by_mode[optimistic ? 1 : 0] = cell.mops;
        cells.push_back(cell);
      }
      std::printf("  %8u %6u  %-12.3f %-12.3f %7.2fx\n", threads, read_pct,
                  mops_by_mode[0], mops_by_mode[1],
                  mops_by_mode[1] / mops_by_mode[0]);
      std::fflush(stdout);
    }
  }

  const double locked = cell_mops(cells, 8, 100, false);
  const double optimistic = cell_mops(cells, 8, 100, true);
  const double headline = optimistic / locked;
  std::printf("\nheadline: 8 reader threads, 100%% GET, one shard: "
              "%.3f vs %.3f Mops/s = %.2fx (criterion: >=2x)\n\n",
              optimistic, locked, headline);

  std::string json = "{\"bench\":\"readpath\",\"modelled_op_cost_us\":" +
                     std::to_string(op_cost.count() / 1000) +
                     ",\"smoke\":" + (smoke ? std::string("true") : "false") +
                     ",\"cells\":";
  append_cells(json, cells);
  json += ",\"headline_speedup\":" + std::to_string(headline) + "}\n";

  const char* out_path = "BENCH_readpath.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("could not write %s\n", out_path);
  }
  return 0;
}
