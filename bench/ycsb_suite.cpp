// YCSB-style core workloads (A: update-heavy, B: read-mostly, C: read-only,
// R: read-dominant 99:1, U: uniform 50:50) across the key designs -- the
// cloud-workload framing the paper's Section VI-A cites. C and R are the
// GET-heavy mixes the non-blocking read path targets. Hybrid setup: 1.5x
// data:RAM, 32 KB values.
#include <cstdio>

#include "bench_util.hpp"

using namespace hykv;
using namespace hykv::bench;

int main() {
  sim::init_precise_timing();
  print_banner("YCSB core workloads across designs (1.5x data:RAM)");

  const core::Design designs[] = {
      core::Design::kRdmaMem,
      core::Design::kHRdmaDef,
      core::Design::kHRdmaOptBlock,
      core::Design::kHRdmaOptNonbI,
  };

  std::printf("  %-8s", "workload");
  for (const auto design : designs) {
    std::printf(" %18s", std::string(to_string(design)).c_str());
  }
  std::printf("   [avg us/op]\n");

  struct Preset {
    char id;
    const char* label;
  };
  for (const Preset preset : {Preset{'A', "A 50:50"}, Preset{'B', "B 95:5"},
                              Preset{'C', "C reads"}, Preset{'R', "R 99:1"},
                              Preset{'U', "U unif"}}) {
    std::printf("  %-8s", preset.label);
    for (const auto design : designs) {
      Scenario s;
      s.design = design;
      s.data_ratio = 1.5;
      s.operations = 800;
      const auto base = workload::ycsb_preset(preset.id, 0, 0, 0);
      s.read_fraction = base.read_fraction;
      s.pattern = base.pattern;
      const Outcome outcome = run_scenario(s);
      std::printf(" %18.1f", outcome.avg_us());
    }
    std::printf("\n");
  }
  std::printf("\n(hybrid + non-blocking should track RDMA-Mem within a small\n"
              " factor on every mix while H-RDMA-Def pays SSD swap costs)\n");
  return 0;
}
