// Figure 7(a): percentage of job runtime available for application-level
// overlap, for the blocking API vs the two non-blocking API families, under
// read-only (100% Get) and write-heavy (50:50) Zipf workloads on the hybrid
// design (1 GB RAM : 1.5 GB data, scaled).
//
// Paper shape to reproduce: NonB-i ~92% for both mixes; NonB-b ~89% for
// read-only but < 12% for write-heavy (bset must block for buffer-reuse
// guarantees); blocking APIs offer ~0%.
#include <cstdio>

#include "bench_util.hpp"

using namespace hykv;
using namespace hykv::bench;

int main() {
  sim::init_precise_timing();
  print_banner("Figure 7(a): overlap%% by API and workload mix");

  struct ApiRow {
    const char* label;
    core::Design design;
  };
  const ApiRow rows[] = {
      {"RDMA-Block", core::Design::kHRdmaOptBlock},
      {"RDMA-NonB-b", core::Design::kHRdmaOptNonbB},
      {"RDMA-NonB-i", core::Design::kHRdmaOptNonbI},
  };

  std::printf("  %-14s %16s %16s\n", "API", "read-only", "write-heavy(50:50)");
  for (const auto& row : rows) {
    double overlap[2] = {0, 0};
    int i = 0;
    for (const double read_fraction : {1.0, 0.5}) {
      Scenario s;
      s.design = row.design;
      s.data_ratio = 1.5;
      s.read_fraction = read_fraction;
      s.operations = 1500;
      const Outcome outcome = run_scenario(s);
      overlap[i++] = outcome.overlap_pct();
    }
    std::printf("  %-14s %15.1f%% %15.1f%%\n", row.label, overlap[0], overlap[1]);
  }
  std::printf(
      "\n(paper: NonB-i ~92%% both, NonB-b ~89%% read-only / <12%% "
      "write-heavy, blocking ~0%%)\n");
  return 0;
}
