// Figure 6: Set/Get latency breakdown with the proposed designs added --
// H-RDMA-Opt-Block (adaptive I/O), H-RDMA-Opt-NonB-b and -NonB-i (non-
// blocking extensions) -- against the baselines, with data (a) fitting and
// (b) not fitting in memory.
//
// Paper shape to reproduce:
//   (a) NonB-i/b reach RDMA-Mem-level latency;
//   (b) Opt-Block ~2x better than H-RDMA-Def (adaptive I/O);
//       NonB-i/b 10-16x better than H-RDMA-Def, 3.3-8x over Opt-Block,
//       and ~3.6x better than IPoIB-Mem even when data fits.
#include <cstdio>

#include "bench_util.hpp"

using namespace hykv;
using namespace hykv::bench;

int main() {
  sim::init_precise_timing();
  print_banner("Figure 6: breakdown with non-blocking extensions");

  for (const bool fits : {true, false}) {
    std::printf("(%c) data %s in memory\n", fits ? 'a' : 'b',
                fits ? "fits" : "does NOT fit");
    std::printf("  %-18s %10s | %9s %9s %8s %8s %9s %9s\n", "design",
                "avg us/op", "SlabAll", "ChkLoad", "CacheUp", "SrvResp",
                "CliWait", "MissPen");
    double ipoib_avg = 0.0, def_avg = 0.0, opt_block_avg = 0.0;
    for (const core::Design design : core::kAllDesigns) {
      Scenario s;
      s.design = design;
      s.data_ratio = fits ? 1.0 : 1.5;
      const Outcome outcome = run_scenario(s);
      const double avg = outcome.avg_us();
      std::printf("  %-18s %10.1f | %9.1f %9.1f %8.1f %8.1f %9.1f %9.1f\n",
                  std::string(to_string(design)).c_str(), avg,
                  outcome.server_us(Stage::kSlabAllocation),
                  outcome.server_us(Stage::kCacheCheckLoad),
                  outcome.server_us(Stage::kCacheUpdate),
                  outcome.server_us(Stage::kServerResponse),
                  client_wait_net_us(outcome),
                  outcome.client_us(Stage::kMissPenalty));
      switch (design) {
        case core::Design::kIpoibMem: ipoib_avg = avg; break;
        case core::Design::kHRdmaDef: def_avg = avg; break;
        case core::Design::kHRdmaOptBlock: opt_block_avg = avg; break;
        case core::Design::kHRdmaOptNonbI: {
          std::printf(
              "  -> NonB-i vs H-RDMA-Def: %.1fx   vs Opt-Block: %.1fx   vs "
              "IPoIB-Mem: %.1fx\n",
              def_avg / avg, opt_block_avg / avg, ipoib_avg / avg);
          break;
        }
        default: break;
      }
    }
    if (!fits) {
      std::printf("  (paper: Opt-Block ~2x over Def; NonB ~10-16x over Def, "
                  "3.3-8x over Opt-Block)\n");
    }
    std::printf("\n");
  }
  return 0;
}
