// Ablation: what the registration cache buys (DESIGN.md Section 5 /
// Section IV of the paper: "memory registration is a costly affair with
// RDMA-enabled interconnects, provisioning buffer re-use is extremely
// helpful").
//
// Compares, per buffer size: cold ibv_reg_mr cost, registration-cache hit
// cost, and the bset bounce-copy alternative (memcpy into a pre-registered
// slot).
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "net/fabric.hpp"

using namespace hykv;

int main() {
  sim::init_precise_timing();
  bench::print_banner("Ablation: registration cache vs cold registration");

  net::Fabric fabric(FabricProfile::fdr_rdma());
  auto endpoint = fabric.create_endpoint("reg-bench");

  std::printf("  %10s %14s %14s %16s\n", "size", "cold reg us",
              "cached reg us", "bounce copy us");
  for (const std::size_t size :
       {std::size_t{4} << 10, std::size_t{64} << 10, std::size_t{256} << 10,
        std::size_t{1} << 20}) {
    // Cold: a brand-new buffer each time.
    sim::Nanos cold_total{0};
    constexpr int kIters = 8;
    std::vector<std::unique_ptr<char[]>> keep_alive;
    for (int i = 0; i < kIters; ++i) {
      keep_alive.push_back(std::make_unique<char[]>(size));
      const auto t0 = sim::now();
      (void)endpoint->register_memory(keep_alive.back().get(), size);
      cold_total += sim::now() - t0;
    }

    // Cached: the same buffer re-registered.
    auto reused = std::make_unique<char[]>(size);
    (void)endpoint->register_memory(reused.get(), size);
    sim::Nanos cached_total{0};
    for (int i = 0; i < kIters; ++i) {
      const auto t0 = sim::now();
      (void)endpoint->register_memory(reused.get(), size);
      cached_total += sim::now() - t0;
    }

    // Bounce: memcpy into an already-registered slot (the bset path).
    auto slot = std::make_unique<char[]>(size);
    (void)endpoint->register_memory(slot.get(), size);
    auto source = std::make_unique<char[]>(size);
    sim::Nanos copy_total{0};
    for (int i = 0; i < kIters; ++i) {
      const auto t0 = sim::now();
      std::memcpy(slot.get(), source.get(), size);
      copy_total += sim::now() - t0;
    }

    std::printf("  %9zuK %14.2f %14.2f %16.2f\n", size >> 10,
                static_cast<double>(cold_total.count()) / kIters / 1e3,
                static_cast<double>(cached_total.count()) / kIters / 1e3,
                static_cast<double>(copy_total.count()) / kIters / 1e3);
  }
  std::printf("\n(cold registration would dominate per-op cost; the cache "
              "and the bounce pool are both orders of magnitude cheaper)\n");
  return 0;
}
