// Figure 7(b): average Set/Get latency across key-value pair sizes for the
// hybrid designs (data does not fit in memory), comparing the default
// direct-I/O blocking design, the adaptive-I/O blocking design, and the two
// non-blocking variants.
//
// Paper shape to reproduce: the proposed optimisations improve performance
// by ~65-89% over the blocking designs across sizes.
#include <cstdio>

#include "bench_util.hpp"

using namespace hykv;
using namespace hykv::bench;

int main() {
  sim::init_precise_timing();
  print_banner("Figure 7(b): latency vs key-value size (hybrid, 1.5x data)");

  const core::Design designs[] = {
      core::Design::kHRdmaDef,
      core::Design::kHRdmaOptBlock,
      core::Design::kHRdmaOptNonbB,
      core::Design::kHRdmaOptNonbI,
  };

  std::printf("  %8s", "KV size");
  for (const auto design : designs) {
    std::printf(" %18s", std::string(to_string(design)).c_str());
  }
  std::printf("   [avg us/op]\n");

  for (const std::size_t size :
       {std::size_t{1} << 10, std::size_t{4} << 10, std::size_t{16} << 10,
        std::size_t{32} << 10, std::size_t{128} << 10}) {
    std::printf("  %7zuK", size >> 10);
    double latencies[4] = {0, 0, 0, 0};
    int column = 0;
    for (const auto design : designs) {
      Scenario s;
      s.design = design;
      s.data_ratio = 1.5;
      s.value_bytes = size;
      s.operations = 1000;
      // Shrink memory for small values so key counts stay manageable while
      // preserving the 1.5x overflow ratio.
      if (size <= (std::size_t{4} << 10)) s.total_memory = 8 << 20;
      const Outcome outcome = run_scenario(s);
      latencies[column] = outcome.avg_us();
      std::printf(" %18.1f", latencies[column]);
      ++column;
    }
    std::printf("   (NonB-i saves %.0f%% vs Def)\n",
                latencies[0] > 0
                    ? 100.0 * (1.0 - latencies[3] / latencies[0])
                    : 0.0);
  }
  std::printf("\n");
  return 0;
}
