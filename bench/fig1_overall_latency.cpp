// Figure 1: overall latency of Memcached Set/Get operations for the three
// baseline designs (IPoIB-Mem, RDMA-Mem, H-RDMA-Def), (a) when all data fits
// in memory and (b) when it does not (in-memory designs then pay the < 2 ms
// backend miss penalty; the hybrid design pays SSD I/O instead).
//
// Paper shape to reproduce:
//   (a) RDMA designs beat IPoIB-Mem by ~3-4x; H-RDMA-Def ~= RDMA-Mem.
//   (b) H-RDMA-Def clearly beats the in-memory designs, but is 15-17x worse
//       than its own fits-in-memory latency.
#include <cstdio>

#include "bench_util.hpp"

using namespace hykv;
using namespace hykv::bench;

int main() {
  sim::init_precise_timing();
  print_banner("Figure 1: overall Set/Get latency, baseline designs");

  double def_fits = 0.0;
  for (const bool fits : {true, false}) {
    std::printf("(%c) data %s in memory  [Zipf, 32KB values, 50:50 Set/Get]\n",
                fits ? 'a' : 'b', fits ? "fits" : "does NOT fit");
    std::printf("  %-12s %12s %12s %12s %8s %10s\n", "design", "avg us/op",
                "set us/op", "get us/op", "hit%", "backend");
    for (const core::Design design : core::kBaselineDesigns) {
      Scenario s;
      s.design = design;
      s.data_ratio = fits ? 1.0 : 1.5;
      const Outcome outcome = run_scenario(s);
      const auto& r = outcome.result;
      const double hit_pct =
          r.reads == 0 ? 0.0
                       : 100.0 * static_cast<double>(r.hits) /
                             static_cast<double>(r.reads);
      std::printf("  %-12s %12.1f %12.1f %12.1f %7.1f%% %10llu\n",
                  std::string(to_string(design)).c_str(), outcome.avg_us(),
                  outcome.set_us(), outcome.get_us(), hit_pct,
                  static_cast<unsigned long long>(outcome.backend_fetches));
      if (design == core::Design::kHRdmaDef) {
        if (fits) {
          def_fits = outcome.avg_us();
        } else if (def_fits > 0.0) {
          std::printf(
              "  -> H-RDMA-Def degradation fits vs not-fits: %.1fx (paper: "
              "15-17x)\n",
              outcome.avg_us() / def_fits);
        }
      }
    }
    std::printf("\n");
  }
  return 0;
}
