// google-benchmark micro suite over the substrates: slab allocator, hash
// map, item formatting, Zipf generation, histogram recording, protocol
// codecs and fabric round trips. These run with the time scale at 0 so they
// measure *code* cost, not modelled device time (the fig benches measure
// modelled time).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/histogram.hpp"
#include "common/random.hpp"
#include "common/sim_time.hpp"
#include "net/fabric.hpp"
#include "server/protocol.hpp"
#include "store/hash_map.hpp"
#include "store/hybrid_manager.hpp"
#include "store/item.hpp"
#include "store/slab.hpp"

namespace {

using namespace hykv;

void BM_SlabAllocateFree(benchmark::State& state) {
  store::SlabAllocator::Config cfg;
  cfg.memory_limit = 64 << 20;
  store::SlabAllocator alloc(cfg);
  const unsigned cls = alloc.class_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    char* chunk = alloc.allocate(cls);
    benchmark::DoNotOptimize(chunk);
    alloc.deallocate(chunk, cls);
  }
}
BENCHMARK(BM_SlabAllocateFree)->Arg(128)->Arg(4096)->Arg(32768);

void BM_HashMapUpsertFind(benchmark::State& state) {
  store::HashMap<int> map;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) map.upsert(make_key(i), 1);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(make_key(rng.next_below(n))));
  }
}
BENCHMARK(BM_HashMapUpsertFind)->Arg(1000)->Arg(100000);

void BM_ItemFormat(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<char> chunk(store::item_total_size(20, size));
  const auto value = make_value(1, size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store::format_item(chunk.data(), "key-0000000000000001", value, 0, 0, 1));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_ItemFormat)->Arg(1024)->Arg(32768);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(static_cast<std::uint64_t>(state.range(0)), 0.99, 3);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.next());
}
BENCHMARK(BM_ZipfNext)->Arg(1000)->Arg(1000000);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram hist;
  Rng rng(5);
  for (auto _ : state) hist.record_ns(rng.next_below(10'000'000));
  benchmark::DoNotOptimize(hist.percentile_ns(99));
}
BENCHMARK(BM_HistogramRecord);

void BM_ProtocolSetCodec(benchmark::State& state) {
  const auto value = make_value(2, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto wire = server::encode_set(
        {.key = "key-0000000000000001", .value = value, .flags = 1, .expiration = 0});
    benchmark::DoNotOptimize(server::decode_set(wire));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ProtocolSetCodec)->Arg(1024)->Arg(32768);

void BM_FabricSendRecv(benchmark::State& state) {
  sim::set_time_scale(0.0);  // code cost only
  net::Fabric fabric(FabricProfile::fdr_rdma());
  auto a = fabric.create_endpoint("a");
  auto b = fabric.create_endpoint("b");
  const auto payload = make_value(3, static_cast<std::size_t>(state.range(0)));
  std::uint64_t wr = 0;
  for (auto _ : state) {
    a->send(b->id(), 1, ++wr, payload);
    benchmark::DoNotOptimize(b->recv());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  sim::set_time_scale(1.0);
}
BENCHMARK(BM_FabricSendRecv)->Arg(128)->Arg(32768);

void BM_ManagerSetGetInMemory(benchmark::State& state) {
  sim::set_time_scale(0.0);
  store::ManagerConfig cfg;
  cfg.mode = store::StorageMode::kInMemory;
  cfg.slab.memory_limit = 256 << 20;
  store::HybridSlabManager manager(cfg, nullptr);
  const auto value = make_value(4, static_cast<std::size_t>(state.range(0)));
  std::vector<char> out;
  std::uint32_t flags;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto key = make_key(i++ % 1000);
    manager.set(key, value, 0, 0);
    benchmark::DoNotOptimize(manager.get(key, out, flags));
  }
  sim::set_time_scale(1.0);
}
BENCHMARK(BM_ManagerSetGetInMemory)->Arg(1024)->Arg(32768);

}  // namespace

int main(int argc, char** argv) {
  hykv::sim::init_precise_timing();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
