// Ablation: overload control (DESIGN.md §8) under an open-loop load sweep.
//
// Closed-loop benches cannot show overload collapse: the client's own
// waiting throttles the offered load to whatever the server sustains. This
// bench drives the async hybrid design OPEN loop -- requests are issued on
// a pacing clock regardless of completions -- at multiples of the measured
// saturation throughput, with a per-op client deadline. Work that completes
// after its deadline is goodput zero: the client already gave up.
//
//   admission off -- every request is admitted; past saturation the queue
//                    grows without bound, every op completes after its
//                    deadline, and goodput collapses toward zero even
//                    though the server stays 100% busy (the metastable
//                    congestion-collapse regime).
//   admission on  -- the server sheds excess at receipt (kBusy, ~zero
//                    cost), drops expired-on-arrival work (propagated
//                    deadlines), and the client's fail-fast window bounds
//                    its own queue. Admitted requests see bounded queueing,
//                    finish inside the deadline, and goodput holds at
//                    ~saturation no matter how far past it the offered
//                    load goes.
//
// The headline criterion (EXPERIMENTS.md): goodput with admission control
// >= goodput without, at every offered load >= 2x saturation.
//
// Self-calibrating: saturation and the deadline are measured, not assumed,
// so the sweep lands past the knee on any host. Emits BENCH_overload.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "client/client.hpp"
#include "common/random.hpp"
#include "core/testbed.hpp"

using namespace hykv;

namespace {

constexpr std::size_t kValueBytes = 4 << 10;
constexpr std::size_t kKeys = 2048;
constexpr unsigned kDrivers = 2;  ///< Open-loop driver threads (own client each).

core::TestBedConfig bed_config(bool admission, sim::Nanos deadline) {
  core::TestBedConfig cfg;
  cfg.design = core::Design::kHRdmaOptNonbI;
  cfg.num_servers = 1;
  cfg.total_server_memory = std::size_t{32} << 20;  // dataset RAM-resident
  cfg.ssd = SsdProfile::sata();
  cfg.processing_threads = 1;
  // A modelled per-op store cost pins the saturation point (~1/cost) far
  // below what the open-loop drivers can offer on any host -- the same
  // trick the shard ablation uses to reproduce contention on one core.
  cfg.store_op_cost = sim::us(400);
  cfg.client_failover.eject_after = 1u << 30;  // overload is not death
  cfg.client_op_deadline = deadline;
  if (admission) {
    cfg.server_admission_queue_limit = 16;
    cfg.server_max_inflight = 64;
    cfg.client_max_pending_per_server = 128;
    cfg.client_propagate_deadline = deadline.count() > 0;
  }
  return cfg;
}

/// One op in flight for the open-loop driver. The Request and the value
/// buffer must both outlive completion (iset is zero-copy).
struct Slot {
  std::unique_ptr<client::Request> req;
  std::vector<char> value;
  sim::TimePoint issued{};
};

struct PointResult {
  double mult = 0.0;
  bool admission = false;
  double offered_kops = 0.0;
  double goodput_kops = 0.0;
  double shed_rate = 0.0;     ///< kBusy (server shed + client fail-fast).
  double timeout_rate = 0.0;  ///< Completed after the client gave up.
  double p99_us = 0.0;        ///< Of in-deadline successes, modelled us.
};

/// Drives `ops` isets at a fixed interarrival, reaping completions as they
/// land and cancelling anything past `deadline`. Returns {ok, busy,
/// timed_out, ok_latencies}.
struct DriverTally {
  std::uint64_t ok = 0;
  std::uint64_t busy = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t other = 0;
  std::vector<double> ok_latency_us;  ///< Real (dilated) microseconds.
};

DriverTally drive(client::Client& client, std::uint64_t ops,
                  sim::Nanos interarrival, sim::Nanos deadline,
                  std::uint64_t seed) {
  DriverTally tally;
  std::vector<Slot> outstanding;
  std::uint64_t x = mix64(seed);

  const auto settle = [&](Slot& slot, StatusCode code) {
    if (code == StatusCode::kOk) {
      ++tally.ok;
      tally.ok_latency_us.push_back(
          static_cast<double>((sim::now() - slot.issued).count()) / 1e3);
    } else if (code == StatusCode::kBusy) {
      ++tally.busy;
    } else if (code == StatusCode::kTimedOut) {
      ++tally.timed_out;
    } else {
      ++tally.other;
    }
  };

  // Reap every completed slot; cancel (and count kTimedOut) expired ones.
  const auto reap = [&](bool drain) {
    for (auto it = outstanding.begin(); it != outstanding.end();) {
      StatusCode code = StatusCode::kOk;
      bool done = false;
      if (it->req->done()) {
        code = it->req->status();
        done = true;
      } else if (drain || sim::now() - it->issued >= deadline) {
        code = client.cancel(*it->req);  // real status if completion raced in
        done = true;
      }
      if (done) {
        settle(*it, code);
        it = outstanding.erase(it);
      } else {
        ++it;
      }
    }
  };

  const auto start = sim::now();
  for (std::uint64_t op = 0; op < ops; ++op) {
    // Open loop: the pacing clock, not completions, decides issue times.
    const auto next = start + interarrival * op;
    while (sim::now() < next) {
      reap(false);
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }

    x = mix64(x + op);
    Slot slot;
    slot.req = std::make_unique<client::Request>();
    slot.value = make_value(x % kKeys, kValueBytes);
    slot.issued = sim::now();
    const StatusCode issued =
        client.iset(make_key(x % kKeys), slot.value, 0, 0, *slot.req);
    if (issued == StatusCode::kOk) {
      outstanding.push_back(std::move(slot));
    } else if (issued == StatusCode::kBusy) {
      ++tally.busy;  // client fail-fast window: shed before queueing
    } else {
      ++tally.other;
    }
    reap(false);
  }

  // Drain: everything left either completed or is past caring about.
  while (!outstanding.empty()) {
    reap(sim::now() - outstanding.front().issued >= deadline);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return tally;
}

/// Closed-loop calibration: window-limited non-blocking sets measure the
/// design's saturation throughput and its loaded mean latency.
struct Calibration {
  double sat_kops = 0.0;   ///< Real (dilated) kops.
  sim::Nanos mean_latency{0};
};

Calibration calibrate(std::uint64_t ops) {
  core::TestBed bed(bed_config(false, sim::Nanos{0}));
  auto client = bed.make_client("calibrate");
  constexpr std::size_t kWindow = 16;

  std::vector<Slot> window;
  std::uint64_t x = mix64(0xCA11);
  double latency_sum_ns = 0.0;
  std::uint64_t completed = 0;
  const auto start = sim::now();
  for (std::uint64_t op = 0; op < ops; ++op) {
    if (window.size() >= kWindow) {
      client->wait(*window.front().req);
      latency_sum_ns +=
          static_cast<double>((sim::now() - window.front().issued).count());
      ++completed;
      window.erase(window.begin());
    }
    x = mix64(x + op);
    Slot slot;
    slot.req = std::make_unique<client::Request>();
    slot.value = make_value(x % kKeys, kValueBytes);
    slot.issued = sim::now();
    if (client->iset(make_key(x % kKeys), slot.value, 0, 0, *slot.req) ==
        StatusCode::kOk) {
      window.push_back(std::move(slot));
    }
  }
  for (auto& slot : window) {
    client->wait(*slot.req);
    latency_sum_ns += static_cast<double>((sim::now() - slot.issued).count());
    ++completed;
  }
  const double seconds =
      static_cast<double>((sim::now() - start).count()) / 1e9;

  Calibration cal;
  cal.sat_kops = static_cast<double>(ops) / seconds / 1e3;
  cal.mean_latency = sim::Nanos{static_cast<std::int64_t>(
      latency_sum_ns / static_cast<double>(std::max<std::uint64_t>(completed, 1)))};
  return cal;
}

PointResult run_point(double mult, bool admission, double sat_kops,
                      sim::Nanos deadline, std::uint64_t ops_per_driver) {
  core::TestBed bed(bed_config(admission, deadline));

  const double offered_ops_per_sec = mult * sat_kops * 1e3;
  const auto interarrival = sim::Nanos{static_cast<std::int64_t>(
      static_cast<double>(kDrivers) * 1e9 / offered_ops_per_sec)};

  std::vector<DriverTally> tallies(kDrivers);
  std::vector<std::thread> drivers;
  const auto start = sim::now();
  for (unsigned d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      auto client = bed.make_client("driver" + std::to_string(d));
      tallies[d] = drive(*client, ops_per_driver, interarrival, deadline,
                         0xBEEF + d);
    });
  }
  for (auto& t : drivers) t.join();
  const double seconds =
      static_cast<double>((sim::now() - start).count()) / 1e9;

  DriverTally total;
  for (const auto& t : tallies) {
    total.ok += t.ok;
    total.busy += t.busy;
    total.timed_out += t.timed_out;
    total.other += t.other;
    total.ok_latency_us.insert(total.ok_latency_us.end(),
                               t.ok_latency_us.begin(), t.ok_latency_us.end());
  }
  const double issued = static_cast<double>(total.ok + total.busy +
                                            total.timed_out + total.other);

  PointResult point;
  point.mult = mult;
  point.admission = admission;
  point.offered_kops = issued / seconds / 1e3 * bench::kTimeDilation;
  point.goodput_kops =
      static_cast<double>(total.ok) / seconds / 1e3 * bench::kTimeDilation;
  point.shed_rate = issued > 0 ? static_cast<double>(total.busy) / issued : 0;
  point.timeout_rate =
      issued > 0 ? static_cast<double>(total.timed_out) / issued : 0;
  if (!total.ok_latency_us.empty()) {
    std::sort(total.ok_latency_us.begin(), total.ok_latency_us.end());
    const std::size_t idx = static_cast<std::size_t>(
        0.99 * static_cast<double>(total.ok_latency_us.size() - 1));
    point.p99_us = total.ok_latency_us[idx] / bench::kTimeDilation;
  }
  return point;
}

}  // namespace

int main() {
  sim::init_precise_timing();
  bench::print_banner("Ablation: overload control (open-loop sweep)");
  // Past saturation the no-admission runs cancel ops by the hundred; the
  // per-cancel "stale response" warnings are that design working as
  // intended, not news. HYKV_LOG still overrides.
  if (std::getenv("HYKV_LOG") == nullptr) set_log_level(LogLevel::kError);

  const bool smoke = std::getenv("HYKV_BENCH_SMOKE") != nullptr;
  const std::uint64_t cal_ops = smoke ? 64 : 384;
  const std::uint64_t ops_per_driver = smoke ? 24 : 192;

  const sim::ScopedTimeScale dilation(bench::kTimeDilation);

  const Calibration cal = calibrate(cal_ops);
  // Deadline: 4x the loaded closed-loop mean -- generous for bounded queues
  // (admission caps waiting at ~queue_limit service times), hopeless for the
  // unbounded queue past saturation.
  const auto deadline = sim::Nanos{cal.mean_latency.count() * 4};
  std::printf(
      "calibration: saturation %.2f kops, loaded mean latency %.0f us, "
      "deadline %.0f us (modelled)\n\n",
      cal.sat_kops * bench::kTimeDilation,
      static_cast<double>(cal.mean_latency.count()) / 1e3 /
          bench::kTimeDilation,
      static_cast<double>(deadline.count()) / 1e3 / bench::kTimeDilation);

  const double mults[] = {0.5, 1.0, 2.0, 4.0};
  std::vector<PointResult> points;
  std::printf("  %9s %10s %13s %13s %9s %9s %9s\n", "offered", "admission",
              "offered_kops", "goodput_kops", "shed%", "timeout%", "p99_us");
  for (const double mult : mults) {
    for (const bool admission : {false, true}) {
      const PointResult p =
          run_point(mult, admission, cal.sat_kops, deadline, ops_per_driver);
      points.push_back(p);
      std::printf("  %8.1fx %10s %13.2f %13.2f %8.1f%% %8.1f%% %9.0f\n",
                  p.mult, admission ? "on" : "off", p.offered_kops,
                  p.goodput_kops, 100.0 * p.shed_rate, 100.0 * p.timeout_rate,
                  p.p99_us);
      std::fflush(stdout);
    }
  }
  std::printf("\n");

  // Headline: past the knee (>=2x) admission must not lose goodput.
  double worst_ratio = 1e9;
  for (std::size_t i = 0; i + 1 < points.size(); i += 2) {
    const PointResult& off = points[i];
    const PointResult& on = points[i + 1];
    if (off.mult < 2.0) continue;
    const double ratio =
        off.goodput_kops > 0 ? on.goodput_kops / off.goodput_kops : 1e9;
    worst_ratio = std::min(worst_ratio, ratio);
    std::printf("headline: at %.1fx saturation, goodput on/off = %.2f/%.2f "
                "kops (%.2fx)\n",
                off.mult, on.goodput_kops, off.goodput_kops, ratio);
  }
  std::printf("\n");

  std::string json = "{\"bench\":\"overload\",\"smoke\":" +
                     std::string(smoke ? "true" : "false") +
                     ",\"saturation_kops\":" +
                     std::to_string(cal.sat_kops * bench::kTimeDilation) +
                     ",\"deadline_us\":" +
                     std::to_string(static_cast<double>(deadline.count()) /
                                    1e3 / bench::kTimeDilation) +
                     ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    if (i != 0) json += ",";
    json += "{\"mult\":" + std::to_string(p.mult) +
            ",\"admission\":" + (p.admission ? "true" : "false") +
            ",\"offered_kops\":" + std::to_string(p.offered_kops) +
            ",\"goodput_kops\":" + std::to_string(p.goodput_kops) +
            ",\"shed_rate\":" + std::to_string(p.shed_rate) +
            ",\"timeout_rate\":" + std::to_string(p.timeout_rate) +
            ",\"p99_us\":" + std::to_string(p.p99_us) + "}";
  }
  json += "],\"worst_goodput_ratio_past_2x\":" + std::to_string(worst_ratio) +
          "}\n";

  const char* out_path = "BENCH_overload.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("could not write %s\n", out_path);
  }
  return 0;
}
